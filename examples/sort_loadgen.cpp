// sort_loadgen: concurrent load driver for sort_serverd (docs/net.md).
//
//   ./sort_loadgen (--port P | --port-file FILE) [--host H]
//                  [--clients N] [--jobs N] [--records N]
//                  [--big-clients N] [--big-records N]
//                  [--disconnects N] [--greedy N] [--greedy-mb MB]
//                  [--smoke] [--report FILE] [--trace FILE]
//
// Each client is one thread speaking the wire protocol end to end:
// generate records, stream them up, wait, stream the sorted bytes back,
// and verify them client-side — ascending keys (RecordFormat
// CompareKeys), a multiset fingerprint match against the input (the
// output is a permutation, not just sorted), and the DONE frame's CRC.
// Per-job end-to-end latency lands in the net.client.e2e_us histogram;
// the summary prints p50/p95/p99. The server's per-stage breakdown from
// each v2 RESULT lands in net.client.{ingest,queue,sort,merge,stream}_us,
// and the gap between client-observed e2e and the server's elapsed_us —
// the wire + client-stack overhead — in net.client.e2e_delta_us; all of
// it is mirrored into the --report artifact.
//
// --trace FILE installs an obs::TraceRecorder for the run and exports
// the client-side Chrome trace (net.submit spans, net.clock_sync
// markers) on exit; examples/trace_merge joins it with the server's
// --trace export into one timeline.
//
// Client mix:
//   --clients N       small sorts, one tenant each ("tenant-<i>")
//   --big-clients N   large sorts (tenant "big-<i>")
//   --disconnects N   connections dropped mid-upload (server must clean
//                     up; verified by the end-of-run residue check and,
//                     with quotas on, a same-tenant refund probe — the
//                     leak gate for the up-front streamed-ingest charge)
//   --greedy N        tenants whose job exceeds the per-tenant quota
//                     capacity; they MUST be rejected with Unavailable,
//                     promptly, not stalled
//
// After every worker finishes, a probe connection polls server STATUS
// until the server reports no queued/running/in-flight jobs, zero
// admitted bytes, and only the probe's own connection — leaked jobs or
// gauge residue fail the run.
//
// --smoke is the CI gate (scripts/ci.sh --stage=smokes): 100 concurrent
// small clients + 2 big ones + 1 disconnect + 1 greedy tenant, nonzero
// exit on any verification failure. --report FILE writes a BenchReport
// JSON artifact (validated by report_lint).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/table.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "record/generator.h"

using namespace alphasort;

namespace {

struct LoadConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  int clients = 8;
  int jobs_per_client = 1;
  uint64_t records = 2000;
  int big_clients = 0;
  uint64_t big_records = 100000;
  int disconnects = 0;
  int greedy = 0;
  uint64_t greedy_mb = 40;
  bool smoke = false;
  std::string report_path;
  std::string trace_path;
};

struct WorkerTally {
  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::atomic<int> retried{0};  // Unavailable answers that were retried
  std::atomic<int> greedy_rejected{0};
  std::mutex mu;
  std::string first_error;

  void Fail(const std::string& what) {
    failed.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    if (first_error.empty()) first_error = what;
  }
};

uint64_t NowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

obs::Histogram* ClientE2eUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("net.client.e2e_us");
  return h;
}
// Server-side stage attribution as the client received it in the v2
// RESULT frame — the client's view of where the server spent its time.
obs::Histogram* StageIngestUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("net.client.ingest_us");
  return h;
}
obs::Histogram* StageQueueUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("net.client.queue_us");
  return h;
}
obs::Histogram* StageSortUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("net.client.sort_us");
  return h;
}
obs::Histogram* StageMergeUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("net.client.merge_us");
  return h;
}
obs::Histogram* StageStreamUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("net.client.stream_us");
  return h;
}
// Client-observed e2e minus server-reported elapsed_us: what the wire
// and the client stack added on top of the server's own account.
obs::Histogram* E2eDeltaUs() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("net.client.e2e_delta_us");
  return h;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = fwrite(text.data(), 1, text.size(), f) == text.size();
  fclose(f);
  return ok;
}

// Client-side output verification: right length, ascending keys, a
// permutation of the input, all without trusting the server.
Status VerifySorted(const RecordFormat& format, const std::vector<char>& in,
                    const std::string& out) {
  if (out.size() != in.size()) {
    return Status::Corruption(StrFormat(
        "output is %zu bytes, input was %zu", out.size(), in.size()));
  }
  const size_t r = format.record_size;
  MultisetFingerprint in_fp, out_fp;
  for (size_t off = 0; off < in.size(); off += r) {
    in_fp.Add(in.data() + off, r);
  }
  for (size_t off = 0; off < out.size(); off += r) {
    out_fp.Add(out.data() + off, r);
    if (off > 0 &&
        format.CompareKeys(out.data() + off - r, out.data() + off) > 0) {
      return Status::Corruption(
          StrFormat("keys out of order at record %zu", off / r));
    }
  }
  if (!(in_fp == out_fp)) {
    return Status::Corruption("output is not a permutation of the input");
  }
  return Status::OK();
}

// One well-behaved client: N jobs over one connection, Unavailable
// answers retried with backoff (the protocol's contract: back off, do
// not stall).
void RunClient(const LoadConfig& cfg, const std::string& tenant,
               uint64_t seed, uint64_t records, WorkerTally* tally) {
  const RecordFormat format = kDatamationFormat;
  RecordGenerator gen(format, seed);
  const std::vector<char> data =
      gen.Generate(KeyDistribution::kUniform, records);

  net::SortClient client;
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = client.Connect(cfg.host, cfg.port, tenant, 10.0);
    if (s.ok() || !s.IsUnavailable()) break;
    tally->retried.fetch_add(1);  // connection-capacity backpressure
    std::this_thread::sleep_for(std::chrono::milliseconds(20 * (attempt + 1)));
  }
  if (!s.ok()) {
    tally->Fail(StrFormat("%s connect: %s", tenant.c_str(),
                          s.ToString().c_str()));
    return;
  }

  for (int j = 0; j < cfg.jobs_per_client; ++j) {
    bool done = false;
    for (int attempt = 0; attempt < 10 && !done; ++attempt) {
      net::SubmitSpec spec;
      spec.format = format;
      net::NetSortOutcome outcome;
      std::string sorted;
      const uint64_t t0 = NowUs();
      s = client.SubmitSort(spec, data.data(), data.size(), &sorted,
                            &outcome);
      const uint64_t elapsed = NowUs() - t0;
      if (!s.ok()) {
        tally->Fail(StrFormat("%s transport: %s", tenant.c_str(),
                              s.ToString().c_str()));
        return;
      }
      if (outcome.status.IsUnavailable()) {
        tally->retried.fetch_add(1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(25 * (attempt + 1)));
        continue;
      }
      if (!outcome.status.ok()) {
        tally->Fail(StrFormat("%s job: %s", tenant.c_str(),
                              outcome.status.ToString().c_str()));
        return;
      }
      if (Status v = VerifySorted(format, data, sorted); !v.ok()) {
        tally->Fail(StrFormat("%s verify: %s", tenant.c_str(),
                              v.ToString().c_str()));
        return;
      }
      ClientE2eUs()->Record(elapsed);
      StageIngestUs()->Record(outcome.ingest_us);
      StageQueueUs()->Record(outcome.queue_us);
      StageSortUs()->Record(outcome.sort_us);
      StageMergeUs()->Record(outcome.merge_us);
      StageStreamUs()->Record(outcome.stream_us);
      E2eDeltaUs()->Record(elapsed >= outcome.server_elapsed_us
                               ? elapsed - outcome.server_elapsed_us
                               : 0);
      tally->ok.fetch_add(1);
      done = true;
    }
    if (!done) {
      tally->Fail(StrFormat("%s: still Unavailable after retries",
                            tenant.c_str()));
      return;
    }
  }
}

// Connects, starts an upload, and vanishes mid-stream. The server must
// notice, poison the half-fed stream (reaping the job), free the
// connection slot (checked by the end-of-run residue probe), and refund
// the tenant's quota charge — checked here: the worker reconnects as the
// same tenant and polls STATUS until the bucket reads (near) its
// pre-drop level. The SUBMIT deliberately advertises far more than it
// sends, so the up-front charge dwarfs what refill could restore during
// the gate and a leak cannot hide behind the refill rate (the smoke
// serverd runs with refill slowed for exactly this reason).
void RunDisconnect(const LoadConfig& cfg, int idx, WorkerTally* tally) {
  const RecordFormat format = kDatamationFormat;
  RecordGenerator gen(format, 9000 + uint64_t(idx));
  const std::vector<char> data =
      gen.Generate(KeyDistribution::kUniform, 2000);
  const std::string tenant = StrFormat("drop-%d", idx);

  net::SortClient client;
  if (Status s = client.Connect(cfg.host, cfg.port, tenant, 10.0);
      !s.ok()) {
    tally->Fail(StrFormat("drop-%d connect: %s", idx,
                          s.ToString().c_str()));
    return;
  }
  net::StatusReplyFrame before;
  if (Status s = client.QueryServerStatus(&before); !s.ok()) {
    tally->Fail(StrFormat("drop-%d status: %s", idx,
                          s.ToString().c_str()));
    return;
  }
  const bool quotas_on = before.quota_remaining != UINT64_MAX;

  net::SubmitFrame submit;
  submit.expected_bytes =
      quotas_on ? std::min<uint64_t>(before.quota_remaining / 2, 16ull << 20)
                : data.size();
  net::TcpConn* raw = client.raw_conn();
  (void)net::WriteFrame(raw, net::FrameType::kSubmit, submit.Encode());
  // Half the stream, then gone.
  (void)net::WriteFrame(raw, net::FrameType::kData,
                        std::string(data.data(), data.size() / 2));
  client.Close();

  if (quotas_on) {
    net::SortClient again;
    if (Status s = again.Connect(cfg.host, cfg.port, tenant, 10.0);
        !s.ok()) {
      tally->Fail(StrFormat("drop-%d reconnect: %s", idx,
                            s.ToString().c_str()));
      return;
    }
    // An eighth of the bucket covers refill jitter; a leaked 50% charge
    // cannot clear the bar.
    const uint64_t want =
        before.quota_remaining - before.quota_remaining / 8;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    net::StatusReplyFrame after;
    for (;;) {
      if (Status s = again.QueryServerStatus(&after); !s.ok()) {
        tally->Fail(StrFormat("drop-%d refund probe: %s", idx,
                              s.ToString().c_str()));
        return;
      }
      if (after.quota_remaining >= want) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        tally->Fail(StrFormat(
            "drop-%d: quota not refunded after mid-ingest disconnect "
            "(%llu of %llu tokens back)",
            idx,
            static_cast<unsigned long long>(after.quota_remaining),
            static_cast<unsigned long long>(before.quota_remaining)));
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  tally->ok.fetch_add(1);
}

// A tenant whose single job exceeds its quota bucket outright. The
// contract under test: a prompt, clean Unavailable — not a stall, not a
// silent accept.
void RunGreedy(const LoadConfig& cfg, int idx, WorkerTally* tally) {
  const RecordFormat format = kDatamationFormat;
  const uint64_t records = (cfg.greedy_mb << 20) / format.record_size;
  RecordGenerator gen(format, 7000 + uint64_t(idx));
  const std::vector<char> data =
      gen.Generate(KeyDistribution::kUniform, records);

  net::SortClient client;
  if (Status s = client.Connect(cfg.host, cfg.port,
                                StrFormat("greedy-%d", idx), 10.0);
      !s.ok()) {
    tally->Fail(StrFormat("greedy-%d connect: %s", idx,
                          s.ToString().c_str()));
    return;
  }
  net::SubmitSpec spec;
  spec.format = format;
  net::NetSortOutcome outcome;
  const uint64_t t0 = NowUs();
  Status s = client.SubmitSort(spec, data.data(), data.size(),
                               /*sorted=*/nullptr, &outcome);
  const double wait_s = double(NowUs() - t0) / 1e6;
  if (!s.ok()) {
    tally->Fail(StrFormat("greedy-%d transport: %s", idx,
                          s.ToString().c_str()));
    return;
  }
  if (!outcome.status.IsUnavailable()) {
    tally->Fail(StrFormat("greedy-%d expected Unavailable, got %s", idx,
                          outcome.status.ToString().c_str()));
    return;
  }
  if (wait_s > 30.0) {
    tally->Fail(StrFormat("greedy-%d rejection took %.1fs (stalled)", idx,
                          wait_s));
    return;
  }
  tally->greedy_rejected.fetch_add(1);
  tally->ok.fetch_add(1);
}

// Polls server STATUS until every job-side level reads zero and the
// probe's connection is the only one left. Nonzero residue after the
// deadline means a leaked job or a stuck gauge.
bool ProbeResidue(const LoadConfig& cfg, net::StatusReplyFrame* last) {
  net::SortClient probe;
  if (Status s = probe.Connect(cfg.host, cfg.port, "probe", 10.0); !s.ok()) {
    fprintf(stderr, "probe connect: %s\n", s.ToString().c_str());
    return false;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    if (Status s = probe.QueryServerStatus(last); !s.ok()) {
      fprintf(stderr, "probe status: %s\n", s.ToString().c_str());
      return false;
    }
    if (last->jobs_queued == 0 && last->jobs_running == 0 &&
        last->net_jobs_inflight == 0 && last->admitted_bytes == 0 &&
        last->conns_active == 1) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

int RunLoad(const LoadConfig& cfg) {
  WorkerTally tally;
  obs::TraceRecorder recorder;
  if (!cfg.trace_path.empty()) recorder.Install();
  const uint64_t t0 = NowUs();

  std::vector<std::thread> workers;
  for (int i = 0; i < cfg.clients; ++i) {
    workers.emplace_back([&cfg, i, &tally] {
      RunClient(cfg, StrFormat("tenant-%d", i), 1000 + uint64_t(i),
                cfg.records, &tally);
    });
  }
  for (int i = 0; i < cfg.big_clients; ++i) {
    workers.emplace_back([&cfg, i, &tally] {
      RunClient(cfg, StrFormat("big-%d", i), 5000 + uint64_t(i),
                cfg.big_records, &tally);
    });
  }
  for (int i = 0; i < cfg.disconnects; ++i) {
    workers.emplace_back([&cfg, i, &tally] { RunDisconnect(cfg, i, &tally); });
  }
  for (int i = 0; i < cfg.greedy; ++i) {
    workers.emplace_back([&cfg, i, &tally] { RunGreedy(cfg, i, &tally); });
  }
  for (auto& w : workers) w.join();
  const double wall_s = double(NowUs() - t0) / 1e6;

  int failures = tally.failed.load();
  if (failures > 0) {
    std::lock_guard<std::mutex> lock(tally.mu);
    fprintf(stderr, "FAIL: %d worker(s) failed, first: %s\n", failures,
            tally.first_error.c_str());
  }
  if (tally.greedy_rejected.load() != cfg.greedy) {
    fprintf(stderr, "FAIL: %d of %d greedy tenant(s) rejected\n",
            tally.greedy_rejected.load(), cfg.greedy);
    ++failures;
  }

  net::StatusReplyFrame residue;
  if (!ProbeResidue(cfg, &residue)) {
    fprintf(stderr,
            "FAIL: residue after drain: queued=%llu running=%llu "
            "inflight=%llu admitted=%llu conns=%llu\n",
            static_cast<unsigned long long>(residue.jobs_queued),
            static_cast<unsigned long long>(residue.jobs_running),
            static_cast<unsigned long long>(residue.net_jobs_inflight),
            static_cast<unsigned long long>(residue.admitted_bytes),
            static_cast<unsigned long long>(residue.conns_active));
    ++failures;
  }

  const obs::HistogramSnapshot lat = ClientE2eUs()->Snapshot();
  printf("%d clients (%d big, %d disconnect, %d greedy): %d jobs ok, "
         "%d failed, %d backoff-retries, %.2fs wall\n",
         cfg.clients, cfg.big_clients, cfg.disconnects, cfg.greedy,
         tally.ok.load(), tally.failed.load(), tally.retried.load(), wall_s);
  printf("latency: %s\n", lat.Summary("us").c_str());

  if (!cfg.report_path.empty()) {
    obs::BenchReport report;
    report.name = "net_smoke";
    obs::BenchEntry entry;
    entry.suite = "net_loadgen";
    entry.config = StrFormat(
        "clients=%d,records=%llu,big=%d,big_records=%llu,disc=%d,greedy=%d",
        cfg.clients, static_cast<unsigned long long>(cfg.records),
        cfg.big_clients, static_cast<unsigned long long>(cfg.big_records),
        cfg.disconnects, cfg.greedy);
    entry.values.emplace_back("jobs_ok", double(tally.ok.load()));
    entry.values.emplace_back("jobs_failed", double(tally.failed.load()));
    entry.values.emplace_back("backoff_retries",
                              double(tally.retried.load()));
    entry.values.emplace_back("greedy_rejected",
                              double(tally.greedy_rejected.load()));
    entry.values.emplace_back("wall_s", wall_s);
    entry.values.emplace_back("p50_us", lat.Percentile(50));
    entry.values.emplace_back("p95_us", lat.Percentile(95));
    entry.values.emplace_back("p99_us", lat.Percentile(99));
    // Where the server said the time went, as percentiles over every
    // completed job (from the v2 RESULT stage breakdown).
    const struct {
      const char* name;
      obs::Histogram* h;
    } stages[] = {
        {"ingest", StageIngestUs()}, {"queue", StageQueueUs()},
        {"sort", StageSortUs()},   {"merge", StageMergeUs()},
        {"stream", StageStreamUs()},
    };
    for (const auto& stage : stages) {
      const obs::HistogramSnapshot snap = stage.h->Snapshot();
      entry.values.emplace_back(StrFormat("%s_p50_us", stage.name),
                                snap.Percentile(50));
      entry.values.emplace_back(StrFormat("%s_p95_us", stage.name),
                                snap.Percentile(95));
      entry.values.emplace_back(StrFormat("%s_p99_us", stage.name),
                                snap.Percentile(99));
    }
    const obs::HistogramSnapshot delta = E2eDeltaUs()->Snapshot();
    entry.values.emplace_back("e2e_delta_p50_us", delta.Percentile(50));
    entry.values.emplace_back("e2e_delta_p95_us", delta.Percentile(95));
    report.entries.push_back(std::move(entry));
    if (!WriteTextFile(cfg.report_path, report.ToJson())) {
      fprintf(stderr, "FAIL: cannot write report %s\n",
              cfg.report_path.c_str());
      ++failures;
    }
  }
  if (!cfg.trace_path.empty()) {
    obs::TraceRecorder::Uninstall();
    if (!WriteTextFile(cfg.trace_path, recorder.ToChromeJson())) {
      fprintf(stderr, "FAIL: cannot write trace %s\n",
              cfg.trace_path.c_str());
      ++failures;
    } else {
      printf("trace: %s (%zu events, %llu dropped)\n",
             cfg.trace_path.c_str(), recorder.size(),
             static_cast<unsigned long long>(recorder.dropped()));
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      cfg.host = argv[++i];
    } else if (strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      cfg.port = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      cfg.port_file = argv[++i];
    } else if (strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      cfg.clients = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cfg.jobs_per_client = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      cfg.records = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--big-clients") == 0 && i + 1 < argc) {
      cfg.big_clients = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--big-records") == 0 && i + 1 < argc) {
      cfg.big_records = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--disconnects") == 0 && i + 1 < argc) {
      cfg.disconnects = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--greedy") == 0 && i + 1 < argc) {
      cfg.greedy = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--greedy-mb") == 0 && i + 1 < argc) {
      cfg.greedy_mb = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      cfg.report_path = argv[++i];
    } else if (strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cfg.trace_path = argv[++i];
    } else {
      fprintf(stderr,
              "usage: %s (--port P | --port-file FILE) [--host H] "
              "[--clients N] [--jobs N] [--records N] [--big-clients N] "
              "[--big-records N] [--disconnects N] [--greedy N] "
              "[--greedy-mb MB] [--smoke] [--report FILE] [--trace FILE]\n",
              argv[0]);
      return 2;
    }
  }
  if (cfg.smoke) {
    // The CI gate shape: 100 concurrent small tenants, two big jobs,
    // one mid-upload disconnect, one over-quota tenant.
    cfg.clients = 100;
    cfg.jobs_per_client = 1;
    cfg.records = 1000;
    cfg.big_clients = 2;
    cfg.big_records = 100000;
    cfg.disconnects = 1;
    cfg.greedy = 1;
  }
  if (!cfg.port_file.empty()) {
    FILE* f = fopen(cfg.port_file.c_str(), "rb");
    if (f == nullptr) {
      fprintf(stderr, "cannot read port file %s\n", cfg.port_file.c_str());
      return 2;
    }
    char buf[32] = {0};
    const size_t n = fread(buf, 1, sizeof(buf) - 1, f);
    fclose(f);
    (void)n;
    cfg.port = atoi(buf);
  }
  if (cfg.port <= 0) {
    fprintf(stderr, "a valid --port or --port-file is required\n");
    return 2;
  }
  return RunLoad(cfg);
}
