// log_lint: validates a structured-log JSONL capture and self-tests the
// logger's rate limiter.
//
//   ./log_lint FILE [--require-event NAME]...
//   ./log_lint --burst
//
// Default mode checks FILE against the log JSONL schema
// (obs::ValidateLogJsonl: numeric ts_us, known level, non-empty event
// per line) and that every --require-event NAME appears as some line's
// exact event name.
//
// --burst needs no file: it pushes a 10k-event burst through one
// rate-limited call site into a MemoryLogSink and exits nonzero unless
// the per-site limiter capped the flood at its window budget and the
// drop count was surfaced on total_suppressed. This is the CI log-sink
// smoke gate (scripts/ci.sh).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"

using namespace alphasort;

namespace {

constexpr uint32_t kBurstEvents = 10000;
constexpr uint32_t kWindowCap = 128;  // LogRateLimiter default budget

int RunBurst() {
  obs::MemoryLogSink sink;
  obs::Logger* logger = obs::Logger::Global();
  logger->AddSink(&sink);
  obs::LogRateLimiter limiter;  // the macro's per-site static, made local
  uint64_t admitted = 0;
  for (uint32_t i = 0; i < kBurstEvents; ++i) {
    uint64_t suppressed = 0;
    if (limiter.Admit(obs::LogWallTimeUs(), &suppressed)) {
      ++admitted;
      obs::LogMessage(obs::LogLevel::kInfo, "burst.test", suppressed)
          .U64("i", i);
    }
  }
  logger->RemoveSink(&sink);

  int failures = 0;
  // The whole burst runs in far under the 1 s window, so exactly one
  // window budget may pass. A slow machine could straddle a window
  // boundary, hence the 2x allowance — the point is 10000 -> O(cap).
  if (admitted == 0 || admitted > 2 * kWindowCap) {
    fprintf(stderr,
            "log_lint: burst of %u admitted %llu events, wanted 1..%u\n",
            kBurstEvents, static_cast<unsigned long long>(admitted),
            2 * kWindowCap);
    ++failures;
  }
  if (sink.count() != admitted) {
    fprintf(stderr,
            "log_lint: sink saw %zu events but %llu were admitted\n",
            sink.count(), static_cast<unsigned long long>(admitted));
    ++failures;
  }
  if (limiter.total_suppressed() != kBurstEvents - admitted) {
    fprintf(stderr,
            "log_lint: limiter counted %llu suppressed, wanted %llu\n",
            static_cast<unsigned long long>(limiter.total_suppressed()),
            static_cast<unsigned long long>(kBurstEvents - admitted));
    ++failures;
  }
  if (failures == 0) {
    printf(
        "log_lint: burst ok (%u events -> %llu admitted, %llu "
        "suppressed)\n",
        kBurstEvents, static_cast<unsigned long long>(admitted),
        static_cast<unsigned long long>(limiter.total_suppressed()));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required_events;
  bool burst = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--require-event") == 0 && i + 1 < argc) {
      required_events.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--burst") == 0) {
      burst = true;
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      fprintf(stderr,
              "usage: %s FILE [--require-event NAME]... | %s --burst\n",
              argv[0], argv[0]);
      return 2;
    }
  }
  if (burst) return RunBurst();
  if (path.empty()) {
    fprintf(stderr, "log_lint: no input file\n");
    return 2;
  }

  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fprintf(stderr, "log_lint: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string content;
  char buf[1 << 16];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, got);
  fclose(f);

  if (Status s = obs::ValidateLogJsonl(content); !s.ok()) {
    fprintf(stderr, "log_lint: %s: %s\n", path.c_str(),
            s.ToString().c_str());
    return 1;
  }

  std::set<std::string> events;
  size_t lines = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = content.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++lines;
    obs::JsonValue root;
    if (!obs::ParseJson(line, &root).ok()) continue;  // validated above
    const obs::JsonValue* ev = root.Find("event");
    if (ev != nullptr && ev->IsString()) events.insert(ev->string_value);
  }
  for (const std::string& want : required_events) {
    if (events.count(want) == 0) {
      fprintf(stderr, "log_lint: no \"%s\" event in %s\n", want.c_str(),
              path.c_str());
      return 1;
    }
  }
  printf("log_lint: %s ok (%zu events, %zu distinct names)\n",
         path.c_str(), lines, events.size());
  return 0;
}
