// check_sort: standalone output checker in the spirit of the sort
// benchmark's valsort. Verifies that OUTPUT is a key-ascending permutation
// of INPUT (the Datamation output rule, paper §2) using the streaming
// validator — constant memory regardless of file size.
//
//   ./check_sort --in INPUT --out OUTPUT [--record-size R] [--key-size K]
//                [--key-offset OFF]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/datamation.h"

using namespace alphasort;

int main(int argc, char** argv) {
  std::string in, out;
  RecordFormat fmt = kDatamationFormat;
  size_t key_offset = 0;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = need("--in")) in = v;
    else if (const char* v = need("--out")) out = v;
    else if (const char* v = need("--record-size")) fmt.record_size = strtoul(v, nullptr, 10);
    else if (const char* v = need("--key-size")) fmt.key_size = strtoul(v, nullptr, 10);
    else if (const char* v = need("--key-offset")) key_offset = strtoul(v, nullptr, 10);
    else {
      fprintf(stderr,
              "usage: %s --in INPUT --out OUTPUT [--record-size R] "
              "[--key-size K] [--key-offset OFF]\n",
              argv[0]);
      return 2;
    }
  }
  fmt.key_offset = key_offset;
  if (in.empty() || out.empty()) {
    fprintf(stderr, "--in and --out are required\n");
    return 2;
  }
  if (!fmt.Valid()) {
    fprintf(stderr, "invalid record layout\n");
    return 2;
  }

  Status s = ValidateSortedFile(GetPosixEnv(), in, out, fmt);
  if (!s.ok()) {
    fprintf(stderr, "FAILED: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("OK: %s is a sorted permutation of %s\n", out.c_str(), in.c_str());
  return 0;
}
