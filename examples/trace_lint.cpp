// trace_lint: validates a Chrome trace-event JSON file produced by
// `asort --trace` (or any obs::TraceRecorder export).
//
//   ./trace_lint FILE [--require NAME]... [--distinct-threads N]
//
// Exits 0 when FILE parses as a structurally valid Chrome trace, every
// --require NAME appears as an event-name substring, and events span at
// least N distinct tids. Used by scripts/ci.sh to smoke-test the
// observability pipeline end to end.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/trace.h"

using namespace alphasort;

namespace {

// Collects the value of every `"key":` string or number occurrence.
// Sufficient for trace JSON we already validated: keys only appear as
// object members, and name/tid never contain nested structures.
std::vector<std::string> FieldValues(const std::string& json,
                                     const std::string& key) {
  std::vector<std::string> values;
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    if (pos >= json.size()) break;
    if (json[pos] == '"') {
      const size_t end = json.find('"', pos + 1);
      if (end == std::string::npos) break;
      values.push_back(json.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    } else {
      size_t end = pos;
      while (end < json.size() &&
             (isdigit(static_cast<unsigned char>(json[end])) ||
              json[end] == '-')) {
        ++end;
      }
      values.push_back(json.substr(pos, end - pos));
      pos = end;
    }
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  size_t distinct_threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--distinct-threads") == 0 && i + 1 < argc) {
      distinct_threads = strtoul(argv[++i], nullptr, 10);
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      fprintf(stderr,
              "usage: %s FILE [--require NAME]... [--distinct-threads N]\n",
              argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    fprintf(stderr, "trace_lint: no input file\n");
    return 2;
  }

  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fprintf(stderr, "trace_lint: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string json;
  char buf[1 << 16];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, got);
  fclose(f);

  // Name the two most common breakages outright — an empty file (the
  // recorder never flushed) and a truncated one (the process died
  // mid-export) — instead of leaving them to a parse error at some byte.
  if (json.empty()) {
    fprintf(stderr,
            "trace_lint: %s is empty (0 bytes) — trace was never written "
            "or never flushed\n",
            path.c_str());
    return 1;
  }
  if (Status s = obs::ValidateChromeTraceJson(json); !s.ok()) {
    const size_t last = json.find_last_not_of(" \t\r\n");
    if (last == std::string::npos || json[last] != '}') {
      fprintf(stderr,
              "trace_lint: %s looks truncated (%zu bytes, no closing "
              "'}') — writer likely died mid-export; %s\n",
              path.c_str(), json.size(), s.ToString().c_str());
    } else {
      fprintf(stderr, "trace_lint: %s\n", s.ToString().c_str());
    }
    return 1;
  }

  const std::vector<std::string> names = FieldValues(json, "name");
  for (const std::string& want : required) {
    bool found = false;
    for (const std::string& name : names) {
      if (name.find(want) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      fprintf(stderr, "trace_lint: no event named like \"%s\"\n",
              want.c_str());
      return 1;
    }
  }

  std::vector<std::string> tids = FieldValues(json, "tid");
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  if (tids.size() < distinct_threads) {
    fprintf(stderr, "trace_lint: %zu distinct threads, wanted >= %zu\n",
            tids.size(), distinct_threads);
    return 1;
  }

  printf("trace_lint: %s ok (%zu events, %zu threads)\n", path.c_str(),
         names.size(), tids.size());
  return 0;
}
