// trace_lint: validates a Chrome trace-event JSON file produced by
// `asort --trace` (or any obs::TraceRecorder export).
//
//   ./trace_lint FILE [--require NAME]... [--require-counter NAME]...
//                [--require-job NAME]... [--require-trace-id NAME]...
//                [--distinct-threads N]
//
// Exits 0 when FILE parses as a structurally valid Chrome trace, every
// --require NAME appears as an event-name substring, every
// --require-counter NAME appears as a counter event (ph "C") with that
// exact name and a numeric args.value, every event whose name contains a
// --require-job NAME carries a numeric args.job (the obs::ScopedJobId
// attribution), every event whose name contains a --require-trace-id
// NAME carries a nonzero numeric args.trace_id (the distributed
// obs::ScopedTraceId attribution), events span at least N distinct
// tids, and each thread's
// timestamps are monotonically non-decreasing (the recorder exports a
// globally time-sorted array; out-of-order events within one tid mean a
// broken export or a hand-edited file).
//
// Cross-job span nesting is always rejected: a complete ("X") span
// opening inside another span on the same tid must carry the same job id
// (or id 0, the unattributed service scope) — two different nonzero jobs
// nested on one thread means a chore ran without re-establishing
// ScopedJobId, so its spans are charged to the wrong job. Used by
// scripts/ci.sh to smoke-test the observability pipeline end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/json.h"
#include "obs/trace.h"

using namespace alphasort;

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  std::vector<std::string> required_counters;
  std::vector<std::string> required_jobs;
  std::vector<std::string> required_trace_ids;
  size_t distinct_threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--require-counter") == 0 && i + 1 < argc) {
      required_counters.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--require-job") == 0 && i + 1 < argc) {
      required_jobs.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--require-trace-id") == 0 && i + 1 < argc) {
      required_trace_ids.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--distinct-threads") == 0 && i + 1 < argc) {
      distinct_threads = strtoul(argv[++i], nullptr, 10);
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      fprintf(stderr,
              "usage: %s FILE [--require NAME]... "
              "[--require-counter NAME]... [--require-job NAME]... "
              "[--require-trace-id NAME]... [--distinct-threads N]\n",
              argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    fprintf(stderr, "trace_lint: no input file\n");
    return 2;
  }

  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fprintf(stderr, "trace_lint: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string json;
  char buf[1 << 16];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, got);
  fclose(f);

  // Name the two most common breakages outright — an empty file (the
  // recorder never flushed) and a truncated one (the process died
  // mid-export) — instead of leaving them to a parse error at some byte.
  if (json.empty()) {
    fprintf(stderr,
            "trace_lint: %s is empty (0 bytes) — trace was never written "
            "or never flushed\n",
            path.c_str());
    return 1;
  }
  if (Status s = obs::ValidateChromeTraceJson(json); !s.ok()) {
    const size_t last = json.find_last_not_of(" \t\r\n");
    if (last == std::string::npos || json[last] != '}') {
      fprintf(stderr,
              "trace_lint: %s looks truncated (%zu bytes, no closing "
              "'}') — writer likely died mid-export; %s\n",
              path.c_str(), json.size(), s.ToString().c_str());
    } else {
      fprintf(stderr, "trace_lint: %s\n", s.ToString().c_str());
    }
    return 1;
  }

  // The streaming checker above validated structure and required event
  // fields; the DOM pass answers content questions (names, counters,
  // per-thread timestamp order).
  obs::JsonValue root;
  if (Status s = obs::ParseJson(json, &root); !s.ok()) {
    fprintf(stderr, "trace_lint: %s\n", s.ToString().c_str());
    return 1;
  }
  const obs::JsonValue* events =
      root.IsObject() ? root.Find("traceEvents") : &root;
  if (events == nullptr || !events->IsArray()) {
    fprintf(stderr, "trace_lint: no traceEvents array\n");
    return 1;
  }

  std::set<std::string> names;
  std::set<std::string> counter_names;
  std::set<double> tids;
  std::map<double, double> last_ts_by_tid;
  // Per-tid stack of open complete spans, as (end_ts, job id). The
  // export is time-sorted, so spans open in start order; an event that
  // starts before the top of its tid's stack ends is nested inside it.
  struct OpenSpan {
    double end_ts;
    double job;
    std::string name;
  };
  std::map<double, std::vector<OpenSpan>> open_by_tid;
  for (size_t i = 0; i < events->items.size(); ++i) {
    const obs::JsonValue& ev = events->items[i];
    const obs::JsonValue* name = ev.Find("name");
    const obs::JsonValue* ph = ev.Find("ph");
    const obs::JsonValue* ts = ev.Find("ts");
    const obs::JsonValue* tid = ev.Find("tid");
    if (name == nullptr || !name->IsString() || ph == nullptr ||
        !ph->IsString() || ts == nullptr || !ts->IsNumber() ||
        tid == nullptr || !tid->IsNumber()) {
      fprintf(stderr, "trace_lint: event %zu is missing name/ph/ts/tid\n",
              i);
      return 1;
    }
    names.insert(name->string_value);
    tids.insert(tid->number_value);
    const obs::JsonValue* ev_args = ev.Find("args");
    const obs::JsonValue* job_field =
        ev_args != nullptr && ev_args->IsObject() ? ev_args->Find("job")
                                                  : nullptr;
    const double job = job_field != nullptr && job_field->IsNumber()
                           ? job_field->number_value
                           : 0;
    for (const std::string& want : required_jobs) {
      if (name->string_value.find(want) == std::string::npos) continue;
      if (job_field == nullptr || !job_field->IsNumber()) {
        fprintf(stderr,
                "trace_lint: event \"%s\" (event %zu) matches "
                "--require-job \"%s\" but has no numeric args.job\n",
                name->string_value.c_str(), i, want.c_str());
        return 1;
      }
    }
    for (const std::string& want : required_trace_ids) {
      if (name->string_value.find(want) == std::string::npos) continue;
      const obs::JsonValue* trace_field =
          ev_args != nullptr && ev_args->IsObject()
              ? ev_args->Find("trace_id")
              : nullptr;
      if (trace_field == nullptr || !trace_field->IsNumber() ||
          trace_field->number_value == 0) {
        fprintf(stderr,
                "trace_lint: event \"%s\" (event %zu) matches "
                "--require-trace-id \"%s\" but has no nonzero numeric "
                "args.trace_id\n",
                name->string_value.c_str(), i, want.c_str());
        return 1;
      }
    }
    if (ph->string_value == "X") {
      const obs::JsonValue* dur = ev.Find("dur");
      const double end_ts =
          ts->number_value +
          (dur != nullptr && dur->IsNumber() ? dur->number_value : 0);
      std::vector<OpenSpan>& open = open_by_tid[tid->number_value];
      while (!open.empty() && open.back().end_ts <= ts->number_value) {
        open.pop_back();
      }
      if (!open.empty() && job != 0 && open.back().job != 0 &&
          open.back().job != job) {
        fprintf(stderr,
                "trace_lint: cross-job span nesting on tid %.0f: \"%s\" "
                "(job %.0f, event %zu) opened inside \"%s\" (job %.0f) — "
                "a chore ran without re-establishing its ScopedJobId\n",
                tid->number_value, name->string_value.c_str(), job, i,
                open.back().name.c_str(), open.back().job);
        return 1;
      }
      open.push_back(OpenSpan{end_ts, job, name->string_value});
    }
    if (ph->string_value == "C") {
      const obs::JsonValue* args = ev.Find("args");
      const obs::JsonValue* value =
          args != nullptr && args->IsObject() ? args->Find("value") : nullptr;
      if (value == nullptr || !value->IsNumber()) {
        fprintf(stderr,
                "trace_lint: counter event \"%s\" (event %zu) has no "
                "numeric args.value\n",
                name->string_value.c_str(), i);
        return 1;
      }
      counter_names.insert(name->string_value);
    }
    auto [it, inserted] =
        last_ts_by_tid.emplace(tid->number_value, ts->number_value);
    if (!inserted) {
      if (ts->number_value < it->second) {
        fprintf(stderr,
                "trace_lint: tid %.0f timestamps go backwards at event "
                "%zu (%.0f us after %.0f us) — export is not time-sorted\n",
                tid->number_value, i, ts->number_value, it->second);
        return 1;
      }
      it->second = ts->number_value;
    }
  }

  for (const std::string& want : required) {
    bool found = false;
    for (const std::string& name : names) {
      if (name.find(want) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      fprintf(stderr, "trace_lint: no event named like \"%s\"\n",
              want.c_str());
      return 1;
    }
  }
  for (const std::string& want : required_counters) {
    if (counter_names.count(want) == 0) {
      fprintf(stderr, "trace_lint: no counter event named \"%s\"\n",
              want.c_str());
      return 1;
    }
  }
  if (tids.size() < distinct_threads) {
    fprintf(stderr, "trace_lint: %zu distinct threads, wanted >= %zu\n",
            tids.size(), distinct_threads);
    return 1;
  }

  printf("trace_lint: %s ok (%zu events, %zu threads, %zu counters)\n",
         path.c_str(), events->items.size(), tids.size(),
         counter_names.size());
  return 0;
}
