// trace_merge: joins a client-side and a server-side Chrome trace (each
// produced by obs::TraceRecorder::ToChromeJson — e.g. sort_loadgen
// --trace and sort_serverd --trace) into one timeline, so a distributed
// job's client net.submit span and the server's net.ingest /
// net.sort_wait / net.stream_back spans line up in one viewer window.
//
//   ./trace_merge CLIENT_FILE SERVER_FILE -o OUT [--trace-id ID]
//
// Each recorder's timestamps are relative to its own first event, on
// its own host clock, so the raw values are not comparable. The HELLO
// handshake exchanges raw steady-clock readings (HelloFrame::now_us) in
// both directions and each side records a net.clock_sync event carrying
// args.local_raw_us (its own raw clock, sampled together with the
// event's ts) and args.remote_raw_us (the peer's reading from the
// frame). From one such event per file the merger recovers, per file,
//
//   epoch = local_raw_us - ts        // raw clock value at trace t=0
//
// and the NTP-style clock offset between the hosts (server minus
// client, symmetric-delay assumption — the client's HELLO observed
// server-side and the server's reply observed client-side bracket one
// round trip):
//
//   offset = ((S_obs - C_send) - (C_obs - S_send)) / 2
//
// where S_obs/C_send come from the server file's sync event and
// C_obs/S_send from the client file's. Every server event then maps
// onto the client timeline as
//
//   ts' = ts + server_epoch - offset - client_epoch
//
// after which the whole merged set is shifted so the earliest event
// lands at t=0. Client events keep pid 1; server events get pid 2 and
// tid + 1000 so the two processes' threads never collide. With
// --trace-id, only events tagged args.trace_id == ID (plus the
// clock-sync markers) survive — the single-job join; without it every
// event from both files is kept.
//
// The merged document is re-validated with obs::ValidateChromeTraceJson
// before it is written, so a bug here fails the CI smoke instead of
// producing a file only a browser can reject.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/json.h"
#include "obs/trace.h"

using namespace alphasort;

namespace {

// The sync-event name both net endpoints record (net/client.cc,
// net/server.cc).
constexpr const char* kClockSyncName = "net.clock_sync";

struct ClockSync {
  double ts = 0;         // trace-relative, this file's timeline
  double local_raw = 0;  // this process's raw clock at the same instant
  double remote_raw = 0; // the peer's raw clock from the HELLO frame
  bool found = false;
};

double NumberOr(const obs::JsonValue* v, double fallback) {
  return v != nullptr && v->IsNumber() ? v->number_value : fallback;
}

// First net.clock_sync event in the file; the clocks are steady, so any
// one pair pins the alignment and the earliest has the least queueing
// noise behind it.
ClockSync FindClockSync(const obs::JsonValue& events) {
  ClockSync sync;
  for (const obs::JsonValue& ev : events.items) {
    const obs::JsonValue* name = ev.Find("name");
    if (name == nullptr || !name->IsString() ||
        name->string_value != kClockSyncName) {
      continue;
    }
    const obs::JsonValue* args = ev.Find("args");
    if (args == nullptr || !args->IsObject()) continue;
    sync.ts = NumberOr(ev.Find("ts"), 0);
    sync.local_raw = NumberOr(args->Find("local_raw_us"), 0);
    sync.remote_raw = NumberOr(args->Find("remote_raw_us"), 0);
    sync.found = true;
    return sync;
  }
  return sync;
}

obs::JsonValue* FindMut(obs::JsonValue& obj, const char* key) {
  if (!obj.IsObject()) return nullptr;
  for (auto& [k, v] : obj.members) {
    if (k == key) return &v;
  }
  return nullptr;
}

// JSON numbers here are microseconds and 48-bit ids; obs::JsonNumber's
// %.12g would round the ids, so integral doubles (exact through 2^53)
// are re-emitted as integers.
std::string EmitNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return obs::JsonNumber(v);
}

void Serialize(const obs::JsonValue& v, std::string* out) {
  switch (v.type) {
    case obs::JsonValue::Type::kNull:
      *out += "null";
      break;
    case obs::JsonValue::Type::kBool:
      *out += v.bool_value ? "true" : "false";
      break;
    case obs::JsonValue::Type::kNumber:
      *out += EmitNumber(v.number_value);
      break;
    case obs::JsonValue::Type::kString:
      out->push_back('"');
      obs::AppendJsonEscaped(v.string_value, out);
      out->push_back('"');
      break;
    case obs::JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const obs::JsonValue& item : v.items) {
        if (!first) out->push_back(',');
        first = false;
        Serialize(item, out);
      }
      out->push_back(']');
      break;
    }
    case obs::JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, member] : v.members) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        obs::AppendJsonEscaped(k, out);
        *out += "\":";
        Serialize(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

struct TraceFile {
  obs::JsonValue root;
  obs::JsonValue* events = nullptr;  // the traceEvents array inside root
  ClockSync sync;
};

int LoadTrace(const char* role, const std::string& path, TraceFile* out) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fprintf(stderr, "trace_merge: cannot open %s trace %s\n", role,
            path.c_str());
    return 1;
  }
  std::string json;
  char buf[1 << 16];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, got);
  fclose(f);
  if (Status s = obs::ValidateChromeTraceJson(json); !s.ok()) {
    fprintf(stderr, "trace_merge: %s trace %s: %s\n", role, path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  if (Status s = obs::ParseJson(json, &out->root); !s.ok()) {
    fprintf(stderr, "trace_merge: %s trace %s: %s\n", role, path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  out->events = out->root.IsObject() ? FindMut(out->root, "traceEvents")
                                     : &out->root;
  if (out->events == nullptr || !out->events->IsArray()) {
    fprintf(stderr, "trace_merge: %s trace %s has no traceEvents array\n",
            role, path.c_str());
    return 1;
  }
  out->sync = FindClockSync(*out->events);
  if (!out->sync.found) {
    fprintf(stderr,
            "trace_merge: %s trace %s has no %s event — was the trace "
            "recorded around a v2 HELLO handshake?\n",
            role, path.c_str(), kClockSyncName);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string client_path, server_path, out_path;
  unsigned long long want_trace_id = 0;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--trace-id") == 0 && i + 1 < argc) {
      want_trace_id = strtoull(argv[++i], nullptr, 10);
    } else if (argv[i][0] != '-' && client_path.empty()) {
      client_path = argv[i];
    } else if (argv[i][0] != '-' && server_path.empty()) {
      server_path = argv[i];
    } else {
      fprintf(stderr,
              "usage: %s CLIENT_FILE SERVER_FILE -o OUT [--trace-id ID]\n",
              argv[0]);
      return 2;
    }
  }
  if (client_path.empty() || server_path.empty() || out_path.empty()) {
    fprintf(stderr,
            "usage: %s CLIENT_FILE SERVER_FILE -o OUT [--trace-id ID]\n",
            argv[0]);
    return 2;
  }

  TraceFile client, server;
  if (int rc = LoadTrace("client", client_path, &client); rc != 0) return rc;
  if (int rc = LoadTrace("server", server_path, &server); rc != 0) return rc;

  // Clock recovery. The client file's sync was recorded when the HELLO
  // reply arrived: local_raw = C_obs, remote_raw = S_send. The server
  // file's was recorded when the client's HELLO arrived: local_raw =
  // S_obs, remote_raw = C_send.
  const double client_epoch = client.sync.local_raw - client.sync.ts;
  const double server_epoch = server.sync.local_raw - server.sync.ts;
  const double offset =  // server clock minus client clock
      ((server.sync.local_raw - server.sync.remote_raw) -
       (client.sync.local_raw - client.sync.remote_raw)) /
      2.0;
  // Maps a server trace-relative ts onto the client's timeline.
  const double server_shift = server_epoch - offset - client_epoch;

  // Filter, retime, and re-home the events. Server threads move to pid
  // 2 / tid + 1000; both are plain numbers in the DOM.
  std::vector<obs::JsonValue> merged;
  size_t kept_client = 0, kept_server = 0;
  auto keep = [&](const obs::JsonValue& ev) {
    if (want_trace_id == 0) return true;
    const obs::JsonValue* name = ev.Find("name");
    if (name != nullptr && name->IsString() &&
        name->string_value == kClockSyncName) {
      return true;  // the alignment evidence always ships with the join
    }
    const obs::JsonValue* args = ev.Find("args");
    const obs::JsonValue* id =
        args != nullptr && args->IsObject() ? args->Find("trace_id") : nullptr;
    return id != nullptr && id->IsNumber() &&
           id->number_value == static_cast<double>(want_trace_id);
  };
  for (obs::JsonValue& ev : client.events->items) {
    if (!keep(ev)) continue;
    if (obs::JsonValue* pid = FindMut(ev, "pid")) pid->number_value = 1;
    merged.push_back(std::move(ev));
    ++kept_client;
  }
  for (obs::JsonValue& ev : server.events->items) {
    if (!keep(ev)) continue;
    if (obs::JsonValue* ts = FindMut(ev, "ts")) {
      ts->number_value += server_shift;
    }
    if (obs::JsonValue* pid = FindMut(ev, "pid")) pid->number_value = 2;
    if (obs::JsonValue* tid = FindMut(ev, "tid")) tid->number_value += 1000;
    merged.push_back(std::move(ev));
    ++kept_server;
  }
  if (kept_client == 0 || kept_server == 0) {
    fprintf(stderr,
            "trace_merge: nothing to merge (%zu client events, %zu "
            "server events kept%s)\n",
            kept_client, kept_server,
            want_trace_id != 0 ? " after --trace-id filter" : "");
    return 1;
  }

  // Server events that precede the client's trace start map to negative
  // ts (the server was up first). Shift the whole merged timeline so it
  // starts at zero — alignment is relative, the viewer origin is not.
  double min_ts = 0;
  bool first = true;
  for (const obs::JsonValue& ev : merged) {
    const double ts = NumberOr(ev.Find("ts"), 0);
    if (first || ts < min_ts) min_ts = ts;
    first = false;
  }
  for (obs::JsonValue& ev : merged) {
    if (obs::JsonValue* ts = FindMut(ev, "ts")) ts->number_value -= min_ts;
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const obs::JsonValue& a, const obs::JsonValue& b) {
                     return NumberOr(a.Find("ts"), 0) <
                            NumberOr(b.Find("ts"), 0);
                   });

  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i != 0) out += ",";
    Serialize(merged[i], &out);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  if (Status s = obs::ValidateChromeTraceJson(out); !s.ok()) {
    fprintf(stderr, "trace_merge: merged output is invalid: %s\n",
            s.ToString().c_str());
    return 1;
  }

  FILE* f = fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    fprintf(stderr, "trace_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  fwrite(out.data(), 1, out.size(), f);
  fclose(f);

  printf(
      "trace_merge: %s ok (%zu client + %zu server events, clock offset "
      "%+.0f us)\n",
      out_path.c_str(), kept_client, kept_server, offset);
  return 0;
}
