// sort_serverd: the networked sort service daemon (docs/net.md).
//
//   ./sort_serverd [--port P] [--port-file FILE] [--mem]
//                  [--data-root DIR] [--budget-mb MB] [--running K]
//                  [--queued N] [--workers K] [--max-conns N]
//                  [--quota-mb MB] [--quota-refill-mbps MB]
//                  [--run-seconds S] [--expo FILE] [--log-jsonl FILE]
//                  [--trace FILE] [--slow-ms MS]
//
// Binds a NetServer (src/net/server.h) in front of a SortService and
// serves until SIGINT/SIGTERM (or --run-seconds, for scripted runs).
// --port 0 picks an ephemeral port; --port-file publishes the bound
// port for scripts that start the daemon in the background (the CI net
// smoke does exactly that). --mem stages output and scratch in an
// in-memory Env so the smoke exercises the whole wire path without
// touching disk (input never touches storage on any path).
//
// --expo FILE rewrites the Prometheus-style exposition once a second
// while serving (net.* alongside svc.*); --log-jsonl FILE captures the
// structured log (svc.conn.* events) for log_lint. --trace FILE exports
// the server-side Chrome trace (net.ingest / net.sort_wait /
// net.stream_back spans, net.clock_sync markers) on exit, the server
// half of an examples/trace_merge join. --slow-ms MS makes any job
// whose end-to-end time reaches MS milliseconds emit a svc.job.slow
// warning with its full per-stage breakdown (0 = off).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/table.h"
#include "io/env.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/trace.h"

using namespace alphasort;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

struct DaemonConfig {
  int port = 0;
  std::string port_file;
  bool mem = false;
  std::string data_root = "net_spool";
  uint64_t budget_mb = 64;
  int running = 2;
  int queued = 64;
  int workers = 2;
  int max_conns = 256;
  uint64_t quota_mb = 64;
  uint64_t quota_refill_mbps = 32;
  double run_seconds = 0;  // 0 = until signalled
  std::string expo_path;
  std::string log_jsonl_path;
  std::string trace_path;
  uint64_t slow_ms = 0;  // 0 = no slow-job warnings
};

bool WriteTextFile(const std::string& path, const std::string& text) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = fwrite(text.data(), 1, text.size(), f) == text.size();
  fclose(f);
  return ok;
}

int RunDaemon(const DaemonConfig& cfg) {
  obs::TraceRecorder recorder;
  if (!cfg.trace_path.empty()) recorder.Install();
  std::unique_ptr<obs::JsonlFileLogSink> log_sink;
  if (!cfg.log_jsonl_path.empty()) {
    log_sink = std::make_unique<obs::JsonlFileLogSink>(cfg.log_jsonl_path);
    if (!log_sink->ok()) {
      fprintf(stderr, "cannot open log sink %s\n",
              cfg.log_jsonl_path.c_str());
      return 1;
    }
    obs::Logger::Global()->AddSink(log_sink.get());
  }
  struct SinkRemover {
    obs::LogSink* sink;
    ~SinkRemover() {
      if (sink != nullptr) obs::Logger::Global()->RemoveSink(sink);
    }
  } sink_remover{log_sink.get()};

  std::unique_ptr<Env> mem_env;
  Env* env = nullptr;
  if (cfg.mem) {
    mem_env = NewMemEnv();
    env = mem_env.get();
  } else {
    env = GetPosixEnv();
  }

  net::NetServerOptions nopts;
  nopts.port = cfg.port;
  nopts.max_conns = cfg.max_conns;
  nopts.data_root = cfg.data_root;
  nopts.service.memory_budget = cfg.budget_mb << 20;
  nopts.service.max_running = cfg.running;
  nopts.service.max_queued = cfg.queued;
  nopts.service.num_workers = cfg.workers;
  nopts.quota.capacity_bytes = cfg.quota_mb << 20;
  nopts.quota.refill_bytes_per_s = cfg.quota_refill_mbps << 20;
  nopts.job_defaults.io_chunk_bytes = 64 * 1024;
  nopts.job_defaults.run_size_records = 10000;
  nopts.job_defaults.memory_budget = 16 << 20;
  nopts.slow_job_threshold_us = cfg.slow_ms * 1000;

  net::NetServer server(env, nopts);
  if (Status s = server.Start(); !s.ok()) {
    fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("serving on port %d (budget %llu MB, max %d conns, quota %llu MB "
         "per tenant)\n",
         server.port(), static_cast<unsigned long long>(cfg.budget_mb),
         cfg.max_conns, static_cast<unsigned long long>(cfg.quota_mb));
  fflush(stdout);
  if (!cfg.port_file.empty() &&
      !WriteTextFile(cfg.port_file, StrFormat("%d\n", server.port()))) {
    fprintf(stderr, "cannot write port file %s\n", cfg.port_file.c_str());
    return 1;
  }

  signal(SIGINT, HandleSignal);
  signal(SIGTERM, HandleSignal);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(cfg.run_seconds);
  while (!g_stop.load()) {
    if (cfg.run_seconds > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (!cfg.expo_path.empty()) {
      WriteTextFile(cfg.expo_path, obs::RenderExposition());
    }
  }

  server.Stop();
  const net::NetServerStats stats = server.stats();
  printf("served %llu conns (%llu rejected), %llu jobs ok, %llu failed, "
         "%llu quota-rejected, %llu protocol errors\n",
         static_cast<unsigned long long>(stats.conns_accepted),
         static_cast<unsigned long long>(stats.conns_rejected),
         static_cast<unsigned long long>(stats.jobs_completed),
         static_cast<unsigned long long>(stats.jobs_failed),
         static_cast<unsigned long long>(stats.quota_rejected),
         static_cast<unsigned long long>(stats.protocol_errors));
  // Leak gate: with every connection drained, no staged output files
  // (and for the in-memory env, no scratch spill files either) may
  // remain under the data root. The "/c" prefix matches the
  // per-connection output naming and, on a real filesystem, skips the
  // scratch directory entry.
  std::vector<std::string> stray;
  (void)env->ListFiles(cfg.data_root + "/c", &stray);
  if (cfg.mem) {
    (void)env->ListFiles(cfg.data_root + "/scratch/", &stray);
  }
  if (!stray.empty()) {
    fprintf(stderr, "FAIL: %zu data file(s) leaked, first: %s\n",
            stray.size(), stray[0].c_str());
    return 1;
  }
  if (!cfg.expo_path.empty() &&
      !WriteTextFile(cfg.expo_path, obs::RenderExposition())) {
    fprintf(stderr, "cannot write exposition to %s\n", cfg.expo_path.c_str());
    return 1;
  }
  if (!cfg.trace_path.empty()) {
    obs::TraceRecorder::Uninstall();
    if (!WriteTextFile(cfg.trace_path, recorder.ToChromeJson())) {
      fprintf(stderr, "cannot write trace to %s\n", cfg.trace_path.c_str());
      return 1;
    }
    printf("trace: %s (%zu events, %llu dropped)\n", cfg.trace_path.c_str(),
           recorder.size(),
           static_cast<unsigned long long>(recorder.dropped()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      cfg.port = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) {
      cfg.port_file = argv[++i];
    } else if (strcmp(argv[i], "--mem") == 0) {
      cfg.mem = true;
    } else if (strcmp(argv[i], "--data-root") == 0 && i + 1 < argc) {
      cfg.data_root = argv[++i];
    } else if (strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      cfg.budget_mb = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--running") == 0 && i + 1 < argc) {
      cfg.running = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--queued") == 0 && i + 1 < argc) {
      cfg.queued = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--max-conns") == 0 && i + 1 < argc) {
      cfg.max_conns = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--quota-mb") == 0 && i + 1 < argc) {
      cfg.quota_mb = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--quota-refill-mbps") == 0 && i + 1 < argc) {
      cfg.quota_refill_mbps = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--run-seconds") == 0 && i + 1 < argc) {
      cfg.run_seconds = atof(argv[++i]);
    } else if (strcmp(argv[i], "--expo") == 0 && i + 1 < argc) {
      cfg.expo_path = argv[++i];
    } else if (strcmp(argv[i], "--log-jsonl") == 0 && i + 1 < argc) {
      cfg.log_jsonl_path = argv[++i];
    } else if (strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      cfg.trace_path = argv[++i];
    } else if (strcmp(argv[i], "--slow-ms") == 0 && i + 1 < argc) {
      cfg.slow_ms = strtoull(argv[++i], nullptr, 10);
    } else {
      fprintf(stderr,
              "usage: %s [--port P] [--port-file FILE] [--mem] "
              "[--data-root DIR] [--budget-mb MB] [--running K] "
              "[--queued N] [--workers K] [--max-conns N] [--quota-mb MB] "
              "[--quota-refill-mbps MB] [--run-seconds S] [--expo FILE] "
              "[--log-jsonl FILE] [--trace FILE] [--slow-ms MS]\n",
              argv[0]);
      return 2;
    }
  }
  return RunDaemon(cfg);
}
