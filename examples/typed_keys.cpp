// Typed-key sorting via key conditioning (paper §4): records carrying a
// (double price DESC, int64 id ASC) composite key are conditioned into
// memcmp-able byte keys, then sorted with the standard cache-conscious
// kernels. Demonstrates the "key conditioning... floating point numbers,
// signed integers" workflow the paper describes for industrial sorts.
//
//   ./typed_keys

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "record/key_conditioner.h"
#include "sort/quicksort.h"

using namespace alphasort;

namespace {

// A little "trade" record: double price, int64 trade id, 16-byte payload.
constexpr size_t kRecordSize = 32;
constexpr RecordFormat kTradeFormat(kRecordSize, 16, 0);

void MakeTrade(double price, int64_t id, char* out) {
  memcpy(out, &price, 8);
  memcpy(out + 8, &id, 8);
  snprintf(out + 16, 16, "trade-%lld", static_cast<long long>(id));
}

}  // namespace

int main() {
  // Generate trades with random prices (some negative: rebates).
  const size_t n = 12;
  Random rng(7);
  std::vector<char> block(n * kRecordSize);
  for (size_t i = 0; i < n; ++i) {
    const double price = (rng.NextDouble() - 0.3) * 100.0;
    MakeTrade(price, static_cast<int64_t>(i), block.data() + i * kRecordSize);
  }

  // Sort by price descending, then id ascending.
  KeySchema schema({{KeyField::Type::kFloat64, 0, 8, /*descending=*/true,
                     nullptr},
                    {KeyField::Type::kInt64, 8, 8, false, nullptr}});
  auto conditioned = ConditionRecords(schema, kTradeFormat, block.data(), n);
  if (!conditioned.ok()) {
    fprintf(stderr, "%s\n", conditioned.status().ToString().c_str());
    return 1;
  }
  const RecordFormat& cfmt = conditioned.value().format;

  std::vector<PrefixEntry> entries(n);
  BuildPrefixEntryArray(cfmt, conditioned.value().data.data(), n,
                        entries.data());
  SortStats stats;
  SortPrefixEntryArray(cfmt, entries.data(), n, &stats);

  printf("trades by (price DESC, id ASC):\n");
  printf("%10s  %6s  %s\n", "price", "id", "payload");
  for (size_t i = 0; i < n; ++i) {
    // The original record sits after the conditioned key.
    const char* original = entries[i].record + cfmt.key_size;
    double price;
    int64_t id;
    memcpy(&price, original, 8);
    memcpy(&id, original + 8, 8);
    printf("%10.2f  %6" PRId64 "  %s\n", price, id, original + 16);
  }
  printf("\n(%llu compares; every one resolved on conditioned bytes —\n"
         "no typed comparison logic in the sort hot path)\n",
         static_cast<unsigned long long>(stats.compares));
  return 0;
}
