// expo_lint: validates observability exposition artifacts.
//
//   ./expo_lint FILE [--require NAME]... [--require-nonzero NAME]...
//   ./expo_lint FILE --flight
//
// Default mode checks FILE against the Prometheus text-format grammar
// (obs::ValidateExpositionText), then that every --require NAME appears
// as a sample of that exact metric name and every --require-nonzero
// NAME has at least one sample with a nonzero value.
//
// --flight validates a flight-recorder JSONL capture instead
// (obs::ValidateFlightRecorderJsonl) and prints each job's last-known
// phase and fraction — the "what was the wedged job doing" replay. Exits
// nonzero on any malformed line.
//
// Used by scripts/ci.sh to round-trip a live SortService scrape through
// the format validator.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/exposition.h"
#include "obs/json.h"

using namespace alphasort;

namespace {

bool ReadFileToString(const std::string& path, std::string* out) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, got);
  fclose(f);
  return true;
}

// Metric name of one exposition sample line (empty for comments/blank).
std::string SampleName(const std::string& line) {
  if (line.empty() || line[0] == '#') return "";
  const size_t end = line.find_first_of("{ ");
  return end == std::string::npos ? "" : line.substr(0, end);
}

int LintFlight(const std::string& path, const std::string& content) {
  if (Status s = obs::ValidateFlightRecorderJsonl(content); !s.ok()) {
    fprintf(stderr, "expo_lint: %s: %s\n", path.c_str(),
            s.ToString().c_str());
    return 1;
  }
  // Replay: the last record mentioning each job wins. A wedged or
  // crashed run leaves its jobs' final rows here.
  struct LastSeen {
    std::string phase;
    double fraction = 0;
    double ts_ms = 0;
  };
  std::map<uint64_t, LastSeen> last;
  size_t records = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = content.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++records;
    obs::JsonValue root;
    if (!obs::ParseJson(line, &root).ok()) continue;  // validated above
    const obs::JsonValue* ts = root.Find("ts_ms");
    const obs::JsonValue* jobs = root.Find("jobs");
    if (jobs == nullptr || !jobs->IsArray()) continue;
    for (const obs::JsonValue& job : jobs->items) {
      const obs::JsonValue* id = job.Find("id");
      const obs::JsonValue* phase = job.Find("phase");
      const obs::JsonValue* fraction = job.Find("fraction");
      if (id == nullptr || !id->IsNumber()) continue;
      LastSeen& seen = last[static_cast<uint64_t>(id->number_value)];
      if (phase != nullptr && phase->IsString()) {
        seen.phase = phase->string_value;
      }
      if (fraction != nullptr && fraction->IsNumber()) {
        seen.fraction = fraction->number_value;
      }
      if (ts != nullptr && ts->IsNumber()) seen.ts_ms = ts->number_value;
    }
  }
  printf("expo_lint: %s ok (%zu flight records, %zu jobs seen)\n",
         path.c_str(), records, last.size());
  for (const auto& [id, seen] : last) {
    printf("  job %llu: last phase %s, fraction %.3f\n",
           static_cast<unsigned long long>(id),
           seen.phase.empty() ? "?" : seen.phase.c_str(), seen.fraction);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  std::vector<std::string> required_nonzero;
  bool flight = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--require-nonzero") == 0 && i + 1 < argc) {
      required_nonzero.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--flight") == 0) {
      flight = true;
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      fprintf(stderr,
              "usage: %s FILE [--require NAME]... "
              "[--require-nonzero NAME]... [--flight]\n",
              argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    fprintf(stderr, "expo_lint: no input file\n");
    return 2;
  }
  std::string content;
  if (!ReadFileToString(path, &content)) {
    fprintf(stderr, "expo_lint: cannot open %s\n", path.c_str());
    return 1;
  }
  if (content.empty()) {
    fprintf(stderr, "expo_lint: %s is empty (0 bytes)\n", path.c_str());
    return 1;
  }

  if (flight) return LintFlight(path, content);

  if (Status s = obs::ValidateExpositionText(content); !s.ok()) {
    fprintf(stderr, "expo_lint: %s: %s\n", path.c_str(),
            s.ToString().c_str());
    return 1;
  }

  // Per-metric sample inventory for the --require checks.
  std::map<std::string, bool> has_nonzero;  // name -> any sample != 0
  size_t samples = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string line = content.substr(start, end - start);
    start = end + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string name = SampleName(line);
    if (name.empty()) continue;
    ++samples;
    const size_t sp = line.find_last_of(' ');
    const double value =
        sp == std::string::npos ? 0 : strtod(line.c_str() + sp + 1, nullptr);
    bool& nz = has_nonzero[name];
    nz = nz || value != 0;
  }
  for (const std::string& want : required) {
    if (has_nonzero.find(want) == has_nonzero.end()) {
      fprintf(stderr, "expo_lint: no sample of metric \"%s\"\n",
              want.c_str());
      return 1;
    }
  }
  for (const std::string& want : required_nonzero) {
    auto it = has_nonzero.find(want);
    if (it == has_nonzero.end()) {
      fprintf(stderr, "expo_lint: no sample of metric \"%s\"\n",
              want.c_str());
      return 1;
    }
    if (!it->second) {
      fprintf(stderr,
              "expo_lint: metric \"%s\" present but every sample is 0\n",
              want.c_str());
      return 1;
    }
  }
  printf("expo_lint: %s ok (%zu samples, %zu metrics)\n", path.c_str(),
         samples, has_nonzero.size());
  return 0;
}
