// gen_records: standalone input generator in the spirit of the sort
// benchmark's gensort (the paper's §8 committee grew into
// sortbenchmark.org, whose entries use exactly this kind of tool).
// Writes fixed-width records with incompressible random keys.
//
//   ./gen_records --out PATH --records N [--record-size R] [--key-size K]
//                 [--seed S] [--dist uniform|sorted|reverse|constant|
//                             fewdistinct|sharedprefix|almostsorted]
//                 [--width W] [--stride BYTES]
//
// A PATH ending in .str produces a striped input of W members.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/datamation.h"

using namespace alphasort;

namespace {

bool ParseDistribution(const std::string& name, KeyDistribution* out) {
  if (name == "uniform") *out = KeyDistribution::kUniform;
  else if (name == "sorted") *out = KeyDistribution::kSorted;
  else if (name == "reverse") *out = KeyDistribution::kReverse;
  else if (name == "constant") *out = KeyDistribution::kConstant;
  else if (name == "fewdistinct") *out = KeyDistribution::kFewDistinct;
  else if (name == "sharedprefix") *out = KeyDistribution::kSharedPrefix;
  else if (name == "almostsorted") *out = KeyDistribution::kAlmostSorted;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  InputSpec spec;
  spec.num_records = 0;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = need("--out")) spec.path = v;
    else if (const char* v = need("--records")) spec.num_records = strtoull(v, nullptr, 10);
    else if (const char* v = need("--record-size")) spec.format.record_size = strtoul(v, nullptr, 10);
    else if (const char* v = need("--key-size")) spec.format.key_size = strtoul(v, nullptr, 10);
    else if (const char* v = need("--seed")) spec.seed = strtoull(v, nullptr, 10);
    else if (const char* v = need("--width")) spec.stripe_width = strtoul(v, nullptr, 10);
    else if (const char* v = need("--stride")) spec.stride_bytes = strtoull(v, nullptr, 10);
    else if (const char* v = need("--dist")) {
      if (!ParseDistribution(v, &spec.distribution)) {
        fprintf(stderr, "unknown distribution '%s'\n", v);
        return 2;
      }
    } else {
      fprintf(stderr,
              "usage: %s --out PATH --records N [--record-size R] "
              "[--key-size K] [--seed S] [--dist NAME] [--width W] "
              "[--stride BYTES]\n",
              argv[0]);
      return 2;
    }
  }
  if (spec.path.empty() || spec.num_records == 0) {
    fprintf(stderr, "--out and --records are required\n");
    return 2;
  }
  if (!spec.format.Valid()) {
    fprintf(stderr, "invalid record layout\n");
    return 2;
  }

  Status s = CreateInputFile(GetPosixEnv(), spec);
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("wrote %llu records (%.1f MB) to %s\n",
         static_cast<unsigned long long>(spec.num_records),
         spec.num_records * spec.format.record_size / 1e6,
         spec.path.c_str());
  return 0;
}
