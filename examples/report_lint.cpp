// report_lint: validates an AlphaSort report JSON file — either a
// SortReport (`asort --report`, `minute_sort --report`) or a BenchReport
// (bench_report / scripts/bench.sh).
//
//   ./report_lint FILE...
//
// The file's `kind` field selects the schema; exits 0 when every file
// carries its schema completely (see docs/observability.md for the
// field lists). Used by scripts/ci.sh to gate the report and bench
// smokes.

#include <cstdio>
#include <string>

#include "obs/json.h"
#include "obs/report.h"

using namespace alphasort;

namespace {

int LintOne(const char* path) {
  FILE* f = fopen(path, "rb");
  if (f == nullptr) {
    fprintf(stderr, "report_lint: cannot open %s\n", path);
    return 1;
  }
  std::string json;
  char buf[1 << 16];
  size_t got;
  while ((got = fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, got);
  fclose(f);

  if (json.empty()) {
    fprintf(stderr, "report_lint: %s is empty (0 bytes)\n", path);
    return 1;
  }
  obs::JsonValue root;
  if (Status s = obs::ParseJson(json, &root); !s.ok()) {
    fprintf(stderr, "report_lint: %s: %s\n", path, s.ToString().c_str());
    return 1;
  }
  const obs::JsonValue* kind =
      root.IsObject() ? root.Find("kind") : nullptr;
  if (kind == nullptr || !kind->IsString()) {
    fprintf(stderr, "report_lint: %s has no \"kind\" field\n", path);
    return 1;
  }

  Status s;
  if (kind->string_value == obs::SortReport::kKind) {
    s = obs::ValidateSortReportJson(json);
  } else if (kind->string_value == obs::BenchReport::kKind) {
    s = obs::ValidateBenchReportJson(json);
  } else {
    fprintf(stderr, "report_lint: %s: unknown kind \"%s\"\n", path,
            kind->string_value.c_str());
    return 1;
  }
  if (!s.ok()) {
    fprintf(stderr, "report_lint: %s: %s\n", path, s.ToString().c_str());
    return 1;
  }
  printf("report_lint: %s ok (%s)\n", path, kind->string_value.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    if (LintOne(argv[i]) != 0) rc = 1;
  }
  return rc;
}
