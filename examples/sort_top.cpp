// sort_top: a refresh-loop monitor for a running SortService, driven
// entirely off the scrapeable exposition (docs/observability.md).
//
//   ./sort_top [--jobs N] [--running K] [--records N] [--budget-mb MB]
//              [--job-budget-mb MB] [--workers K] [--interval-ms MS]
//              [--smoke]
//   ./sort_top --expo-file FILE [--interval-ms MS] [--watch-seconds S]
//
// Submits N concurrent Datamation jobs whose summed budgets oversubscribe
// the service budget, then repeatedly scrapes obs::RenderExposition() —
// the same text a Prometheus scraper would read — and renders each live
// job's phase, completion fraction, throughput, and ETA until every job
// finishes. The monitor deliberately consumes only the exposition text,
// not the SortJob handles, so it exercises the full metrics path:
// pipeline -> JobProgressTracker -> ProgressRegistry -> exposition.
// The header names the scrape source, so a pasted screenful says where
// its numbers came from: the in-process registry, or (--expo-file) the
// exposition file a sort_serverd --expo rewrites while serving — the
// remote-monitor shape, sort_top as a pure consumer of scrape text.
//
// Either source also renders the per-stage latency summary from the
// alphasort_net_job_{ingest,queue,sort,merge,stream,e2e}_us series
// (obs::JobTimeline histograms) whenever the scrape carries them.
//
// --smoke is the CI shape: 4 jobs over 2 runners, polled continuously.
// Exit is nonzero if any job fails, any job's observed fraction ever
// decreases between scrapes, no live progress was ever observed, or the
// terminal svc.job.<id>.permille gauges are not 1000.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "svc/sort_service.h"

using namespace alphasort;

namespace {

struct MonitorConfig {
  int jobs = 4;
  int running = 2;
  uint64_t records = 500000;
  uint64_t budget_mb = 32;
  uint64_t job_budget_mb = 16;
  int workers = 2;
  int interval_ms = 100;
  bool smoke = false;
  std::string expo_file;
  double watch_seconds = 0;  // --expo-file: 0 = one scrape and exit
};

// One job's row parsed back out of the exposition text.
struct JobRow {
  std::string phase;
  double fraction = 0;
  double bytes_per_s = 0;
  double eta_s = 0;
};

// Extracts the job="N" label value from a sample line, or -1.
long long JobLabel(const std::string& line) {
  const size_t at = line.find("job=\"");
  if (at == std::string::npos) return -1;
  return strtoll(line.c_str() + at + 5, nullptr, 10);
}

// Parses the per-job series out of one exposition scrape. The phase
// comes from the alphasort_job_info{job,phase} series, the numbers from
// their gauge samples.
std::map<uint64_t, JobRow> ParseJobs(const std::string& expo) {
  std::map<uint64_t, JobRow> rows;
  size_t start = 0;
  while (start < expo.size()) {
    size_t end = expo.find('\n', start);
    if (end == std::string::npos) end = expo.size();
    const std::string line = expo.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const long long job = JobLabel(line);
    if (job < 0) continue;
    const size_t sp = line.find_last_of(' ');
    const double value =
        sp == std::string::npos ? 0 : strtod(line.c_str() + sp + 1, nullptr);
    JobRow& row = rows[static_cast<uint64_t>(job)];
    if (line.compare(0, 22, "alphasort_job_fraction") == 0) {
      row.fraction = value;
    } else if (line.compare(0, 30, "alphasort_job_bytes_per_second") == 0) {
      row.bytes_per_s = value;
    } else if (line.compare(0, 25, "alphasort_job_eta_seconds") == 0) {
      row.eta_s = value;
    } else if (line.compare(0, 18, "alphasort_job_info") == 0) {
      const size_t at = line.find("phase=\"");
      if (at != std::string::npos) {
        const size_t close = line.find('"', at + 7);
        if (close != std::string::npos) {
          row.phase = line.substr(at + 7, close - at - 7);
        }
      }
    }
  }
  return rows;
}

// One net.job.* stage family's summary samples out of a scrape.
struct StageQuantiles {
  double p50 = 0, p95 = 0, p99 = 0;
  double count = 0;
  bool seen = false;
};

// Parses the alphasort_net_job_<stage>_us summary series (quantile
// samples and _count) out of one exposition scrape.
std::map<std::string, StageQuantiles> ParseStages(const std::string& expo) {
  static const char* kPrefix = "alphasort_net_job_";
  const size_t prefix_len = strlen(kPrefix);
  std::map<std::string, StageQuantiles> stages;
  size_t start = 0;
  while (start < expo.size()) {
    size_t end = expo.find('\n', start);
    if (end == std::string::npos) end = expo.size();
    const std::string line = expo.substr(start, end - start);
    start = end + 1;
    if (line.compare(0, prefix_len, kPrefix) != 0) continue;
    const size_t sp = line.find_last_of(' ');
    if (sp == std::string::npos) continue;
    const double value = strtod(line.c_str() + sp + 1, nullptr);
    const size_t q = line.find("{quantile=\"");
    if (q != std::string::npos) {
      StageQuantiles& s = stages[line.substr(prefix_len, q - prefix_len)];
      s.seen = true;
      const std::string quant = line.substr(q + 11, 4);
      if (quant.compare(0, 3, "0.5") == 0) s.p50 = value;
      if (quant == "0.95") s.p95 = value;
      if (quant == "0.99") s.p99 = value;
      continue;
    }
    const size_t count_at = line.rfind("_us_count ");
    if (count_at != std::string::npos && count_at > prefix_len) {
      StageQuantiles& s =
          stages[line.substr(prefix_len, count_at + 3 - prefix_len)];
      s.seen = true;
      s.count = value;
    }
  }
  return stages;
}

// Renders the per-stage latency table when the scrape carries any
// net.job.* stage series (it does once the first networked job
// completes server-side).
void PrintStages(const std::string& expo) {
  const std::map<std::string, StageQuantiles> stages = ParseStages(expo);
  if (stages.empty()) return;
  printf("net.job stage latency:  %-8s %10s %10s %10s %8s\n", "stage",
         "p50_us", "p95_us", "p99_us", "jobs");
  // Pipeline order, not map order — ingest feeds queue feeds sort...
  for (const char* name :
       {"ingest_us", "queue_us", "sort_us", "merge_us", "stream_us",
        "e2e_us"}) {
    auto it = stages.find(name);
    if (it == stages.end() || !it->second.seen) continue;
    printf("                        %-8.*s %10.0f %10.0f %10.0f %8.0f\n",
           int(strlen(name) - 3), name, it->second.p50, it->second.p95,
           it->second.p99, it->second.count);
  }
  printf("\n");
}

// --expo-file: the remote-monitor mode. No service is started; the
// scrape text is whatever the daemon last wrote, polled until
// --watch-seconds runs out (0 = a single scrape).
int RunFileScrape(const MonitorConfig& cfg) {
  printf("sort_top: scraping file %s every %dms\n\n",
         cfg.expo_file.c_str(), cfg.interval_ms);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(cfg.watch_seconds);
  for (;;) {
    FILE* f = fopen(cfg.expo_file.c_str(), "rb");
    if (f == nullptr) {
      fprintf(stderr, "sort_top: cannot read %s\n", cfg.expo_file.c_str());
      return 1;
    }
    std::string expo;
    char buf[1 << 16];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), f)) > 0) expo.append(buf, got);
    fclose(f);

    const std::map<uint64_t, JobRow> rows = ParseJobs(expo);
    for (const auto& [id, row] : rows) {
      printf("job %-3llu %-8s %5.1f%%  %7.1f MB/s  eta %5.2fs\n",
             static_cast<unsigned long long>(id),
             row.phase.empty() ? "?" : row.phase.c_str(),
             100 * row.fraction, row.bytes_per_s / 1e6, row.eta_s);
    }
    if (!rows.empty()) printf("\n");
    PrintStages(expo);
    if (std::chrono::steady_clock::now() >= deadline) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg.interval_ms));
  }
}

int RunMonitor(const MonitorConfig& cfg) {
  std::unique_ptr<Env> mem = NewMemEnv();
  const RecordFormat format = kDatamationFormat;

  std::vector<std::string> inputs(cfg.jobs), outputs(cfg.jobs);
  for (int j = 0; j < cfg.jobs; ++j) {
    inputs[j] = StrFormat("top_in_%02d.dat", j);
    outputs[j] = StrFormat("top_out_%02d.dat", j);
    InputSpec spec;
    spec.path = inputs[j];
    spec.format = format;
    spec.num_records = cfg.records;
    spec.seed = 7000 + static_cast<uint64_t>(j);
    if (Status s = CreateInputFile(mem.get(), spec); !s.ok()) {
      fprintf(stderr, "input %s: %s\n", inputs[j].c_str(),
              s.ToString().c_str());
      return 1;
    }
  }

  svc::SortServiceOptions sopts;
  sopts.memory_budget = cfg.budget_mb << 20;
  sopts.max_running = cfg.running;
  sopts.max_queued = cfg.jobs;
  sopts.num_workers = cfg.workers;
  svc::SortService service(mem.get(), sopts);

  std::vector<SortJob> jobs;
  for (int j = 0; j < cfg.jobs; ++j) {
    SortOptions opts;
    opts.input_path = inputs[j];
    opts.output_path = outputs[j];
    opts.format = format;
    opts.memory_budget = cfg.job_budget_mb << 20;
    opts.io_chunk_bytes = 64 * 1024;
    opts.run_size_records = 10000;
    opts.scratch_path = "top_scratch";
    Result<SortJob> job = service.Submit(opts);
    if (!job.ok()) {
      fprintf(stderr, "submit %d: %s\n", j,
              job.status().ToString().c_str());
      return 1;
    }
    jobs.push_back(std::move(job).value());
  }
  printf("sort_top: scraping in-process registry\n");
  printf("%d jobs over %d runner(s), %llu MB service budget\n\n",
         cfg.jobs, cfg.running,
         static_cast<unsigned long long>(cfg.budget_mb));

  // The refresh loop: scrape, parse, render, until every job is done.
  // Smoke mode polls continuously so even short-lived jobs are observed
  // mid-flight and checks that each job's fraction never regresses.
  std::map<uint64_t, double> last_fraction;
  std::map<uint64_t, size_t> observations;
  size_t live_observations = 0;
  int failures = 0;
  for (;;) {
    bool all_done = true;
    for (auto& job : jobs) {
      if (!job.TryWait()) all_done = false;
    }
    const std::string expo = obs::RenderExposition();
    const std::map<uint64_t, JobRow> rows = ParseJobs(expo);
    for (const auto& [id, row] : rows) {
      ++observations[id];
      ++live_observations;
      auto [it, inserted] = last_fraction.emplace(id, row.fraction);
      if (!inserted) {
        if (row.fraction + 1e-9 < it->second) {
          fprintf(stderr,
                  "FAIL: job %llu fraction regressed %.4f -> %.4f\n",
                  static_cast<unsigned long long>(id), it->second,
                  row.fraction);
          ++failures;
        }
        it->second = row.fraction;
      }
    }
    if (!cfg.smoke && !rows.empty()) {
      for (const auto& [id, row] : rows) {
        printf("job %-3llu %-8s %5.1f%%  %7.1f MB/s  eta %5.2fs\n",
               static_cast<unsigned long long>(id),
               row.phase.empty() ? "?" : row.phase.c_str(),
               100 * row.fraction, row.bytes_per_s / 1e6, row.eta_s);
      }
      printf("\n");
      PrintStages(expo);
    }
    if (all_done || failures > 0) break;
    if (!cfg.smoke) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(cfg.interval_ms));
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }

  for (int j = 0; j < cfg.jobs; ++j) {
    const SortResult& r = jobs[j].Wait();
    if (!r.status.ok()) {
      fprintf(stderr, "FAIL: job %llu: %s\n",
              static_cast<unsigned long long>(jobs[j].id()),
              r.status.ToString().c_str());
      ++failures;
      continue;
    }
    if (Status v =
            ValidateSortedFile(mem.get(), inputs[j], outputs[j], format);
        !v.ok()) {
      fprintf(stderr, "FAIL: job %llu output invalid: %s\n",
              static_cast<unsigned long long>(jobs[j].id()),
              v.ToString().c_str());
      ++failures;
    }
    printf("job %llu done (%.1f MB in %.2fs)%s\n",
           static_cast<unsigned long long>(jobs[j].id()),
           r.metrics.bytes_out / 1e6, r.metrics.total_s,
           jobs[j].down_negotiated() ? " [down-negotiated]" : "");
  }

  // Terminal state through the registry: completed jobs leave their
  // svc.job.<id>.permille gauge at 1000 even after they unregister from
  // the live-progress list.
  const obs::RegistrySnapshot reg =
      obs::MetricsRegistry::Global()->Snapshot();
  for (auto& job : jobs) {
    const std::string gauge = StrFormat(
        "svc.job.%llu.permille",
        static_cast<unsigned long long>(job.id()));
    auto it = reg.gauges.find(gauge);
    if (it == reg.gauges.end() || it->second != 1000) {
      fprintf(stderr, "FAIL: gauge %s is %lld, wanted 1000\n",
              gauge.c_str(),
              it == reg.gauges.end()
                  ? -1ll
                  : static_cast<long long>(it->second));
      ++failures;
    }
  }
  if (cfg.smoke && live_observations == 0) {
    fprintf(stderr,
            "FAIL: no live job progress was ever observed in the "
            "exposition\n");
    ++failures;
  }
  printf("\n%zu live scrape observations across %zu jobs\n",
         live_observations, observations.size());
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  MonitorConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cfg.jobs = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--running") == 0 && i + 1 < argc) {
      cfg.running = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      cfg.records = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      cfg.budget_mb = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--job-budget-mb") == 0 && i + 1 < argc) {
      cfg.job_budget_mb = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      cfg.interval_ms = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (strcmp(argv[i], "--expo-file") == 0 && i + 1 < argc) {
      cfg.expo_file = argv[++i];
    } else if (strcmp(argv[i], "--watch-seconds") == 0 && i + 1 < argc) {
      cfg.watch_seconds = atof(argv[++i]);
    } else {
      fprintf(stderr,
              "usage: %s [--jobs N] [--running K] [--records N] "
              "[--budget-mb MB] [--job-budget-mb MB] [--workers K] "
              "[--interval-ms MS] [--smoke] | "
              "--expo-file FILE [--interval-ms MS] [--watch-seconds S]\n",
              argv[0]);
      return 2;
    }
  }
  if (!cfg.expo_file.empty()) return RunFileScrape(cfg);
  if (cfg.smoke) {
    cfg.jobs = 4;
    cfg.running = 2;
    cfg.records = 300000;
    cfg.budget_mb = 32;
    cfg.job_budget_mb = 16;
  }
  return RunMonitor(cfg);
}
