// fault_campaign: the fault-tolerance smoke gate scripts/ci.sh runs.
//
//   ./fault_campaign --mem [--seeds N] [--seed BASE] [--records N]
//                    [--verbose] [--flight FILE]
//
// Runs N seeded sorts, each against a fresh in-memory filesystem with a
// randomized fault plan (transient/permanent failures, short reads,
// partial writes, silent scratch corruption — see
// docs/fault_tolerance.md), and classifies every trial. Exits non-zero
// if any trial is incorrect: wrong output under an OK status, or leaked
// scratch files. Clean errors are expected and fine — that is what
// "fail, don't lie" means.
//
// --flight FILE runs an obs::FlightRecorder across the whole campaign:
// every trial's sort registers live progress, so the JSONL capture
// replays which phase each job was in as faults landed — the
// post-mortem for a wedged or crashed trial (expo_lint --flight).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/fault_campaign.h"
#include "obs/exposition.h"

using namespace alphasort;

int main(int argc, char** argv) {
  CampaignConfig config;
  config.trials = 64;
  bool mem = false;
  std::string flight_path;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--mem") == 0) {
      mem = true;
    } else if (strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      config.trials = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.base_seed = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      config.max_records = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--verbose") == 0) {
      config.verbose = true;
    } else if (strcmp(argv[i], "--flight") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    } else {
      fprintf(stderr,
              "usage: %s --mem [--seeds N] [--seed BASE] [--records N] "
              "[--verbose] [--flight FILE]\n",
              argv[0]);
      return 2;
    }
  }
  if (!mem) {
    fprintf(stderr,
            "fault_campaign: only --mem is supported (each trial runs "
            "against a fresh in-memory filesystem)\n");
    return 2;
  }
  if (config.trials <= 0 || config.max_records < 300) {
    fprintf(stderr,
            "fault_campaign: --seeds must be positive and --records at "
            "least 300\n");
    return 2;
  }

  obs::FlightRecorder::Options fr_opts;
  fr_opts.path = flight_path;
  // Trials are short, so tick fast enough to catch each one mid-phase.
  fr_opts.interval_s = 0.005;
  obs::FlightRecorder flight(fr_opts);
  if (!flight_path.empty()) {
    if (Status s = flight.Start(); !s.ok()) {
      fprintf(stderr, "fault_campaign: cannot start flight recorder: %s\n",
              s.ToString().c_str());
      return 2;
    }
  }

  const CampaignReport report = RunFaultCampaign(config);
  flight.Stop();
  printf("%s", report.ToString().c_str());
  if (report.incorrect > 0) {
    fprintf(stderr, "fault_campaign: %d INCORRECT trial(s)\n",
            report.incorrect);
    return 1;
  }
  return 0;
}
