// fault_campaign: the fault-tolerance smoke gate scripts/ci.sh runs.
//
//   ./fault_campaign --mem [--seeds N] [--seed BASE] [--records N]
//                    [--verbose]
//
// Runs N seeded sorts, each against a fresh in-memory filesystem with a
// randomized fault plan (transient/permanent failures, short reads,
// partial writes, silent scratch corruption — see
// docs/fault_tolerance.md), and classifies every trial. Exits non-zero
// if any trial is incorrect: wrong output under an OK status, or leaked
// scratch files. Clean errors are expected and fine — that is what
// "fail, don't lie" means.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "benchlib/fault_campaign.h"

using namespace alphasort;

int main(int argc, char** argv) {
  CampaignConfig config;
  config.trials = 64;
  bool mem = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--mem") == 0) {
      mem = true;
    } else if (strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      config.trials = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      config.base_seed = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      config.max_records = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--verbose") == 0) {
      config.verbose = true;
    } else {
      fprintf(stderr,
              "usage: %s --mem [--seeds N] [--seed BASE] [--records N] "
              "[--verbose]\n",
              argv[0]);
      return 2;
    }
  }
  if (!mem) {
    fprintf(stderr,
            "fault_campaign: only --mem is supported (each trial runs "
            "against a fresh in-memory filesystem)\n");
    return 2;
  }
  if (config.trials <= 0 || config.max_records < 300) {
    fprintf(stderr,
            "fault_campaign: --seeds must be positive and --records at "
            "least 300\n");
    return 2;
  }

  const CampaignReport report = RunFaultCampaign(config);
  printf("%s", report.ToString().c_str());
  if (report.incorrect > 0) {
    fprintf(stderr, "fault_campaign: %d INCORRECT trial(s)\n",
            report.incorrect);
    return 1;
  }
  return 0;
}
