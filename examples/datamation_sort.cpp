// The Datamation benchmark (paper §2) on real files: generates a
// disk-resident input of 100-byte records, runs AlphaSort through the
// seven timed steps, validates the output, and reports the elapsed time
// plus the benchmark's price metric for a given system price.
//
//   ./datamation_sort [--records N] [--width W] [--workers K]
//                     [--dir PATH] [--price DOLLARS] [--keep]
//
// Defaults sort one million records (the benchmark's size, 100 MB) in
// /tmp with an 8-wide stripe.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "benchlib/datamation.h"
#include "core/alphasort.h"
#include "core/sort_metrics.h"
#include "core/sorter.h"
#include "io/stripe.h"
#include "sim/cost_model.h"

using namespace alphasort;

namespace {

struct Args {
  uint64_t records = 1000000;
  size_t width = 8;
  int workers = 0;
  std::string dir = "/tmp/alphasort_datamation";
  double price = 0;  // 0 = skip the $/sort report
  bool keep = false;
};

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = need("--records")) {
      args->records = strtoull(v, nullptr, 10);
    } else if (const char* v = need("--width")) {
      args->width = strtoul(v, nullptr, 10);
    } else if (const char* v = need("--workers")) {
      args->workers = atoi(v);
    } else if (const char* v = need("--dir")) {
      args->dir = v;
    } else if (const char* v = need("--price")) {
      args->price = atof(v);
    } else if (strcmp(argv[i], "--keep") == 0) {
      args->keep = true;
    } else {
      fprintf(stderr, "usage: %s [--records N] [--width W] [--workers K] "
                      "[--dir PATH] [--price DOLLARS] [--keep]\n",
              argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 2;

  Env* env = GetPosixEnv();
  const std::string in_path = args.dir + "_in.str";
  const std::string out_path = args.dir + "_out.str";

  printf("Datamation sort: %llu records (%.1f MB), %zu-wide stripe, "
         "%d workers\n",
         static_cast<unsigned long long>(args.records),
         args.records * 100 / 1e6, args.width, args.workers);

  // Input generation is not part of the timed benchmark.
  printf("generating input...\n");
  InputSpec spec;
  spec.path = in_path;
  spec.num_records = args.records;
  spec.stripe_width = args.width;
  if (Status s = CreateInputFile(env, spec); !s.ok()) {
    fprintf(stderr, "create input: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = CreateOutputDefinition(env, out_path, args.width, 65536);
      !s.ok()) {
    fprintf(stderr, "create output def: %s\n", s.ToString().c_str());
    return 1;
  }

  // The timed steps: open, read, sort, write, close (launch/terminate are
  // this process's, included in metrics.total via startup/close).
  SortOptions opts;
  opts.input_path = in_path;
  opts.output_path = out_path;
  opts.num_workers = args.workers;
  opts.io_threads = static_cast<int>(args.width);
  Sorter::Resources resources;
  resources.num_workers = opts.num_workers;
  resources.io_threads = opts.io_threads;
  Sorter sorter(env, resources);
  const SortResult& result = sorter.Start(opts).Wait();
  if (!result.status.ok()) {
    fprintf(stderr, "sort: %s\n", result.status.ToString().c_str());
    return 1;
  }
  const SortMetrics& metrics = result.metrics;
  printf("\n%s\n", metrics.ToString().c_str());

  if (args.price > 0) {
    printf("$/sort at a %.0f$ system price (5-year proration): %.4f$\n",
           args.price,
           cost::DatamationDollarsPerSort(args.price, metrics.total_s));
  }

  printf("validating...\n");
  Status v = ValidateSortedFile(env, in_path, out_path, kDatamationFormat);
  printf("validation: %s\n", v.ToString().c_str());

  if (!args.keep) {
    StripeFile::Remove(env, in_path);
    StripeFile::Remove(env, out_path);
  }
  return v.ok() ? 0 : 1;
}
