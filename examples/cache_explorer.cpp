// Cache explorer: run the sort kernels under the cache simulator with a
// configurable hierarchy and see misses per record — the tool behind the
// paper's Figure 4 analysis, exposed for experimentation.
//
//   ./cache_explorer [--records N] [--dcache-kb D] [--bcache-kb B]
//                    [--line BYTES] [--tournament W] [--run R]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/table.h"
#include "record/generator.h"
#include "sim/cache_sim.h"
#include "sort/merger.h"
#include "sort/quicksort.h"
#include "sort/replacement_selection.h"

using namespace alphasort;

int main(int argc, char** argv) {
  size_t records = 100000;
  size_t dcache_kb = 8;
  size_t bcache_kb = 256;
  size_t line = 32;
  size_t tournament = 16384;
  size_t run = 4096;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = need("--records")) records = strtoul(v, nullptr, 10);
    else if (const char* v = need("--dcache-kb")) dcache_kb = strtoul(v, nullptr, 10);
    else if (const char* v = need("--bcache-kb")) bcache_kb = strtoul(v, nullptr, 10);
    else if (const char* v = need("--line")) line = strtoul(v, nullptr, 10);
    else if (const char* v = need("--tournament")) tournament = strtoul(v, nullptr, 10);
    else if (const char* v = need("--run")) run = strtoul(v, nullptr, 10);
    else {
      fprintf(stderr,
              "usage: %s [--records N] [--dcache-kb D] [--bcache-kb B] "
              "[--line BYTES] [--tournament W] [--run R]\n",
              argv[0]);
      return 2;
    }
  }

  const CacheConfig d{dcache_kb * 1024, line, 1};
  const CacheConfig b{bcache_kb * 1024, line, 1};
  printf("cache explorer: D=%zu KB, B=%zu KB, %zu B lines, %zu records\n"
         "tournament W=%zu, QuickSort run=%zu\n\n",
         dcache_kb, bcache_kb, line, records, tournament, run);

  RecordGenerator gen(kDatamationFormat, 1);
  const auto block = gen.Generate(KeyDistribution::kUniform, records);

  TextTable table({"Kernel", "refs/rec", "D-miss rate", "mem refs/rec",
                   "stall cyc/rec"});
  auto report = [&](const char* name, const CacheSim::Stats& s) {
    table.AddRow({name, StrFormat("%.1f", double(s.accesses) / records),
                  StrFormat("%.1f%%", 100 * s.DcacheMissRate()),
                  StrFormat("%.3f", double(s.memory_accesses) / records),
                  StrFormat("%.1f", double(s.StallCycles()) / records)});
  };

  {
    CacheSim sim(d, b);
    ReplacementSelection<CacheSim> rs(
        kDatamationFormat, tournament, [](size_t, const char*) {},
        TreeLayout::kFlat, &sim);
    for (size_t i = 0; i < records; ++i) rs.Add(block.data() + i * 100);
    rs.Finish();
    report("replacement-selection (flat)", sim.stats());
  }
  {
    CacheSim sim(d, b);
    ReplacementSelection<CacheSim> rs(
        kDatamationFormat, tournament, [](size_t, const char*) {},
        TreeLayout::kClustered, &sim);
    for (size_t i = 0; i < records; ++i) rs.Add(block.data() + i * 100);
    rs.Finish();
    report("replacement-selection (clustered)", sim.stats());
  }
  std::vector<PrefixEntry> entries(records);
  {
    CacheSim sim(d, b);
    BuildPrefixEntryArray(kDatamationFormat, block.data(), records,
                          entries.data());
    SortStats stats;
    for (size_t start = 0; start < records; start += run) {
      QuickSortPrefixEntries(kDatamationFormat, entries.data() + start,
                             std::min(run, records - start), &stats, &sim);
    }
    report("QuickSort key-prefix runs", sim.stats());
  }
  {
    CacheSim sim(d, b);
    std::vector<EntryRun> runs;
    for (size_t start = 0; start < records; start += run) {
      const size_t len = std::min(run, records - start);
      runs.push_back(
          EntryRun{entries.data() + start, entries.data() + start + len});
    }
    RunMerger<CacheSim> merger(kDatamationFormat, runs, TreeLayout::kFlat,
                               &sim);
    std::vector<const char*> ptrs(records);
    const size_t got = merger.NextBatch(ptrs.data(), records);
    std::vector<char> out(records * 100);
    GatherRecords(kDatamationFormat, ptrs.data(), got, out.data(), &sim);
    report("merge + gather", sim.stats());
  }
  table.Print();

  printf(
      "\nTry: --tournament 1024 (fits D-cache) vs --tournament 65536\n"
      "(thrashes B-cache); --run 1024 vs --run %zu; --dcache-kb 64 to see\n"
      "a modern L1.\n",
      records);
  return 0;
}
