// Quickstart: generate a small Datamation-style input, sort it with
// AlphaSort, and verify the output is a sorted permutation — all against
// an in-memory filesystem, so it runs anywhere with no setup.
//
//   ./quickstart

#include <cstdio>

#include "benchlib/datamation.h"
#include "core/alphasort.h"

using namespace alphasort;

int main() {
  auto env = NewMemEnv();

  // 1. Create a 10 MB input: 100,000 records of 100 bytes, 10-byte random
  //    keys (the Datamation format), striped over 4 member files.
  InputSpec spec;
  spec.path = "input.str";
  spec.num_records = 100000;
  spec.stripe_width = 4;
  if (Status s = CreateInputFile(env.get(), spec); !s.ok()) {
    fprintf(stderr, "create input: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Sort it. The output stripe definition must exist; AlphaSort
  //    creates the member files.
  if (Status s = CreateOutputDefinition(env.get(), "output.str", 4, 65536);
      !s.ok()) {
    fprintf(stderr, "create output definition: %s\n", s.ToString().c_str());
    return 1;
  }
  SortOptions opts;
  opts.input_path = "input.str";
  opts.output_path = "output.str";
  opts.num_workers = 2;         // root + 2 worker threads
  opts.run_size_records = 20000;  // 5 QuickSort runs -> a 5-way merge
  SortMetrics metrics;
  if (Status s = AlphaSort::Run(env.get(), opts, &metrics); !s.ok()) {
    fprintf(stderr, "sort: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("%s", metrics.ToString().c_str());

  // 3. Verify: output must be a key-ascending permutation of the input.
  Status v = ValidateSortedFile(env.get(), "input.str", "output.str",
                                kDatamationFormat);
  printf("validation: %s\n", v.ToString().c_str());
  return v.ok() ? 0 : 1;
}
