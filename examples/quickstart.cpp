// Quickstart: generate a small Datamation-style input, sort it with the
// Sorter API, and verify the output is a sorted permutation — all against
// an in-memory filesystem, so it runs anywhere with no setup.
//
//   ./quickstart
//
// Three ways to hand the sort its input (docs/api.md):
//   - input_path: sugar for a read-ahead file source (shown first)
//   - options.source: any RecordSource factory (a generator, shown second)
//   - a StreamRecordSource fed by another thread (the network server's
//     spool-free ingest; see docs/service.md)

#include <cstdio>

#include "benchlib/datamation.h"
#include "core/record_source.h"
#include "core/sorter.h"

using namespace alphasort;

int main() {
  auto env = NewMemEnv();
  Sorter sorter(env.get(), [] {
    Sorter::Resources r;
    r.num_workers = 2;  // root + 2 worker threads
    return r;
  }());

  // 1. Create a 10 MB input: 100,000 records of 100 bytes, 10-byte random
  //    keys (the Datamation format), striped over 4 member files.
  InputSpec spec;
  spec.path = "input.str";
  spec.num_records = 100000;
  spec.stripe_width = 4;
  if (Status s = CreateInputFile(env.get(), spec); !s.ok()) {
    fprintf(stderr, "create input: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Sort it. The output stripe definition must exist; the sort
  //    creates the member files. Start() launches the job on its own
  //    thread; Wait() returns its status and metrics.
  if (Status s = CreateOutputDefinition(env.get(), "output.str", 4, 65536);
      !s.ok()) {
    fprintf(stderr, "create output definition: %s\n", s.ToString().c_str());
    return 1;
  }
  SortOptions opts;
  opts.input_path = "input.str";
  opts.output_path = "output.str";
  opts.run_size_records = 20000;  // 5 QuickSort runs -> a 5-way merge
  SortJob job = sorter.Start(opts);
  const SortResult& result = job.Wait();
  if (!result.status.ok()) {
    fprintf(stderr, "sort: %s\n", result.status.ToString().c_str());
    return 1;
  }
  printf("%s", result.metrics.ToString().c_str());

  // 3. Verify: output must be a key-ascending permutation of the input.
  Status v = ValidateSortedFile(env.get(), "input.str", "output.str",
                                kDatamationFormat);
  printf("validation: %s\n", v.ToString().c_str());
  if (!v.ok()) return 1;

  // 4. The same sort without an input file at all: a RecordSource
  //    factory generates the records in memory, and the one-pass path
  //    sorts them zero-copy.
  SortOptions gen_opts;
  gen_opts.source = [] {
    return std::make_shared<GeneratedRecordSource>(
        kDatamationFormat, 100000, KeyDistribution::kUniform, /*seed=*/7);
  };
  gen_opts.output_path = "generated.out";
  gen_opts.run_size_records = 20000;
  const SortResult& gen_result = sorter.Start(gen_opts).Wait();
  if (!gen_result.status.ok()) {
    fprintf(stderr, "generated sort: %s\n",
            gen_result.status.ToString().c_str());
    return 1;
  }
  printf("generated source: sorted %llu records in %.3f s\n",
         static_cast<unsigned long long>(gen_result.metrics.num_records),
         gen_result.metrics.total_s);
  return 0;
}
