// sort_service: drives a SortService end to end (docs/service.md).
//
//   ./sort_service [--jobs N] [--running K] [--records N]
//                  [--budget-mb MB] [--job-budget-mb MB] [--workers K]
//                  [--faults] [--smoke] [--expo FILE] [--log-jsonl FILE]
//                  [--flight FILE]
//
// --expo FILE scrapes the Prometheus-style exposition (registry plus
// live per-job progress) into FILE repeatedly while jobs run and once
// after they finish; validate with expo_lint. --log-jsonl FILE attaches
// a JSONL sink to the global structured logger for the run; validate
// with log_lint. --flight FILE runs a flight recorder that appends a
// progress snapshot line 4x/second; replay with expo_lint --flight.
//
// Default mode submits N concurrent Datamation jobs against an in-memory
// filesystem, waits for them all, validates every output, and prints the
// per-job outcomes plus the service's arbitration stats.
//
// --smoke is the CI gate (scripts/ci.sh): 4 concurrent jobs whose summed
// budgets exceed the service budget, plus a 5th job cancelled right
// after submit. Exit is nonzero if any surviving job fails or produces
// unsorted output, if the cancelled job does not end with a clean
// Aborted status, if the peak of admitted bytes ever exceeded the
// service budget, or if any scratch file leaks.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "io/env_stack.h"
#include "obs/exposition.h"
#include "obs/log.h"
#include "svc/sort_service.h"

using namespace alphasort;

namespace {

struct DriverConfig {
  int jobs = 4;
  int running = 2;
  uint64_t records = 50000;
  uint64_t budget_mb = 32;
  uint64_t job_budget_mb = 16;
  int workers = 2;
  bool faults = false;
  bool smoke = false;
  std::string expo_path;
  std::string log_jsonl_path;
  std::string flight_path;
};

// Overwrites `path` with `text` (the exposition scrape is a whole
// document, not an append stream).
bool WriteTextFile(const std::string& path, const std::string& text) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = fwrite(text.data(), 1, text.size(), f) == text.size();
  fclose(f);
  return ok;
}

const char* StateName(SortJobState s) {
  switch (s) {
    case SortJobState::kQueued:
      return "queued";
    case SortJobState::kRunning:
      return "running";
    case SortJobState::kDone:
      return "done";
  }
  return "?";
}

int RunDriver(const DriverConfig& cfg) {
  // Structured-log sink for the whole run (job lifecycle, admission
  // decisions, retries all land in it).
  std::unique_ptr<obs::JsonlFileLogSink> log_sink;
  if (!cfg.log_jsonl_path.empty()) {
    log_sink = std::make_unique<obs::JsonlFileLogSink>(cfg.log_jsonl_path);
    if (!log_sink->ok()) {
      fprintf(stderr, "cannot open log sink %s\n",
              cfg.log_jsonl_path.c_str());
      return 1;
    }
    obs::Logger::Global()->AddSink(log_sink.get());
  }
  struct SinkRemover {
    obs::LogSink* sink;
    ~SinkRemover() {
      if (sink != nullptr) obs::Logger::Global()->RemoveSink(sink);
    }
  } sink_remover{log_sink.get()};

  obs::FlightRecorder::Options fr_opts;
  fr_opts.path = cfg.flight_path;
  obs::FlightRecorder flight(fr_opts);
  if (!cfg.flight_path.empty()) {
    if (Status s = flight.Start(); !s.ok()) {
      fprintf(stderr, "cannot start flight recorder %s: %s\n",
              cfg.flight_path.c_str(), s.ToString().c_str());
      return 1;
    }
  }

  std::unique_ptr<Env> mem = NewMemEnv();
  // With --faults, a transient-fault layer sits between the store and
  // the service; each job carries a retry policy to absorb it.
  EnvStack stack(mem.get());
  if (cfg.faults) {
    stack.PushFaults();
    FaultPlan plan;
    plan.seed = 42;
    plan.defaults.read_fail_prob = 0.002;
    plan.defaults.write_fail_prob = 0.002;
    plan.defaults.mode = FaultMode::kTransient;
    stack.faults()->SetPlan(plan);
  }
  Env* const env_top = stack.top();
  const RecordFormat format = kDatamationFormat;

  // In smoke mode one extra job is submitted and immediately cancelled.
  const int total_jobs = cfg.smoke ? cfg.jobs + 1 : cfg.jobs;
  std::vector<std::string> inputs(total_jobs), outputs(total_jobs);
  for (int j = 0; j < total_jobs; ++j) {
    inputs[j] = StrFormat("svc_in_%02d.dat", j);
    outputs[j] = StrFormat("svc_out_%02d.dat", j);
    InputSpec spec;
    spec.path = inputs[j];
    spec.format = format;
    spec.num_records = cfg.records;
    spec.seed = 100 + static_cast<uint64_t>(j);
    if (Status s = CreateInputFile(mem.get(), spec); !s.ok()) {
      fprintf(stderr, "input %s: %s\n", inputs[j].c_str(),
              s.ToString().c_str());
      return 1;
    }
  }

  svc::SortServiceOptions sopts;
  sopts.memory_budget = cfg.budget_mb << 20;
  sopts.max_running = cfg.running;
  sopts.max_queued = total_jobs;
  sopts.num_workers = cfg.workers;
  svc::SortService service(env_top, sopts);

  std::vector<SortJob> jobs;
  for (int j = 0; j < total_jobs; ++j) {
    SortOptions opts;
    opts.input_path = inputs[j];
    opts.output_path = outputs[j];
    opts.format = format;
    opts.memory_budget = cfg.job_budget_mb << 20;
    opts.io_chunk_bytes = 64 * 1024;
    opts.run_size_records = 10000;
    opts.scratch_path = "svc_scratch";
    if (cfg.faults) {
      opts.retry_policy.max_attempts = 8;
      opts.retry_policy.backoff_initial_us = 1;
      opts.retry_policy.backoff_cap_us = 16;
    }
    Result<SortJob> job = service.Submit(opts);
    if (!job.ok()) {
      fprintf(stderr, "submit %d: %s\n", j, job.status().ToString().c_str());
      return 1;
    }
    jobs.push_back(std::move(job).value());
    printf("job %llu submitted (%s)\n",
           static_cast<unsigned long long>(jobs.back().id()),
           StateName(jobs.back().state()));
  }

  // The smoke gate's cancel path: the last-submitted job is told to stop
  // while it is queued (or just started) and must finish Aborted with no
  // scratch left behind.
  if (cfg.smoke) {
    jobs.back().Cancel();
    printf("job %llu cancelled\n",
           static_cast<unsigned long long>(jobs.back().id()));
  }

  // Scrape the exposition while jobs are live: every poll overwrites the
  // file, so the final content is the last pre-completion snapshot plus
  // the post-run scrape below.
  if (!cfg.expo_path.empty()) {
    for (;;) {
      bool all_done = true;
      for (auto& job : jobs) {
        if (!job.TryWait()) all_done = false;
      }
      WriteTextFile(cfg.expo_path, obs::RenderExposition());
      if (all_done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  int failures = 0;
  for (int j = 0; j < total_jobs; ++j) {
    const SortResult& r = jobs[j].Wait();
    const bool is_cancelled_job = cfg.smoke && j == total_jobs - 1;
    if (is_cancelled_job) {
      if (r.status.IsAborted() || r.status.ok()) {
        // A cancel can lose the race: the job may complete first. Both
        // are clean ends; what matters is no leak and no wrong output.
        printf("job %llu: %s (cancelled path)\n",
               static_cast<unsigned long long>(jobs[j].id()),
               r.status.ok() ? "completed before cancel"
                             : r.status.ToString().c_str());
      } else {
        fprintf(stderr, "job %llu: cancel ended dirty: %s\n",
                static_cast<unsigned long long>(jobs[j].id()),
                r.status.ToString().c_str());
        ++failures;
      }
      if (r.status.ok()) {
        if (Status v = ValidateSortedFile(mem.get(), inputs[j], outputs[j],
                                          format);
            !v.ok()) {
          fprintf(stderr, "job %llu: output invalid: %s\n",
                  static_cast<unsigned long long>(jobs[j].id()),
                  v.ToString().c_str());
          ++failures;
        }
      }
      continue;
    }
    if (!r.status.ok()) {
      fprintf(stderr, "job %llu: %s\n",
              static_cast<unsigned long long>(jobs[j].id()),
              r.status.ToString().c_str());
      ++failures;
      continue;
    }
    if (Status v =
            ValidateSortedFile(mem.get(), inputs[j], outputs[j], format);
        !v.ok()) {
      fprintf(stderr, "job %llu: output invalid: %s\n",
              static_cast<unsigned long long>(jobs[j].id()),
              v.ToString().c_str());
      ++failures;
      continue;
    }
    printf("job %llu: ok (%.1f MB in %.2fs%s)\n",
           static_cast<unsigned long long>(jobs[j].id()),
           r.metrics.bytes_out / 1e6, r.metrics.total_s,
           jobs[j].down_negotiated() ? ", down-negotiated" : "");
  }

  const svc::SortServiceStats stats = service.stats();
  printf(
      "\nservice: %llu submitted, %llu completed, %llu rejected, "
      "%llu cancelled queued, %llu down-negotiated\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.cancelled_queued),
      static_cast<unsigned long long>(stats.down_negotiated));
  printf("peak admitted %.1f MB of %.1f MB budget\n",
         stats.peak_admitted_bytes / 1e6, (cfg.budget_mb << 20) / 1e6);

  if (stats.peak_admitted_bytes > (cfg.budget_mb << 20)) {
    fprintf(stderr, "FAIL: peak admitted bytes exceeded the budget\n");
    ++failures;
  }
  std::vector<std::string> stray;
  if (mem->ListFiles("svc_scratch", &stray).ok() && !stray.empty()) {
    fprintf(stderr, "FAIL: %zu scratch file(s) leaked, first: %s\n",
            stray.size(), stray[0].c_str());
    ++failures;
  }
  flight.Stop();
  // The final scrape: service counters settled, per-job svc.job.<id>.*
  // gauges at their terminal values (permille 1000 for completed jobs).
  if (!cfg.expo_path.empty() &&
      !WriteTextFile(cfg.expo_path, obs::RenderExposition())) {
    fprintf(stderr, "FAIL: cannot write exposition to %s\n",
            cfg.expo_path.c_str());
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  DriverConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      cfg.jobs = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--running") == 0 && i + 1 < argc) {
      cfg.running = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      cfg.records = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--budget-mb") == 0 && i + 1 < argc) {
      cfg.budget_mb = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--job-budget-mb") == 0 && i + 1 < argc) {
      cfg.job_budget_mb = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--faults") == 0) {
      cfg.faults = true;
    } else if (strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (strcmp(argv[i], "--expo") == 0 && i + 1 < argc) {
      cfg.expo_path = argv[++i];
    } else if (strcmp(argv[i], "--log-jsonl") == 0 && i + 1 < argc) {
      cfg.log_jsonl_path = argv[++i];
    } else if (strcmp(argv[i], "--flight") == 0 && i + 1 < argc) {
      cfg.flight_path = argv[++i];
    } else {
      fprintf(stderr,
              "usage: %s [--jobs N] [--running K] [--records N] "
              "[--budget-mb MB] [--job-budget-mb MB] [--workers K] "
              "[--faults] [--smoke] [--expo FILE] [--log-jsonl FILE] "
              "[--flight FILE]\n",
              argv[0]);
      return 2;
    }
  }
  if (cfg.smoke) {
    // The CI gate shape: concurrency 2 over 4 jobs whose summed budgets
    // (4 x 16 MB) exceed the 32 MB service budget, plus the cancel.
    cfg.jobs = 4;
    cfg.running = 2;
    cfg.records = 30000;
    cfg.budget_mb = 32;
    cfg.job_budget_mb = 16;
  }
  return RunDriver(cfg);
}
