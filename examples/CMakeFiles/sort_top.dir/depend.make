# Empty dependencies file for sort_top.
# This may be replaced when dependencies are built.
