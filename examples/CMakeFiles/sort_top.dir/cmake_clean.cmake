file(REMOVE_RECURSE
  "CMakeFiles/sort_top.dir/sort_top.cpp.o"
  "CMakeFiles/sort_top.dir/sort_top.cpp.o.d"
  "sort_top"
  "sort_top.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_top.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
