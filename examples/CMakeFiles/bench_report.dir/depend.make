# Empty dependencies file for bench_report.
# This may be replaced when dependencies are built.
