file(REMOVE_RECURSE
  "CMakeFiles/bench_report.dir/bench_report.cpp.o"
  "CMakeFiles/bench_report.dir/bench_report.cpp.o.d"
  "bench_report"
  "bench_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
