# Empty compiler generated dependencies file for gen_records.
# This may be replaced when dependencies are built.
