file(REMOVE_RECURSE
  "CMakeFiles/gen_records.dir/gen_records.cpp.o"
  "CMakeFiles/gen_records.dir/gen_records.cpp.o.d"
  "gen_records"
  "gen_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
