
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/gen_records.cpp" "examples/CMakeFiles/gen_records.dir/gen_records.cpp.o" "gcc" "examples/CMakeFiles/gen_records.dir/gen_records.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/benchlib/CMakeFiles/alphasort_benchlib.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/alphasort_net.dir/DependInfo.cmake"
  "/root/repo/src/svc/CMakeFiles/alphasort_svc.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/alphasort_core.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/alphasort_sim.dir/DependInfo.cmake"
  "/root/repo/src/sort/CMakeFiles/alphasort_sort.dir/DependInfo.cmake"
  "/root/repo/src/io/CMakeFiles/alphasort_io.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/alphasort_obs.dir/DependInfo.cmake"
  "/root/repo/src/record/CMakeFiles/alphasort_record.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
