# Empty dependencies file for expo_lint.
# This may be replaced when dependencies are built.
