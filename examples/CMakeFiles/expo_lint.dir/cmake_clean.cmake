file(REMOVE_RECURSE
  "CMakeFiles/expo_lint.dir/expo_lint.cpp.o"
  "CMakeFiles/expo_lint.dir/expo_lint.cpp.o.d"
  "expo_lint"
  "expo_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expo_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
