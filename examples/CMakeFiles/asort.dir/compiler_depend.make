# Empty compiler generated dependencies file for asort.
# This may be replaced when dependencies are built.
