file(REMOVE_RECURSE
  "CMakeFiles/asort.dir/asort.cpp.o"
  "CMakeFiles/asort.dir/asort.cpp.o.d"
  "asort"
  "asort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
