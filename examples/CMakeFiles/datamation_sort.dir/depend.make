# Empty dependencies file for datamation_sort.
# This may be replaced when dependencies are built.
