file(REMOVE_RECURSE
  "CMakeFiles/datamation_sort.dir/datamation_sort.cpp.o"
  "CMakeFiles/datamation_sort.dir/datamation_sort.cpp.o.d"
  "datamation_sort"
  "datamation_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datamation_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
