file(REMOVE_RECURSE
  "CMakeFiles/sort_serverd.dir/sort_serverd.cpp.o"
  "CMakeFiles/sort_serverd.dir/sort_serverd.cpp.o.d"
  "sort_serverd"
  "sort_serverd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_serverd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
