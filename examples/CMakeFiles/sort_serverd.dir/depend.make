# Empty dependencies file for sort_serverd.
# This may be replaced when dependencies are built.
