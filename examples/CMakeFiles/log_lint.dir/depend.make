# Empty dependencies file for log_lint.
# This may be replaced when dependencies are built.
