file(REMOVE_RECURSE
  "CMakeFiles/log_lint.dir/log_lint.cpp.o"
  "CMakeFiles/log_lint.dir/log_lint.cpp.o.d"
  "log_lint"
  "log_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
