file(REMOVE_RECURSE
  "CMakeFiles/sort_loadgen.dir/sort_loadgen.cpp.o"
  "CMakeFiles/sort_loadgen.dir/sort_loadgen.cpp.o.d"
  "sort_loadgen"
  "sort_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
