# Empty compiler generated dependencies file for sort_loadgen.
# This may be replaced when dependencies are built.
