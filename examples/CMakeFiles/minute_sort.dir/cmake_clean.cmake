file(REMOVE_RECURSE
  "CMakeFiles/minute_sort.dir/minute_sort.cpp.o"
  "CMakeFiles/minute_sort.dir/minute_sort.cpp.o.d"
  "minute_sort"
  "minute_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minute_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
