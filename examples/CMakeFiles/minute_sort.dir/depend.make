# Empty dependencies file for minute_sort.
# This may be replaced when dependencies are built.
