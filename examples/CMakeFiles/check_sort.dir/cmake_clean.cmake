file(REMOVE_RECURSE
  "CMakeFiles/check_sort.dir/check_sort.cpp.o"
  "CMakeFiles/check_sort.dir/check_sort.cpp.o.d"
  "check_sort"
  "check_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
