# Empty compiler generated dependencies file for check_sort.
# This may be replaced when dependencies are built.
