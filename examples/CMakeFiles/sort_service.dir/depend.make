# Empty dependencies file for sort_service.
# This may be replaced when dependencies are built.
