file(REMOVE_RECURSE
  "CMakeFiles/sort_service.dir/sort_service.cpp.o"
  "CMakeFiles/sort_service.dir/sort_service.cpp.o.d"
  "sort_service"
  "sort_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
