file(REMOVE_RECURSE
  "CMakeFiles/trace_merge.dir/trace_merge.cpp.o"
  "CMakeFiles/trace_merge.dir/trace_merge.cpp.o.d"
  "trace_merge"
  "trace_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
