# Empty compiler generated dependencies file for trace_merge.
# This may be replaced when dependencies are built.
