# Empty compiler generated dependencies file for report_lint.
# This may be replaced when dependencies are built.
