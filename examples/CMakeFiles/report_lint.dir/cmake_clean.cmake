file(REMOVE_RECURSE
  "CMakeFiles/report_lint.dir/report_lint.cpp.o"
  "CMakeFiles/report_lint.dir/report_lint.cpp.o.d"
  "report_lint"
  "report_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
