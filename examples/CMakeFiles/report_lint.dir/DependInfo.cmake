
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/report_lint.cpp" "examples/CMakeFiles/report_lint.dir/report_lint.cpp.o" "gcc" "examples/CMakeFiles/report_lint.dir/report_lint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/obs/CMakeFiles/alphasort_obs.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
