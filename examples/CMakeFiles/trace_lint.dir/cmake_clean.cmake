file(REMOVE_RECURSE
  "CMakeFiles/trace_lint.dir/trace_lint.cpp.o"
  "CMakeFiles/trace_lint.dir/trace_lint.cpp.o.d"
  "trace_lint"
  "trace_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
