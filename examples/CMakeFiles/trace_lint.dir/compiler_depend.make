# Empty compiler generated dependencies file for trace_lint.
# This may be replaced when dependencies are built.
