file(REMOVE_RECURSE
  "CMakeFiles/typed_keys.dir/typed_keys.cpp.o"
  "CMakeFiles/typed_keys.dir/typed_keys.cpp.o.d"
  "typed_keys"
  "typed_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typed_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
