# Empty dependencies file for typed_keys.
# This may be replaced when dependencies are built.
