// MinuteSort, Indy category (paper §8): "sort as much as you can in one
// minute" on this machine. Doubles the input size until a sort no longer
// fits the budget and reports the largest size that did.
//
//   ./minute_sort [--seconds S] [--workers K] [--mem] [--stream]
//                 [--trace=FILE] [--report=FILE]
//
// --mem sorts in-memory files (pure CPU/memory measurement); without it,
// files live under /tmp. --stream skips the input file entirely: a
// producer thread feeds records into a StreamRecordSource while the
// pipeline sorts them as they arrive (the network server's spool-free
// ingest path), and the headline becomes sorted bytes per minute of
// wall-clock — ingest included, because it overlaps the sort. --trace
// records a span timeline across the doubling runs (the bounded ring
// keeps the most recent events, i.e. the largest sorts) and writes
// Chrome trace-event JSON on exit — see docs/observability.md. --report
// writes the SortReport JSON of the best run (the largest sort that fit
// the budget).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/record_source.h"
#include "core/sorter.h"
#include "io/stripe.h"
#include "obs/report.h"
#include "obs/trace.h"

using namespace alphasort;

int main(int argc, char** argv) {
  double seconds = 60.0;
  int workers = 0;
  bool in_memory = false;
  bool streamed = false;
  std::string trace_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = atof(argv[++i]);
    } else if (strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = atoi(argv[++i]);
    } else if (strcmp(argv[i], "--mem") == 0) {
      in_memory = true;
    } else if (strcmp(argv[i], "--stream") == 0) {
      streamed = true;
    } else if (strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (strncmp(argv[i], "--report=", 9) == 0) {
      report_path = argv[i] + 9;
    } else if (strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      fprintf(stderr,
              "usage: %s [--seconds S] [--workers K] [--mem] [--stream] "
              "[--trace=FILE] [--report=FILE]\n",
              argv[0]);
      return 2;
    }
  }

  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    recorder->Install();
  }

  std::unique_ptr<Env> owned;
  Env* env;
  std::string prefix;
  if (in_memory) {
    owned = NewMemEnv();
    env = owned.get();
    prefix = "";
  } else {
    env = GetPosixEnv();
    prefix = "/tmp/alphasort_minutesort_";
  }

  printf("MinuteSort (Indy): budget %.0f s, %d workers, %s files%s\n\n",
         seconds, workers, in_memory ? "in-memory" : "/tmp",
         streamed ? ", streamed ingest" : "");

  Sorter::Resources resources;
  resources.num_workers = workers;
  Sorter sorter(env, resources);

  uint64_t records = 500000;
  uint64_t best = 0;
  double best_time = 0;
  SortMetrics best_metrics;
  while (true) {
    const std::string in_path = prefix + "msort_in.dat";
    const std::string out_path = prefix + "msort_out.dat";
    SortOptions opts;
    opts.output_path = out_path;
    opts.num_workers = workers;
    opts.memory_budget = 6ull << 30;

    std::thread producer;
    if (streamed) {
      // No input file: a producer thread generates records straight into
      // a bounded stream while the pipeline sorts them. Append() blocks
      // when the buffer is full, so a slow sort throttles generation the
      // way it would throttle a network upload.
      auto stream = std::make_shared<StreamRecordSource>();
      opts.source = [stream]() -> std::shared_ptr<RecordSource> {
        return stream;
      };
      const uint64_t count = records;
      producer = std::thread([stream, count] {
        RecordGenerator gen(kDatamationFormat, /*seed=*/1);
        const uint64_t chunk_records = (4 << 20) / 100;
        std::vector<char> block(chunk_records * 100);
        uint64_t produced = 0;
        while (produced < count) {
          const uint64_t n =
              std::min<uint64_t>(chunk_records, count - produced);
          gen.Generate(KeyDistribution::kUniform, n, block.data());
          if (!stream->Append(block.data(), n * 100)) break;
          produced += n;
        }
        stream->CloseWrite();
      });
    } else {
      InputSpec spec;
      spec.path = in_path;
      spec.num_records = records;
      if (Status s = CreateInputFile(env, spec); !s.ok()) {
        fprintf(stderr, "input: %s\n", s.ToString().c_str());
        break;
      }
      opts.input_path = in_path;
    }

    const SortResult& result = sorter.Start(opts).Wait();
    if (producer.joinable()) producer.join();
    const Status s = result.status;
    const SortMetrics m = result.metrics;
    if (!streamed) env->DeleteFile(in_path);
    env->DeleteFile(out_path);
    if (!s.ok()) {
      fprintf(stderr, "sort: %s\n", s.ToString().c_str());
      break;
    }
    printf("  %9llu records (%7.1f MB): %6.2f s%s\n",
           static_cast<unsigned long long>(records), records * 100 / 1e6,
           m.total_s, m.passes == 2 ? " (two-pass)" : "");
    if (m.total_s > seconds) break;
    best = records;
    best_time = m.total_s;
    best_metrics = m;
    records *= 2;
    if (records * 100ull > (6ull << 30)) {
      printf("  (stopping: input would exceed this host's memory)\n");
      break;
    }
  }

  if (best > 0) {
    printf("\nResult: %.2f GB sorted within %.0f s (%.2f s used).\n",
           best * 100 / 1e9, seconds, best_time);
    if (streamed) {
      // The streamed headline: wall-clock covers ingest + sort + write,
      // so this is end-to-end sorted throughput, not disk-to-disk.
      printf("Streamed ingest rate: %.2f MB sorted per minute.\n",
             best * 100 / 1e6 / best_time * 60.0);
    }
    printf("The 1993 record: 1.08 GB on a 3-cpu DEC 7000 AXP (512 k$).\n");
  }

  if (recorder != nullptr) {
    obs::TraceRecorder::Uninstall();
    const std::string json = recorder->ToChromeJson();
    FILE* f = fopen(trace_path.c_str(), "w");
    if (f == nullptr ||
        fwrite(json.data(), 1, json.size(), f) != json.size()) {
      fprintf(stderr, "write trace %s failed\n", trace_path.c_str());
      if (f != nullptr) fclose(f);
      return 1;
    }
    fclose(f);
    printf("trace: %zu events -> %s\n", recorder->size(),
           trace_path.c_str());
  }

  if (!report_path.empty() && best > 0) {
    obs::SortReport report;
    report.tool = "minute_sort";
    report.config = StrFormat(
        "seconds=%.0f workers=%d records=%llu%s%s", seconds, workers,
        static_cast<unsigned long long>(best), in_memory ? " mem" : "",
        streamed ? " stream" : "");
    report.metrics = best_metrics;
    const std::string json = report.ToJson();
    FILE* f = fopen(report_path.c_str(), "w");
    if (f == nullptr ||
        fwrite(json.data(), 1, json.size(), f) != json.size()) {
      fprintf(stderr, "write report %s failed\n", report_path.c_str());
      if (f != nullptr) fclose(f);
      return 1;
    }
    fclose(f);
    printf("report (best run): %s\n", report_path.c_str());
  }
  return 0;
}
