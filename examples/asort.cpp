// asort: a command-line external sort built on the AlphaSort library —
// the "street-legal" packaging of §8's Indy/Daytona distinction. Sorts a
// file of fixed-width records by a byte key at a given offset.
//
//   ./asort --in INPUT [--in INPUT2 ...] --out OUTPUT
//           [--record-size R] [--key-size K] [--key-offset OFF]
//           [--workers N] [--merge-parallelism P] [--prefetch-distance D]
//           [--memory-mb M]
//           [--algorithm alphasort|vms]
//           [--sort-kernel auto|quicksort|radix_hybrid]
//           [--merge] [--verify] [--quiet]
//           [--trace=FILE] [--report=FILE] [--metrics] [--mem]
//           [--gen-records N]
//
// INPUT/OUTPUT may be plain files or .str stripe definitions (the output
// definition is created automatically, mirroring the first input's width,
// if it does not exist). With --merge, every INPUT must already be
// sorted and the inputs are merged into OUTPUT (sort's classic -m mode).
//
// Observability (docs/observability.md): --trace=FILE records a span
// timeline of the sort and writes Chrome trace-event JSON openable in
// chrome://tracing or https://ui.perfetto.dev; --report=FILE writes the
// versioned SortReport JSON (phase breakdown, IO percentiles, registry
// delta, hardware counters — validate with report_lint); --metrics dumps
// this run's delta of the process metrics registry (IO scheduler queue
// waits, stripe fanout, chore counts). --mem runs against an in-memory
// Env and
// --gen-records N generates the input first — together they make a
// self-contained smoke run: asort --mem --gen-records 100000 ...

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/datamation.h"
#include "core/alphasort.h"
#include "core/merge_files.h"
#include "core/sorter.h"
#include "core/vms_sort.h"
#include "common/table.h"
#include "io/stripe.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

using namespace alphasort;

namespace {

struct Args {
  std::vector<std::string> in;
  std::string out;
  size_t record_size = 100;
  size_t key_size = 10;
  size_t key_offset = 0;
  int workers = 0;
  int merge_parallelism = -1;  // -1 = auto (workers + 1 key ranges)
  long prefetch_distance = -1;  // -1 = library default, 0 = disable
  uint64_t memory_mb = 256;
  std::string algorithm = "alphasort";
  std::string sort_kernel = "auto";  // in-cache run sort: auto|quicksort|radix_hybrid
  bool merge = false;
  bool verify = false;
  bool quiet = false;
  std::string trace_path;      // --trace=FILE: Chrome trace JSON
  std::string report_path;     // --report=FILE: SortReport JSON
  bool metrics = false;        // dump this run's metrics-registry delta
  bool mem = false;            // run against an in-memory Env
  uint64_t gen_records = 0;    // generate the input first
};

int Usage(const char* prog) {
  fprintf(stderr,
          "usage: %s --in INPUT [--in INPUT2 ...] --out OUTPUT "
          "[--record-size R] [--key-size K] [--key-offset OFF] "
          "[--workers N] [--merge-parallelism P] [--prefetch-distance D] "
          "[--memory-mb M] [--algorithm alphasort|vms] "
          "[--sort-kernel auto|quicksort|radix_hybrid] "
          "[--merge] [--verify] [--quiet] [--trace=FILE] [--report=FILE] "
          "[--metrics] [--mem] [--gen-records N]\n",
          prog);
  return 2;
}

bool IsStripePath(const std::string& p) {
  return p.size() >= 4 && p.compare(p.size() - 4, 4, ".str") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = need("--in")) args.in.push_back(v);
    else if (const char* v = need("--out")) args.out = v;
    else if (const char* v = need("--record-size")) args.record_size = strtoul(v, nullptr, 10);
    else if (const char* v = need("--key-size")) args.key_size = strtoul(v, nullptr, 10);
    else if (const char* v = need("--key-offset")) args.key_offset = strtoul(v, nullptr, 10);
    else if (const char* v = need("--workers")) args.workers = atoi(v);
    else if (const char* v = need("--merge-parallelism")) args.merge_parallelism = atoi(v);
    else if (const char* v = need("--prefetch-distance")) args.prefetch_distance = atol(v);
    else if (const char* v = need("--memory-mb")) args.memory_mb = strtoull(v, nullptr, 10);
    else if (const char* v = need("--algorithm")) args.algorithm = v;
    else if (const char* v = need("--sort-kernel")) args.sort_kernel = v;
    else if (const char* v = need("--trace")) args.trace_path = v;
    else if (strncmp(argv[i], "--trace=", 8) == 0) args.trace_path = argv[i] + 8;
    else if (const char* v = need("--report")) args.report_path = v;
    else if (strncmp(argv[i], "--report=", 9) == 0) args.report_path = argv[i] + 9;
    else if (const char* v = need("--gen-records")) args.gen_records = strtoull(v, nullptr, 10);
    else if (strcmp(argv[i], "--metrics") == 0) args.metrics = true;
    else if (strcmp(argv[i], "--mem") == 0) args.mem = true;
    else if (strcmp(argv[i], "--merge") == 0) args.merge = true;
    else if (strcmp(argv[i], "--verify") == 0) args.verify = true;
    else if (strcmp(argv[i], "--quiet") == 0) args.quiet = true;
    else return Usage(argv[0]);
  }
  if (args.in.empty() || args.out.empty()) return Usage(argv[0]);
  if (args.in.size() > 1 && !args.merge) {
    fprintf(stderr, "multiple --in require --merge\n");
    return 2;
  }
  if (args.algorithm != "alphasort" && args.algorithm != "vms") {
    fprintf(stderr, "unknown algorithm '%s'\n", args.algorithm.c_str());
    return 2;
  }
  SortKernel sort_kernel;
  if (!ParseSortKernel(args.sort_kernel, &sort_kernel)) {
    fprintf(stderr, "unknown sort kernel '%s'\n", args.sort_kernel.c_str());
    return 2;
  }

  std::unique_ptr<Env> owned_env;
  Env* env = GetPosixEnv();
  if (args.mem) {
    owned_env = NewMemEnv();
    env = owned_env.get();
  }

  if (args.gen_records > 0) {
    InputSpec spec;
    spec.path = args.in[0];
    spec.format = RecordFormat(args.record_size, args.key_size,
                               args.key_offset);
    spec.num_records = args.gen_records;
    if (Status g = CreateInputFile(env, spec); !g.ok()) {
      fprintf(stderr, "generate input: %s\n", g.ToString().c_str());
      return 1;
    }
  }

  SortOptions opts;
  opts.input_path = args.in[0];
  opts.output_path = args.out;
  opts.format = RecordFormat(args.record_size, args.key_size,
                             args.key_offset);
  opts.num_workers = args.workers;
  opts.sort_kernel = sort_kernel;
  opts.merge_parallelism = args.merge_parallelism;
  if (args.prefetch_distance >= 0) {
    opts.prefetch_distance = static_cast<size_t>(args.prefetch_distance);
  }
  opts.memory_budget = args.memory_mb << 20;
  opts.scratch_path = args.out + ".scratch";
  if (!opts.format.Valid()) {
    fprintf(stderr, "invalid record layout (R=%zu K=%zu off=%zu)\n",
            args.record_size, args.key_size, args.key_offset);
    return 2;
  }

  // Mirror the input's stripe width onto a missing output definition.
  if (IsStripePath(args.out) && !env->FileExists(args.out)) {
    auto in_file = StripeFile::Open(env, args.in[0], OpenMode::kReadOnly);
    if (!in_file.ok()) {
      fprintf(stderr, "open input: %s\n",
              in_file.status().ToString().c_str());
      return 1;
    }
    const auto& def = in_file.value()->definition();
    Status s = CreateOutputDefinition(
        env, args.out, def.members.size(),
        def.members.empty() ? 65536 : def.members[0].stride_bytes);
    if (!s.ok()) {
      fprintf(stderr, "create output definition: %s\n",
              s.ToString().c_str());
      return 1;
    }
  }

  // The recorder outlives the sort; JSON is written after Uninstall so
  // no instrumentation point can race the export.
  std::unique_ptr<obs::TraceRecorder> recorder;
  if (!args.trace_path.empty()) {
    recorder = std::make_unique<obs::TraceRecorder>();
    recorder->Install();
  }

  SortMetrics metrics;
  Status s;
  // A Sorter job brackets the registry itself; the merge and vms paths
  // need the same per-run delta taken here so --metrics and --report
  // describe this run, not the whole process history.
  obs::RegistrySnapshot registry_before;
  const bool external_delta = args.merge || args.algorithm == "vms";
  if (external_delta) {
    registry_before = obs::MetricsRegistry::Global()->Snapshot();
  }
  if (args.merge) {
    s = MergeSortedFiles(env, args.in, args.out, opts, &metrics);
  } else if (args.algorithm == "vms") {
    s = VmsSort::Run(env, opts, &metrics);
  } else {
    Sorter::Resources resources;
    resources.num_workers = opts.num_workers;
    resources.io_threads = opts.io_threads;
    resources.use_affinity = opts.use_affinity;
    Sorter sorter(env, resources);
    const SortResult& result = sorter.Start(opts).Wait();
    s = result.status;
    metrics = result.metrics;
  }
  if (external_delta) {
    metrics.registry_delta =
        obs::MetricsRegistry::Global()->Snapshot().DeltaSince(
            registry_before);
  }
  if (recorder != nullptr) {
    obs::TraceRecorder::Uninstall();
    const std::string json = recorder->ToChromeJson();
    // The trace always goes to the host filesystem (even with --mem):
    // it is for a human to load into chrome://tracing.
    FILE* f = fopen(args.trace_path.c_str(), "w");
    if (f == nullptr ||
        fwrite(json.data(), 1, json.size(), f) != json.size()) {
      fprintf(stderr, "write trace %s failed\n", args.trace_path.c_str());
      if (f != nullptr) fclose(f);
      return 1;
    }
    fclose(f);
    if (!args.quiet) {
      printf("trace: %zu events -> %s%s\n", recorder->size(),
             args.trace_path.c_str(),
             recorder->dropped() > 0 ? " (ring wrapped; oldest dropped)"
                                     : "");
    }
  }
  if (!s.ok()) {
    fprintf(stderr, "sort failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (!args.quiet) {
    printf("%s", metrics.ToString().c_str());
  }
  if (args.metrics) {
    // The registry is process-global and cumulative (it also saw e.g.
    // --gen-records IO); the delta scopes the dump to the sort itself.
    printf("--- metrics (this run) ---\n%s",
           metrics.registry_delta.ToString().c_str());
  }

  if (!args.report_path.empty()) {
    obs::SortReport report;
    report.tool = "asort";
    report.config = StrFormat(
        "in=%s out=%s algorithm=%s workers=%d memory_mb=%llu "
        "record_size=%zu%s%s",
        args.in[0].c_str(), args.out.c_str(),
        args.merge ? "merge" : args.algorithm.c_str(), args.workers,
        static_cast<unsigned long long>(args.memory_mb), args.record_size,
        args.mem ? " mem" : "", args.verify ? " verify" : "");
    report.metrics = metrics;
    const std::string json = report.ToJson();
    // Like the trace, the report always goes to the host filesystem:
    // it is input for report_lint / bench_compare, not sort data.
    FILE* f = fopen(args.report_path.c_str(), "w");
    if (f == nullptr ||
        fwrite(json.data(), 1, json.size(), f) != json.size()) {
      fprintf(stderr, "write report %s failed\n", args.report_path.c_str());
      if (f != nullptr) fclose(f);
      return 1;
    }
    fclose(f);
    if (!args.quiet) {
      printf("report: %s\n", args.report_path.c_str());
    }
  }

  if (args.verify && !args.merge) {
    Status v = ValidateSortedFile(env, args.in[0], args.out, opts.format);
    if (!v.ok()) {
      fprintf(stderr, "verification FAILED: %s\n", v.ToString().c_str());
      return 1;
    }
    if (!args.quiet) printf("verification: OK\n");
  }
  return 0;
}
