// bench_report: the canonical benchmark suite behind the BENCH_*.json
// perf trajectory (scripts/bench.sh, scripts/bench_compare.py).
//
//   ./bench_report [--smoke] [--name NAME] [--out FILE]
//                  [--suite NAME]... [--workers K]
//
// Runs eight suites — the paper's run-generation comparison (§4
// QuickSort vs replacement-selection), output-stripe scaling (§6),
// the 8B-vs-16B entry ablation (§7), an end-to-end in-memory
// Datamation sort, hot-kernel microbenchmarks (entry build, merge,
// gather, partitioned merge; docs/perf.md), the streaming-ingest
// source comparison (file vs mmap vs stream; docs/api.md), SortService
// concurrency scaling (docs/service.md), and the networked service
// end to end over loopback (docs/net.md) — and writes one BenchReport JSON
// (kind "alphasort.bench_report") with a numeric metrics object per
// configuration. --smoke shrinks every input so the whole suite runs in
// seconds (CI); sizes are part of each entry's config string, so smoke
// and full runs never silently compare against each other. --suite
// filters to the named suite(s); --out defaults to BENCH_<name>.json in
// the current directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/datamation.h"
#include "benchlib/net_bench.h"
#include "benchlib/service_bench.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "core/record_source.h"
#include "core/sorter.h"
#include "obs/report.h"
#include "record/generator.h"
#include "sort/compact_entry.h"
#include "sort/merge_partition.h"
#include "sort/merger.h"
#include "sort/quicksort.h"
#include "sort/radix_partition.h"
#include "sort/replacement_selection.h"
#include "sim/cache_sim.h"

using namespace alphasort;

namespace {

double TimedSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct BenchConfig {
  bool smoke = false;
  int workers = 3;
};

// --- §4: QuickSort vs replacement-selection run generation.
void RunQuicksortVsReplacement(const BenchConfig& cfg,
                               obs::BenchReport* report) {
  const size_t records = cfg.smoke ? 60000 : 400000;
  const size_t capacity = 10000;
  RecordGenerator gen(kDatamationFormat, 77);
  const auto block = gen.Generate(KeyDistribution::kUniform, records);

  {
    std::vector<PrefixEntry> entries(records);
    size_t runs = 0;
    const double s = TimedSeconds([&] {
      BuildPrefixEntryArray(kDatamationFormat, block.data(), records,
                            entries.data());
      for (size_t start = 0; start < records; start += capacity) {
        SortPrefixEntryArray(kDatamationFormat, entries.data() + start,
                             std::min(capacity, records - start));
        ++runs;
      }
    });
    obs::BenchEntry e;
    e.suite = "quicksort_vs_replacement";
    e.config = StrFormat("algo=quicksort n=%zu W=%zu", records, capacity);
    e.values = {{"seconds", s},
                {"records_per_s", records / s},
                {"runs", double(runs)},
                {"avg_run_over_W", double(records) / runs / capacity}};
    report->entries.push_back(std::move(e));
  }

  for (const TreeLayout layout : {TreeLayout::kFlat, TreeLayout::kClustered}) {
    size_t runs = 0;
    const double s = TimedSeconds([&] {
      ReplacementSelection<NullTracer> rs(
          kDatamationFormat, capacity, [](size_t, const char*) {}, layout);
      for (size_t i = 0; i < records; ++i) {
        rs.Add(block.data() + i * kDatamationFormat.record_size);
      }
      rs.Finish();
      runs = rs.num_runs();
    });
    obs::BenchEntry e;
    e.suite = "quicksort_vs_replacement";
    e.config = StrFormat(
        "algo=replacement_%s n=%zu W=%zu",
        layout == TreeLayout::kFlat ? "flat" : "clustered", records,
        capacity);
    e.values = {{"seconds", s},
                {"records_per_s", records / s},
                {"runs", double(runs)},
                {"avg_run_over_W", double(records) / runs / capacity}};
    report->entries.push_back(std::move(e));
  }
}

// --- §6: output-stripe scaling, in-memory Env.
void RunStriping(const BenchConfig& cfg, obs::BenchReport* report) {
  const uint64_t records = cfg.smoke ? 50000 : 500000;
  for (const size_t width : {1, 2, 4}) {
    std::unique_ptr<Env> env = NewMemEnv();
    InputSpec spec;
    spec.path = StrFormat("bench_in_w%zu.str", width);
    spec.num_records = records;
    spec.stripe_width = width;
    if (Status s = CreateInputFile(env.get(), spec); !s.ok()) {
      fprintf(stderr, "striping input: %s\n", s.ToString().c_str());
      continue;
    }
    const std::string out = StrFormat("bench_out_w%zu.str", width);
    if (Status s = CreateOutputDefinition(env.get(), out, width,
                                          spec.stride_bytes);
        !s.ok()) {
      fprintf(stderr, "striping output: %s\n", s.ToString().c_str());
      continue;
    }
    SortOptions opts;
    opts.input_path = spec.path;
    opts.output_path = out;
    opts.num_workers = cfg.workers;
    Sorter sorter(env.get(), [&cfg] {
      Sorter::Resources r;
      r.num_workers = cfg.workers;
      return r;
    }());
    const SortResult& result = sorter.Start(opts).Wait();
    if (!result.status.ok()) {
      fprintf(stderr, "striping sort: %s\n",
              result.status.ToString().c_str());
      continue;
    }
    const SortMetrics& m = result.metrics;
    obs::BenchEntry e;
    e.suite = "striping";
    e.config = StrFormat("width=%zu n=%llu workers=%d", width,
                         static_cast<unsigned long long>(records),
                         cfg.workers);
    e.values = {{"seconds", m.total_s},
                {"mb_per_s", m.Throughput().mb_per_s},
                {"read_phase_s", m.read_phase_s},
                {"merge_phase_s", m.merge_phase_s}};
    report->entries.push_back(std::move(e));
  }
}

// --- §7: 8-byte vs 16-byte sort entries.
void RunEntryWidth(const BenchConfig& cfg, obs::BenchReport* report) {
  const size_t n = cfg.smoke ? 50000 : 1000000;
  RecordGenerator gen(kDatamationFormat, 44);
  const auto block = gen.Generate(KeyDistribution::kUniform, n);

  {
    std::vector<PrefixEntry> wide(n);
    BuildPrefixEntryArray(kDatamationFormat, block.data(), n, wide.data());
    SortStats stats;
    const double s = TimedSeconds([&] {
      SortPrefixEntryArray(kDatamationFormat, wide.data(), n, &stats);
    });
    obs::BenchEntry e;
    e.suite = "entry_width";
    e.config = StrFormat("entry=16B n=%zu", n);
    e.values = {{"sort_s", s},
                {"records_per_s", n / s},
                {"ties_per_record", double(stats.tie_breaks) / n}};
    report->entries.push_back(std::move(e));
  }
  {
    std::vector<CompactEntry> narrow(n);
    BuildCompactEntryArray(kDatamationFormat, block.data(), n,
                           narrow.data());
    SortStats stats;
    const double s = TimedSeconds([&] {
      SortCompactEntryArray(kDatamationFormat, block.data(), narrow.data(),
                            n, &stats);
    });
    obs::BenchEntry e;
    e.suite = "entry_width";
    e.config = StrFormat("entry=8B n=%zu", n);
    e.values = {{"sort_s", s},
                {"records_per_s", n / s},
                {"ties_per_record", double(stats.tie_breaks) / n}};
    report->entries.push_back(std::move(e));
  }
}

// --- End-to-end Datamation sort, in-memory Env.
void RunDatamation(const BenchConfig& cfg, obs::BenchReport* report) {
  const uint64_t records = cfg.smoke ? 100000 : 1000000;
  std::unique_ptr<Env> env = NewMemEnv();
  InputSpec spec;
  spec.path = "bench_datamation_in.dat";
  spec.num_records = records;
  if (Status s = CreateInputFile(env.get(), spec); !s.ok()) {
    fprintf(stderr, "datamation input: %s\n", s.ToString().c_str());
    return;
  }
  SortOptions opts;
  opts.input_path = spec.path;
  opts.output_path = "bench_datamation_out.dat";
  opts.num_workers = cfg.workers;
  Sorter sorter(env.get(), [&cfg] {
    Sorter::Resources r;
    r.num_workers = cfg.workers;
    return r;
  }());
  const SortResult& result = sorter.Start(opts).Wait();
  if (!result.status.ok()) {
    fprintf(stderr, "datamation sort: %s\n",
            result.status.ToString().c_str());
    return;
  }
  const SortMetrics& m = result.metrics;
  if (Status s = ValidateSortedFile(env.get(), spec.path, opts.output_path,
                                    opts.format);
      !s.ok()) {
    fprintf(stderr, "datamation validate: %s\n", s.ToString().c_str());
    return;
  }
  obs::BenchEntry e;
  e.suite = "datamation";
  e.config = StrFormat("n=%llu workers=%d mem",
                       static_cast<unsigned long long>(records),
                       cfg.workers);
  e.values = {{"seconds", m.total_s},
              {"mb_per_s", m.Throughput().mb_per_s},
              {"records_per_s", m.Throughput().records_per_s},
              {"read_phase_s", m.read_phase_s},
              {"merge_phase_s", m.merge_phase_s}};
  report->entries.push_back(std::move(e));
}

// --- Hot-kernel microbenchmarks behind docs/perf.md: entry build,
// QuickSort, the tournament merge, gather, and the key-range-partitioned
// merge at 1/2/4 ranges. Sizes are FIXED at Datamation scale (1M
// records) regardless of --smoke: the whole suite runs in a few seconds
// either way, and fixed sizes keep the config strings of CI smoke runs
// and the committed BENCH_kernels.json trajectory identical, so
// bench_compare always finds comparable pairs.
//
// The partitioned entries report two times. `wall_s` is what this
// machine measured: the ranges run back to back (CI containers often
// expose a single CPU, where true concurrency is impossible).
// `critical_path_s` = partition_s + max per-range time is the phase's
// load-balance bound — the wall clock a machine with >= `ranges` idle
// cores would see, since ranges share nothing but read-only entries.
// `speedup_vs_seq` compares critical paths against the ranges=1 entry of
// the same run. docs/perf.md discusses both numbers.
void RunKernels(const BenchConfig& cfg, obs::BenchReport* report) {
  (void)cfg;  // fixed-size by design, see above
  const RecordFormat fmt = kDatamationFormat;
  const size_t n = 1000000;
  const size_t run_records = 100000;
  RecordGenerator gen(fmt, 99);
  const auto block = gen.Generate(KeyDistribution::kUniform, n);

  auto push = [report](std::string config,
                       std::vector<std::pair<std::string, double>> values) {
    obs::BenchEntry e;
    e.suite = "kernels";
    e.config = std::move(config);
    e.values = std::move(values);
    report->entries.push_back(std::move(e));
  };

  // Entry-array build, both widths, prefetch hints on and off, simd path
  // on and off. The default (simd on where compiled) rows keep the
  // baseline config strings so the trajectory shows the vectorization win
  // directly; the forced-scalar A/B rows carry an explicit simd=0.
  //
  // The build itself runs in single-digit milliseconds, so each row is
  // the best of five timed runs after two untimed warm-ups (faulting in
  // the output pages, warming the record block, and letting the clock
  // governor ramp). Without this, whichever row runs first eats the page
  // faults and the frequency ramp, and the A/B comparison measures the
  // machine settling, not the kernel.
  auto best_of = [](const std::function<void()>& fn) {
    fn();
    fn();
    double best = TimedSeconds(fn);
    for (int rep = 0; rep < 4; ++rep) best = std::min(best, TimedSeconds(fn));
    return best;
  };
  {
    std::vector<PrefixEntry> prefix_out(n);
    std::vector<CompactEntry> compact_out(n);
    for (const bool simd_on : {true, false}) {
      simd::ScopedForceScalar force(!simd_on);
      const double active = simd::VectorActive() ? 1.0 : 0.0;
      const char* suffix = simd_on ? "" : " simd=0";
      for (const size_t dist : {kDefaultPrefetchDistance, size_t{0}}) {
        const double s16 = best_of([&] {
          BuildPrefixEntryArray(fmt, block.data(), n, prefix_out.data(),
                                dist);
        });
        push(StrFormat("kernel=entry_build entry=16B n=%zu prefetch=%zu%s",
                       n, dist, suffix),
             {{"seconds", s16},
              {"records_per_s", n / s16},
              {"simd_active", active}});
        const double s8 = best_of([&] {
          BuildCompactEntryArray(fmt, block.data(), n, compact_out.data(),
                                 dist);
        });
        push(StrFormat("kernel=entry_build entry=8B n=%zu prefetch=%zu%s",
                       n, dist, suffix),
             {{"seconds", s8},
              {"records_per_s", n / s8},
              {"simd_active", active}});
      }
    }
  }

  // Cache-sim miss counts per in-cache kernel, on one W-sized run (the
  // simulator is ~1000x slower than the real kernel, so the sample stays
  // small; the counts are per-kernel shape, not throughput).
  auto simulate_kernel = [&](SortKernel kernel) {
    const size_t sim_n = std::min(run_records, n);
    std::vector<PrefixEntry> sim_entries(sim_n);
    BuildPrefixEntryArray(fmt, block.data(), sim_n, sim_entries.data());
    CacheSim sim;
    SortStats stats;
    if (kernel == SortKernel::kRadixHybrid) {
      RadixSortPrefixEntries(fmt, sim_entries.data(), sim_n, &stats, &sim);
    } else {
      QuickSortPrefixEntries(fmt, sim_entries.data(), sim_n, &stats, &sim);
    }
    const CacheSim::Stats& cs = sim.stats();
    return std::vector<std::pair<std::string, double>>{
        {"sim_dcache_miss_rate", cs.DcacheMissRate()},
        {"sim_memory_accesses", double(cs.memory_accesses)},
        {"sim_tlb_misses", double(cs.tlb_misses)},
        {"sim_stall_cycles", double(cs.StallCycles())}};
  };

  // QuickSort the read phase's runs; the sorted entries feed every merge
  // kernel below.
  std::vector<PrefixEntry> entries(n);
  BuildPrefixEntryArray(fmt, block.data(), n, entries.data());
  size_t num_runs = 0;
  const double qs_s = TimedSeconds([&] {
    for (size_t start = 0; start < n; start += run_records) {
      SortPrefixEntryArray(fmt, entries.data() + start,
                           std::min(run_records, n - start));
      ++num_runs;
    }
  });
  {
    std::vector<std::pair<std::string, double>> values = {
        {"seconds", qs_s},
        {"records_per_s", n / qs_s},
        {"runs", double(num_runs)}};
    for (auto& kv : simulate_kernel(SortKernel::kQuickSort)) {
      values.push_back(std::move(kv));
    }
    push(StrFormat("kernel=quicksort n=%zu W=%zu", n, run_records),
         std::move(values));
  }

  // The MSB-radix hybrid over the same runs (sort/radix_partition.h).
  // Fresh entries: the quicksort loop above sorted `entries` in place.
  {
    std::vector<PrefixEntry> radix_entries(n);
    BuildPrefixEntryArray(fmt, block.data(), n, radix_entries.data());
    RadixStats shape;
    size_t radix_runs = 0;
    const double rx_s = TimedSeconds([&] {
      for (size_t start = 0; start < n; start += run_records) {
        RadixSortPrefixEntryArray(fmt, radix_entries.data() + start,
                                  std::min(run_records, n - start), nullptr,
                                  &shape);
        ++radix_runs;
      }
    });
    std::vector<std::pair<std::string, double>> values = {
        {"seconds", rx_s},
        {"records_per_s", n / rx_s},
        {"runs", double(radix_runs)},
        {"radix_passes", double(shape.partition_passes)},
        {"tie_shortcuts", double(shape.tie_shortcuts)}};
    for (auto& kv : simulate_kernel(SortKernel::kRadixHybrid)) {
      values.push_back(std::move(kv));
    }
    push(StrFormat("kernel=radix_hybrid n=%zu W=%zu", n, run_records),
         std::move(values));
    // Cross-check: both kernels must agree bit for bit (same total
    // order); a mismatch is a correctness bug, not a perf question.
    if (memcmp(entries.data(), radix_entries.data(),
               n * sizeof(PrefixEntry)) != 0) {
      fprintf(stderr, "kernels: radix_hybrid != quicksort output!\n");
    }
  }

  std::vector<EntryRun> runs;
  for (size_t start = 0; start < n; start += run_records) {
    const size_t len = std::min(run_records, n - start);
    runs.push_back(
        EntryRun{entries.data() + start, entries.data() + start + len});
  }

  // Tournament merge alone (pointer stream, no gather), leaf-replacement
  // prefetch on and off.
  const size_t batch = std::max<size_t>(1, (1 << 20) / fmt.record_size);
  std::vector<const char*> ptrs(n);
  for (const bool prefetch : {true, false}) {
    size_t produced = 0;
    const double s = TimedSeconds([&] {
      RunMerger<> merger(fmt, runs, TreeLayout::kFlat, nullptr, nullptr,
                         prefetch);
      while (!merger.Done()) {
        produced += merger.NextBatch(ptrs.data() + produced, batch);
      }
    });
    push(StrFormat("kernel=merge n=%zu runs=%zu prefetch=%zu", n,
                   runs.size(),
                   prefetch ? kDefaultPrefetchDistance : size_t{0}),
         {{"seconds", s}, {"records_per_s", produced / s}});
  }

  // Gather along the merged pointer stream (the single record copy),
  // prefetch on and off. `ptrs` holds the full merged order from above.
  std::vector<char> out(n * fmt.record_size);
  for (const size_t dist : {kDefaultPrefetchDistance, size_t{0}}) {
    const double s = TimedSeconds(
        [&] { GatherRecords(fmt, ptrs.data(), n, out.data(), dist); });
    push(StrFormat("kernel=gather n=%zu prefetch=%zu", n, dist),
         {{"seconds", s},
          {"mb_per_s", double(n) * fmt.record_size / 1e6 / s}});
  }

  // Key-range-partitioned merge+gather at 1/2/4 ranges. Ranges run back
  // to back (see the suite comment for why), each timed alone.
  double seq_critical_path = 0;
  for (const size_t max_ranges : {size_t{1}, size_t{2}, size_t{4}}) {
    MergePartition part;
    const double partition_s = TimedSeconds(
        [&] { part = PartitionEntryRuns(fmt, runs, max_ranges); });
    double sum_s = 0, max_range_s = 0;
    uint64_t produced = 0;
    for (const MergeRange& range : part.ranges) {
      const double range_s = TimedSeconds([&] {
        RunMerger<> merger(fmt, range.runs);
        std::vector<const char*> range_ptrs(range.num_records);
        size_t got = 0;
        while (!merger.Done()) {
          got += merger.NextBatch(range_ptrs.data() + got, batch);
        }
        GatherRecords(fmt, range_ptrs.data(), got,
                      out.data() + range.first_record * fmt.record_size);
        produced += got;
      });
      sum_s += range_s;
      max_range_s = std::max(max_range_s, range_s);
    }
    if (produced != n) {
      fprintf(stderr, "kernels: partitioned merge produced %llu of %zu\n",
              static_cast<unsigned long long>(produced), n);
      continue;
    }
    const double critical_path_s = partition_s + max_range_s;
    if (max_ranges == 1) seq_critical_path = critical_path_s;
    push(StrFormat("kernel=pmerge n=%zu runs=%zu max_ranges=%zu", n,
                   runs.size(), max_ranges),
         {{"wall_s", partition_s + sum_s},
          {"partition_s", partition_s},
          {"critical_path_s", critical_path_s},
          {"max_range_s", max_range_s},
          {"ranges", double(part.NumRanges())},
          {"speedup_vs_seq",
           critical_path_s > 0 ? seq_critical_path / critical_path_s : 0}});
  }
}

// --- SortService aggregate throughput vs job concurrency, with and
// without transient fault injection (docs/service.md).
void RunService(const BenchConfig& cfg, obs::BenchReport* report) {
  const uint64_t records = cfg.smoke ? 20000 : 100000;
  for (const bool faults : {false, true}) {
    for (const int running : {1, 2, 4}) {
      ServiceBenchConfig sb;
      sb.num_jobs = 8;
      sb.records_per_job = records;
      sb.max_running = running;
      sb.service_budget = 64ull << 20;
      sb.job_budget = 16ull << 20;
      sb.num_workers = cfg.workers;
      sb.inject_faults = faults;
      const ServiceBenchResult r = RunServiceBench(sb);
      if (r.jobs_ok != sb.num_jobs) {
        fprintf(stderr, "service bench (running=%d faults=%d): %s\n",
                running, faults, r.ToString().c_str());
        continue;
      }
      obs::BenchEntry e;
      e.suite = "service";
      e.config = StrFormat(
          "jobs=%d running=%d n=%llu workers=%d faults=%d", sb.num_jobs,
          running, static_cast<unsigned long long>(records), cfg.workers,
          faults ? 1 : 0);
      e.values = {{"seconds", r.wall_s},
                  {"aggregate_mb_per_s", r.aggregate_mb_per_s},
                  {"peak_admitted_mb", r.peak_admitted_bytes / 1e6},
                  {"down_negotiated", double(r.down_negotiated)}};
      report->entries.push_back(std::move(e));
    }
  }
}

// --- Networked service over loopback: framing + streamed ingest + sort +
// stream-back, as a tenant observes it (docs/net.md). Sizes are FIXED
// regardless of --smoke (like the kernel suite) so the committed
// baseline and the CI run compare like with like; the 100-client
// configuration keeps the acceptance-scale concurrency in the
// trajectory.
void RunNet(const BenchConfig& cfg, obs::BenchReport* report) {
  struct Shape {
    int clients;
    uint64_t records;
  };
  const Shape shapes[] = {{4, 2000}, {16, 2000}, {100, 2000}, {2, 100000}};
  for (const Shape& shape : shapes) {
    NetBenchConfig nb;
    nb.num_clients = shape.clients;
    nb.records_per_client = shape.records;
    nb.max_running = 4;
    nb.num_workers = cfg.workers;
    const NetBenchResult r = RunNetBench(nb);
    if (r.jobs_ok != shape.clients) {
      fprintf(stderr, "net bench (clients=%d n=%llu): %s\n", shape.clients,
              static_cast<unsigned long long>(shape.records),
              r.ToString().c_str());
      continue;
    }
    obs::BenchEntry e;
    e.suite = "net";
    e.config = StrFormat("clients=%d n=%llu running=4 workers=%d",
                         shape.clients,
                         static_cast<unsigned long long>(shape.records),
                         cfg.workers);
    e.values = {{"seconds", r.wall_s},
                {"aggregate_mb_per_s", r.aggregate_mb_per_s},
                {"jobs_ok", double(r.jobs_ok)},
                {"p50_us", r.p50_us},
                {"p95_us", r.p95_us},
                {"p99_us", r.p99_us}};
    report->entries.push_back(std::move(e));
  }
}

// --- Streaming-ingest front end (docs/api.md): the same page-cache-
// resident input sorted through each RecordSource. `file` is the
// input_path sugar (FileRecordSource's readahead ring through AsyncIO),
// `mmap` maps the resident pages and builds entries over them without
// copying a record until the gather, `stream` replays the bytes through
// a producer thread and the bounded StreamRecordSource — the network
// path's ingest without the network. The input is written and read back
// once before timing, so all three sources see warm pages; at this
// shape mmap's zero-copy one-pass is expected to beat the plain file
// source (the read phase disappears into the entry build).
void RunIngest(const BenchConfig& cfg, obs::BenchReport* report) {
  const uint64_t records = cfg.smoke ? 200000 : 1000000;
  const uint64_t bytes = records * kDatamationFormat.record_size;
  Env* env = GetPosixEnv();
  const std::string prefix = "/tmp/alphasort_bench_ingest";
  const std::string in_path = prefix + "_in.dat";
  const std::string out_path = prefix + "_out.dat";

  InputSpec spec;
  spec.path = in_path;
  spec.num_records = records;
  if (Status s = CreateInputFile(env, spec); !s.ok()) {
    fprintf(stderr, "ingest input: %s\n", s.ToString().c_str());
    return;
  }
  // Warm the page cache and keep a copy for the stream producer.
  std::vector<char> resident(bytes);
  {
    FILE* f = fopen(in_path.c_str(), "rb");
    if (f == nullptr ||
        fread(resident.data(), 1, bytes, f) != bytes) {
      fprintf(stderr, "ingest: warming read of %s failed\n",
              in_path.c_str());
      if (f != nullptr) fclose(f);
      return;
    }
    fclose(f);
  }

  auto run_one = [&](const char* source_name, SortOptions opts,
                     std::thread* producer) {
    opts.output_path = out_path;
    opts.scratch_path = prefix + "_scratch";
    opts.num_workers = cfg.workers;
    // Resident shape: the whole input fits the budget, so every source
    // gets the one-pass plan and the contiguous ones get zero-copy.
    opts.memory_budget = std::max<uint64_t>(256ull << 20, 2 * bytes);
    Sorter sorter(env, [&cfg] {
      Sorter::Resources r;
      r.num_workers = cfg.workers;
      return r;
    }());
    const SortResult& result = sorter.Start(opts).Wait();
    if (producer != nullptr && producer->joinable()) producer->join();
    if (!result.status.ok()) {
      fprintf(stderr, "ingest sort (%s): %s\n", source_name,
              result.status.ToString().c_str());
      return;
    }
    const SortMetrics& m = result.metrics;
    obs::BenchEntry e;
    e.suite = "ingest";
    e.config = StrFormat("source=%s n=%llu workers=%d resident",
                         source_name,
                         static_cast<unsigned long long>(records),
                         cfg.workers);
    e.values = {{"seconds", m.total_s},
                {"mb_per_s", m.Throughput().mb_per_s},
                {"read_phase_s", m.read_phase_s},
                {"merge_phase_s", m.merge_phase_s}};
    report->entries.push_back(std::move(e));
  };

  {
    SortOptions opts;
    opts.input_path = in_path;
    run_one("file", std::move(opts), nullptr);
  }
  {
    SortOptions opts;
    opts.source = [in_path] {
      return std::make_shared<MmapRecordSource>(in_path);
    };
    run_one("mmap", std::move(opts), nullptr);
  }
  {
    auto stream = std::make_shared<StreamRecordSource>();
    SortOptions opts;
    opts.source = [stream]() -> std::shared_ptr<RecordSource> {
      return stream;
    };
    std::thread producer([stream, &resident] {
      const size_t chunk = 1 << 20;
      for (size_t off = 0; off < resident.size(); off += chunk) {
        const size_t n = std::min(chunk, resident.size() - off);
        if (!stream->Append(resident.data() + off, n)) break;
      }
      stream->CloseWrite();
    });
    run_one("stream", std::move(opts), &producer);
  }

  env->DeleteFile(in_path);
  env->DeleteFile(out_path);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  std::string name;
  std::string out_path;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      only.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = atoi(argv[++i]);
    } else {
      fprintf(stderr,
              "usage: %s [--smoke] [--name NAME] [--out FILE] "
              "[--suite NAME]... [--workers K]\n",
              argv[0]);
      return 2;
    }
  }
  if (name.empty()) name = cfg.smoke ? "smoke" : "full";
  if (out_path.empty()) out_path = "BENCH_" + name + ".json";

  obs::BenchReport report;
  report.name = name;
  const std::pair<const char*, void (*)(const BenchConfig&,
                                        obs::BenchReport*)>
      suites[] = {
          {"quicksort_vs_replacement", RunQuicksortVsReplacement},
          {"striping", RunStriping},
          {"entry_width", RunEntryWidth},
          {"datamation", RunDatamation},
          {"kernels", RunKernels},
          {"ingest", RunIngest},
          {"service", RunService},
          {"net", RunNet},
      };
  for (const auto& [suite_name, fn] : suites) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), suite_name) == only.end()) {
      continue;
    }
    printf("running suite: %s\n", suite_name);
    fn(cfg, &report);
  }
  if (report.entries.empty()) {
    fprintf(stderr, "bench_report: no suites ran\n");
    return 1;
  }

  const std::string json = report.ToJson();
  if (Status s = obs::ValidateBenchReportJson(json); !s.ok()) {
    fprintf(stderr, "bench_report: self-check failed: %s\n",
            s.ToString().c_str());
    return 1;
  }
  FILE* f = fopen(out_path.c_str(), "w");
  if (f == nullptr ||
      fwrite(json.data(), 1, json.size(), f) != json.size()) {
    fprintf(stderr, "bench_report: write %s failed\n", out_path.c_str());
    if (f != nullptr) fclose(f);
    return 1;
  }
  fclose(f);

  printf("\n%s", report.ToText().c_str());
  printf("\nwrote %s (%zu entries)\n", out_path.c_str(),
         report.entries.size());
  return 0;
}
