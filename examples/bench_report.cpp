// bench_report: the canonical benchmark suite behind the BENCH_*.json
// perf trajectory (scripts/bench.sh, scripts/bench_compare.py).
//
//   ./bench_report [--smoke] [--name NAME] [--out FILE]
//                  [--suite NAME]... [--workers K]
//
// Runs five suites — the paper's run-generation comparison (§4
// QuickSort vs replacement-selection), output-stripe scaling (§6),
// the 8B-vs-16B entry ablation (§7), an end-to-end in-memory
// Datamation sort, and SortService concurrency scaling
// (docs/service.md) — and writes one BenchReport JSON
// (kind "alphasort.bench_report") with a numeric metrics object per
// configuration. --smoke shrinks every input so the whole suite runs in
// seconds (CI); sizes are part of each entry's config string, so smoke
// and full runs never silently compare against each other. --suite
// filters to the named suite(s); --out defaults to BENCH_<name>.json in
// the current directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "benchlib/datamation.h"
#include "benchlib/service_bench.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "obs/report.h"
#include "record/generator.h"
#include "sort/compact_entry.h"
#include "sort/quicksort.h"
#include "sort/replacement_selection.h"

using namespace alphasort;

namespace {

double TimedSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct BenchConfig {
  bool smoke = false;
  int workers = 3;
};

// --- §4: QuickSort vs replacement-selection run generation.
void RunQuicksortVsReplacement(const BenchConfig& cfg,
                               obs::BenchReport* report) {
  const size_t records = cfg.smoke ? 60000 : 400000;
  const size_t capacity = 10000;
  RecordGenerator gen(kDatamationFormat, 77);
  const auto block = gen.Generate(KeyDistribution::kUniform, records);

  {
    std::vector<PrefixEntry> entries(records);
    size_t runs = 0;
    const double s = TimedSeconds([&] {
      BuildPrefixEntryArray(kDatamationFormat, block.data(), records,
                            entries.data());
      for (size_t start = 0; start < records; start += capacity) {
        SortPrefixEntryArray(kDatamationFormat, entries.data() + start,
                             std::min(capacity, records - start));
        ++runs;
      }
    });
    obs::BenchEntry e;
    e.suite = "quicksort_vs_replacement";
    e.config = StrFormat("algo=quicksort n=%zu W=%zu", records, capacity);
    e.values = {{"seconds", s},
                {"records_per_s", records / s},
                {"runs", double(runs)},
                {"avg_run_over_W", double(records) / runs / capacity}};
    report->entries.push_back(std::move(e));
  }

  for (const TreeLayout layout : {TreeLayout::kFlat, TreeLayout::kClustered}) {
    size_t runs = 0;
    const double s = TimedSeconds([&] {
      ReplacementSelection<NullTracer> rs(
          kDatamationFormat, capacity, [](size_t, const char*) {}, layout);
      for (size_t i = 0; i < records; ++i) {
        rs.Add(block.data() + i * kDatamationFormat.record_size);
      }
      rs.Finish();
      runs = rs.num_runs();
    });
    obs::BenchEntry e;
    e.suite = "quicksort_vs_replacement";
    e.config = StrFormat(
        "algo=replacement_%s n=%zu W=%zu",
        layout == TreeLayout::kFlat ? "flat" : "clustered", records,
        capacity);
    e.values = {{"seconds", s},
                {"records_per_s", records / s},
                {"runs", double(runs)},
                {"avg_run_over_W", double(records) / runs / capacity}};
    report->entries.push_back(std::move(e));
  }
}

// --- §6: output-stripe scaling, in-memory Env.
void RunStriping(const BenchConfig& cfg, obs::BenchReport* report) {
  const uint64_t records = cfg.smoke ? 50000 : 500000;
  for (const size_t width : {1, 2, 4}) {
    std::unique_ptr<Env> env = NewMemEnv();
    InputSpec spec;
    spec.path = StrFormat("bench_in_w%zu.str", width);
    spec.num_records = records;
    spec.stripe_width = width;
    if (Status s = CreateInputFile(env.get(), spec); !s.ok()) {
      fprintf(stderr, "striping input: %s\n", s.ToString().c_str());
      continue;
    }
    const std::string out = StrFormat("bench_out_w%zu.str", width);
    if (Status s = CreateOutputDefinition(env.get(), out, width,
                                          spec.stride_bytes);
        !s.ok()) {
      fprintf(stderr, "striping output: %s\n", s.ToString().c_str());
      continue;
    }
    SortOptions opts;
    opts.input_path = spec.path;
    opts.output_path = out;
    opts.num_workers = cfg.workers;
    SortMetrics m;
    if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
      fprintf(stderr, "striping sort: %s\n", s.ToString().c_str());
      continue;
    }
    obs::BenchEntry e;
    e.suite = "striping";
    e.config = StrFormat("width=%zu n=%llu workers=%d", width,
                         static_cast<unsigned long long>(records),
                         cfg.workers);
    e.values = {{"seconds", m.total_s},
                {"mb_per_s", m.Throughput().mb_per_s},
                {"read_phase_s", m.read_phase_s},
                {"merge_phase_s", m.merge_phase_s}};
    report->entries.push_back(std::move(e));
  }
}

// --- §7: 8-byte vs 16-byte sort entries.
void RunEntryWidth(const BenchConfig& cfg, obs::BenchReport* report) {
  const size_t n = cfg.smoke ? 50000 : 1000000;
  RecordGenerator gen(kDatamationFormat, 44);
  const auto block = gen.Generate(KeyDistribution::kUniform, n);

  {
    std::vector<PrefixEntry> wide(n);
    BuildPrefixEntryArray(kDatamationFormat, block.data(), n, wide.data());
    SortStats stats;
    const double s = TimedSeconds([&] {
      SortPrefixEntryArray(kDatamationFormat, wide.data(), n, &stats);
    });
    obs::BenchEntry e;
    e.suite = "entry_width";
    e.config = StrFormat("entry=16B n=%zu", n);
    e.values = {{"sort_s", s},
                {"records_per_s", n / s},
                {"ties_per_record", double(stats.tie_breaks) / n}};
    report->entries.push_back(std::move(e));
  }
  {
    std::vector<CompactEntry> narrow(n);
    BuildCompactEntryArray(kDatamationFormat, block.data(), n,
                           narrow.data());
    SortStats stats;
    const double s = TimedSeconds([&] {
      SortCompactEntryArray(kDatamationFormat, block.data(), narrow.data(),
                            n, &stats);
    });
    obs::BenchEntry e;
    e.suite = "entry_width";
    e.config = StrFormat("entry=8B n=%zu", n);
    e.values = {{"sort_s", s},
                {"records_per_s", n / s},
                {"ties_per_record", double(stats.tie_breaks) / n}};
    report->entries.push_back(std::move(e));
  }
}

// --- End-to-end Datamation sort, in-memory Env.
void RunDatamation(const BenchConfig& cfg, obs::BenchReport* report) {
  const uint64_t records = cfg.smoke ? 100000 : 1000000;
  std::unique_ptr<Env> env = NewMemEnv();
  InputSpec spec;
  spec.path = "bench_datamation_in.dat";
  spec.num_records = records;
  if (Status s = CreateInputFile(env.get(), spec); !s.ok()) {
    fprintf(stderr, "datamation input: %s\n", s.ToString().c_str());
    return;
  }
  SortOptions opts;
  opts.input_path = spec.path;
  opts.output_path = "bench_datamation_out.dat";
  opts.num_workers = cfg.workers;
  SortMetrics m;
  if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
    fprintf(stderr, "datamation sort: %s\n", s.ToString().c_str());
    return;
  }
  if (Status s = ValidateSortedFile(env.get(), spec.path, opts.output_path,
                                    opts.format);
      !s.ok()) {
    fprintf(stderr, "datamation validate: %s\n", s.ToString().c_str());
    return;
  }
  obs::BenchEntry e;
  e.suite = "datamation";
  e.config = StrFormat("n=%llu workers=%d mem",
                       static_cast<unsigned long long>(records),
                       cfg.workers);
  e.values = {{"seconds", m.total_s},
              {"mb_per_s", m.Throughput().mb_per_s},
              {"records_per_s", m.Throughput().records_per_s},
              {"read_phase_s", m.read_phase_s},
              {"merge_phase_s", m.merge_phase_s}};
  report->entries.push_back(std::move(e));
}

// --- SortService aggregate throughput vs job concurrency, with and
// without transient fault injection (docs/service.md).
void RunService(const BenchConfig& cfg, obs::BenchReport* report) {
  const uint64_t records = cfg.smoke ? 20000 : 100000;
  for (const bool faults : {false, true}) {
    for (const int running : {1, 2, 4}) {
      ServiceBenchConfig sb;
      sb.num_jobs = 8;
      sb.records_per_job = records;
      sb.max_running = running;
      sb.service_budget = 64ull << 20;
      sb.job_budget = 16ull << 20;
      sb.num_workers = cfg.workers;
      sb.inject_faults = faults;
      const ServiceBenchResult r = RunServiceBench(sb);
      if (r.jobs_ok != sb.num_jobs) {
        fprintf(stderr, "service bench (running=%d faults=%d): %s\n",
                running, faults, r.ToString().c_str());
        continue;
      }
      obs::BenchEntry e;
      e.suite = "service";
      e.config = StrFormat(
          "jobs=%d running=%d n=%llu workers=%d faults=%d", sb.num_jobs,
          running, static_cast<unsigned long long>(records), cfg.workers,
          faults ? 1 : 0);
      e.values = {{"seconds", r.wall_s},
                  {"aggregate_mb_per_s", r.aggregate_mb_per_s},
                  {"peak_admitted_mb", r.peak_admitted_bytes / 1e6},
                  {"down_negotiated", double(r.down_negotiated)}};
      report->entries.push_back(std::move(e));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  std::string name;
  std::string out_path;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      cfg.smoke = true;
    } else if (strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      only.push_back(argv[++i]);
    } else if (strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      cfg.workers = atoi(argv[++i]);
    } else {
      fprintf(stderr,
              "usage: %s [--smoke] [--name NAME] [--out FILE] "
              "[--suite NAME]... [--workers K]\n",
              argv[0]);
      return 2;
    }
  }
  if (name.empty()) name = cfg.smoke ? "smoke" : "full";
  if (out_path.empty()) out_path = "BENCH_" + name + ".json";

  obs::BenchReport report;
  report.name = name;
  const std::pair<const char*, void (*)(const BenchConfig&,
                                        obs::BenchReport*)>
      suites[] = {
          {"quicksort_vs_replacement", RunQuicksortVsReplacement},
          {"striping", RunStriping},
          {"entry_width", RunEntryWidth},
          {"datamation", RunDatamation},
          {"service", RunService},
      };
  for (const auto& [suite_name, fn] : suites) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), suite_name) == only.end()) {
      continue;
    }
    printf("running suite: %s\n", suite_name);
    fn(cfg, &report);
  }
  if (report.entries.empty()) {
    fprintf(stderr, "bench_report: no suites ran\n");
    return 1;
  }

  const std::string json = report.ToJson();
  if (Status s = obs::ValidateBenchReportJson(json); !s.ok()) {
    fprintf(stderr, "bench_report: self-check failed: %s\n",
            s.ToString().c_str());
    return 1;
  }
  FILE* f = fopen(out_path.c_str(), "w");
  if (f == nullptr ||
      fwrite(json.data(), 1, json.size(), f) != json.size()) {
    fprintf(stderr, "bench_report: write %s failed\n", out_path.c_str());
    if (f != nullptr) fclose(f);
    return 1;
  }
  fclose(f);

  printf("\n%s", report.ToText().c_str());
  printf("\nwrote %s (%zu entries)\n", out_path.c_str(),
         report.entries.size());
  return 0;
}
