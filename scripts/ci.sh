#!/usr/bin/env bash
# CI gate: tier-1 build + tests, sanitizer passes (ASan+UBSan suite, TSan
# over the concurrency-heavy suites), a fault-campaign smoke gate
# (docs/fault_tolerance.md), an observability smoke that sorts 100k
# records under --trace/--report and validates both JSON artifacts, a
# SortService smoke (concurrent jobs + a cancel under one shared budget,
# docs/service.md), an exposition smoke (Prometheus-text scrape +
# structured-log JSONL + flight recorder, each through its validator)
# plus the sort_top live-progress gate, a bench smoke
# (scripts/bench.sh --smoke) compared
# informationally against the committed BENCH_smoke.json baseline
# (docs/observability.md), and a kernel-bench smoke compared against the
# committed BENCH_kernels.json (docs/perf.md).
# Machine-readable outputs land in ci-artifacts/ for workflow upload.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p ci-artifacts

echo "=== tier 1: build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo
echo "=== sanitizers: ASan + UBSan test suite ==="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-asan -j "$(nproc)"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo
echo "=== sanitizers: TSan over the concurrency-heavy suites ==="
# The suites where threads actually share state: the async IO scheduler,
# the chore pool + full pipeline, retries racing IO threads, the
# partitioned merge's concurrent range merges, and the fault campaign's
# storm of concurrent sorts.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-tsan -j "$(nproc)" --target \
  async_io_test chores_test alphasort_test merge_partition_test \
  retry_env_test fault_campaign_test obs_test throttled_env_test \
  sort_service_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" -R \
  '^(async_io_test|chores_test|alphasort_test|merge_partition_test|retry_env_test|fault_campaign_test|obs_test|throttled_env_test|sort_service_test)$'

echo
echo "=== fault-campaign smoke: 32 seeded storms must never lie ==="
# Each seed sorts through a randomized fault plan (transient faults,
# short reads, partial writes, silent scratch corruption, dead stripe
# members). Exit is non-zero on any wrong-output or leaked scratch file.
./build/examples/fault_campaign --mem --seeds 32

echo
echo "=== observability smoke: asort --trace/--report on an in-memory input ==="
# --workers 3 so chores actually queue (workers=0 runs chores inline and
# never emits the chores.queue_depth counter the lint below requires).
./build/examples/asort --mem --gen-records 100000 --workers 3 \
  --in smoke_in.dat --out smoke_out.dat \
  --trace=ci-artifacts/trace.json --report=ci-artifacts/report.json \
  --verify --metrics
# The trace must parse as a Chrome trace, show the pipeline's overlap
# (reads, QuickSorts, merge batches, and gather slices on distinct
# threads), carry the queue-depth counter tracks, be time-sorted per
# thread, and stamp pipeline spans with the ambient job id (asort runs
# through Sorter, so its spans carry args.job = 1; cross-job span
# nesting is always rejected).
./build/examples/trace_lint ci-artifacts/trace.json \
  --require read --require quicksort --require merge --require gather \
  --require-counter aio.queue_depth --require-counter chores.queue_depth \
  --require-job sort.run --require-job quicksort --require-job merge \
  --distinct-threads 3
# The report must carry the full v1 sort-report schema: phase breakdown
# summing to the total, IO percentiles, registry delta, and hardware
# counters populated or explicitly unavailable.
./build/examples/report_lint ci-artifacts/report.json

echo
echo "=== service smoke: 4 concurrent jobs + a cancel under one budget ==="
# The SortService gate (docs/service.md): four jobs whose summed budgets
# exceed the service budget run concurrently, plus a fifth cancelled
# right after submit. Exit is non-zero if any surviving job fails or
# produces unsorted output, if the cancel ends dirty, if peak admitted
# bytes ever exceeded the budget, or if a scratch file leaks.
./build/examples/sort_service --smoke

echo
echo "=== exposition smoke: scrape + log + flight artifacts validate ==="
# The same service smoke, now capturing the observability surfaces
# (docs/observability.md): a Prometheus-text exposition scrape polled
# while the jobs run, a structured-log JSONL capture, and a
# flight-recorder capture. Each artifact must round-trip through its
# format validator; the scrape must show the service actually worked
# (nonzero submissions, job 1 finished at permille 1000), and the log
# must carry the admission-lifecycle events.
./build/examples/sort_service --smoke \
  --expo ci-artifacts/exposition.txt \
  --log-jsonl ci-artifacts/service_log.jsonl \
  --flight ci-artifacts/service_flight.jsonl
./build/examples/expo_lint ci-artifacts/exposition.txt \
  --require-nonzero alphasort_svc_jobs_submitted \
  --require-nonzero alphasort_svc_job_1_permille
./build/examples/expo_lint ci-artifacts/service_flight.jsonl --flight
./build/examples/log_lint ci-artifacts/service_log.jsonl \
  --require-event svc.submit --require-event svc.admit \
  --require-event job.start --require-event svc.complete
# Log-sink smoke: a 10k-event burst through one call site must be capped
# at the rate limiter's window budget with exact suppressed accounting.
./build/examples/log_lint --burst

echo
echo "=== sort_top smoke: live progress/ETA over an oversubscribed service ==="
# The monitor consumes only the exposition text (pipeline -> progress
# tracker -> registry -> exposition, end to end): 4 jobs over 2 runners,
# polled continuously. Exit is non-zero if any job fails, a fraction
# regresses between scrapes, no live progress is ever observed, or any
# terminal svc.job.<id>.permille gauge is not 1000.
./build/examples/sort_top --smoke

echo
echo "=== bench smoke: scripts/bench.sh --smoke -> BENCH_smoke.json ==="
# The committed BENCH_smoke.json is the baseline; keep it aside so the
# fresh run can be compared against it, then restore it (the trajectory
# file only changes when a PR deliberately re-baselines).
baseline=""
if [[ -f BENCH_smoke.json ]]; then
  baseline="$(mktemp /tmp/alphasort_bench_base.XXXXXX.json)"
  trap 'rm -f "$baseline"' EXIT
  cp BENCH_smoke.json "$baseline"
fi
./scripts/bench.sh --smoke
cp BENCH_smoke.json ci-artifacts/BENCH_smoke.json
if [[ -n "$baseline" ]]; then
  # Informational: CI machines are shared and noisy, so regressions warn
  # in the log (and the uploaded artifact) instead of failing the gate.
  python3 scripts/bench_compare.py "$baseline" BENCH_smoke.json \
    --warn-only --threshold 0.5
  cp "$baseline" BENCH_smoke.json
fi

echo
echo "=== kernel bench smoke: hot kernels vs committed BENCH_kernels.json ==="
# The kernels suite runs at fixed Datamation scale even under smoke
# (docs/perf.md), so the fresh run and the committed baseline always
# produce comparable (suite, config) pairs for bench_compare. Warn-only
# for the same shared-machine-noise reason as the bench smoke above.
./build/examples/bench_report --suite kernels --name kernels \
  --out ci-artifacts/BENCH_kernels.json
./build/examples/report_lint ci-artifacts/BENCH_kernels.json
python3 scripts/bench_compare.py BENCH_kernels.json \
  ci-artifacts/BENCH_kernels.json --warn-only --threshold 0.5

echo
echo "CI: all gates passed."
