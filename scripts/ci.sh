#!/usr/bin/env bash
# CI gates, runnable whole or one stage at a time:
#
#   ./scripts/ci.sh                  # every stage, serially (local use)
#   ./scripts/ci.sh --stage=tier1    # build + full test suite
#   ./scripts/ci.sh --stage=sanitizers  # ASan+UBSan suite, TSan suites
#   ./scripts/ci.sh --stage=smokes   # fault/obs/service/net smoke gates
#   ./scripts/ci.sh --stage=api      # strict-deprecation build + lints
#   ./scripts/ci.sh --stage=bench    # bench trajectories vs baselines
#
# The stages are independent (each configures the build trees it needs),
# so .github/workflows/ci.yml fans them out as parallel matrix jobs.
# Machine-readable outputs land in ci-artifacts/ for workflow upload.
#
# Long-running service suites carry ctest TIMEOUT properties
# (tests/CMakeLists.txt); every ctest run here exports
# ALPHASORT_TEST_FLIGHT_DIR so a binary that times out leaves a
# flight-recorder capture behind, whose tail is printed on failure.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p ci-artifacts

# --- helpers ---------------------------------------------------------

# ctest with flight recordings: service tests sample the metrics
# registry into ci-artifacts/test-flight/ (tests/test_flight.h); on any
# failure -- a TIMEOUT kill especially -- the last samples say what the
# service was doing.
run_ctest() {
  local dir=$1
  shift
  mkdir -p ci-artifacts/test-flight
  if ! ALPHASORT_TEST_FLIGHT_DIR="$PWD/ci-artifacts/test-flight" \
      ctest --test-dir "$dir" --output-on-failure -j "$(nproc)" "$@"; then
    echo
    echo "--- flight-recorder tails (last 3 samples per test binary) ---"
    for f in ci-artifacts/test-flight/*.flight.jsonl; do
      [[ -f "$f" ]] || continue
      echo "== $f"
      tail -n 3 "$f"
    done
    return 1
  fi
}

# --- stage: tier1 ----------------------------------------------------

stage_tier1() {
  echo "=== tier 1: build + tests ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)"
  run_ctest build

  echo
  echo "=== tier 1: forced-scalar build (ALPHASORT_FORCE_SCALAR) ==="
  # The SIMD shim's scalar fallback (src/common/simd.h) must stay a
  # first-class citizen: every sort kernel, the parity fuzz suite, and
  # the pipeline CRC checks rerun with the vector paths compiled out.
  # Bounded to the sort-focused suites -- the rest of the tree never
  # touches the shim.
  cmake -B build-scalar -S . -DALPHASORT_FORCE_SCALAR=ON >/dev/null
  cmake --build build-scalar -j "$(nproc)" --target \
    simd_test radix_partition_test quicksort_test partition_sort_test \
    merge_partition_test alphasort_test
  run_ctest build-scalar -R \
    '^(simd_test|radix_partition_test|quicksort_test|partition_sort_test|merge_partition_test|alphasort_test)$'
}

# --- stage: sanitizers ----------------------------------------------

stage_sanitizers() {
  echo "=== sanitizers: ASan + UBSan test suite ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    >/dev/null
  cmake --build build-asan -j "$(nproc)"
  run_ctest build-asan

  echo
  echo "=== sanitizers: TSan over the concurrency-heavy suites ==="
  # The suites where threads actually share state: the async IO
  # scheduler, the chore pool + full pipeline, retries racing IO
  # threads, the partitioned merge's concurrent range merges, the fault
  # campaign's storm of concurrent sorts, and the networked service's
  # connection threads against the shared SortService.
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target \
    async_io_test chores_test alphasort_test merge_partition_test \
    retry_env_test fault_campaign_test obs_test throttled_env_test \
    sort_service_test net_service_test
  run_ctest build-tsan -R \
    '^(async_io_test|chores_test|alphasort_test|merge_partition_test|retry_env_test|fault_campaign_test|obs_test|throttled_env_test|sort_service_test|net_service_test)$'
}

# --- stage: smokes ---------------------------------------------------

stage_smokes() {
  echo "=== smokes: build ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)" --target \
    fault_campaign asort trace_lint trace_merge report_lint expo_lint \
    log_lint sort_service sort_top sort_serverd sort_loadgen

  echo
  echo "=== fault-campaign smoke: 32 seeded storms must never lie ==="
  # Each seed sorts through a randomized fault plan (transient faults,
  # short reads, partial writes, silent scratch corruption, dead stripe
  # members). Exit is non-zero on any wrong-output or leaked scratch
  # file.
  ./build/examples/fault_campaign --mem --seeds 32

  echo
  echo "=== observability smoke: asort --trace/--report on an in-memory input ==="
  # --workers 3 so chores actually queue (workers=0 runs chores inline
  # and never emits the chores.queue_depth counter the lint below
  # requires).
  ./build/examples/asort --mem --gen-records 100000 --workers 3 \
    --in smoke_in.dat --out smoke_out.dat \
    --trace=ci-artifacts/trace.json --report=ci-artifacts/report.json \
    --verify --metrics
  # The trace must parse as a Chrome trace, show the pipeline's overlap
  # (reads, QuickSorts, merge batches, and gather slices on distinct
  # threads), carry the queue-depth counter tracks, be time-sorted per
  # thread, and stamp pipeline spans with the ambient job id (asort runs
  # through Sorter, so its spans carry args.job = 1; cross-job span
  # nesting is always rejected).
  ./build/examples/trace_lint ci-artifacts/trace.json \
    --require read --require quicksort --require merge --require gather \
    --require-counter aio.queue_depth --require-counter chores.queue_depth \
    --require-job sort.run --require-job quicksort --require-job merge \
    --distinct-threads 3
  # The report must carry the full v1 sort-report schema: phase
  # breakdown summing to the total, IO percentiles, registry delta, and
  # hardware counters populated or explicitly unavailable.
  ./build/examples/report_lint ci-artifacts/report.json

  echo
  echo "=== service smoke: 4 concurrent jobs + a cancel under one budget ==="
  # The SortService gate (docs/service.md): four jobs whose summed
  # budgets exceed the service budget run concurrently, plus a fifth
  # cancelled right after submit. Exit is non-zero if any surviving job
  # fails or produces unsorted output, if the cancel ends dirty, if peak
  # admitted bytes ever exceeded the budget, or if a scratch file leaks.
  ./build/examples/sort_service --smoke

  echo
  echo "=== exposition smoke: scrape + log + flight artifacts validate ==="
  # The same service smoke, now capturing the observability surfaces
  # (docs/observability.md): a Prometheus-text exposition scrape polled
  # while the jobs run, a structured-log JSONL capture, and a
  # flight-recorder capture. Each artifact must round-trip through its
  # format validator; the scrape must show the service actually worked
  # (nonzero submissions, job 1 finished at permille 1000), and the log
  # must carry the admission-lifecycle events.
  ./build/examples/sort_service --smoke \
    --expo ci-artifacts/exposition.txt \
    --log-jsonl ci-artifacts/service_log.jsonl \
    --flight ci-artifacts/service_flight.jsonl
  ./build/examples/expo_lint ci-artifacts/exposition.txt \
    --require-nonzero alphasort_svc_jobs_submitted \
    --require-nonzero alphasort_svc_job_1_permille
  ./build/examples/expo_lint ci-artifacts/service_flight.jsonl --flight
  ./build/examples/log_lint ci-artifacts/service_log.jsonl \
    --require-event svc.submit --require-event svc.admit \
    --require-event job.start --require-event svc.complete
  # Log-sink smoke: a 10k-event burst through one call site must be
  # capped at the rate limiter's window budget with exact suppressed
  # accounting.
  ./build/examples/log_lint --burst

  echo
  echo "=== sort_top smoke: live progress/ETA over an oversubscribed service ==="
  # The monitor consumes only the exposition text (pipeline -> progress
  # tracker -> registry -> exposition, end to end): 4 jobs over 2
  # runners, polled continuously. Exit is non-zero if any job fails, a
  # fraction regresses between scrapes, no live progress is ever
  # observed, or any terminal svc.job.<id>.permille gauge is not 1000.
  ./build/examples/sort_top --smoke

  echo
  echo "=== net smoke: sort_serverd + sort_loadgen --smoke (docs/net.md) ==="
  # The networked-service gate: a daemon over an in-memory Env, then the
  # loadgen's smoke plan -- 100 concurrent small tenants, 2 big tenants,
  # 1 mid-stream disconnect, 1 greedy tenant that must be quota-rejected
  # with Unavailable (32MB bucket < its 40MB job). The loadgen exits
  # non-zero on any unsorted output, un-backed-off rejection, or gauge
  # residue; the daemon exits non-zero if a spool or scratch file
  # outlives its job. Both exits gate. Refill is slowed to 1 MB/s so the
  # disconnect tenant's refund probe sees the refund itself, not the
  # bucket refilling over the top of a leak (greedy rejection is
  # capacity-based, so the slow refill does not touch it).
  rm -f ci-artifacts/serverd.port
  ./build/examples/sort_serverd --mem --port 0 \
    --port-file ci-artifacts/serverd.port \
    --running 4 --queued 128 --max-conns 256 --quota-mb 32 \
    --quota-refill-mbps 1 \
    --expo ci-artifacts/net_exposition.txt \
    --log-jsonl ci-artifacts/net_server_log.jsonl &
  local serverd_pid=$!
  for _ in $(seq 1 100); do
    [[ -s ci-artifacts/serverd.port ]] && break
    sleep 0.1
  done
  [[ -s ci-artifacts/serverd.port ]] || {
    echo "FAIL: sort_serverd never published its port" >&2
    kill -KILL "$serverd_pid" 2>/dev/null || true
    return 1
  }
  local loadgen_rc=0
  ./build/examples/sort_loadgen --port-file ci-artifacts/serverd.port \
    --smoke --report ci-artifacts/BENCH_net_smoke.json || loadgen_rc=$?
  kill -TERM "$serverd_pid" 2>/dev/null || true
  local serverd_rc=0
  wait "$serverd_pid" || serverd_rc=$?
  if [[ "$loadgen_rc" -ne 0 ]]; then
    echo "FAIL: sort_loadgen exited $loadgen_rc" >&2
    return 1
  fi
  if [[ "$serverd_rc" -ne 0 ]]; then
    echo "FAIL: sort_serverd exited $serverd_rc (leaked spool/scratch?)" >&2
    return 1
  fi
  # The latency artifact must be a valid BenchReport; its numbers ride
  # along in ci-artifacts/ for trend-watching.
  ./build/examples/report_lint ci-artifacts/BENCH_net_smoke.json
  ./build/examples/expo_lint ci-artifacts/net_exposition.txt \
    --require-nonzero alphasort_net_conns_accepted \
    --require-nonzero alphasort_net_jobs_completed

  echo
  echo "=== trace-merge smoke: client + server traces join on one timeline ==="
  # The distributed-tracing gate (docs/observability.md): a small traced
  # run where both sides export Chrome traces around the v2 HELLO
  # clock-sync handshake, trace_merge aligns them onto one timeline, and
  # trace_lint requires the client's submit span and the server's
  # stream-back span to both carry a nonzero args.trace_id — the
  # cross-process join the trace ids exist for. The merged timeline is
  # uploaded with the rest of ci-artifacts/.
  rm -f ci-artifacts/serverd_traced.port
  ./build/examples/sort_serverd --mem --port 0 \
    --port-file ci-artifacts/serverd_traced.port \
    --running 2 --max-conns 16 \
    --trace ci-artifacts/net_server_trace.json &
  local traced_pid=$!
  for _ in $(seq 1 100); do
    [[ -s ci-artifacts/serverd_traced.port ]] && break
    sleep 0.1
  done
  [[ -s ci-artifacts/serverd_traced.port ]] || {
    echo "FAIL: traced sort_serverd never published its port" >&2
    kill -KILL "$traced_pid" 2>/dev/null || true
    return 1
  }
  local traced_loadgen_rc=0
  ./build/examples/sort_loadgen \
    --port-file ci-artifacts/serverd_traced.port \
    --clients 4 --jobs 2 --records 5000 \
    --trace ci-artifacts/net_client_trace.json || traced_loadgen_rc=$?
  kill -TERM "$traced_pid" 2>/dev/null || true
  local traced_serverd_rc=0
  wait "$traced_pid" || traced_serverd_rc=$?
  if [[ "$traced_loadgen_rc" -ne 0 || "$traced_serverd_rc" -ne 0 ]]; then
    echo "FAIL: traced run (loadgen rc=$traced_loadgen_rc," \
      "serverd rc=$traced_serverd_rc)" >&2
    return 1
  fi
  ./build/examples/trace_merge ci-artifacts/net_client_trace.json \
    ci-artifacts/net_server_trace.json \
    -o ci-artifacts/net_merged_trace.json
  ./build/examples/trace_lint ci-artifacts/net_merged_trace.json \
    --require net.submit --require net.ingest --require net.stream_back \
    --require-trace-id net.submit --require-trace-id net.stream_back
}

# --- stage: api ------------------------------------------------------

stage_api() {
  echo "=== api: strict-deprecation build of the example/bench surface ==="
  # docs/api.md: the one-shot AlphaSort::Run shim is [[deprecated]] under
  # ALPHASORT_STRICT_DEPRECATION. Everything a user copies from — the
  # examples, benches, and daemons — must live on the Sorter/RecordSource
  # API, so they build here with the warning promoted to an error. The
  # test suite deliberately keeps calling the shim (it is covered API),
  # so tests are excluded from this build's targets.
  cmake -B build-api -S . \
    -DCMAKE_CXX_FLAGS="-DALPHASORT_STRICT_DEPRECATION -Werror=deprecated-declarations" \
    >/dev/null
  cmake --build build-api -j "$(nproc)" --target \
    quickstart asort minute_sort datamation_sort bench_report \
    sort_serverd sort_loadgen sort_top trace_merge \
    report_lint expo_lint trace_lint

  echo
  echo "=== api: streamed-ingest smoke + lints over its artifacts ==="
  # The strict-built daemon serves a small traced run over the spool-free
  # path; every observability artifact it emits must lint: the loadgen's
  # BenchReport (report_lint), the server's Prometheus exposition
  # (expo_lint), and the merged client+server trace (trace_lint), which
  # must carry net.ingest spans — the upload feeding the sort directly,
  # not a spool stage.
  rm -f ci-artifacts/serverd_api.port
  ./build-api/examples/sort_serverd --mem --port 0 \
    --port-file ci-artifacts/serverd_api.port \
    --running 2 --max-conns 16 \
    --expo ci-artifacts/api_exposition.txt \
    --trace ci-artifacts/api_server_trace.json &
  local api_pid=$!
  for _ in $(seq 1 100); do
    [[ -s ci-artifacts/serverd_api.port ]] && break
    sleep 0.1
  done
  [[ -s ci-artifacts/serverd_api.port ]] || {
    echo "FAIL: api-stage sort_serverd never published its port" >&2
    kill -KILL "$api_pid" 2>/dev/null || true
    return 1
  }
  local api_loadgen_rc=0
  ./build-api/examples/sort_loadgen \
    --port-file ci-artifacts/serverd_api.port \
    --clients 4 --jobs 2 --records 5000 \
    --report ci-artifacts/BENCH_api_smoke.json \
    --trace ci-artifacts/api_client_trace.json || api_loadgen_rc=$?
  kill -TERM "$api_pid" 2>/dev/null || true
  local api_serverd_rc=0
  wait "$api_pid" || api_serverd_rc=$?
  if [[ "$api_loadgen_rc" -ne 0 || "$api_serverd_rc" -ne 0 ]]; then
    echo "FAIL: api smoke (loadgen rc=$api_loadgen_rc," \
      "serverd rc=$api_serverd_rc)" >&2
    return 1
  fi
  ./build-api/examples/report_lint ci-artifacts/BENCH_api_smoke.json
  ./build-api/examples/expo_lint ci-artifacts/api_exposition.txt \
    --require-nonzero alphasort_net_jobs_completed
  ./build-api/examples/trace_merge ci-artifacts/api_client_trace.json \
    ci-artifacts/api_server_trace.json \
    -o ci-artifacts/api_merged_trace.json
  ./build-api/examples/trace_lint ci-artifacts/api_merged_trace.json \
    --require net.submit --require net.ingest --require net.stream_back
}

# --- stage: bench ----------------------------------------------------

stage_bench() {
  echo "=== bench: build ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)" --target bench_report report_lint

  echo
  echo "=== bench smoke: scripts/bench.sh --smoke -> BENCH_smoke.json ==="
  # The committed BENCH_smoke.json is the baseline; keep it aside so the
  # fresh run can be compared against it, then restore it (the
  # trajectory file only changes when a PR deliberately re-baselines).
  local baseline=""
  if [[ -f BENCH_smoke.json ]]; then
    baseline="$(mktemp /tmp/alphasort_bench_base.XXXXXX.json)"
    trap 'rm -f "$baseline"' RETURN
    cp BENCH_smoke.json "$baseline"
  fi
  ./scripts/bench.sh --smoke
  cp BENCH_smoke.json ci-artifacts/BENCH_smoke.json
  if [[ -n "$baseline" ]]; then
    # Informational: CI machines are shared and noisy, so wall-clock
    # regressions warn in the log (and the uploaded artifact) instead
    # of failing the gate.
    python3 scripts/bench_compare.py "$baseline" BENCH_smoke.json \
      --warn-only --threshold 0.5
    cp "$baseline" BENCH_smoke.json
  fi

  echo
  echo "=== kernel bench gate: hot kernels vs committed BENCH_kernels.json ==="
  # Two-tier enforcement (docs/perf.md): wall-clock metrics stay
  # warn-only (shared machines are noisy), but structural metrics (runs,
  # ranges, ...) and the partitioned merge's critical path are promoted
  # to failing with a wide 60% tolerance band -- those only move that
  # far when the code's shape changed, not the machine's weather.
  ./build/examples/bench_report --suite kernels --name kernels \
    --out ci-artifacts/BENCH_kernels.json
  ./build/examples/report_lint ci-artifacts/BENCH_kernels.json
  python3 scripts/bench_compare.py BENCH_kernels.json \
    ci-artifacts/BENCH_kernels.json --warn-only --threshold 0.5 \
    --fail-on structural --fail-on critical_path_s --band 0.6

  echo
  echo "=== net bench: wire-path suite vs committed BENCH_net.json ==="
  # Full wire path (frame + streamed ingest + sort + stream-back) at the
  # committed
  # shapes. Job accounting is structural -- every configured job must
  # keep succeeding -- while latency percentiles warn only.
  ./build/examples/bench_report --suite net --name net \
    --out ci-artifacts/BENCH_net.json
  ./build/examples/report_lint ci-artifacts/BENCH_net.json
  if [[ -f BENCH_net.json ]]; then
    python3 scripts/bench_compare.py BENCH_net.json \
      ci-artifacts/BENCH_net.json --warn-only --threshold 0.5 \
      --fail-on structural --band 0.6
  fi

  echo
  echo "=== ingest bench: source comparison vs committed BENCH_ingest.json ==="
  # The streaming-ingest front end (docs/api.md) at the resident-input
  # shape: file (readahead ring) vs mmap (zero-copy) vs stream (bounded
  # producer). Wall-clock warns only — shared CI machines can't hold the
  # mmap-beats-file margin reliably; the committed baseline records it.
  ./build/examples/bench_report --suite ingest --name ingest \
    --out ci-artifacts/BENCH_ingest.json
  ./build/examples/report_lint ci-artifacts/BENCH_ingest.json
  if [[ -f BENCH_ingest.json ]]; then
    python3 scripts/bench_compare.py BENCH_ingest.json \
      ci-artifacts/BENCH_ingest.json --warn-only --threshold 0.5
  fi
}

# --- driver ----------------------------------------------------------

stage="all"
for arg in "$@"; do
  case "$arg" in
    --stage=*) stage="${arg#--stage=}" ;;
    *)
      echo "usage: $0 [--stage=tier1|sanitizers|smokes|api|bench]" >&2
      exit 2
      ;;
  esac
done

case "$stage" in
  tier1) stage_tier1 ;;
  sanitizers) stage_sanitizers ;;
  smokes) stage_smokes ;;
  api) stage_api ;;
  bench) stage_bench ;;
  all)
    stage_tier1
    echo
    stage_sanitizers
    echo
    stage_smokes
    echo
    stage_api
    echo
    stage_bench
    ;;
  *)
    echo "usage: $0 [--stage=tier1|sanitizers|smokes|api|bench]" >&2
    exit 2
    ;;
esac

echo
echo "CI: stage '$stage' passed."
