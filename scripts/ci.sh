#!/usr/bin/env bash
# CI gate: tier-1 build + tests, sanitizer passes (ASan+UBSan suite, TSan
# over the concurrency-heavy suites), a fault-campaign smoke gate
# (docs/fault_tolerance.md), and an observability smoke that sorts 100k
# records under --trace and validates the emitted Chrome trace JSON
# (docs/observability.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier 1: build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo
echo "=== sanitizers: ASan + UBSan test suite ==="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-asan -j "$(nproc)"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo
echo "=== sanitizers: TSan over the concurrency-heavy suites ==="
# The suites where threads actually share state: the async IO scheduler,
# the chore pool + full pipeline, retries racing IO threads, and the
# fault campaign's storm of concurrent sorts.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-tsan -j "$(nproc)" --target \
  async_io_test chores_test alphasort_test retry_env_test \
  fault_campaign_test obs_test throttled_env_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" -R \
  '^(async_io_test|chores_test|alphasort_test|retry_env_test|fault_campaign_test|obs_test|throttled_env_test)$'

echo
echo "=== fault-campaign smoke: 32 seeded storms must never lie ==="
# Each seed sorts through a randomized fault plan (transient faults,
# short reads, partial writes, silent scratch corruption, dead stripe
# members). Exit is non-zero on any wrong-output or leaked scratch file.
./build/examples/fault_campaign --mem --seeds 32

echo
echo "=== observability smoke: asort --trace on an in-memory input ==="
trace="$(mktemp /tmp/alphasort_trace.XXXXXX.json)"
trap 'rm -f "$trace"' EXIT
./build/examples/asort --mem --gen-records 100000 \
  --in smoke_in.dat --out smoke_out.dat \
  --trace="$trace" --verify --metrics
# The trace must parse as a Chrome trace and show the pipeline's overlap:
# reads, QuickSorts, merge batches, and gather slices on distinct threads.
./build/examples/trace_lint "$trace" \
  --require read --require quicksort --require merge --require gather \
  --distinct-threads 3

echo
echo "CI: all gates passed."
