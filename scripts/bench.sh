#!/usr/bin/env bash
# Runs the canonical benchmark suite (examples/bench_report) and writes
# BENCH_<name>.json at the repo root — the unit of the perf trajectory
# that successive changes are compared against (scripts/bench_compare.py).
#
#   scripts/bench.sh [--smoke] [--name NAME] [--build-dir DIR]
#                    [--suite NAME]... [--workers K]
#
# --smoke shrinks every suite's input so the whole run takes seconds
# (what scripts/ci.sh gates on); the default full run takes minutes.
# The written file is validated with report_lint before the script
# reports success.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=build
smoke=""
name=""
passthrough=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke="--smoke"; shift ;;
    --name) name="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --suite|--workers) passthrough+=("$1" "$2"); shift 2 ;;
    *) echo "usage: $0 [--smoke] [--name NAME] [--build-dir DIR]" \
           "[--suite NAME]... [--workers K]" >&2; exit 2 ;;
  esac
done
if [[ -z "$name" ]]; then
  if [[ -n "$smoke" ]]; then name=smoke; else name=full; fi
fi

cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j "$(nproc)" --target bench_report report_lint

out="BENCH_${name}.json"
"./$build_dir/examples/bench_report" $smoke --name "$name" --out "$out" \
  ${passthrough[@]+"${passthrough[@]}"}
"./$build_dir/examples/report_lint" "$out"
echo "bench.sh: wrote $out"
