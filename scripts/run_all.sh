#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure

echo "=== benches (every paper table and figure) ==="
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo
    echo "##### $(basename "$b") #####"
    "$b"
  fi
done

echo
echo "=== examples smoke ==="
./build/examples/quickstart
./build/examples/typed_keys
