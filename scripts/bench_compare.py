#!/usr/bin/env python3
"""Compares two BENCH_*.json perf-trajectory files.

    scripts/bench_compare.py BASELINE NEW [--threshold FRAC] [--warn-only]

Entries are matched by (suite, config); for every metric present in both
the relative change is printed, and a change past --threshold (default
0.25, i.e. 25%) in the *worse* direction fails the comparison. Metrics
named *_s or *_ms or named "seconds" are lower-is-better (times);
everything else (throughputs, counts) is higher-is-better. Structural
metrics (runs, avg_run_over_W, ties_per_record) describe the workload,
not its speed, and are compared for drift in either direction.

Exit status: 0 when no regression (or --warn-only), 1 on regression,
2 on usage/schema errors. CI runs this informationally (--warn-only)
because its machines are shared and noisy; the printed table is the
artifact that matters.
"""

import argparse
import json
import sys

# Workload-shape metrics: a drift in either direction is suspicious (the
# benchmark is no longer measuring the same thing), but neither direction
# is "better". The service suite's admission telemetry is structural too:
# peak admitted bytes and down-negotiation counts are facts about the
# arbitration shape, not speed.
STRUCTURAL = {
    "runs",
    "avg_run_over_W",
    "ties_per_record",
    "peak_admitted_mb",
    "down_negotiated",
    # The kernels suite's partitioned merge: how many key ranges the
    # partitioner actually produced. A drift means the splitter sampling
    # changed shape, not that the merge got faster or slower.
    "ranges",
}


def lower_is_better(metric: str) -> bool:
    return (
        metric == "seconds"
        or metric.endswith("_s")
        or metric.endswith("_ms")
        or metric.endswith("_us")
    )


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("kind") != "alphasort.bench_report":
        sys.exit(f"bench_compare: {path} is not an alphasort.bench_report")
    if doc.get("schema_version") != 1:
        sys.exit(
            f"bench_compare: {path} has schema_version "
            f"{doc.get('schema_version')}, this reader understands 1"
        )
    entries = {}
    for entry in doc.get("suites", []):
        entries[(entry["suite"], entry["config"])] = entry["metrics"]
    return entries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative change that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print regressions but always exit 0",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    new = load(args.new)

    regressions = []
    compared = 0
    header = f"{'suite/config':<52} {'metric':<16} {'base':>12} {'new':>12} {'change':>8}"
    print(header)
    print("-" * len(header))
    for key in sorted(base.keys() & new.keys()):
        suite, config = key
        label = f"{suite}: {config}"
        for metric in sorted(base[key].keys() & new[key].keys()):
            b, n = base[key][metric], new[key][metric]
            if b == 0:
                change = 0.0 if n == 0 else float("inf")
            else:
                change = (n - b) / abs(b)
            compared += 1
            if metric in STRUCTURAL:
                worse = abs(change) > args.threshold
            elif lower_is_better(metric):
                worse = change > args.threshold
            else:
                worse = change < -args.threshold
            flag = "  <-- REGRESSION" if worse else ""
            print(
                f"{label:<52} {metric:<16} {b:>12.6g} {n:>12.6g} "
                f"{change:>+7.1%}{flag}"
            )
            if worse:
                regressions.append((label, metric, change))

    only_base = sorted(base.keys() - new.keys())
    only_new = sorted(new.keys() - base.keys())
    for key in only_base:
        print(f"note: {key[0]}: {key[1]} only in {args.baseline}")
    for key in only_new:
        print(f"note: {key[0]}: {key[1]} only in {args.new}")
    if compared == 0:
        sys.exit("bench_compare: no comparable (suite, config) pairs")

    print()
    if regressions:
        print(
            f"bench_compare: {len(regressions)} regression(s) past "
            f"{args.threshold:.0%} across {compared} metric(s)"
        )
        return 0 if args.warn_only else 1
    print(f"bench_compare: OK ({compared} metric(s) within threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
