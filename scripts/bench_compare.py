#!/usr/bin/env python3
"""Compares two BENCH_*.json perf-trajectory files.

    scripts/bench_compare.py BASELINE NEW [--threshold FRAC] [--warn-only]
                             [--fail-on METRIC]... [--band FRAC]

Entries are matched by (suite, config); for every metric present in both
the relative change is printed, and a change past --threshold (default
0.25, i.e. 25%) in the *worse* direction counts as a regression. Metrics
named *_s or *_ms or *_us or named "seconds" are lower-is-better
(times); everything else (throughputs, counts) is higher-is-better.
Structural metrics (runs, avg_run_over_W, ties_per_record, ...) describe
the workload, not its speed, and are compared for drift in either
direction.

Two tiers of enforcement (docs/perf.md):

  * Ordinary metrics are advisory on shared CI machines: with
    --warn-only a regression prints but does not fail the run.
  * --fail-on METRIC promotes that metric to a hard gate that fails the
    run even under --warn-only. The special name "structural" promotes
    every structural metric at once. --band FRAC (default: the
    --threshold value) is the tolerance used for promoted metrics, so
    the hard gate can carry a wider noise band than the advisory tier.

Exit status: 0 when no enforced regression, 1 on an enforced regression
(any regression without --warn-only; a --fail-on regression always),
2 on usage/schema errors.
"""

import argparse
import json
import sys

# Workload-shape metrics: a drift in either direction is suspicious (the
# benchmark is no longer measuring the same thing), but neither direction
# is "better". The service suite's admission telemetry is structural too:
# peak admitted bytes and down-negotiation counts are facts about the
# arbitration shape, not speed.
STRUCTURAL = {
    "runs",
    "avg_run_over_W",
    "ties_per_record",
    "peak_admitted_mb",
    "down_negotiated",
    # The kernels suite's partitioned merge: how many key ranges the
    # partitioner actually produced. A drift means the splitter sampling
    # changed shape, not that the merge got faster or slower.
    "ranges",
    # The net suite's job accounting: every configured job must keep
    # succeeding; a drift means the harness shape changed.
    "jobs_ok",
    "jobs_failed",
    # The kernels suite's in-cache sort shape. simd_active says whether
    # the vector path actually ran (a silent fall-back to scalar would
    # otherwise read as a plain slowdown); radix_passes / tie_shortcuts
    # say how the MSB-radix hybrid split the runs. Drift in any of these
    # means the kernel changed shape, not just speed.
    "simd_active",
    "radix_passes",
    "tie_shortcuts",
}


def lower_is_better(metric: str) -> bool:
    # sim_* metrics are cache-simulator miss/stall counts: fewer is
    # always better regardless of the unit suffix.
    return (
        metric == "seconds"
        or metric.endswith("_s")
        or metric.endswith("_ms")
        or metric.endswith("_us")
        or metric.startswith("sim_")
    )


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if doc.get("kind") != "alphasort.bench_report":
        sys.exit(f"bench_compare: {path} is not an alphasort.bench_report")
    if doc.get("schema_version") != 1:
        sys.exit(
            f"bench_compare: {path} has schema_version "
            f"{doc.get('schema_version')}, this reader understands 1"
        )
    entries = {}
    for entry in doc.get("suites", []):
        entries[(entry["suite"], entry["config"])] = entry["metrics"]
    return entries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative change that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print ordinary regressions but do not fail on them "
        "(--fail-on metrics still fail)",
    )
    parser.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="METRIC",
        help="metric enforced even under --warn-only; repeatable; "
        '"structural" promotes every structural metric',
    )
    parser.add_argument(
        "--band",
        type=float,
        default=None,
        help="tolerance for --fail-on metrics (default: --threshold)",
    )
    args = parser.parse_args()

    fail_on = set(args.fail_on)
    band = args.band if args.band is not None else args.threshold

    base = load(args.baseline)
    new = load(args.new)

    def enforced(metric: str) -> bool:
        if metric in fail_on:
            return True
        return "structural" in fail_on and metric in STRUCTURAL

    soft = []
    hard = []
    compared = 0
    header = f"{'suite/config':<52} {'metric':<16} {'base':>12} {'new':>12} {'change':>8}"
    print(header)
    print("-" * len(header))
    for key in sorted(base.keys() & new.keys()):
        suite, config = key
        label = f"{suite}: {config}"
        for metric in sorted(base[key].keys() & new[key].keys()):
            b, n = base[key][metric], new[key][metric]
            if b == 0:
                change = 0.0 if n == 0 else float("inf")
            else:
                change = (n - b) / abs(b)
            compared += 1
            limit = band if enforced(metric) else args.threshold
            if metric in STRUCTURAL:
                worse = abs(change) > limit
            elif lower_is_better(metric):
                worse = change > limit
            else:
                worse = change < -limit
            if worse and enforced(metric):
                flag = "  <-- REGRESSION (enforced)"
                hard.append((label, metric, change))
            elif worse:
                flag = "  <-- REGRESSION"
                soft.append((label, metric, change))
            else:
                flag = ""
            print(
                f"{label:<52} {metric:<16} {b:>12.6g} {n:>12.6g} "
                f"{change:>+7.1%}{flag}"
            )

    only_base = sorted(base.keys() - new.keys())
    only_new = sorted(new.keys() - base.keys())
    for key in only_base:
        print(f"note: {key[0]}: {key[1]} only in {args.baseline}")
    for key in only_new:
        print(f"note: {key[0]}: {key[1]} only in {args.new}")
    if compared == 0:
        sys.exit("bench_compare: no comparable (suite, config) pairs")

    print()
    if hard:
        print(
            f"bench_compare: {len(hard)} enforced regression(s) past "
            f"{band:.0%} across {compared} metric(s)"
        )
        return 1
    if soft:
        print(
            f"bench_compare: {len(soft)} regression(s) past "
            f"{args.threshold:.0%} across {compared} metric(s)"
        )
        return 0 if args.warn_only else 1
    print(f"bench_compare: OK ({compared} metric(s) within threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
