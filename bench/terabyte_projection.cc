// Reproduces the §9 projection: "At a gigabyte-per-minute, it takes more
// than 16 hours to sort a terabyte... A terabyte-per-minute parallel sort
// is our long-term goal. That will need hundreds of fast processors,
// gigabytes of memory, thousands of disks, and a 20 GB/s interconnect."
// Sweeps scaled-up configurations through the pipeline model.

#include <cstdio>

#include "common/table.h"
#include "sim/cost_model.h"
#include "sim/pipeline_model.h"

using namespace alphasort;

int main() {
  printf("=== §9: the road to a terabyte sort ===\n\n");

  // Baseline: the MinuteSort machine at 1 GB/min.
  const auto base = hw::MinuteSortSystem();
  const double tb = 1e12;
  {
    const auto p = sim::PredictTwoPass(base, tb);
    printf("1993 MinuteSort machine (3 cpus, 36 disks): a 1 TB two-pass\n"
           "sort takes %.1f hours — the paper's 'more than 16 hours'.\n\n",
           p.total_s / 3600);
  }

  printf("--- scaling processors and disks (two-pass, 1 TB) ---\n\n");
  TextTable table({"cpus", "disks", "read MB/s", "memory GB", "time",
                   "aggregate disk+mem price"});
  struct Config {
    int cpus;
    int disks;
    int memory_gb;
  };
  for (const Config& c : {Config{3, 36, 1}, Config{12, 144, 4},
                          Config{48, 576, 16}, Config{192, 2304, 64},
                          Config{768, 9216, 256}}) {
    hw::AxpSystem sys = base;
    sys.cpus = c.cpus;
    sys.memory_mb = c.memory_gb * 1024;
    sys.array = DiskArray::Uniform("scaled", hw::Rz26(), hw::ScsiKzmsa(),
                                   c.disks, (c.disks + 3) / 4);
    const auto p = sim::PredictTwoPass(sys, tb);
    const double price = sys.array.PriceDollars() +
                         sys.memory_mb * cost::kMemoryDollarsPerMb;
    const double hours = p.total_s / 3600;
    table.AddRow({StrFormat("%d", c.cpus), StrFormat("%d", c.disks),
                  StrFormat("%.0f", sys.array.ReadMbps()),
                  StrFormat("%d", c.memory_gb),
                  hours >= 1 ? StrFormat("%.1f hr", hours)
                             : StrFormat("%.1f min", p.total_s / 60),
                  StrFormat("%.1f M$", price / 1e6)});
  }
  table.Print();

  printf(
      "\nShape check: disk scaling helps until the SINGLE merge root\n"
      "saturates (the curve flattens near 3 hours above ~50 cpus) — the\n"
      "shared-memory AlphaSort design does not reach terabyte-per-minute\n"
      "no matter how many disks are added. That is precisely why the\n"
      "paper's §9 goal calls for 'hundreds of fast processors... and a\n"
      "20 GB/s interconnect': a partitioned, shared-nothing merge.\n"
      "(History: sortbenchmark.org's first TB sort fell in 1998, the\n"
      "terabyte-minute in 2009 — the paper's 'five or ten years off'.)\n");
  return 0;
}
