// Reproduces the §5 shared-memory multiprocessor decomposition: the root
// does all IO while workers QuickSort runs and gather records. Sweeps the
// worker count on a real in-memory sort, and shows the model's account of
// the paper's 3-cpu speedup (9.1 s -> 7.0 s).

#include <cstdio>
#include <thread>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "sim/pipeline_model.h"

using namespace alphasort;

int main() {
  printf("=== §5: root/worker multiprocessor decomposition ===\n\n");

  const unsigned hw_threads = std::thread::hardware_concurrency();
  printf("--- real runs (500k records, in-memory files; this host has %u "
         "hardware thread%s) ---\n\n",
         hw_threads, hw_threads == 1 ? "" : "s");

  TextTable real({"workers", "read+qs (s)", "merge+gather (s)", "total (s)",
                  "speedup"});
  double base = 0;
  for (int workers : {0, 1, 2, 3}) {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = 500000;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;
    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    opts.num_workers = workers;
    opts.use_affinity = workers > 0;
    opts.memory_budget = 4ull << 30;
    SortMetrics m;
    if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (workers == 0) base = m.total_s;
    real.AddRow({StrFormat("%d", workers),
                 StrFormat("%.3f", m.read_phase_s),
                 StrFormat("%.3f", m.merge_phase_s),
                 StrFormat("%.3f", m.total_s),
                 StrFormat("%.2fx", base / m.total_s)});
  }
  real.Print();
  if (hw_threads <= 1) {
    printf("\n(one hardware thread: worker threads add coordination but no\n"
           "parallel speedup on this host — run on a multicore machine to\n"
           "see the scaling; the decomposition itself is exercised either\n"
           "way and validated by the test suite)\n");
  }

  printf("\n--- model: the paper's CPU scaling (Table 8 rows 1 vs 3) ---\n\n");
  TextTable model({"cpus", "model (s)", "paper (s)", "limit"});
  auto systems = hw::Table8Systems();
  struct Row { size_t idx; };
  for (size_t idx : {size_t{2}, size_t{0}}) {  // 1 cpu, then 3 cpus
    const auto& s = systems[idx];
    const auto p = sim::PredictOnePass(s, 100e6);
    model.AddRow({StrFormat("%d", s.cpus), StrFormat("%.1f", p.total_s),
                  StrFormat("%.1f", s.paper_seconds),
                  std::string(p.read_io_limited ? "read:io" : "read:cpu") +
                      " " + (p.write_io_limited ? "write:io" : "write:cpu")});
  }
  model.Print();

  printf(
      "\nShape check: with one cpu both phases are disk-bound; extra\n"
      "processors shift the merge+gather from CPU-bound toward the disks\n"
      "('the use of multi-processors speeds this merge step') — together\n"
      "with more disks that is the paper's 9.1 s -> 7.0 s.\n");
  return 0;
}
