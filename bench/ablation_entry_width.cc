// Ablation of the entry width: the paper's 8-byte (record address,
// key-prefix) pairs (§7) versus this library's default 16-byte (64-bit
// prefix, pointer) entries. Narrow entries pack twice as many per cache
// line; the 4-byte prefix collides at the birthday bound (~2^16 random
// keys) and then pays full-key compares.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/table.h"
#include "record/generator.h"
#include "sort/compact_entry.h"
#include "sort/quicksort.h"

using namespace alphasort;

namespace {

double TimedSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  printf("=== Ablation: 8-byte vs 16-byte sort entries ===\n\n");

  TextTable table({"n", "16B entry (ms)", "ties/rec", "8B entry (ms)",
                   "ties/rec", "8B vs 16B"});
  for (size_t n : {10000, 100000, 1000000, 4000000}) {
    RecordGenerator gen(kDatamationFormat, 44);
    const auto block = gen.Generate(KeyDistribution::kUniform, n);

    std::vector<PrefixEntry> wide(n);
    BuildPrefixEntryArray(kDatamationFormat, block.data(), n, wide.data());
    SortStats wide_stats;
    const double t_wide = TimedSeconds([&] {
      SortPrefixEntryArray(kDatamationFormat, wide.data(), n, &wide_stats);
    });

    std::vector<CompactEntry> narrow(n);
    BuildCompactEntryArray(kDatamationFormat, block.data(), n,
                           narrow.data());
    SortStats narrow_stats;
    const double t_narrow = TimedSeconds([&] {
      SortCompactEntryArray(kDatamationFormat, block.data(), narrow.data(),
                            n, &narrow_stats);
    });

    table.AddRow(
        {StrFormat("%zu", n), StrFormat("%.1f", t_wide * 1e3),
         StrFormat("%.3f", double(wide_stats.tie_breaks) / n),
         StrFormat("%.1f", t_narrow * 1e3),
         StrFormat("%.3f", double(narrow_stats.tie_breaks) / n),
         StrFormat("%.2fx", t_wide / t_narrow)});
  }
  table.Print();

  // Low-entropy leading bytes: the regime where prefix width matters.
  printf("\n--- keys sharing their first 4 bytes (low-entropy prefix) ---\n\n");
  TextTable low({"n", "16B entry (ms)", "ties/rec", "8B entry (ms)",
                 "ties/rec"});
  for (size_t n : {100000, 1000000}) {
    RecordGenerator gen(kDatamationFormat, 45);
    auto block = gen.Generate(KeyDistribution::kUniform, n);
    for (size_t i = 0; i < n; ++i) {
      memset(block.data() + i * 100, 'z', 4);  // kill the first 4 bytes
    }
    std::vector<PrefixEntry> wide(n);
    BuildPrefixEntryArray(kDatamationFormat, block.data(), n, wide.data());
    SortStats ws;
    const double tw = TimedSeconds(
        [&] { SortPrefixEntryArray(kDatamationFormat, wide.data(), n, &ws); });
    std::vector<CompactEntry> narrow(n);
    BuildCompactEntryArray(kDatamationFormat, block.data(), n,
                           narrow.data());
    SortStats ns;
    const double tn = TimedSeconds([&] {
      SortCompactEntryArray(kDatamationFormat, block.data(), narrow.data(),
                            n, &ns);
    });
    low.AddRow({StrFormat("%zu", n), StrFormat("%.1f", tw * 1e3),
                StrFormat("%.2f", double(ws.tie_breaks) / n),
                StrFormat("%.1f", tn * 1e3),
                StrFormat("%.2f", double(ns.tie_breaks) / n)});
  }
  low.Print();

  printf(
      "\nShape check: on the benchmark's random keys the paper's 8-byte\n"
      "pairs win ~15%% outright — half the entry traffic, and a 32-bit\n"
      "prefix of random bytes essentially never collides at these sizes\n"
      "(expected colliding pairs ~ n^2/2^33). The wide prefix earns its\n"
      "keep only when the leading key bytes carry little entropy: with\n"
      "the first 4 bytes constant, the 8-byte pair degenerates to pointer\n"
      "sort (one tie-break per compare) while the 64-bit prefix still\n"
      "discriminates — §4's 'good discriminator' requirement, applied to\n"
      "the prefix width.\n");
  return 0;
}
