// Ablation of the QuickSort run size (§4): "the optimal run size balances
// the time lost waiting for the first run plus time lost QuickSorting the
// last run, against the time to merge another run during the second
// phase." Sweeps the run size on a real end-to-end sort and reports phase
// times, run counts, and merge compares.

#include <cstdio>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"

using namespace alphasort;

int main() {
  printf("=== Ablation: QuickSort run size (merge fan-in trade-off) ===\n");
  const uint64_t records = 500000;  // 50 MB
  printf("(%llu records, in-memory files, serial)\n\n",
         static_cast<unsigned long long>(records));

  TextTable table({"run size", "runs", "read+qs (s)", "last run (s)",
                   "merge (s)", "total (s)", "merge cmp/rec"});
  for (size_t run_size : {5000, 20000, 50000, 100000, 250000, 500000}) {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = records;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;

    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    opts.run_size_records = run_size;
    opts.memory_budget = 4ull << 30;
    SortMetrics m;
    if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    table.AddRow(
        {StrFormat("%zu", run_size),
         StrFormat("%llu", static_cast<unsigned long long>(m.num_runs)),
         StrFormat("%.3f", m.read_phase_s), StrFormat("%.3f", m.last_run_s),
         StrFormat("%.3f", m.merge_phase_s), StrFormat("%.3f", m.total_s),
         StrFormat("%.2f",
                   static_cast<double>(m.merge_stats.compares) / records)});
  }
  table.Print();

  printf(
      "\nShape check: tiny runs push work into the merge — compares per\n"
      "record grow with log2(#runs), visible in the last column. On real\n"
      "disks the other side of the trade-off appears too: one giant run\n"
      "cannot overlap the read and pays a long 'last run' stall, which is\n"
      "why the paper picks 'between ten and one hundred runs'. (In-memory\n"
      "files make reads nearly free, so the stall side is muted here;\n"
      "rerun against real files to see both sides.)\n");
  return 0;
}
