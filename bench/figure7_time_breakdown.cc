// Reproduces Figure 7: "where the time goes". Two views:
//   1. A real end-to-end AlphaSort run (in-memory Env, Datamation-sized
//      input scaled by ALPHASORT_F7_RECORDS) with the measured wall-clock
//      phase breakdown of §7.
//   2. The cache simulator's account of the memory references behind the
//      sort kernels, giving the D-hit / B-hit / memory split that explains
//      the paper's "the processor spends most of its time waiting for
//      memory" (29% issuing, 56% D-stream misses, 11% I-stream, 4% branch).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "sim/cache_sim.h"
#include "sim/stall_model.h"
#include "sort/merger.h"
#include "sort/quicksort.h"

using namespace alphasort;

namespace {

uint64_t RecordsFromEnv() {
  const char* v = getenv("ALPHASORT_F7_RECORDS");
  return v != nullptr ? strtoull(v, nullptr, 10) : 1000000;
}

}  // namespace

int main() {
  const uint64_t n = RecordsFromEnv();
  printf("=== Figure 7: where the time goes (%llu records) ===\n\n",
         static_cast<unsigned long long>(n));

  // --- real run ---------------------------------------------------------
  auto env = NewMemEnv();
  InputSpec spec;
  spec.path = "in.str";
  spec.num_records = n;
  spec.stripe_width = 8;
  spec.stride_bytes = 64 * 1024;
  if (Status s = CreateInputFile(env.get(), spec); !s.ok()) {
    fprintf(stderr, "input: %s\n", s.ToString().c_str());
    return 1;
  }
  SortOptions opts;
  opts.input_path = "in.str";
  opts.output_path = "out.str";
  opts.memory_budget = 4ull << 30;
  if (Status s = CreateOutputDefinition(env.get(), "out.str", 8, 64 * 1024);
      !s.ok()) {
    fprintf(stderr, "outdef: %s\n", s.ToString().c_str());
    return 1;
  }
  SortMetrics m;
  if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
    fprintf(stderr, "sort: %s\n", s.ToString().c_str());
    return 1;
  }

  printf("--- measured wall-clock phases (this host, in-memory files) ---\n\n");
  TextTable phases({"Phase", "seconds", "share"});
  auto add = [&](const char* name, double s) {
    phases.AddRow({name, StrFormat("%.3f", s),
                   StrFormat("%.0f%%", 100 * s / m.total_s)});
  };
  add("startup (opens, create)", m.startup_s);
  add("read + QuickSort overlap", m.read_phase_s);
  add("last run QuickSort", m.last_run_s);
  add("merge + gather + write", m.merge_phase_s);
  add("close", m.close_s);
  phases.AddRow({"total", StrFormat("%.3f", m.total_s), "100%"});
  phases.Print();

  // --- simulated memory-reference account --------------------------------
  const uint64_t sim_n = std::min<uint64_t>(n, 200000);
  RecordGenerator gen(kDatamationFormat, 7);
  auto block = gen.Generate(KeyDistribution::kUniform, sim_n);

  CacheSim qs_sim;  // AXP geometry: 8 KB D, 4 MB B
  std::vector<PrefixEntry> entries(sim_n);
  BuildPrefixEntryArray(kDatamationFormat, block.data(), sim_n,
                        entries.data());
  SortStats qstats;
  const size_t run = 100000 < sim_n ? 100000 : sim_n;
  for (size_t start = 0; start < sim_n; start += run) {
    QuickSortPrefixEntries(kDatamationFormat, entries.data() + start,
                           std::min<size_t>(run, sim_n - start), &qstats,
                           &qs_sim);
  }

  CacheSim mg_sim;
  SortStats mstats;
  {
    std::vector<EntryRun> runs;
    for (size_t start = 0; start < sim_n; start += run) {
      const size_t len = std::min<size_t>(run, sim_n - start);
      runs.push_back(
          EntryRun{entries.data() + start, entries.data() + start + len});
    }
    RunMerger<CacheSim> merger(kDatamationFormat, runs, TreeLayout::kFlat,
                               &mg_sim, &mstats);
    std::vector<char> out(sim_n * 100);
    std::vector<const char*> ptrs(sim_n);
    size_t got = merger.NextBatch(ptrs.data(), sim_n);
    GatherRecords(kDatamationFormat, ptrs.data(), got, out.data(), &mg_sim);
    // The gather's record copies, for the instruction estimate.
    mstats.bytes_moved += got * 100;
  }

  printf("\n--- simulated memory references (AXP: 8 KB D, 4 MB B) ---\n\n");
  TextTable refs({"Kernel", "refs/rec", "D-hit", "B-hit", "memory",
                  "TLB miss", "stall cyc/rec"});
  auto add_sim = [&](const char* name, const CacheSim::Stats& s) {
    refs.AddRow({name, StrFormat("%.1f", double(s.accesses) / sim_n),
                 StrFormat("%.0f%%", 100.0 * s.dcache_hits / s.accesses),
                 StrFormat("%.0f%%", 100.0 * s.bcache_hits / s.accesses),
                 StrFormat("%.1f%%", 100.0 * s.memory_accesses / s.accesses),
                 StrFormat("%.1f%%", 100.0 * s.TlbMissRate()),
                 StrFormat("%.1f", double(s.StallCycles()) / sim_n)});
  };
  add_sim("QuickSort (key-prefix runs)", qs_sim.stats());
  add_sim("merge + gather", mg_sim.stats());
  refs.Print();

  // Clock-cycle pie in the paper's terms (instruction estimate + cache
  // stalls + the Alpha's measured branch/I-stream overheads).
  printf("\n--- estimated clock breakdown (Figure 7 pie) ---\n\n");
  const auto qs_pie = sim::EstimateStalls(qstats, qs_sim.stats());
  const auto mg_pie = sim::EstimateStalls(mstats, mg_sim.stats());
  printf("QuickSort phase : %s\n", qs_pie.ToString().c_str());
  printf("merge + gather  : %s\n", mg_pie.ToString().c_str());
  {
    // Whole sort: both phases combined.
    sim::StallBreakdown whole;
    whole.issue_cycles = qs_pie.issue_cycles + mg_pie.issue_cycles;
    whole.branch_stall_cycles =
        qs_pie.branch_stall_cycles + mg_pie.branch_stall_cycles;
    whole.istream_stall_cycles =
        qs_pie.istream_stall_cycles + mg_pie.istream_stall_cycles;
    whole.dstream_b_cycles = qs_pie.dstream_b_cycles + mg_pie.dstream_b_cycles;
    whole.dstream_mem_cycles =
        qs_pie.dstream_mem_cycles + mg_pie.dstream_mem_cycles;
    printf("whole sort      : %s\n", whole.ToString().c_str());
    printf("paper (Fig. 7)  : issue 29%% | branch 4%% | I-stream 11%% | "
           "D-to-B 12%% | B-to-memory 44%%\n");
  }

  printf(
      "\nPaper's Figure 7 pie for the 9-second DEC 10000 run: 29%% of\n"
      "clocks issue instructions, 4%% branch mispredicts, 11%% I-stream\n"
      "misses, 56%% D-stream misses (12%% D-to-B + 44%% B-to-main).\n"
      "Shape check: the merge+gather kernel pays most of the memory\n"
      "stalls ('more time is spent gathering the records than is consumed\n"
      "in creating, sorting and merging the key-prefix/pointer pairs'),\n"
      "and even the tuned QuickSort is dominated by memory waits —\n"
      "exactly the paper's point.\n");
  return 0;
}
