// Robustness sweep: AlphaSort end-to-end across key distributions. The
// Datamation benchmark fixes uniform random keys; this shows how the
// design behaves when the key-prefix stops discriminating (shared
// prefixes, heavy duplicates) or when the input is pre-ordered — the
// regimes §4 discusses when weighing QuickSort vs replacement-selection
// and prefix vs pointer sort.

#include <cstdio>
#include <vector>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"

using namespace alphasort;

namespace {

struct NamedDist {
  KeyDistribution dist;
  const char* name;
};

constexpr NamedDist kDistributions[] = {
    {KeyDistribution::kUniform, "uniform (Datamation)"},
    {KeyDistribution::kSorted, "already sorted"},
    {KeyDistribution::kReverse, "reverse sorted"},
    {KeyDistribution::kConstant, "all keys equal"},
    {KeyDistribution::kFewDistinct, "16 distinct keys"},
    {KeyDistribution::kSharedPrefix, "8-byte shared prefix"},
    {KeyDistribution::kAlmostSorted, "almost sorted"},
};

}  // namespace

int main() {
  const uint64_t records = 500000;
  printf("=== AlphaSort across key distributions (%llu records) ===\n\n",
         static_cast<unsigned long long>(records));

  TextTable table({"distribution", "total (s)", "qs compares/rec",
                   "qs tie-breaks/rec", "merge tie-breaks/rec"});
  for (const NamedDist& nd : kDistributions) {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = records;
    spec.distribution = nd.dist;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;
    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    opts.memory_budget = 4ull << 30;
    SortMetrics m;
    if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Status v =
        ValidateSortedFile(env.get(), "in.dat", "out.dat", opts.format);
    if (!v.ok()) {
      fprintf(stderr, "validation (%s): %s\n",
              nd.name, v.ToString().c_str());
      return 1;
    }
    const double n = static_cast<double>(records);
    table.AddRow({nd.name,
                  StrFormat("%.3f", m.total_s),
                  StrFormat("%.1f", m.quicksort_stats.compares / n),
                  StrFormat("%.2f", m.quicksort_stats.tie_breaks / n),
                  StrFormat("%.2f", m.merge_stats.tie_breaks / n)});
  }
  table.Print();

  printf(
      "\nShape check: uniform keys essentially never tie-break — the\n"
      "8-byte prefix discriminates (the ~0.1/rec residue is the Hoare\n"
      "pivot comparing with its own copy); low-entropy keys tie-break on\n"
      "every compare —\n"
      "the §4 degeneration — yet the sort stays correct and log-linear\n"
      "(the introsort depth guard covers QuickSort's 'terrible' worst\n"
      "case the paper accepts on faith).\n");
  return 0;
}
