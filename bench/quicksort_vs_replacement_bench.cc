// Reproduces the §4 run-generation comparison:
//   - QuickSort is ~2.5x faster per record than the best tournament sort
//     (Knuth's 2:1, the paper's measured 2.5:1),
//   - replacement-selection runs average twice the tournament size
//     ("replacement-selection generates runs twice as large as memory")
//     while QuickSort runs equal the chunk size,
//   - node clustering narrows but does not close the gap.

#include <benchmark/benchmark.h>

#include <vector>

#include "record/generator.h"
#include "sort/quicksort.h"
#include "sort/replacement_selection.h"

namespace alphasort {
namespace {

constexpr size_t kRecords = 400000;
constexpr size_t kCapacity = 10000;  // tournament size W (input = 40 W)

const std::vector<char>& SharedBlock() {
  static const std::vector<char>* block = [] {
    RecordGenerator gen(kDatamationFormat, 77);
    return new std::vector<char>(
        gen.Generate(KeyDistribution::kUniform, kRecords));
  }();
  return *block;
}

void BM_QuickSortRunGeneration(benchmark::State& state) {
  const auto& block = SharedBlock();
  std::vector<PrefixEntry> entries(kRecords);
  size_t runs = 0;
  for (auto _ : state) {
    BuildPrefixEntryArray(kDatamationFormat, block.data(), kRecords,
                          entries.data());
    runs = 0;
    for (size_t start = 0; start < kRecords; start += kCapacity) {
      SortPrefixEntryArray(kDatamationFormat, entries.data() + start,
                           std::min(kCapacity, kRecords - start));
      ++runs;
    }
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["avg_run_over_W"] =
      static_cast<double>(kRecords) / runs / kCapacity;
}
BENCHMARK(BM_QuickSortRunGeneration)->Unit(benchmark::kMillisecond);

void RunReplacementSelection(benchmark::State& state, TreeLayout layout) {
  const auto& block = SharedBlock();
  size_t runs = 0;
  for (auto _ : state) {
    ReplacementSelection<NullTracer> rs(
        kDatamationFormat, kCapacity, [](size_t, const char*) {}, layout);
    for (size_t i = 0; i < kRecords; ++i) rs.Add(block.data() + i * 100);
    rs.Finish();
    runs = rs.num_runs();
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
  state.counters["runs"] = static_cast<double>(runs);
  state.counters["avg_run_over_W"] =
      static_cast<double>(kRecords) / runs / kCapacity;
}

void BM_ReplacementSelectionFlat(benchmark::State& state) {
  RunReplacementSelection(state, TreeLayout::kFlat);
}
BENCHMARK(BM_ReplacementSelectionFlat)->Unit(benchmark::kMillisecond);

void BM_ReplacementSelectionClustered(benchmark::State& state) {
  RunReplacementSelection(state, TreeLayout::kClustered);
}
BENCHMARK(BM_ReplacementSelectionClustered)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace alphasort

BENCHMARK_MAIN();
