// Ablation of the merge fan-in for two-pass sorts: a wide tournament
// merges every spilled run in one pass; a narrow fan-in cascades through
// intermediate levels, re-reading and re-writing the data once per level
// (§6's bandwidth arithmetic — each extra level costs a full extra copy
// of the file through the scratch disks). Compares per record grow with
// log2(total fan-in) either way; the cascade's cost is pure IO.

#include <cstdio>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"

using namespace alphasort;

int main() {
  printf("=== Ablation: merge fan-in / cascade depth (two-pass) ===\n");
  const uint64_t records = 200000;  // 20 MB in ~40 spill runs
  printf("(%llu records, memory budget forcing ~350 spill runs, MemEnv)\n\n",
         static_cast<unsigned long long>(records));

  TextTable table({"max fan-in", "spill runs", "scratch MB written",
                   "merge cmp/rec", "spill (s)", "merge (s)", "total (s)"});
  for (size_t fanin : {64, 16, 8, 4, 2}) {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = records;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;
    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    opts.memory_budget = 128 * 1024;  // ~512-record chunks
    opts.io_chunk_bytes = 16 * 1024;  // keep budget >= 4 io chunks
    opts.run_size_records = 256;
    opts.max_merge_fanin = fanin;
    opts.scratch_path = "fanin_scratch";
    SortMetrics m;
    if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Status v =
        ValidateSortedFile(env.get(), "in.dat", "out.dat", opts.format);
    if (!v.ok()) {
      fprintf(stderr, "validation: %s\n", v.ToString().c_str());
      return 1;
    }
    table.AddRow(
        {StrFormat("%zu", fanin),
         StrFormat("%llu", static_cast<unsigned long long>(m.num_runs)),
         StrFormat("%.1f", m.scratch_bytes_written / 1e6),
         StrFormat("%.2f",
                   static_cast<double>(m.merge_stats.compares) / records),
         StrFormat("%.3f", m.read_phase_s),
         StrFormat("%.3f", m.merge_phase_s),
         StrFormat("%.3f", m.total_s)});
  }
  table.Print();

  printf(
      "\nShape check: narrowing the fan-in multiplies the scratch traffic\n"
      "(each cascade level re-writes the whole file) while the total\n"
      "compares stay ~log2(runs) per record — the reason one-pass merges\n"
      "with a wide, cache-resident tournament are AlphaSort's choice and\n"
      "cascades are reserved for inputs whose run count exceeds any\n"
      "reasonable tournament ('ten to one hundred runs' in practice).\n");
  return 0;
}
