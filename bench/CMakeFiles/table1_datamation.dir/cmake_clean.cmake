file(REMOVE_RECURSE
  "CMakeFiles/table1_datamation.dir/table1_datamation.cc.o"
  "CMakeFiles/table1_datamation.dir/table1_datamation.cc.o.d"
  "table1_datamation"
  "table1_datamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_datamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
