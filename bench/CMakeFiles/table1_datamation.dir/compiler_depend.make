# Empty compiler generated dependencies file for table1_datamation.
# This may be replaced when dependencies are built.
