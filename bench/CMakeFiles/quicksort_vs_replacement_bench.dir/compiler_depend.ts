# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for quicksort_vs_replacement_bench.
