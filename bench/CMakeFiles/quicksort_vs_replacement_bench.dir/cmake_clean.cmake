file(REMOVE_RECURSE
  "CMakeFiles/quicksort_vs_replacement_bench.dir/quicksort_vs_replacement_bench.cc.o"
  "CMakeFiles/quicksort_vs_replacement_bench.dir/quicksort_vs_replacement_bench.cc.o.d"
  "quicksort_vs_replacement_bench"
  "quicksort_vs_replacement_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quicksort_vs_replacement_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
