# Empty compiler generated dependencies file for quicksort_vs_replacement_bench.
# This may be replaced when dependencies are built.
