# Empty compiler generated dependencies file for onepass_twopass.
# This may be replaced when dependencies are built.
