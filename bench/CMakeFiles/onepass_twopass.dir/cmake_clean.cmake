file(REMOVE_RECURSE
  "CMakeFiles/onepass_twopass.dir/onepass_twopass.cc.o"
  "CMakeFiles/onepass_twopass.dir/onepass_twopass.cc.o.d"
  "onepass_twopass"
  "onepass_twopass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onepass_twopass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
