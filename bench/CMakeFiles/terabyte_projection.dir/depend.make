# Empty dependencies file for terabyte_projection.
# This may be replaced when dependencies are built.
