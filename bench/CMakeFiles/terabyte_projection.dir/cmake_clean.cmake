file(REMOVE_RECURSE
  "CMakeFiles/terabyte_projection.dir/terabyte_projection.cc.o"
  "CMakeFiles/terabyte_projection.dir/terabyte_projection.cc.o.d"
  "terabyte_projection"
  "terabyte_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terabyte_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
