# Empty compiler generated dependencies file for ablation_ovc.
# This may be replaced when dependencies are built.
