file(REMOVE_RECURSE
  "CMakeFiles/ablation_ovc.dir/ablation_ovc.cc.o"
  "CMakeFiles/ablation_ovc.dir/ablation_ovc.cc.o.d"
  "ablation_ovc"
  "ablation_ovc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ovc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
