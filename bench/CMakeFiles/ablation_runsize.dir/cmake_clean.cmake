file(REMOVE_RECURSE
  "CMakeFiles/ablation_runsize.dir/ablation_runsize.cc.o"
  "CMakeFiles/ablation_runsize.dir/ablation_runsize.cc.o.d"
  "ablation_runsize"
  "ablation_runsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_runsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
