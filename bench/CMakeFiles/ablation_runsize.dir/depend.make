# Empty dependencies file for ablation_runsize.
# This may be replaced when dependencies are built.
