file(REMOVE_RECURSE
  "CMakeFiles/minutesort_bench.dir/minutesort_bench.cc.o"
  "CMakeFiles/minutesort_bench.dir/minutesort_bench.cc.o.d"
  "minutesort_bench"
  "minutesort_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minutesort_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
