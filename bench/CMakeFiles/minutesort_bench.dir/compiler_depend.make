# Empty compiler generated dependencies file for minutesort_bench.
# This may be replaced when dependencies are built.
