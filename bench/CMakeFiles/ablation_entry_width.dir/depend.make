# Empty dependencies file for ablation_entry_width.
# This may be replaced when dependencies are built.
