file(REMOVE_RECURSE
  "CMakeFiles/ablation_entry_width.dir/ablation_entry_width.cc.o"
  "CMakeFiles/ablation_entry_width.dir/ablation_entry_width.cc.o.d"
  "ablation_entry_width"
  "ablation_entry_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_entry_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
