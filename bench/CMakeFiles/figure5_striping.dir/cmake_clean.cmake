file(REMOVE_RECURSE
  "CMakeFiles/figure5_striping.dir/figure5_striping.cc.o"
  "CMakeFiles/figure5_striping.dir/figure5_striping.cc.o.d"
  "figure5_striping"
  "figure5_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
