# Empty compiler generated dependencies file for figure5_striping.
# This may be replaced when dependencies are built.
