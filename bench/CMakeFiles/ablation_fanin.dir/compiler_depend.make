# Empty compiler generated dependencies file for ablation_fanin.
# This may be replaced when dependencies are built.
