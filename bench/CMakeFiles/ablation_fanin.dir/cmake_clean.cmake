file(REMOVE_RECURSE
  "CMakeFiles/ablation_fanin.dir/ablation_fanin.cc.o"
  "CMakeFiles/ablation_fanin.dir/ablation_fanin.cc.o.d"
  "ablation_fanin"
  "ablation_fanin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fanin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
