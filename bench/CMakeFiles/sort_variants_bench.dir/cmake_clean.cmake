file(REMOVE_RECURSE
  "CMakeFiles/sort_variants_bench.dir/sort_variants_bench.cc.o"
  "CMakeFiles/sort_variants_bench.dir/sort_variants_bench.cc.o.d"
  "sort_variants_bench"
  "sort_variants_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_variants_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
