# Empty dependencies file for sort_variants_bench.
# This may be replaced when dependencies are built.
