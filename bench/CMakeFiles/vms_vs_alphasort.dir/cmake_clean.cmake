file(REMOVE_RECURSE
  "CMakeFiles/vms_vs_alphasort.dir/vms_vs_alphasort.cc.o"
  "CMakeFiles/vms_vs_alphasort.dir/vms_vs_alphasort.cc.o.d"
  "vms_vs_alphasort"
  "vms_vs_alphasort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vms_vs_alphasort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
