# Empty compiler generated dependencies file for vms_vs_alphasort.
# This may be replaced when dependencies are built.
