file(REMOVE_RECURSE
  "CMakeFiles/table6_disk_arrays.dir/table6_disk_arrays.cc.o"
  "CMakeFiles/table6_disk_arrays.dir/table6_disk_arrays.cc.o.d"
  "table6_disk_arrays"
  "table6_disk_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_disk_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
