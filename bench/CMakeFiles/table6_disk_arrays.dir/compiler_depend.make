# Empty compiler generated dependencies file for table6_disk_arrays.
# This may be replaced when dependencies are built.
