# Empty compiler generated dependencies file for graph2_trends.
# This may be replaced when dependencies are built.
