file(REMOVE_RECURSE
  "CMakeFiles/graph2_trends.dir/graph2_trends.cc.o"
  "CMakeFiles/graph2_trends.dir/graph2_trends.cc.o.d"
  "graph2_trends"
  "graph2_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph2_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
