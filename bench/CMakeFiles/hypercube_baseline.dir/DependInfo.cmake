
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/hypercube_baseline.cc" "bench/CMakeFiles/hypercube_baseline.dir/hypercube_baseline.cc.o" "gcc" "bench/CMakeFiles/hypercube_baseline.dir/hypercube_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/benchlib/CMakeFiles/alphasort_benchlib.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/alphasort_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/alphasort_net.dir/DependInfo.cmake"
  "/root/repo/src/svc/CMakeFiles/alphasort_svc.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/alphasort_core.dir/DependInfo.cmake"
  "/root/repo/src/sort/CMakeFiles/alphasort_sort.dir/DependInfo.cmake"
  "/root/repo/src/io/CMakeFiles/alphasort_io.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/alphasort_obs.dir/DependInfo.cmake"
  "/root/repo/src/record/CMakeFiles/alphasort_record.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
