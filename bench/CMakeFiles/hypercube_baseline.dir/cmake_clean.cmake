file(REMOVE_RECURSE
  "CMakeFiles/hypercube_baseline.dir/hypercube_baseline.cc.o"
  "CMakeFiles/hypercube_baseline.dir/hypercube_baseline.cc.o.d"
  "hypercube_baseline"
  "hypercube_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercube_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
