# Empty compiler generated dependencies file for hypercube_baseline.
# This may be replaced when dependencies are built.
