file(REMOVE_RECURSE
  "CMakeFiles/startup_overhead.dir/startup_overhead.cc.o"
  "CMakeFiles/startup_overhead.dir/startup_overhead.cc.o.d"
  "startup_overhead"
  "startup_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/startup_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
