# Empty dependencies file for startup_overhead.
# This may be replaced when dependencies are built.
