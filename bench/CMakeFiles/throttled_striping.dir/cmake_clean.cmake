file(REMOVE_RECURSE
  "CMakeFiles/throttled_striping.dir/throttled_striping.cc.o"
  "CMakeFiles/throttled_striping.dir/throttled_striping.cc.o.d"
  "throttled_striping"
  "throttled_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throttled_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
