# Empty dependencies file for throttled_striping.
# This may be replaced when dependencies are built.
