file(REMOVE_RECURSE
  "CMakeFiles/figure3_memory_hierarchy.dir/figure3_memory_hierarchy.cc.o"
  "CMakeFiles/figure3_memory_hierarchy.dir/figure3_memory_hierarchy.cc.o.d"
  "figure3_memory_hierarchy"
  "figure3_memory_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_memory_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
