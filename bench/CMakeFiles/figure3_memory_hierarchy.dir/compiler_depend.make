# Empty compiler generated dependencies file for figure3_memory_hierarchy.
# This may be replaced when dependencies are built.
