# Empty compiler generated dependencies file for figure7_time_breakdown.
# This may be replaced when dependencies are built.
