file(REMOVE_RECURSE
  "CMakeFiles/figure7_time_breakdown.dir/figure7_time_breakdown.cc.o"
  "CMakeFiles/figure7_time_breakdown.dir/figure7_time_breakdown.cc.o.d"
  "figure7_time_breakdown"
  "figure7_time_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure7_time_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
