file(REMOVE_RECURSE
  "CMakeFiles/ablation_prefix.dir/ablation_prefix.cc.o"
  "CMakeFiles/ablation_prefix.dir/ablation_prefix.cc.o.d"
  "ablation_prefix"
  "ablation_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
