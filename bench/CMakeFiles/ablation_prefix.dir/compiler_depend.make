# Empty compiler generated dependencies file for ablation_prefix.
# This may be replaced when dependencies are built.
