# Empty compiler generated dependencies file for gather_cost.
# This may be replaced when dependencies are built.
