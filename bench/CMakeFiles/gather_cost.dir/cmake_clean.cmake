file(REMOVE_RECURSE
  "CMakeFiles/gather_cost.dir/gather_cost.cc.o"
  "CMakeFiles/gather_cost.dir/gather_cost.cc.o.d"
  "gather_cost"
  "gather_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gather_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
