file(REMOVE_RECURSE
  "CMakeFiles/figure4_cache_behavior.dir/figure4_cache_behavior.cc.o"
  "CMakeFiles/figure4_cache_behavior.dir/figure4_cache_behavior.cc.o.d"
  "figure4_cache_behavior"
  "figure4_cache_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_cache_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
