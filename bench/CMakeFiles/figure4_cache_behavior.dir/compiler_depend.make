# Empty compiler generated dependencies file for figure4_cache_behavior.
# This may be replaced when dependencies are built.
