# Empty dependencies file for distribution_sensitivity.
# This may be replaced when dependencies are built.
