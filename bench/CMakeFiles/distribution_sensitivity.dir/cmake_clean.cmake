file(REMOVE_RECURSE
  "CMakeFiles/distribution_sensitivity.dir/distribution_sensitivity.cc.o"
  "CMakeFiles/distribution_sensitivity.dir/distribution_sensitivity.cc.o.d"
  "distribution_sensitivity"
  "distribution_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
