# Empty compiler generated dependencies file for table8_axp_systems.
# This may be replaced when dependencies are built.
