file(REMOVE_RECURSE
  "CMakeFiles/table8_axp_systems.dir/table8_axp_systems.cc.o"
  "CMakeFiles/table8_axp_systems.dir/table8_axp_systems.cc.o.d"
  "table8_axp_systems"
  "table8_axp_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_axp_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
