# Empty compiler generated dependencies file for multiprocessor_speedup.
# This may be replaced when dependencies are built.
