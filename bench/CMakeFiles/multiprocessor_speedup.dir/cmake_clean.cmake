file(REMOVE_RECURSE
  "CMakeFiles/multiprocessor_speedup.dir/multiprocessor_speedup.cc.o"
  "CMakeFiles/multiprocessor_speedup.dir/multiprocessor_speedup.cc.o.d"
  "multiprocessor_speedup"
  "multiprocessor_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocessor_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
