// The §6 striping experiment run with the REAL pipeline in real wall-clock
// time: every stripe member is throttled to 1993 commodity-SCSI rates
// (4.5 MB/s reads, 3.5 MB/s writes — the paper's measured single-disk
// numbers), and the sort is timed at increasing stripe widths. One member
// reproduces the one-disk barrier (scaled down: the input here is 8 MB,
// not 100 MB, so the bench finishes in seconds); eight members show the
// near-linear speedup that striping buys.

#include <cstdio>
#include <cstdlib>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "io/throttled_env.h"

using namespace alphasort;

int main() {
  const char* env_mb = getenv("ALPHASORT_THROTTLE_MB");
  const uint64_t records =
      (env_mb != nullptr ? strtoull(env_mb, nullptr, 10) : 8) * 10000;
  const double read_mbps = 4.5;   // §6: "the disk reads at about 4.5 MB/s
  const double write_mbps = 3.5;  //      and writes at about 3.5 MB/s"

  printf("=== §6 on real hardware-in-miniature: throttled stripe members ===\n");
  printf("(%.0f MB input; each member limited to %.1f/%.1f MB/s R/W — the\n"
         " paper's single-SCSI rates; the pipeline, AIO and gather are the\n"
         " real implementation running in real time)\n\n",
         records * 100 / 1e6, read_mbps, write_mbps);

  const double ideal_one_disk =
      records * 100 / (read_mbps * 1e6) + records * 100 / (write_mbps * 1e6);

  TextTable table({"stripe width", "elapsed (s)", "MB/s", "read phase (s)",
                   "write phase (s)", "speedup", "ideal"});
  double base = 0;
  for (size_t width : {1, 2, 4, 8}) {
    auto mem = NewMemEnv();
    ThrottledEnv env(mem.get(), read_mbps, write_mbps);
    InputSpec spec;
    spec.path = "in.str";
    spec.num_records = records;
    spec.stripe_width = width;
    spec.stride_bytes = 64 * 1024;
    // Generation and validation go through the unthrottled base env —
    // only the timed sort pays the 1993 rates.
    if (Status s = CreateInputFile(mem.get(), spec); !s.ok()) {
      fprintf(stderr, "input: %s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = CreateOutputDefinition(mem.get(), "out.str", width,
                                          65536);
        !s.ok()) {
      fprintf(stderr, "outdef: %s\n", s.ToString().c_str());
      return 1;
    }
    SortOptions opts;
    opts.input_path = "in.str";
    opts.output_path = "out.str";
    // One chunk per member per request: chunk == stride, enough threads
    // and outstanding requests to keep every member streaming.
    opts.io_chunk_bytes = 64 * 1024;
    opts.io_depth = static_cast<int>(2 * width);
    opts.io_threads = static_cast<int>(2 * width) + 1;
    opts.write_buffers = static_cast<int>(2 * width);
    opts.memory_budget = 2ull << 30;
    SortMetrics m;
    if (Status s = AlphaSort::Run(&env, opts, &m); !s.ok()) {
      fprintf(stderr, "sort: %s\n", s.ToString().c_str());
      return 1;
    }
    Status v =
        ValidateSortedFile(mem.get(), "in.str", "out.str", opts.format);
    if (!v.ok()) {
      fprintf(stderr, "validation: %s\n", v.ToString().c_str());
      return 1;
    }
    if (width == 1) base = m.total_s;
    table.AddRow({StrFormat("%zu", width), StrFormat("%.2f", m.total_s),
                  StrFormat("%.2f", m.Throughput().mb_per_s),
                  StrFormat("%.2f", m.read_phase_s),
                  StrFormat("%.2f", m.merge_phase_s),
                  StrFormat("%.2fx", base / m.total_s),
                  StrFormat("%.2fx", static_cast<double>(width))});
  }
  table.Print();

  printf(
      "\nShape check: the 1-wide run is pinned at the member's spiral\n"
      "rates (the one-disk barrier: ideal %.1f s for this input); width N\n"
      "divides both phases by ~N because the scheduler keeps one request\n"
      "per member in flight — 'parallel disk reads and writes give the\n"
      "sum of the individual disk bandwidths'.\n",
      ideal_one_disk);
  return 0;
}
