// Reproduces Graph 2: the time and price-performance trends of sorting,
// displayed in chronological order, with crude log-scale ASCII plots.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "benchlib/historical.h"
#include "common/table.h"

using namespace alphasort;

namespace {

// One log-scale bar: value mapped into [0, width] between lo and hi.
std::string Bar(double value, double lo, double hi, int width) {
  const double t = (std::log10(value) - std::log10(lo)) /
                   (std::log10(hi) - std::log10(lo));
  const int n = std::clamp(static_cast<int>(t * width + 0.5), 0, width);
  return std::string(n, '#');
}

}  // namespace

int main() {
  printf("=== Graph 2: Time and cost to sort 1M records (log scale) ===\n\n");

  const auto table = Table1();

  printf("Elapsed time (seconds, log scale 1 .. 10,000):\n");
  for (const auto& row : table) {
    printf("%4d %-34s %8.1f |%s\n", row.year, row.system.c_str(),
           row.seconds, Bar(row.seconds, 1, 10000, 48).c_str());
  }

  printf("\nPrice-performance ($/sort, log scale 0.01 .. 10):\n");
  for (const auto& row : table) {
    printf("%4d %-34s %8.3f |%s\n", row.year, row.system.c_str(),
           row.dollars_per_sort,
           Bar(row.dollars_per_sort, 0.01, 10, 48).c_str());
  }

  printf(
      "\nShape check: until 1993 the Cray was fastest while parallel sorts\n"
      "had the best price-performance; the AlphaSort rows win BOTH —\n"
      "the lowest time and the lowest $/sort in the table.\n");
  return 0;
}
