// Ablation of the distributive partition sort (§4 footnote 1): "a
// distributive sort that partitions the key-pairs into 256 buckets based
// on the first byte of the key would eliminate 8 of the 20 compares needed
// for a 100 MB sort. Such a partition sort might beat AlphaSort's simple
// QuickSort."

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/table.h"
#include "record/generator.h"
#include "sort/partition_sort.h"
#include "sort/quicksort.h"

using namespace alphasort;

namespace {

double TimedSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  printf("=== Ablation: 256-bucket partition sort vs plain QuickSort ===\n\n");

  TextTable table({"n", "quicksort (ms)", "cmp/rec", "partition (ms)",
                   "cmp/rec", "cmp saved/rec", "speedup"});
  for (size_t n : {20000, 100000, 500000, 1000000}) {
    RecordGenerator gen(kDatamationFormat, 22);
    const auto block = gen.Generate(KeyDistribution::kUniform, n);
    std::vector<PrefixEntry> a(n), b(n);
    BuildPrefixEntryArray(kDatamationFormat, block.data(), n, a.data());
    b = a;

    SortStats qs, ps;
    const double t_qs = TimedSeconds(
        [&] { SortPrefixEntryArray(kDatamationFormat, a.data(), n, &qs); });
    const double t_ps = TimedSeconds([&] {
      PartitionSortPrefixEntries(kDatamationFormat, b.data(), n, &ps);
    });

    table.AddRow({StrFormat("%zu", n), StrFormat("%.1f", t_qs * 1e3),
                  StrFormat("%.1f", double(qs.compares) / n),
                  StrFormat("%.1f", t_ps * 1e3),
                  StrFormat("%.1f", double(ps.compares) / n),
                  StrFormat("%.1f",
                            double(qs.compares - ps.compares) / n),
                  StrFormat("%.2fx", t_qs / t_ps)});
  }
  table.Print();

  printf(
      "\nShape check: bucketing by the first key byte removes ~log2(256)\n"
      "= 8 compares per record, as the footnote predicts (the paper's\n"
      "'eliminate 8 of the 20 compares'). Whether that wins wall-clock\n"
      "time depends on the cost of the extra distribution pass — the\n"
      "footnote's 'might beat' hedge.\n");
  return 0;
}
