// Reproduces the §6 startup-overhead table: the fixed cost of opening a
// stripe descriptor plus N member files, creating the output stripe, and
// closing everything — measured with the real striping layer (Posix env in
// a temp directory), serially and with parallel (asynchronous) opens.

#include <cstdio>
#include <string>

#include "common/table.h"
#include "core/sort_metrics.h"
#include "io/async_io.h"
#include "io/stripe.h"

using namespace alphasort;

namespace {

struct Timing {
  double open_in_s = 0;
  double create_out_s = 0;
  double close_s = 0;
};

Timing Measure(Env* env, const std::string& dir, size_t width,
               AsyncIO* aio) {
  const std::string in_def = dir + "in.str";
  const std::string out_def = dir + "out.str";
  WriteStripeDefinition(env, in_def,
                        MakeUniformStripe(dir + "in", width, 65536));
  WriteStripeDefinition(env, out_def,
                        MakeUniformStripe(dir + "out", width, 65536));
  // Pre-create input members (an input must exist to be opened).
  {
    auto f = StripeFile::Open(env, in_def, OpenMode::kCreateReadWrite);
    f.value()->Close();
  }

  Timing t;
  PhaseTimer timer;
  auto in = StripeFile::Open(env, in_def, OpenMode::kReadOnly, aio);
  t.open_in_s = timer.Lap();
  auto out = StripeFile::Open(env, out_def, OpenMode::kCreateReadWrite, aio);
  t.create_out_s = timer.Lap();
  in.value()->Close();
  out.value()->Close();
  t.close_s = timer.Lap();

  StripeFile::Remove(env, in_def);
  StripeFile::Remove(env, out_def);
  return t;
}

}  // namespace

int main() {
  printf("=== §6: fixed startup overhead of N-wide striping ===\n\n");

  Env* env = GetPosixEnv();
  const std::string dir = "/tmp/alphasort_startup_";
  AsyncIO aio(8);

  TextTable table({"stripe width", "open input (ms)", "create output (ms)",
                   "close all (ms)", "mode"});
  for (size_t width : {1, 4, 8, 16, 36}) {
    const Timing serial = Measure(env, dir, width, nullptr);
    const Timing parallel = Measure(env, dir, width, &aio);
    table.AddRow({StrFormat("%zu", width),
                  StrFormat("%.3f", serial.open_in_s * 1e3),
                  StrFormat("%.3f", serial.create_out_s * 1e3),
                  StrFormat("%.3f", serial.close_s * 1e3), "serial"});
    table.AddRow({"", StrFormat("%.3f", parallel.open_in_s * 1e3),
                  StrFormat("%.3f", parallel.create_out_s * 1e3),
                  StrFormat("%.3f", parallel.close_s * 1e3),
                  "parallel open"});
  }
  table.Print();

  printf("\nPaper's §6 numbers for 8-wide striping on a 200 MHz AXP:\n");
  TextTable paper({"step", "seconds"});
  paper.AddRow({"Load sort and process parameters", "0.11"});
  paper.AddRow({"Open stripe descriptor and eight input stripes", "0.02"});
  paper.AddRow({"Create and open descriptor and eight output stripes",
                "0.01"});
  paper.AddRow({"Close 18 input and output files and descriptors", "0.01"});
  paper.AddRow({"Return to shell", "0.05"});
  paper.AddRow({"Total overhead", "0.19"});
  paper.Print();

  printf(
      "\nShape check: overhead grows with stripe width but stays in the\n"
      "milliseconds — 'relatively small overhead' — and asynchronous\n"
      "(NoWait) opens keep the N-wide open close to the 1-wide cost,\n"
      "'so there is little increase in elapsed time'.\n");
  return 0;
}
