// Reproduces the §4 claim that the gather dominates the memory-to-memory
// work: "More time is spent gathering the records than is consumed in
// creating, sorting and merging the key-prefix/pointer pairs." Measures
// each stage of the in-memory sort separately on this host, at a working
// set past the last-level cache (where the claim's mechanism lives).

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/table.h"
#include "record/generator.h"
#include "sort/merger.h"
#include "sort/quicksort.h"

using namespace alphasort;

namespace {

double TimedSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  printf("=== §4: the gather is the memory-intensive step ===\n\n");

  TextTable table({"records", "build (s)", "quicksort (s)", "merge (s)",
                   "gather (s)", "gather / (build+sort+merge)"});
  for (size_t n : {200000, 1000000, 2000000}) {
    RecordGenerator gen(kDatamationFormat, 1);
    const auto block = gen.Generate(KeyDistribution::kUniform, n);
    std::vector<PrefixEntry> entries(n);
    const size_t run = 100000;

    const double t_build = TimedSeconds([&] {
      BuildPrefixEntryArray(kDatamationFormat, block.data(), n,
                            entries.data());
    });
    const double t_sort = TimedSeconds([&] {
      for (size_t start = 0; start < n; start += run) {
        SortPrefixEntryArray(kDatamationFormat, entries.data() + start,
                             std::min(run, n - start));
      }
    });
    std::vector<const char*> ptrs(n);
    double t_merge = 0;
    {
      std::vector<EntryRun> runs;
      for (size_t start = 0; start < n; start += run) {
        const size_t len = std::min(run, n - start);
        runs.push_back(
            EntryRun{entries.data() + start, entries.data() + start + len});
      }
      RunMerger<> merger(kDatamationFormat, runs);
      t_merge = TimedSeconds(
          [&] { merger.NextBatch(ptrs.data(), n); });
    }
    std::vector<char> out(n * 100);
    const double t_gather = TimedSeconds([&] {
      GatherRecords(kDatamationFormat, ptrs.data(), n, out.data());
    });

    table.AddRow({StrFormat("%zu", n), StrFormat("%.3f", t_build),
                  StrFormat("%.3f", t_sort), StrFormat("%.3f", t_merge),
                  StrFormat("%.3f", t_gather),
                  StrFormat("%.2fx",
                            t_gather / (t_build + t_sort + t_merge))});
  }
  table.Print();

  printf(
      "\nShape check: the gather costs a large, size-stable fraction of\n"
      "the memory-to-memory work despite copying with zero compares. On\n"
      "1993 hardware it was the LARGEST piece ('more time is spent\n"
      "gathering the records than ... the key-prefix/pointer pairs');\n"
      "modern prefetchers and 100 MB LLCs soften random 100-byte copies,\n"
      "so on this host it lands below the sort. The 1993 behaviour is\n"
      "reproduced exactly by the cache simulator: see\n"
      "figure7_time_breakdown, where merge+gather resolves ~56%% of its\n"
      "references in main memory vs ~1%% for the QuickSort.\n");
  return 0;
}
