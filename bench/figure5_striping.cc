// Reproduces Figure 5 / §6: striping bandwidth scales near-linearly with
// the number of disks until a controller saturates; more controllers
// resume the scaling. Uses the calibrated disk-array simulator (RZ26-class
// drives) and prints the 100 MB read/write times at each width.

#include <cstdio>

#include "common/table.h"
#include "sim/disk_sim.h"
#include "sim/event_sim.h"
#include "sim/hardware_configs.h"

using namespace alphasort;

int main() {
  printf("=== Figure 5 / §6: striping bandwidth vs number of disks ===\n");
  printf("(RZ26-class disks, 4 per SCSI controller, as in the paper's\n"
         " many-slow array; controller saturates at 8 MB/s)\n\n");

  const DiskModel disk = hw::Rz26();
  const ControllerModel ctlr = hw::ScsiKzmsa();

  TextTable table({"disks", "controllers", "read MB/s", "write MB/s",
                   "100MB read (s)", "100MB write (s)"});
  for (int disks = 1; disks <= 36; ++disks) {
    const int controllers = (disks + 3) / 4;  // 4 disks per controller
    DiskArray array =
        DiskArray::Uniform("sweep", disk, ctlr, disks, controllers);
    table.AddRow({StrFormat("%d", disks), StrFormat("%d", controllers),
                  StrFormat("%.1f", array.ReadMbps()),
                  StrFormat("%.1f", array.WriteMbps()),
                  StrFormat("%.2f", array.ReadSeconds(100e6)),
                  StrFormat("%.2f", array.WriteSeconds(100e6))});
  }
  table.Print();

  printf("\n--- event-driven cross-check (per-request simulation) ---\n");
  printf("(100 MB striped read, 64 KB strides, round-robin issue;\n"
         " queue depth 1 = synchronous, 3 = the paper's triple buffering)\n\n");
  TextTable events({"disks", "analytic MB/s", "event-sim MB/s (depth 3)",
                    "event-sim MB/s (depth 1, 5 ms seeks)"});
  for (int disks : {1, 4, 8, 16, 24, 36}) {
    const int controllers = (disks + 3) / 4;
    DiskArray array =
        DiskArray::Uniform("sweep", disk, ctlr, disks, controllers);
    sim::EventDiskSim pipelined(array);
    const double t3 = pipelined.StreamStriped(100e6, 64 * 1024, 3, true);
    sim::EventDiskSim synchronous(array, /*seek_ms=*/5.0);
    const double t1 = synchronous.StreamStriped(100e6, 64 * 1024, 1, true);
    events.AddRow({StrFormat("%d", disks),
                   StrFormat("%.1f", array.ReadMbps()),
                   StrFormat("%.1f", 100.0 / t3),
                   StrFormat("%.1f", 100.0 / t1)});
  }
  events.Print();
  printf("\nWith request pipelining the per-request simulation lands on\n"
         "the bandwidth arithmetic; without it (depth 1, realistic seek\n"
         "time) each disk idles between requests — why §6 insists on\n"
         "'triple buffering the reads and writes [to keep] the disks\n"
         "transferring at their spiral rates'.\n");

  printf("\n--- controller saturation: one controller, growing disks ---\n\n");
  TextTable sat({"disks on 1 controller", "read MB/s", "note"});
  for (int disks : {1, 2, 3, 4, 5, 6, 8}) {
    DiskArray array = DiskArray::Uniform("sat", disk, ctlr, disks, 1);
    sat.AddRow({StrFormat("%d", disks),
                StrFormat("%.1f", array.ReadMbps()),
                array.ReadMbps() >= ctlr.max_mbps - 0.01 ? "saturated"
                                                         : ""});
  }
  sat.Print();

  printf(
      "\nShape check: bandwidth grows linearly with disks (no controller\n"
      "ever saturates at 4 disks x 1.78 MB/s = 7.1 < 8 MB/s), reaching the\n"
      "paper's 'later experiments extended this to 36-way striping and\n"
      "64 MB/s'. The paper's 27 MB/s at 8-wide striping used faster\n"
      "drives (~3.4 MB/s each); swap hw::Rz28()/hw::VelocitorIpi() into\n"
      "the sweep to see that configuration.\n");
  return 0;
}
