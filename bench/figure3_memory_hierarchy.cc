// Reproduces Figure 3: "How far away is the data?" — the memory-hierarchy
// latency ladder in processor clock ticks and in the paper's human-scale
// analogy (one 5 ns tick = one minute of body time).

#include <cstdio>

#include "common/table.h"
#include "sim/memory_hierarchy.h"

using namespace alphasort;

int main() {
  printf("=== Figure 3: How far away is the data? (DEC 7000 AXP, 5 ns clock) ===\n\n");

  const auto h = MemoryHierarchy::Axp7000();
  TextTable table(
      {"Level", "Clock ticks", "Latency", "Human time", "Analogy"});
  for (const auto& level : h.levels) {
    const double ns = h.LatencyNanos(level);
    std::string latency = ns < 1000    ? StrFormat("%.0f ns", ns)
                          : ns < 1e6   ? StrFormat("%.1f us", ns / 1e3)
                          : ns < 1e9   ? StrFormat("%.1f ms", ns / 1e6)
                                       : StrFormat("%.1f s", ns / 1e9);
    table.AddRow({level.name, StrFormat("%.0f", level.clock_ticks), latency,
                  MemoryHierarchy::HumanTime(level.clock_ticks),
                  level.analogy});
  }
  table.Print();

  printf(
      "\nThe paper's point: a processor that randomly accessed main memory\n"
      "on every instruction would run ~100x slower than one that works out\n"
      "of its caches. AlphaSort is designed to live in 'this campus'\n"
      "(the caches) and to visit 'Pluto' (the disks) only via overlapped,\n"
      "striped, asynchronous transfers.\n");
  return 0;
}
