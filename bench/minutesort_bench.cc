// Reproduces the §8 MinuteSort and DollarSort results: 1.08 GB/minute and
// 0.47 $/GB on the 3-CPU DEC 7000 (model), plus a real "sort as much as
// you can in N seconds" run on this host (Indy category, in-memory files;
// N defaults to 5 s, override with ALPHASORT_MINUTE_SECONDS).

#include <cstdio>
#include <cstdlib>

#include "benchlib/datamation.h"
#include "benchlib/minutesort.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "core/sort_metrics.h"

using namespace alphasort;

namespace {

// Sorts `records` in-memory records; returns the metrics (total_s < 0 on
// failure) so the caller can report time and throughput from one source.
SortMetrics HostSort(uint64_t records, int workers) {
  SortMetrics m;
  m.total_s = -1;
  auto env = NewMemEnv();
  InputSpec spec;
  spec.path = "in.dat";
  spec.num_records = records;
  if (!CreateInputFile(env.get(), spec).ok()) return m;
  SortOptions opts;
  opts.input_path = "in.dat";
  opts.output_path = "out.dat";
  opts.memory_budget = 8ull << 30;
  opts.num_workers = workers;
  m.total_s = 0;
  if (!AlphaSort::Run(env.get(), opts, &m).ok()) m.total_s = -1;
  return m;
}

}  // namespace

int main() {
  printf("=== §8: MinuteSort and DollarSort ===\n\n");

  printf("--- model: 1993 Alpha AXP systems ---\n\n");
  TextTable table({"System", "price", "GB/minute", "$/GB",
                   "paper", "DollarSort budget", "DollarSort GB"});
  auto systems = hw::Table8Systems();
  systems.push_back(hw::MinuteSortSystem());
  for (const auto& s : systems) {
    const auto minute = ComputeMinuteSort(s);
    const auto dollar = ComputeDollarSort(s);
    const bool headline = s.memory_mb > 1000;
    table.AddRow({s.name, StrFormat("%.0fk$", s.total_price_dollars / 1000),
                  StrFormat("%.2f", minute.gb_sorted),
                  StrFormat("%.2f", minute.dollars_per_gb),
                  headline ? "1.08 GB / 0.47 $/GB" : "-",
                  StrFormat("%.0f s", dollar.budget_seconds),
                  StrFormat("%.2f", dollar.gb_sorted)});
  }
  table.Print();

  // --- real host run ------------------------------------------------------
  const char* env_s = getenv("ALPHASORT_MINUTE_SECONDS");
  const double budget_s = env_s != nullptr ? atof(env_s) : 5.0;
  printf("\n--- real host MinuteSort (budget %.0f s, in-memory files) ---\n\n",
         budget_s);

  // Grow the input until a sort exceeds the budget; report the largest
  // size that fit (doubling then refinement, like a contest entry would).
  uint64_t records = 250000;
  uint64_t best_fit = 0;
  double best_time = 0;
  while (true) {
    const SortMetrics m = HostSort(records, 0);
    const double t = m.total_s;
    if (t < 0) break;
    // Per-run registry delta (not the cumulative process registry): each
    // doubling run reports only its own IO, so the aio counts scale with
    // this run's size instead of the whole loop's history.
    const uint64_t run_ios = m.registry_delta.counters.count("aio.submitted")
                                 ? m.registry_delta.counters.at("aio.submitted")
                                 : 0;
    printf("  %9llu records (%6.1f MB): %.2f s (%.0f MB/s, %llu aio ops)\n",
           static_cast<unsigned long long>(records), records * 100 / 1e6,
           t, m.Throughput().mb_per_s,
           static_cast<unsigned long long>(run_ios));
    if (t <= budget_s) {
      best_fit = records;
      best_time = t;
      records *= 2;
      if (records * 100ull > (6ull << 30)) break;  // stay within RAM
    } else {
      break;
    }
  }
  if (best_fit > 0) {
    printf("\nThis host sorts %.2f GB within %.0f s (last fitting run: "
           "%.2f s).\n",
           best_fit * 100 / 1e9, budget_s, best_time);
  }
  // §8's four trophies: Indy (purpose-built) vs Daytona (street-legal)
  // x MinuteSort vs DollarSort. This library fields entries in all four.
  printf("\n--- the four trophies (§8) ---\n\n");
  TextTable trophies({"category", "entry in this repository"});
  trophies.AddRow({"Indy-MinuteSort",
                   "examples/minute_sort (tuned pipeline, fixed format)"});
  trophies.AddRow({"Daytona-MinuteSort",
                   "examples/asort (general records, typed keys via "
                   "SortWithSchema)"});
  trophies.AddRow({"Indy-DollarSort",
                   "model: cheapest $/GB above (DEC 3000 class)"});
  trophies.AddRow({"Daytona-DollarSort",
                   "examples/asort on commodity hardware"});
  trophies.Print();

  printf(
      "\nShape check: the model lands on the paper's 1.08 GB/minute and\n"
      "0.47 $/GB for the 512 k$ DEC 7000; DollarSort gives cheaper systems\n"
      "more time (97 k$ buys ~10 minutes), the paper's argument for why\n"
      "'PCs could win the DollarSort benchmark'.\n");
  return 0;
}
