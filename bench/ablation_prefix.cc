// Ablation of the key-prefix idea (§4): "the risk of using the key-prefix
// is that it may not be a good discriminator of the key — in that case the
// comparison must go to the records and key-prefix-sort degenerates to
// pointer sort."
//
// Sweep: keys share their first S bytes (S = 0 means fully random); as S
// passes the 8-byte prefix, every prefix compare ties, tie-breaks go to
// 100%, and CPU time converges on pointer sort's.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/table.h"
#include "record/generator.h"
#include "sort/quicksort.h"

using namespace alphasort;

namespace {

constexpr size_t kRecords = 100000;

std::vector<char> BlockWithSharedPrefix(size_t shared_bytes) {
  RecordGenerator gen(kDatamationFormat, 9 + shared_bytes);
  auto block = gen.Generate(KeyDistribution::kUniform, kRecords);
  for (size_t i = 0; i < kRecords; ++i) {
    char* key = block.data() + i * 100;
    for (size_t b = 0; b < shared_bytes && b < 10; ++b) key[b] = 'z';
  }
  return block;
}

double TimedSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  printf("=== Ablation: key-prefix discrimination (§4 risk case) ===\n");
  printf("(%zu Datamation records; keys share their first S bytes)\n\n",
         kRecords);

  TextTable table({"shared bytes S", "prefix sort (ms)", "tie-breaks/rec",
                   "pointer sort (ms)", "prefix vs pointer"});
  for (size_t shared : {0, 2, 4, 6, 8, 9, 10}) {
    const auto block = BlockWithSharedPrefix(shared);

    std::vector<PrefixEntry> entries(kRecords);
    BuildPrefixEntryArray(kDatamationFormat, block.data(), kRecords,
                          entries.data());
    SortStats prefix_stats;
    const double prefix_s = TimedSeconds([&] {
      SortPrefixEntryArray(kDatamationFormat, entries.data(), kRecords,
                           &prefix_stats);
    });

    std::vector<RecordPtr> ptrs(kRecords);
    BuildPointerArray(kDatamationFormat, block.data(), kRecords,
                      ptrs.data());
    const double pointer_s = TimedSeconds([&] {
      SortPointerArray(kDatamationFormat, ptrs.data(), kRecords);
    });

    table.AddRow(
        {StrFormat("%zu", shared), StrFormat("%.1f", prefix_s * 1e3),
         StrFormat("%.2f",
                   static_cast<double>(prefix_stats.tie_breaks) / kRecords),
         StrFormat("%.1f", pointer_s * 1e3),
         StrFormat("%.2fx", pointer_s / prefix_s)});
  }
  table.Print();

  printf(
      "\nShape check: with random keys (S=0) prefix sort wins by a wide\n"
      "margin and never tie-breaks; once S >= 8 every compare goes to the\n"
      "records and the advantage over pointer sort collapses toward 1x —\n"
      "the degeneration the paper warns about.\n");
  return 0;
}
