// Reproduces the §4/§6 comparison between AlphaSort and the OpenVMS-style
// pure replacement-selection sort:
//   - "We measured both the OpenVMS Sort utility and AlphaSort to take a
//     little under one minute when using one SCSI disk. Both sorts are
//     disk-limited" — when IO dominates, the algorithms tie;
//   - on the CPU side QuickSorted (key-prefix, pointer) runs beat the
//     tournament by ~2.5x (§4), which is what decides the race once
//     striping removes the IO bottleneck.

#include <cstdio>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "core/vms_sort.h"
#include "io/throttled_env.h"
#include "sim/hardware_configs.h"
#include "sim/pipeline_model.h"

using namespace alphasort;

int main() {
  printf("=== AlphaSort vs OpenVMS-style replacement-selection sort ===\n\n");

  // --- real runs: identical inputs through both sorters -----------------
  const uint64_t records = 500000;  // 50 MB
  printf("--- real runs (%llu records, in-memory files) ---\n\n",
         static_cast<unsigned long long>(records));
  TextTable real({"sorter", "passes", "runs", "run gen (s)", "merge (s)",
                  "total (s)"});
  for (int which = 0; which < 2; ++which) {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = records;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;
    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    opts.memory_budget = 8 << 20;  // 8 MB: both sorters must go external
    SortMetrics m;
    Status s = which == 0 ? AlphaSort::Run(env.get(), opts, &m)
                          : VmsSort::Run(env.get(), opts, &m);
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Status v =
        ValidateSortedFile(env.get(), "in.dat", "out.dat", opts.format);
    if (!v.ok()) {
      fprintf(stderr, "validation: %s\n", v.ToString().c_str());
      return 1;
    }
    real.AddRow({which == 0 ? "AlphaSort (QuickSort runs)"
                            : "VMS-style (replacement-selection)",
                 StrFormat("%d", m.passes),
                 StrFormat("%llu", static_cast<unsigned long long>(m.num_runs)),
                 StrFormat("%.3f", m.read_phase_s),
                 StrFormat("%.3f", m.merge_phase_s),
                 StrFormat("%.3f", m.total_s)});
  }
  real.Print();

  // --- the single-disk tie, in real time ---------------------------------
  printf("\n--- real time: one throttled disk (4 MB scaled input) ---\n\n");
  {
    TextTable tie({"sorter", "elapsed (s)", "ideal IO-bound (s)"});
    const uint64_t n = 40000;  // 4 MB: ~2 s at the 1993 single-disk rates
    const double ideal = n * 100 / 4.5e6 + n * 100 / 3.5e6;
    for (int which = 0; which < 2; ++which) {
      auto mem = NewMemEnv();
      ThrottledEnv env(mem.get(), 4.5, 3.5);  // §6's single-SCSI rates
      InputSpec spec;
      spec.path = "in.dat";
      spec.num_records = n;
      if (!CreateInputFile(mem.get(), spec).ok()) return 1;
      SortOptions opts;
      opts.input_path = "in.dat";
      opts.output_path = "out.dat";
      opts.memory_budget = 1ull << 30;  // memory-rich: both do one pass
      SortMetrics m;
      Status s = which == 0 ? AlphaSort::Run(&env, opts, &m)
                            : VmsSort::Run(&env, opts, &m);
      if (!s.ok()) {
        fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      if (!ValidateSortedFile(mem.get(), "in.dat", "out.dat", opts.format)
               .ok()) {
        fprintf(stderr, "validation failed\n");
        return 1;
      }
      tie.AddRow({which == 0 ? "AlphaSort" : "VMS-style",
                  StrFormat("%.2f", m.total_s), StrFormat("%.2f", ideal)});
    }
    tie.Print();
    printf("\nBoth sit on the disk's read+write time — 'we measured both\n"
           "the OpenVMS Sort utility and AlphaSort to take a little under\n"
           "one minute when using one SCSI disk. Both sorts are\n"
           "disk-limited.'\n");
  }

  printf("\n--- model: one commodity SCSI disk (the one-minute barrier) ---\n\n");
  hw::AxpSystem one_disk = hw::Table8Systems()[2];  // DEC 7000, 1 cpu
  one_disk.array = DiskArray::Uniform("1xRZ26-class", DiskModel{
                                          "SCSI", 4.5, 3.5, 2000, 1.05},
                                      hw::FastScsi(), 1, 1);
  const auto p = sim::PredictOnePass(one_disk, 100e6);
  printf("predicted elapsed on one disk (4.5 MB/s read, 3.5 MB/s write): "
         "%.0f s\n", p.total_s);
  printf("paper: 'a 100MB external sort using a single 1993-vintage SCSI\n"
         "disk takes about one minute elapsed time... A faster processor\n"
         "or faster algorithm would not sort much faster.'\n");

  printf(
      "\nShape check: AlphaSort's QuickSorted run generation beats the\n"
      "tournament end-to-end even though both pay the same (memcpy) IO —\n"
      "the pure-CPU gap is the paper's ~2-2.5x, measured in\n"
      "quicksort_vs_replacement_bench; here IO shared by both dilutes it,\n"
      "exactly as on the single 1993 disk where 'both sorts are\n"
      "disk-limited' at the ~1 minute wall. Striping (§6) is what turns\n"
      "the algorithmic advantage into elapsed-time advantage.\n");
  return 0;
}
