// Reproduces Table 6: the many-slow RAID (36 RZ26 on 9 SCSI controllers)
// versus the few-fast RAID (12 RZ28 on 4 SCSI + 6 Velocitor on 3 IPI),
// with stripe rates from the disk simulator and prices from the catalog.

#include <cstdio>

#include "common/table.h"
#include "sim/hardware_configs.h"

using namespace alphasort;

namespace {

void AddArrayColumn(TextTable* table, const DiskArray& many,
                    const DiskArray& few) {
  auto row = [table](const std::string& label, const std::string& a,
                     const std::string& b) {
    table->AddRow({label, a, b});
  };
  row("drives", StrFormat("%d", many.TotalDisks()),
      StrFormat("%d", few.TotalDisks()));
  row("controllers", StrFormat("%zu", many.groups.size()),
      StrFormat("%zu", few.groups.size()));
  row("capacity", StrFormat("%.0f GB", many.CapacityGb()),
      StrFormat("%.0f GB", few.CapacityGb()));
  row("stripe read rate", StrFormat("%.0f MB/s", many.ReadMbps()),
      StrFormat("%.0f MB/s", few.ReadMbps()));
  row("stripe write rate", StrFormat("%.0f MB/s", many.WriteMbps()),
      StrFormat("%.0f MB/s", few.WriteMbps()));
  row("list price", StrFormat("%.0f k$", many.PriceDollars() / 1000),
      StrFormat("%.0f k$", few.PriceDollars() / 1000));
  row("$ per MB/s read",
      StrFormat("%.0f", many.PriceDollars() / many.ReadMbps()),
      StrFormat("%.0f", few.PriceDollars() / few.ReadMbps()));
}

}  // namespace

int main() {
  printf("=== Table 6: two disk arrays used in the benchmarks ===\n\n");

  const DiskArray many = hw::ManySlowArray();
  const DiskArray few = hw::FewFastArray();

  TextTable table({"", "many-slow RAID", "few-fast RAID"});
  AddArrayColumn(&table, many, few);
  table.Print();

  printf("\nPaper's Table 6 for comparison:\n");
  TextTable paper({"", "many-slow RAID", "few-fast RAID"});
  paper.AddRow({"drives", "36 RZ26", "12 RZ28 + 6 Velocitor"});
  paper.AddRow({"controllers", "9 SCSI (kzmsa)", "4 SCSI + 3 IPI-Genroco"});
  paper.AddRow({"capacity", "36 GB", "36 GB"});
  paper.AddRow({"stripe read rate", "64 MB/s", "52 MB/s"});
  paper.AddRow({"stripe write rate", "49 MB/s", "39 MB/s"});
  paper.AddRow({"list price", "85 k$", "122 k$"});
  paper.Print();

  // Footnote 2: write-cache-enabled drives.
  printf("\n--- footnote 2: write cache enabled (WCE) ---\n\n");
  TextTable wce({"", "RZ26", "RZ26 + WCE"});
  const DiskModel rz26 = hw::Rz26();
  const DiskModel rz26_wce = WithWriteCacheEnabled(rz26);
  wce.AddRow({"write rate/disk", StrFormat("%.2f MB/s", rz26.write_mbps),
              StrFormat("%.2f MB/s", rz26_wce.write_mbps)});
  // Disks needed to sustain the many-slow array's 49 MB/s write rate.
  const int plain_disks = static_cast<int>(49.0 / rz26.write_mbps + 0.999);
  const int wce_disks = static_cast<int>(49.0 / rz26_wce.write_mbps + 0.999);
  wce.AddRow({"disks for 49 MB/s writes", StrFormat("%d", plain_disks),
              StrFormat("%d", wce_disks)});
  wce.AddRow({"savings", "-",
              StrFormat("%.0f%%", 100.0 * (plain_disks - wce_disks) /
                                      plain_disks)});
  wce.Print();
  printf("\nPaper: 'If WCE were used, 20%% fewer discs would be needed' —\n"
         "but 'we did not enable WCE because commercial systems demand\n"
         "disk integrity'.\n");

  printf(
      "\nShape check: the many-slow array wins on rate AND price — 'the\n"
      "many-slow array has slightly better performance and price\n"
      "performance for the same storage capacity'.\n");
  return 0;
}
