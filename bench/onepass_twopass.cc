// Reproduces the §6 one-pass vs two-pass analysis:
//   1. The economics: memory for a one-pass sort vs dedicated scratch
//      disks for a two-pass sort, swept over sort sizes (the paper's
//      "100 MB should be one pass; multi-gigabyte sorts two passes").
//   2. The elapsed-time cost of a second pass, both in the pipeline model
//      and measured with the real implementation (force_passes).

#include <cstdio>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "sim/cost_model.h"
#include "sim/pipeline_model.h"

using namespace alphasort;

int main() {
  printf("=== §6: one-pass vs two-pass sorts ===\n\n");

  printf("--- economics: memory price vs scratch-disk price ---\n");
  printf("(24 MB/s sort bandwidth, 3 MB/s scratch disks, 100$/MB memory,\n"
         " 2400$/disk+controller — the paper's 1993 prices)\n\n");
  TextTable econ({"sort size", "one-pass memory $", "two-pass disks $",
                  "cheaper"});
  for (double mb : {10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 4000.0}) {
    const auto c = cost::OnePassVsTwoPass(mb * 1e6, 24.0, 3.0);
    econ.AddRow({StrFormat("%.0f MB", mb),
                 StrFormat("%.0f", c.one_pass_memory_dollars),
                 StrFormat("%.0f", c.two_pass_disk_dollars),
                 c.one_pass_cheaper ? "one-pass" : "two-pass"});
  }
  econ.Print();

  printf("\n--- model: elapsed time with a forced second pass ---\n\n");
  const auto system = hw::Table8Systems()[2];  // DEC 7000, 1 cpu
  TextTable model({"size", "one-pass (s)", "two-pass (s)", "ratio"});
  for (double mb : {50.0, 100.0, 200.0, 500.0}) {
    const auto one = sim::PredictOnePass(system, mb * 1e6);
    const auto two = sim::PredictTwoPass(system, mb * 1e6);
    model.AddRow({StrFormat("%.0f MB", mb), StrFormat("%.1f", one.total_s),
                  StrFormat("%.1f", two.total_s),
                  StrFormat("%.2fx", two.total_s / one.total_s)});
  }
  model.Print();

  printf("\n--- real implementation: forced pass counts (20 MB, MemEnv) ---\n\n");
  TextTable real({"passes", "total (s)", "runs", "scratch MB"});
  for (int passes : {1, 2}) {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = 200000;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;
    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    opts.force_passes = passes;
    opts.memory_budget = 1ull << 30;
    SortMetrics m;
    if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    real.AddRow({StrFormat("%d", passes), StrFormat("%.3f", m.total_s),
                 StrFormat("%llu", static_cast<unsigned long long>(m.num_runs)),
                 StrFormat("%.1f", m.scratch_bytes_written / 1e6)});
  }
  real.Print();

  printf(
      "\nShape check: at 100 MB one-pass memory (10 k$) beats 16 scratch\n"
      "disks (~38 k$); by 1 GB the disks win — 'multi-gigabyte sorts\n"
      "should be done as two-pass sorts, but for things much smaller than\n"
      "that, one-pass sorts are more economical'. The forced second pass\n"
      "costs roughly the extra data movement (it re-reads and re-writes\n"
      "every byte).\n");
  return 0;
}
