// Reproduces Table 1's architectural contrast: the 32-node shared-nothing
// Hypercube sort (58 s, the record AlphaSort beat 8:1) versus AlphaSort's
// shared-memory design. Runs both algorithms on identical inputs, then
// lets the cost model explain why the Hypercube lost despite its
// parallelism.

#include <cstdio>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "core/hypercube_sort.h"
#include "sim/cost_model.h"

using namespace alphasort;

int main() {
  printf("=== Shared-nothing (Hypercube-style) vs AlphaSort ===\n\n");

  const uint64_t records = 500000;  // 50 MB
  printf("--- real runs (%llu records, in-memory files) ---\n\n",
         static_cast<unsigned long long>(records));

  TextTable table({"algorithm", "nodes/workers", "phases (s)", "total (s)",
                   "max skew"});
  for (int nodes : {1, 2, 4, 8}) {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = records;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;
    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    HypercubeOptions hyper;
    hyper.nodes = nodes;
    HypercubeMetrics m;
    if (Status s = HypercubeSort::Run(env.get(), opts, hyper, &m); !s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Status v =
        ValidateSortedFile(env.get(), "in.dat", "out.dat", opts.format);
    if (!v.ok()) {
      fprintf(stderr, "validation: %s\n", v.ToString().c_str());
      return 1;
    }
    table.AddRow({"hypercube", StrFormat("%d", nodes),
                  StrFormat("sort %.2f + merge %.2f", m.local_sort_s,
                            m.merge_write_s),
                  StrFormat("%.3f", m.total_s),
                  StrFormat("%.2fx", m.max_skew)});
  }
  {
    auto env = NewMemEnv();
    InputSpec spec;
    spec.path = "in.dat";
    spec.num_records = records;
    if (!CreateInputFile(env.get(), spec).ok()) return 1;
    SortOptions opts;
    opts.input_path = "in.dat";
    opts.output_path = "out.dat";
    opts.memory_budget = 4ull << 30;
    opts.num_workers = 3;
    SortMetrics m;
    if (Status s = AlphaSort::Run(env.get(), opts, &m); !s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    table.AddRow({"AlphaSort", "3 workers",
                  StrFormat("read+qs %.2f + merge %.2f", m.read_phase_s,
                            m.merge_phase_s),
                  StrFormat("%.3f", m.total_s), "-"});
  }
  table.Print();

  printf("\n--- the 1992/1993 economics (Table 1) ---\n\n");
  TextTable econ({"system", "time", "cost", "$/sort"});
  econ.AddRow({"Intel iPSC/2 Hypercube (32 cpu, 32 disk)", "58 s", "1.0 M$",
               StrFormat("%.2f", cost::DatamationDollarsPerSort(1e6, 58))});
  econ.AddRow({"DEC 7000 AXP AlphaSort (3 cpu, 28 disk)", "7 s", "0.31 M$",
               StrFormat("%.3f",
                         cost::DatamationDollarsPerSort(312000, 7))});
  econ.Print();

  printf(
      "\nShape check: the shared-nothing structure parallelizes cleanly\n"
      "(probabilistic splitting balances partitions on random keys), but\n"
      "in 1992 it took 32 message-passing micros to reach 58 s, while one\n"
      "1993 killer micro with striped commodity disks did it in 7-9 s at\n"
      "a third of the price — Table 1's 8:1. The same partitioned\n"
      "structure is what §9 says the terabyte sort will need.\n");
  return 0;
}
