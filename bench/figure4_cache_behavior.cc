// Reproduces Figure 4 and the §4 cache analysis: the replacement-selection
// tournament thrashes the cache unless it fits, while QuickSort's runs are
// cache resident. Every sort kernel runs under the cache simulator
// (AXP-like geometry, scaled so the effect shows at bench-sized inputs)
// and reports misses per record.

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "record/generator.h"
#include "sim/cache_sim.h"
#include "sort/quicksort.h"
#include "sort/replacement_selection.h"

using namespace alphasort;

namespace {

struct Row {
  std::string name;
  CacheSim::Stats stats;
  uint64_t records;
};

Row RunReplacementSelection(const std::vector<char>& block, size_t n,
                            size_t capacity, TreeLayout layout,
                            const CacheConfig& d, const CacheConfig& b,
                            const std::string& name) {
  CacheSim sim(d, b);
  ReplacementSelection<CacheSim> rs(
      kDatamationFormat, capacity, [](size_t, const char*) {}, layout, &sim);
  for (size_t i = 0; i < n; ++i) rs.Add(block.data() + i * 100);
  rs.Finish();
  return Row{name, sim.stats(), n};
}

Row RunQuickSortRuns(const std::vector<char>& block, size_t n,
                     size_t run_size, const CacheConfig& d,
                     const CacheConfig& b, const std::string& name) {
  CacheSim sim(d, b);
  std::vector<PrefixEntry> entries(n);
  BuildPrefixEntryArray(kDatamationFormat, block.data(), n, entries.data());
  SortStats stats;
  for (size_t start = 0; start < n; start += run_size) {
    const size_t len = std::min(run_size, n - start);
    QuickSortPrefixEntries(kDatamationFormat, entries.data() + start, len,
                           &stats, &sim);
  }
  return Row{name, sim.stats(), n};
}

}  // namespace

int main() {
  // Scaled AXP-like hierarchy: 8 KB D-cache and 256 KB B-cache (a 4 MB
  // B-cache would need a multi-hundred-MB workload to thrash; the ratio of
  // tournament size to cache size is what matters).
  const CacheConfig dcache{8 * 1024, 32, 1};
  const CacheConfig bcache{256 * 1024, 32, 1};
  const size_t n = 200000;

  RecordGenerator gen(kDatamationFormat, 1994);
  const auto block = gen.Generate(KeyDistribution::kUniform, n);

  std::vector<Row> rows;
  // Tournament sized in cache (fits in B-cache: 4k items * 32 B = 128 KB)
  // and out of cache (64k items * 32 B = 2 MB >> 256 KB).
  rows.push_back(RunReplacementSelection(
      block, n, 4096, TreeLayout::kFlat, dcache, bcache,
      "replacement-selection, tournament fits B-cache (4k)"));
  rows.push_back(RunReplacementSelection(
      block, n, 65536, TreeLayout::kFlat, dcache, bcache,
      "replacement-selection, tournament 8x B-cache (64k, flat)"));
  rows.push_back(RunReplacementSelection(
      block, n, 65536, TreeLayout::kClustered, dcache, bcache,
      "replacement-selection, 64k clustered nodes"));
  rows.push_back(RunQuickSortRuns(
      block, n, 4096, dcache, bcache,
      "QuickSort key-prefix runs of 4k entries (64 KB each)"));
  rows.push_back(RunQuickSortRuns(
      block, n, 16384, dcache, bcache,
      "QuickSort key-prefix runs of 16k entries (256 KB each)"));

  printf("=== Figure 4: cache behaviour of tournament vs QuickSort ===\n");
  printf("(D-cache 8 KB, B-cache 256 KB, 32 B lines, %zu records)\n\n", n);

  TextTable table({"Kernel", "accesses/rec", "D-miss/rec", "mem-ref/rec",
                   "D-miss rate", "TLB miss", "stall cyc/rec"});
  for (const auto& row : rows) {
    const auto& s = row.stats;
    const double per = 1.0 / row.records;
    table.AddRow(
        {row.name, StrFormat("%.1f", s.accesses * per),
         StrFormat("%.2f", (s.accesses - s.dcache_hits) * per),
         StrFormat("%.3f", s.memory_accesses * per),
         StrFormat("%.1f%%", 100 * s.DcacheMissRate()),
         StrFormat("%.1f%%", 100 * s.TlbMissRate()),
         StrFormat("%.1f", s.StallCycles() * per)});
  }
  table.Print();

  printf(
      "\nShape check (paper §4): the out-of-cache tournament pays far more\n"
      "memory references per record than cache-resident QuickSort runs;\n"
      "clustering tournament nodes into cache lines recovers a 2-3x factor\n"
      "but still loses to QuickSort.\n");
  return 0;
}
