// Ablation of offset-value coding (§4 footnote 1): "for binary data, like
// the keys of the Datamation benchmark, offset value coding will not beat
// AlphaSort's simpler key-prefix sort." Compares an OVC tournament merge
// against the plain key-prefix tournament merge on random keys (the
// benchmark's regime) and on shared-prefix keys (where coding relative to
// predecessors pays off).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/table.h"
#include "record/generator.h"
#include "sort/merger.h"
#include "sort/ovc.h"
#include "sort/quicksort.h"

using namespace alphasort;

namespace {

constexpr size_t kRecords = 200000;
constexpr size_t kRuns = 16;

double TimedSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct MergeResult {
  double seconds;
  uint64_t key_compares;  // compares that touched record keys
  uint64_t total_compares;
};

void RunOnce(KeyDistribution dist, TextTable* table, const char* label) {
  RecordGenerator gen(kDatamationFormat, 5);
  const auto block = gen.Generate(dist, kRecords);

  // Build the same k sorted runs for both mergers.
  std::vector<std::vector<const char*>> ptr_runs(kRuns);
  for (size_t i = 0; i < kRecords; ++i) {
    ptr_runs[i % kRuns].push_back(block.data() + i * 100);
  }
  for (auto& run : ptr_runs) {
    std::sort(run.begin(), run.end(), [](const char* a, const char* b) {
      return kDatamationFormat.CompareKeys(a, b) < 0;
    });
  }

  // Key-prefix merge.
  std::vector<PrefixEntry> entries(kRecords);
  std::vector<EntryRun> entry_runs;
  {
    size_t pos = 0;
    for (const auto& run : ptr_runs) {
      const size_t start = pos;
      for (const char* rec : run) {
        entries[pos++] = MakePrefixEntry(kDatamationFormat, rec);
      }
      entry_runs.push_back(
          EntryRun{entries.data() + start, entries.data() + pos});
    }
  }
  SortStats prefix_stats;
  uint64_t prefix_emitted = 0;
  const double prefix_s = TimedSeconds([&] {
    RunMerger<> merger(kDatamationFormat, entry_runs, TreeLayout::kFlat,
                       nullptr, &prefix_stats);
    while (!merger.Done()) {
      merger.Next();
      ++prefix_emitted;
    }
  });

  // OVC merge.
  OvcMerger::Stats ovc_stats;
  uint64_t ovc_emitted = 0;
  const double ovc_s = TimedSeconds([&] {
    OvcMerger merger(kDatamationFormat, ptr_runs);
    while (!merger.Done()) {
      merger.Next();
      ++ovc_emitted;
    }
    ovc_stats = merger.stats();
  });

  table->AddRow({label, "key-prefix", StrFormat("%.1f", prefix_s * 1e3),
                 StrFormat("%.3f",
                           double(prefix_stats.tie_breaks) / prefix_emitted),
                 StrFormat("%.2f",
                           double(prefix_stats.compares) / prefix_emitted)});
  table->AddRow({"", "OVC", StrFormat("%.1f", ovc_s * 1e3),
                 StrFormat("%.3f",
                           double(ovc_stats.full_compares) / ovc_emitted),
                 StrFormat("%.2f", double(ovc_stats.code_compares +
                                          ovc_stats.full_compares) /
                                       ovc_emitted)});
}

}  // namespace

int main() {
  printf("=== Ablation: offset-value coding vs key-prefix merge ===\n");
  printf("(%zu records, %zu-way merge)\n\n", kRecords, kRuns);

  TextTable table({"keys", "merger", "time (ms)", "key-compares/rec",
                   "compares/rec"});
  RunOnce(KeyDistribution::kUniform, &table, "random (Datamation)");
  RunOnce(KeyDistribution::kSharedPrefix, &table, "8-byte shared prefix");
  table.Print();

  printf(
      "\nShape check (footnote 1): on random binary keys both schemes\n"
      "resolve essentially every compare without touching the records, so\n"
      "OVC's extra coding work buys nothing — it 'will not beat\n"
      "AlphaSort's simpler key-prefix sort'. On keys that defeat the\n"
      "8-byte prefix, the prefix merger goes to the records on every\n"
      "compare while OVC codes discriminate after one full compare per\n"
      "key pair — the regime OVC was invented for.\n");
  return 0;
}
