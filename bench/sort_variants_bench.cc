// Reproduces the §4 in-text CPU comparison of the four QuickSort
// disciplines on Datamation records (R=100, K=10, P=8):
//   - record sort was "30% slower than pointer sort and 270% slower than
//     key sort",
//   - "the key-pointer QuickSort runs three times faster than pointer
//     sort",
//   - key-prefix improved on key sort by "25%".
// Absolute times are this host's; the ordering and rough ratios are the
// reproduction target. Each discipline runs at two working-set sizes —
// the paper's effects come from the memory hierarchy, so the gaps widen
// once the records no longer fit in the last-level cache (the 1993 AXP
// had a 4 MB B-cache; modern hosts need the larger size).

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "record/generator.h"
#include "sort/entry.h"
#include "sort/quicksort.h"

namespace alphasort {
namespace {

const std::vector<char>& SharedBlock(size_t n) {
  static std::map<size_t, std::vector<char>>* blocks =
      new std::map<size_t, std::vector<char>>();
  auto it = blocks->find(n);
  if (it == blocks->end()) {
    RecordGenerator gen(kDatamationFormat, 1994);
    it = blocks->emplace(n, gen.Generate(KeyDistribution::kUniform, n))
             .first;
  }
  return it->second;
}

void SetSizes(benchmark::internal::Benchmark* b) {
  b->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);
}

void BM_RecordSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto& block = SharedBlock(n);
  std::vector<char> copy;
  for (auto _ : state) {
    state.PauseTiming();
    copy = block;
    state.ResumeTiming();
    SortRecords(kDatamationFormat, copy.data(), n);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RecordSort)->Apply(SetSizes);

void BM_PointerSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto& block = SharedBlock(n);
  std::vector<RecordPtr> ptrs(n);
  for (auto _ : state) {
    state.PauseTiming();
    BuildPointerArray(kDatamationFormat, block.data(), n, ptrs.data());
    state.ResumeTiming();
    SortPointerArray(kDatamationFormat, ptrs.data(), n);
    benchmark::DoNotOptimize(ptrs.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PointerSort)->Apply(SetSizes);

void BM_KeySort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto& block = SharedBlock(n);
  std::vector<KeyEntry> entries(n);
  for (auto _ : state) {
    state.PauseTiming();
    BuildKeyEntryArray(kDatamationFormat, block.data(), n, entries.data());
    state.ResumeTiming();
    SortKeyEntryArray(kDatamationFormat, entries.data(), n);
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KeySort)->Apply(SetSizes);

void BM_KeyPrefixSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto& block = SharedBlock(n);
  std::vector<PrefixEntry> entries(n);
  for (auto _ : state) {
    state.PauseTiming();
    BuildPrefixEntryArray(kDatamationFormat, block.data(), n,
                          entries.data());
    state.ResumeTiming();
    SortPrefixEntryArray(kDatamationFormat, entries.data(), n);
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KeyPrefixSort)->Apply(SetSizes);

// Small records (R = 16): the regime where the paper recommends record
// sort ("if the record is short, record sort has the best cache
// behavior") — the entry array stops paying for itself.
void BM_RecordSortSmallRecords(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RecordFormat fmt(16, 8);
  RecordGenerator gen(fmt, 3);
  const auto block = gen.Generate(KeyDistribution::kUniform, n);
  std::vector<char> copy;
  for (auto _ : state) {
    state.PauseTiming();
    copy = block;
    state.ResumeTiming();
    SortRecords(fmt, copy.data(), n);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RecordSortSmallRecords)->Apply(SetSizes);

void BM_KeyPrefixSortSmallRecords(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const RecordFormat fmt(16, 8);
  RecordGenerator gen(fmt, 3);
  const auto block = gen.Generate(KeyDistribution::kUniform, n);
  std::vector<PrefixEntry> entries(n);
  for (auto _ : state) {
    state.PauseTiming();
    BuildPrefixEntryArray(fmt, block.data(), n, entries.data());
    state.ResumeTiming();
    SortPrefixEntryArray(fmt, entries.data(), n);
    benchmark::DoNotOptimize(entries.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KeyPrefixSortSmallRecords)->Apply(SetSizes);

}  // namespace
}  // namespace alphasort

BENCHMARK_MAIN();
