#ifndef ALPHASORT_SVC_SORT_SERVICE_H_
#define ALPHASORT_SVC_SORT_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/sorter.h"

namespace alphasort {
namespace svc {

// SortService: concurrent sort jobs with shared resource arbitration.
//
// A plain Sorter starts every job immediately — fine when the caller
// controls concurrency, pathological when N clients each bring their own
// memory_budget to one machine. SortService is the arbitration layer on
// top (docs/service.md):
//
//  * Global memory budget. A job is admitted only when its effective
//    memory_budget fits in what remains of `memory_budget`; a job asking
//    for more than the whole service budget is down-negotiated — its
//    budget is clamped to the service's, which pushes the §6 planner
//    into a two-pass plan instead of rejecting the job.
//  * Shared pools. All jobs run over one ChorePool and one AsyncIO
//    scheduler, like concurrent sorts sharing one machine's CPUs and
//    disks.
//  * Bounded admission queue. Submit() returns Status::Unavailable once
//    `max_queued` jobs are waiting — backpressure, not unbounded memory.
//  * Deadlines and cancellation. A job's time_limit_s clock starts at
//    Submit (queue wait counts); Cancel() stops a queued job without it
//    ever touching a file and a running job at its next run/merge-batch
//    boundary.
//  * Scratch namespacing. Each job spills under
//    <scratch_path>/job-<id>/, so concurrent two-pass jobs never sweep
//    each other's runs.
//
// Admission is FIFO with head-of-line blocking: the oldest queued job is
// admitted as soon as its ticket fits, and younger jobs never jump over
// it (no starvation of big jobs). Because every ticket is clamped to the
// service budget, the head job always fits eventually.
//
// Submit() hands back the same SortJob handle Sorter::Start returns:
// Wait()/TryWait() for the SortResult, Cancel() to give up, state() to
// observe Queued -> Running -> Done.
struct SortServiceOptions {
  // Total record memory the service lends out to running jobs; the sum
  // of admitted tickets never exceeds this.
  uint64_t memory_budget = 256ull << 20;

  // Jobs running concurrently (runner threads). Queued jobs beyond this
  // wait even when budget remains.
  int max_running = 2;

  // Jobs waiting for admission before Submit() returns Unavailable.
  int max_queued = 16;

  // Shared ChorePool workers and AsyncIO threads, as in
  // Sorter::Resources. Per-job num_workers/io_threads in SortOptions are
  // ignored under a service — the pools are shared.
  int num_workers = 0;
  int io_threads = 4;
  bool use_affinity = false;
};

// Point-in-time service state, also exported as svc.* registry gauges
// and counters (docs/observability.md).
struct SortServiceStats {
  uint64_t submitted = 0;         // accepted by Submit()
  uint64_t rejected = 0;          // Unavailable: queue full or shut down
  uint64_t completed = 0;         // ran to a terminal status
  uint64_t cancelled_queued = 0;  // reaped before admission
  uint64_t down_negotiated = 0;   // budget clamped at Submit()
  int queued = 0;
  int running = 0;
  uint64_t admitted_bytes = 0;       // tickets currently lent out
  uint64_t peak_admitted_bytes = 0;  // high-water mark; never > budget
};

class SortService {
 public:
  // `env` must outlive the service and every job submitted to it.
  explicit SortService(Env* env,
                       const SortServiceOptions& options = SortServiceOptions());

  // Drains: stops admissions and waits for every queued and running job.
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  // Validates and enqueues one sort job. Errors:
  //  * InvalidArgument — options fail SortOptions::Validate(), either as
  //    given or after down-negotiation (io_chunk_bytes too large for the
  //    service budget).
  //  * Unavailable — max_queued jobs already waiting, or Shutdown() has
  //    been called. The caller should back off and retry.
  // On success the returned job is queued; its time_limit_s (if any)
  // started counting now.
  Result<SortJob> Submit(const SortOptions& options);

  // Stops accepting new jobs and wakes the runners; queued jobs still
  // run. Idempotent; the destructor calls it.
  void Shutdown();

  SortServiceStats stats() const;

  Env* env() const { return env_; }

 private:
  using JobCorePtr = std::shared_ptr<core_internal::JobCore>;

  void RunnerLoop();
  // Finishes queued jobs whose control already reports cancel/deadline,
  // without charging the budget. Caller holds mu_.
  void ReapQueuedLocked();
  bool HeadAdmittableLocked() const;
  void RunAdmitted(core_internal::JobCore* core);

  Env* const env_;
  const SortServiceOptions options_;
  AsyncIO aio_;
  ChorePool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::deque<JobCorePtr> queue_;
  uint64_t next_id_ = 1;
  SortServiceStats stats_;
  std::vector<std::thread> runners_;
};

}  // namespace svc
}  // namespace alphasort

#endif  // ALPHASORT_SVC_SORT_SERVICE_H_
