file(REMOVE_RECURSE
  "libalphasort_svc.a"
)
