file(REMOVE_RECURSE
  "CMakeFiles/alphasort_svc.dir/sort_service.cc.o"
  "CMakeFiles/alphasort_svc.dir/sort_service.cc.o.d"
  "libalphasort_svc.a"
  "libalphasort_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
