# Empty dependencies file for alphasort_svc.
# This may be replaced when dependencies are built.
