#include "svc/sort_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/table.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alphasort {
namespace svc {

namespace {

// Service-level registry instruments (docs/observability.md). Gauges
// mirror the mu_-protected stats so an external scrape sees live levels
// without taking the service lock.
obs::Gauge* JobsQueued() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global()->GetGauge("svc.jobs_queued");
  return g;
}
obs::Gauge* JobsRunning() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global()->GetGauge("svc.jobs_running");
  return g;
}
obs::Gauge* AdmittedBytes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global()->GetGauge("svc.admitted_bytes");
  return g;
}
obs::Counter* JobsSubmitted() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("svc.jobs_submitted");
  return c;
}
obs::Counter* JobsRejected() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("svc.jobs_rejected");
  return c;
}
obs::Counter* JobsCompleted() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("svc.jobs_completed");
  return c;
}
obs::Counter* JobsCancelledQueued() {
  static obs::Counter* c = obs::MetricsRegistry::Global()->GetCounter(
      "svc.jobs_cancelled_queued");
  return c;
}
obs::Counter* JobsDownNegotiated() {
  static obs::Counter* c = obs::MetricsRegistry::Global()->GetCounter(
      "svc.jobs_down_negotiated");
  return c;
}

// The per-job scratch namespace directory: everything job `id` spills
// lives under <scratch_path>/job-<id>/, so the ScratchSweeper's prefix
// sweep ("<prefix>.l*") stays inside the job's own directory.
std::string JobScratchDir(const std::string& scratch_path, uint64_t id) {
  return StrFormat("%s/job-%llu", scratch_path.c_str(),
                   static_cast<unsigned long long>(id));
}

}  // namespace

SortService::SortService(Env* env, const SortServiceOptions& options)
    : env_(env),
      options_(options),
      aio_(std::max(1, options.io_threads)),
      pool_(std::max(0, options.num_workers), options.use_affinity) {
  const int runners = std::max(1, options_.max_running);
  runners_.reserve(runners);
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

SortService::~SortService() {
  Shutdown();
  for (auto& t : runners_) t.join();
}

void SortService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

Result<SortJob> SortService::Submit(const SortOptions& options) {
  ALPHASORT_RETURN_IF_ERROR(options.Validate());

  // Admission-side log events (svc.reject, svc.down_negotiate,
  // svc.submit) carry the submitter's trace id even though the job has
  // not reached ExecuteJob's own trace scope yet — a rejected job's
  // only footprint is here.
  obs::ScopedTraceId trace_scope(options.trace_id);

  auto core = std::make_shared<core_internal::JobCore>();
  core->options = options;

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    ++stats_.rejected;
    JobsRejected()->Add();
    ALPHASORT_LOG(kWarn, "svc.reject").Str("reason", "shutdown");
    return Status::Unavailable("sort service is shut down");
  }
  if (queue_.size() >= static_cast<size_t>(std::max(0, options_.max_queued))) {
    ++stats_.rejected;
    JobsRejected()->Add();
    ALPHASORT_LOG(kWarn, "svc.reject")
        .Str("reason", "queue_full")
        .I64("queued", static_cast<int64_t>(queue_.size()));
    return Status::Unavailable(StrFormat(
        "admission queue full (%d queued, max_queued=%d)",
        static_cast<int>(queue_.size()), options_.max_queued));
  }

  core->id = next_id_++;

  // Down-negotiate a budget the service could never admit: clamp it to
  // the whole service budget, which makes the §6 planner choose a
  // two-pass plan for inputs that no longer fit. The clamped options
  // must still be coherent — a job whose io_chunk_bytes needs more than
  // the service has is an InvalidArgument, not a queueable job.
  if (core->options.memory_budget > options_.memory_budget) {
    core->options.memory_budget = options_.memory_budget;
    core->down_negotiated = true;
    if (Status v = core->options.Validate(); !v.ok()) {
      ++stats_.rejected;
      JobsRejected()->Add();
      ALPHASORT_LOG(kWarn, "svc.reject")
          .U64("job", core->id)
          .Str("reason", "invalid_after_clamp");
      return Status::InvalidArgument(StrFormat(
          "job cannot run within the service budget of %llu bytes: %s",
          static_cast<unsigned long long>(options_.memory_budget),
          v.message().c_str()));
    }
    ++stats_.down_negotiated;
    JobsDownNegotiated()->Add();
    ALPHASORT_LOG(kInfo, "svc.down_negotiate")
        .U64("job", core->id)
        .U64("requested", options.memory_budget)
        .U64("granted", core->options.memory_budget);
  }
  // The admission ticket: what this job charges against the global
  // budget while it runs. Clamped above, so the head of the queue always
  // fits once enough peers finish.
  core->admitted_bytes = core->options.memory_budget;

  // Per-job scratch namespace; disjoint per id, so concurrent jobs (and
  // their sweepers) never touch each other's spills.
  core->options.scratch_path =
      JobScratchDir(options.scratch_path, core->id) + "/scratch";

  // The deadline clock starts at Submit: a job that waits out its whole
  // time_limit_s in the queue is reaped without touching a file.
  if (core->options.time_limit_s > 0) {
    core->control.SetTimeout(core->options.time_limit_s);
  }

  // Cancel() wakes the runners so a cancelled queued job is reaped
  // promptly instead of at the next admission tick.
  core->on_cancel = [this] { cv_.notify_all(); };
  // Service jobs mirror their progress into svc.job.<id>.* gauges so
  // the exposition endpoint can report them without a handle.
  core->publish_gauges = true;

  queue_.push_back(core);
  ++stats_.submitted;
  stats_.queued = static_cast<int>(queue_.size());
  JobsSubmitted()->Add();
  JobsQueued()->Set(stats_.queued);
  ALPHASORT_LOG(kInfo, "svc.submit")
      .U64("job", core->id)
      .U64("budget", core->options.memory_budget)
      .I64("queued", stats_.queued);
  cv_.notify_all();
  return SortJob(std::move(core));
}

void SortService::ReapQueuedLocked() {
  for (auto it = queue_.begin(); it != queue_.end();) {
    Status s = (*it)->control.Check();
    if (s.ok()) {
      ++it;
      continue;
    }
    {
      obs::ScopedTraceId trace_scope((*it)->options.trace_id);
      ALPHASORT_LOG(kInfo, "svc.reap")
          .U64("job", (*it)->id)
          .Str("status", s.ToString());
    }
    (*it)->Finish(std::move(s));
    it = queue_.erase(it);
    ++stats_.cancelled_queued;
    JobsCancelledQueued()->Add();
  }
  stats_.queued = static_cast<int>(queue_.size());
  JobsQueued()->Set(stats_.queued);
}

bool SortService::HeadAdmittableLocked() const {
  return !queue_.empty() &&
         queue_.front()->admitted_bytes <=
             options_.memory_budget - stats_.admitted_bytes;
}

void SortService::RunnerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Timed wait: deadlines expire without anyone calling Cancel(), so
    // the runners tick periodically to reap queued jobs whose clock ran
    // out even when no admission or completion wakes them.
    cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return shutdown_ || HeadAdmittableLocked();
    });
    ReapQueuedLocked();
    if (!HeadAdmittableLocked()) {
      // Drained and shut down -> exit. Otherwise keep waiting: either
      // the queue is empty, or the head's ticket needs peers to finish.
      if (shutdown_ && queue_.empty()) return;
      continue;
    }

    JobCorePtr core = queue_.front();
    queue_.pop_front();
    stats_.queued = static_cast<int>(queue_.size());
    stats_.admitted_bytes += core->admitted_bytes;
    stats_.peak_admitted_bytes =
        std::max(stats_.peak_admitted_bytes, stats_.admitted_bytes);
    ++stats_.running;
    JobsQueued()->Set(stats_.queued);
    JobsRunning()->Set(stats_.running);
    AdmittedBytes()->Set(static_cast<int64_t>(stats_.admitted_bytes));
    {
      obs::ScopedTraceId trace_scope(core->options.trace_id);
      ALPHASORT_LOG(kInfo, "svc.admit")
          .U64("job", core->id)
          .U64("ticket", core->admitted_bytes)
          .I64("running", stats_.running);
    }

    lock.unlock();
    RunAdmitted(core.get());
    lock.lock();

    stats_.admitted_bytes -= core->admitted_bytes;
    --stats_.running;
    ++stats_.completed;
    JobsRunning()->Set(stats_.running);
    AdmittedBytes()->Set(static_cast<int64_t>(stats_.admitted_bytes));
    JobsCompleted()->Add();
    {
      obs::ScopedTraceId trace_scope(core->options.trace_id);
      ALPHASORT_LOG(kInfo, "svc.complete")
          .U64("job", core->id)
          .I64("running", stats_.running)
          .I64("queued", stats_.queued);
    }
    // A freed ticket may unblock the new head; tell the other runners.
    cv_.notify_all();
  }
}

void SortService::RunAdmitted(core_internal::JobCore* core) {
  // "<dir>/scratch" -> "<dir>": the job's private namespace directory.
  const std::string dir = core->options.scratch_path.substr(
      0, core->options.scratch_path.size() - std::string("/scratch").size());
  if (Status s = env_->CreateDir(dir); !s.ok()) {
    core->Finish(std::move(s));
    return;
  }
  core_internal::ExecuteJob(env_, core, &aio_, &pool_);
  // Best-effort namespace removal. The job's sweeper already removed its
  // spills; a non-empty directory (foreign files) is left alone.
  env_->RemoveDir(dir);
}

SortServiceStats SortService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace svc
}  // namespace alphasort
