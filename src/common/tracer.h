#ifndef ALPHASORT_COMMON_TRACER_H_
#define ALPHASORT_COMMON_TRACER_H_

#include <cstddef>

namespace alphasort {

// Memory-access tracing policy.
//
// The sort kernels are templated on a Tracer so the cache simulator
// (src/sim/cache_sim.h) can observe the exact sequence of loads and stores
// each algorithm performs — that is how the paper's Figure 4 (tournament
// tree thrashes the cache, QuickSort stays resident) is reproduced. The
// default NullTracer has empty inline methods, so production
// instantiations compile to plain memory operations.
struct NullTracer {
  void Read(const void*, size_t) {}
  void Write(const void*, size_t) {}
};

// Wraps a Tracer with typed load/store helpers used by the kernels.
template <typename Tracer>
class Mem {
 public:
  explicit Mem(Tracer* tracer) : tracer_(tracer) {}

  template <typename T>
  T Load(const T* p) {
    tracer_->Read(p, sizeof(T));
    return *p;
  }

  template <typename T>
  void Store(T* p, const T& v) {
    tracer_->Write(p, sizeof(T));
    *p = v;
  }

  // Annotates a raw byte-range access (e.g. a key compare through a
  // record pointer, or a record copy during the gather phase).
  void TouchRead(const void* p, size_t n) { tracer_->Read(p, n); }
  void TouchWrite(void* p, size_t n) { tracer_->Write(p, n); }

  Tracer* tracer() const { return tracer_; }

 private:
  Tracer* tracer_;
};

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_TRACER_H_
