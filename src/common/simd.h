#ifndef ALPHASORT_COMMON_SIMD_H_
#define ALPHASORT_COMMON_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

// SIMD shim for the hot in-cache kernels (entry-array build and the
// QuickSort prefix-compare scans — docs/perf.md "Kernel speed pass 2").
//
// Three backends, chosen at compile time:
//   - SSE on x86-64 (SSE2 baseline; the 64-bit compares additionally need
//     SSE4.2's pcmpgtq, see kHasCompare64),
//   - NEON on AArch64,
//   - scalar everywhere else, and always when ALPHASORT_SIMD_FORCE_SCALAR
//     is defined (CMake -DALPHASORT_FORCE_SCALAR=ON — the configuration
//     CI's tier-1 stage builds so the fallback cannot rot).
//
// The scalar fallbacks are not an afterthought: every vector helper here
// has scalar semantics documented against it, every kernel keeps its
// scalar loop compiled in all configurations, and tests flip the runtime
// kill switch (SetForceScalar) to assert bit-identical results from both
// paths in one binary. The kill switch is consulted once per kernel entry
// (never inside a hot loop).
//
// Only 128-bit operations are exposed. The kernels' unit of work is one
// or two cache-line-sized entries (8/16 B — paper §4 sizes entries to
// lines), so wider vectors would only add alignment and tail cases
// without touching the memory-bound bottleneck.

#if !defined(ALPHASORT_SIMD_FORCE_SCALAR)
#if defined(__SSE2__) || defined(_M_X64)
#define ALPHASORT_SIMD_SSE 1
#include <emmintrin.h>
#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif
#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define ALPHASORT_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !ALPHASORT_SIMD_FORCE_SCALAR

#if defined(ALPHASORT_SIMD_SSE) || defined(ALPHASORT_SIMD_NEON)
#define ALPHASORT_SIMD_VECTOR 1
#endif

// 64-bit lane compares need pcmpgtq (SSE4.2) on x86; NEON has them
// natively. Callers gate 64-bit scan loops on this macro — the 32-bit
// ones need only ALPHASORT_SIMD_VECTOR.
#if (defined(ALPHASORT_SIMD_SSE) && defined(__SSE4_2__)) || \
    defined(ALPHASORT_SIMD_NEON)
#define ALPHASORT_SIMD_CMP64 1
#endif

namespace alphasort {
namespace simd {

// ---------------------------------------------------------------------------
// Backend identity and the runtime kill switch.
// ---------------------------------------------------------------------------

#if defined(ALPHASORT_SIMD_SSE)
inline constexpr bool kVectorCompiled = true;
inline constexpr const char* kBackendName = "sse";
#elif defined(ALPHASORT_SIMD_NEON)
inline constexpr bool kVectorCompiled = true;
inline constexpr const char* kBackendName = "neon";
#else
inline constexpr bool kVectorCompiled = false;
inline constexpr const char* kBackendName = "scalar";
#endif

// 64-bit unsigned lane compares need pcmpgtq (SSE4.2) on x86; AArch64
// NEON has them natively. Without them the 64-bit scan helpers fall back
// to scalar while the 32-bit ones stay vectorized.
#if (defined(ALPHASORT_SIMD_SSE) && defined(__SSE4_2__)) || \
    defined(ALPHASORT_SIMD_NEON)
inline constexpr bool kHasCompare64 = true;
#else
inline constexpr bool kHasCompare64 = false;
#endif

// Process-wide force-scalar flag, for simd-vs-scalar parity tests and the
// bench suite's A/B rows. Kernels read it once at entry via VectorActive().
inline std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
inline void SetForceScalar(bool v) {
  ForceScalarFlag().store(v, std::memory_order_relaxed);
}
inline bool VectorActive() {
  return kVectorCompiled &&
         !ForceScalarFlag().load(std::memory_order_relaxed);
}

// RAII toggle for tests: force the scalar path within a scope.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force = true)
      : prev_(ForceScalarFlag().load(std::memory_order_relaxed)) {
    SetForceScalar(force);
  }
  ~ScopedForceScalar() { SetForceScalar(prev_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// 128-bit vector operations. Compiled only when a vector backend is
// available; callers keep their scalar loop under `if (!VectorActive())`
// (or unconditionally when !kVectorCompiled).
//
// Lane numbering is little-endian throughout: lane 0 is the lowest-
// addressed element of a load and bit 0 of a compare mask.
// ---------------------------------------------------------------------------

#if defined(ALPHASORT_SIMD_SSE)

using V128 = __m128i;

// [u64 at a, u64 at b] (unaligned loads).
inline V128 LoadU64Pair(const void* a, const void* b) {
  return _mm_unpacklo_epi64(_mm_loadl_epi64(static_cast<const __m128i*>(a)),
                            _mm_loadl_epi64(static_cast<const __m128i*>(b)));
}

// [u64 at p, u64 at p + stride] — two prefixes of adjacent 16 B entries.
inline V128 GatherU64Stride(const void* p, size_t stride) {
  const char* c = static_cast<const char*>(p);
  return LoadU64Pair(c, c + stride);
}

// [u32 at p, p+s, p+2s, p+3s] — four prefixes of adjacent 8 B entries.
inline V128 GatherU32Stride(const void* p, size_t stride) {
  const char* c = static_cast<const char*>(p);
  uint32_t a, b, d, e;
  memcpy(&a, c, 4);
  memcpy(&b, c + stride, 4);
  memcpy(&d, c + 2 * stride, 4);
  memcpy(&e, c + 3 * stride, 4);
  return _mm_set_epi32(static_cast<int>(e), static_cast<int>(d),
                       static_cast<int>(b), static_cast<int>(a));
}

inline V128 SetU64(uint64_t lo, uint64_t hi) {
  return _mm_set_epi64x(static_cast<long long>(hi),
                        static_cast<long long>(lo));
}
inline V128 SetU32(uint32_t l0, uint32_t l1, uint32_t l2, uint32_t l3) {
  return _mm_set_epi32(static_cast<int>(l3), static_cast<int>(l2),
                       static_cast<int>(l1), static_cast<int>(l0));
}
inline V128 Broadcast64(uint64_t v) {
  return _mm_set1_epi64x(static_cast<long long>(v));
}
inline V128 Broadcast32(uint32_t v) {
  return _mm_set1_epi32(static_cast<int>(v));
}

// Byte-reverse each 64-bit lane (the big-endian prefix normalization of
// common/bytes.h, two keys at a time).
inline V128 Bswap64x2(V128 v) {
#if defined(__SSSE3__)
  const V128 rev = _mm_set_epi8(8, 9, 10, 11, 12, 13, 14, 15,  //
                                0, 1, 2, 3, 4, 5, 6, 7);
  return _mm_shuffle_epi8(v, rev);
#else
  // SSE2: swap bytes within 16-bit units, then 16-bit units within 32-bit
  // units, then 32-bit halves of each 64-bit lane.
  V128 x = _mm_or_si128(_mm_srli_epi16(v, 8), _mm_slli_epi16(v, 8));
  x = _mm_shufflelo_epi16(x, _MM_SHUFFLE(2, 3, 0, 1));
  x = _mm_shufflehi_epi16(x, _MM_SHUFFLE(2, 3, 0, 1));
  return _mm_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1));
#endif
}

// Byte-reverse each 32-bit lane (four compact prefixes at a time).
inline V128 Bswap32x4(V128 v) {
#if defined(__SSSE3__)
  const V128 rev = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11,  //
                                4, 5, 6, 7, 0, 1, 2, 3);
  return _mm_shuffle_epi8(v, rev);
#else
  V128 x = _mm_or_si128(_mm_srli_epi16(v, 8), _mm_slli_epi16(v, 8));
  x = _mm_shufflelo_epi16(x, _MM_SHUFFLE(2, 3, 0, 1));
  return _mm_shufflehi_epi16(x, _MM_SHUFFLE(2, 3, 0, 1));
#endif
}

// Interleave 64-bit lanes: [a0, b0] / [a1, b1]. Composes a 16 B
// (prefix, pointer) entry from a prefix vector and a pointer vector.
inline V128 InterleaveLo64(V128 a, V128 b) {
  return _mm_unpacklo_epi64(a, b);
}
inline V128 InterleaveHi64(V128 a, V128 b) {
  return _mm_unpackhi_epi64(a, b);
}

// Interleave 32-bit lanes: [a0, b0, a1, b1] / [a2, b2, a3, b3]. Composes
// two 8 B (prefix, index) compact entries per result.
inline V128 InterleaveLo32(V128 a, V128 b) {
  return _mm_unpacklo_epi32(a, b);
}
inline V128 InterleaveHi32(V128 a, V128 b) {
  return _mm_unpackhi_epi32(a, b);
}

inline void StoreU128(void* p, V128 v) {
  _mm_storeu_si128(static_cast<__m128i*>(p), v);
}

// 2-bit mask of 64-bit lanes where a < b, unsigned. Requires
// kHasCompare64 (pcmpgtq is signed; lanes are sign-bias-flipped first).
#if defined(__SSE4_2__)
inline unsigned LessU64Mask(V128 a, V128 b) {
  const V128 bias = _mm_set1_epi64x(static_cast<long long>(1ull << 63));
  const V128 gt = _mm_cmpgt_epi64(_mm_xor_si128(b, bias),
                                  _mm_xor_si128(a, bias));
  return static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(gt)));
}
inline unsigned GreaterU64Mask(V128 a, V128 b) { return LessU64Mask(b, a); }
#endif

// 4-bit mask of 32-bit lanes where a < b, unsigned (SSE2).
inline unsigned LessU32Mask(V128 a, V128 b) {
  const V128 bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const V128 gt = _mm_cmpgt_epi32(_mm_xor_si128(b, bias),
                                  _mm_xor_si128(a, bias));
  return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(gt)));
}
inline unsigned GreaterU32Mask(V128 a, V128 b) { return LessU32Mask(b, a); }

#elif defined(ALPHASORT_SIMD_NEON)

using V128 = uint8x16_t;

inline V128 LoadU64Pair(const void* a, const void* b) {
  uint64x2_t v = vdupq_n_u64(0);
  uint64_t lo, hi;
  memcpy(&lo, a, 8);
  memcpy(&hi, b, 8);
  v = vsetq_lane_u64(lo, v, 0);
  v = vsetq_lane_u64(hi, v, 1);
  return vreinterpretq_u8_u64(v);
}

inline V128 GatherU64Stride(const void* p, size_t stride) {
  const char* c = static_cast<const char*>(p);
  return LoadU64Pair(c, c + stride);
}

inline V128 GatherU32Stride(const void* p, size_t stride) {
  const char* c = static_cast<const char*>(p);
  uint32_t lanes[4];
  memcpy(&lanes[0], c, 4);
  memcpy(&lanes[1], c + stride, 4);
  memcpy(&lanes[2], c + 2 * stride, 4);
  memcpy(&lanes[3], c + 3 * stride, 4);
  return vreinterpretq_u8_u32(vld1q_u32(lanes));
}

inline V128 SetU64(uint64_t lo, uint64_t hi) {
  uint64x2_t v = vdupq_n_u64(lo);
  v = vsetq_lane_u64(hi, v, 1);
  return vreinterpretq_u8_u64(v);
}
inline V128 SetU32(uint32_t l0, uint32_t l1, uint32_t l2, uint32_t l3) {
  const uint32_t lanes[4] = {l0, l1, l2, l3};
  return vreinterpretq_u8_u32(vld1q_u32(lanes));
}
inline V128 Broadcast64(uint64_t v) {
  return vreinterpretq_u8_u64(vdupq_n_u64(v));
}
inline V128 Broadcast32(uint32_t v) {
  return vreinterpretq_u8_u32(vdupq_n_u32(v));
}

inline V128 Bswap64x2(V128 v) { return vrev64q_u8(v); }
inline V128 Bswap32x4(V128 v) { return vrev32q_u8(v); }

inline V128 InterleaveLo64(V128 a, V128 b) {
  return vreinterpretq_u8_u64(vzip1q_u64(vreinterpretq_u64_u8(a),
                                         vreinterpretq_u64_u8(b)));
}
inline V128 InterleaveHi64(V128 a, V128 b) {
  return vreinterpretq_u8_u64(vzip2q_u64(vreinterpretq_u64_u8(a),
                                         vreinterpretq_u64_u8(b)));
}
inline V128 InterleaveLo32(V128 a, V128 b) {
  return vreinterpretq_u8_u32(vzip1q_u32(vreinterpretq_u32_u8(a),
                                         vreinterpretq_u32_u8(b)));
}
inline V128 InterleaveHi32(V128 a, V128 b) {
  return vreinterpretq_u8_u32(vzip2q_u32(vreinterpretq_u32_u8(a),
                                         vreinterpretq_u32_u8(b)));
}

inline void StoreU128(void* p, V128 v) {
  vst1q_u8(static_cast<uint8_t*>(p), v);
}

inline unsigned LessU64Mask(V128 a, V128 b) {
  const uint64x2_t lt =
      vcltq_u64(vreinterpretq_u64_u8(a), vreinterpretq_u64_u8(b));
  return static_cast<unsigned>(vgetq_lane_u64(lt, 0) & 1) |
         (static_cast<unsigned>(vgetq_lane_u64(lt, 1) & 1) << 1);
}
inline unsigned GreaterU64Mask(V128 a, V128 b) { return LessU64Mask(b, a); }

inline unsigned LessU32Mask(V128 a, V128 b) {
  const uint32x4_t lt =
      vcltq_u32(vreinterpretq_u32_u8(a), vreinterpretq_u32_u8(b));
  return static_cast<unsigned>(vgetq_lane_u32(lt, 0) & 1) |
         (static_cast<unsigned>(vgetq_lane_u32(lt, 1) & 1) << 1) |
         (static_cast<unsigned>(vgetq_lane_u32(lt, 2) & 1) << 2) |
         (static_cast<unsigned>(vgetq_lane_u32(lt, 3) & 1) << 3);
}
inline unsigned GreaterU32Mask(V128 a, V128 b) { return LessU32Mask(b, a); }

#endif  // backend

}  // namespace simd
}  // namespace alphasort

#endif  // ALPHASORT_COMMON_SIMD_H_
