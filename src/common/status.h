#ifndef ALPHASORT_COMMON_STATUS_H_
#define ALPHASORT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace alphasort {

// Operation outcome carried up the call chain instead of exceptions
// (the library is exception-free; all fallible public entry points
// return a Status or a Result<T>).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kNotSupported,
    kResourceExhausted,
    kAborted,
    kUnavailable,        // try again later (queue full, shutting down)
    kDeadlineExceeded,   // the operation's deadline passed
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }

  const std::string& message() const { return msg_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// Propagate a non-OK Status to the caller.
#define ALPHASORT_RETURN_IF_ERROR(expr)          \
  do {                                           \
    ::alphasort::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

// Value-or-Status return type for fallible producers.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;`
  // both work at Result-returning call sites.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Requires ok().
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_STATUS_H_
