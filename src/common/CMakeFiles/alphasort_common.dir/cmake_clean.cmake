file(REMOVE_RECURSE
  "CMakeFiles/alphasort_common.dir/checksum.cc.o"
  "CMakeFiles/alphasort_common.dir/checksum.cc.o.d"
  "CMakeFiles/alphasort_common.dir/status.cc.o"
  "CMakeFiles/alphasort_common.dir/status.cc.o.d"
  "CMakeFiles/alphasort_common.dir/table.cc.o"
  "CMakeFiles/alphasort_common.dir/table.cc.o.d"
  "libalphasort_common.a"
  "libalphasort_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
