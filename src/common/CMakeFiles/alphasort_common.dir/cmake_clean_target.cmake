file(REMOVE_RECURSE
  "libalphasort_common.a"
)
