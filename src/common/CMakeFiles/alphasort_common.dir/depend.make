# Empty dependencies file for alphasort_common.
# This may be replaced when dependencies are built.
