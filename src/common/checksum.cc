#include "common/checksum.h"

#include <array>

namespace alphasort {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82f63b78u;  // reflected Castagnoli

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kCrc32cPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  return kTable;
}

// 64-bit mix (xxhash-style avalanche) for fingerprint hashing.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// GF(2) vector-matrix product: each matrix column is the image of one
// bit of `vec` under multiplication by x^k mod the CRC polynomial.
uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

}  // namespace

uint32_t Crc32cCombine(uint32_t crc1, uint32_t crc2, uint64_t len2) {
  // zlib's crc32_combine ported to the Castagnoli polynomial: advance
  // crc1 through len2 zero bytes by repeated matrix squaring (the matrix
  // for x^8, squared per bit of len2), then fold in crc2. The pre/post
  // inversion Crc32c applies cancels out of the algebra, so the final
  // conditioned values combine directly.
  if (len2 == 0) return crc1;
  uint32_t even[32];  // operator for 2^k zero bytes, k even
  uint32_t odd[32];   // ... k odd
  odd[0] = kCrc32cPoly;  // operator for one zero bit
  uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);   // one zero byte, two bits at a time...
  Gf2MatrixSquare(odd, even);   // ...four bits: even is now 8 bits = 1 byte
  do {
    Gf2MatrixSquare(even, odd);
    if (len2 & 1) crc1 = Gf2MatrixTimes(even, crc1);
    len2 >>= 1;
    if (len2 == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len2 & 1) crc1 = Gf2MatrixTimes(odd, crc1);
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void MultisetFingerprint::Add(const void* data, size_t n) {
  // Two independent byte hashes, combined commutatively across elements.
  const uint32_t crc = Crc32c(data, n);
  const uint64_t h = Mix64((static_cast<uint64_t>(crc) << 32) | n);
  sum_ += h;
  xor_ ^= Mix64(h + 0x9e3779b97f4a7c15ULL);
  ++count_;
}

}  // namespace alphasort
