#include "common/checksum.h"

#include <array>

namespace alphasort {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82f63b78u;  // reflected Castagnoli

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kCrc32cPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  return kTable;
}

// 64-bit mix (xxhash-style avalanche) for fingerprint hashing.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void MultisetFingerprint::Add(const void* data, size_t n) {
  // Two independent byte hashes, combined commutatively across elements.
  const uint32_t crc = Crc32c(data, n);
  const uint64_t h = Mix64((static_cast<uint64_t>(crc) << 32) | n);
  sum_ += h;
  xor_ ^= Mix64(h + 0x9e3779b97f4a7c15ULL);
  ++count_;
}

}  // namespace alphasort
