#ifndef ALPHASORT_COMMON_CHECKSUM_H_
#define ALPHASORT_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace alphasort {

// CRC-32C (Castagnoli), software table implementation. Used by the
// sorted-permutation validator and stripe metadata integrity checks.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

// Order-independent 64-bit fingerprint of a multiset of byte strings:
// equal multisets of records produce equal fingerprints regardless of
// order. Used to check that a sort output is a permutation of its input
// without materializing either side.
class MultisetFingerprint {
 public:
  void Add(const void* data, size_t n);

  // Commutative combine of two partial fingerprints.
  void Merge(const MultisetFingerprint& other) {
    sum_ += other.sum_;
    xor_ ^= other.xor_;
    count_ += other.count_;
  }

  bool operator==(const MultisetFingerprint& other) const {
    return sum_ == other.sum_ && xor_ == other.xor_ &&
           count_ == other.count_;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t sum_ = 0;
  uint64_t xor_ = 0;
  uint64_t count_ = 0;
};

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_CHECKSUM_H_
