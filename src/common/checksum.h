#ifndef ALPHASORT_COMMON_CHECKSUM_H_
#define ALPHASORT_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace alphasort {

// CRC-32C (Castagnoli), software table implementation. Used by the
// sorted-permutation validator and stripe metadata integrity checks.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

// CRC of the concatenation A||B from the CRCs of A and B and the length
// of B: Crc32cCombine(Crc32c(a), Crc32c(b), len_b) == Crc32c(a||b).
// O(log len2) GF(2) matrix products. This is what lets the partitioned
// merge checksum each output range independently (ranges complete out of
// order) and still report the byte-stream CRC of the whole sorted output.
uint32_t Crc32cCombine(uint32_t crc1, uint32_t crc2, uint64_t len2);

// Order-independent 64-bit fingerprint of a multiset of byte strings:
// equal multisets of records produce equal fingerprints regardless of
// order. Used to check that a sort output is a permutation of its input
// without materializing either side.
class MultisetFingerprint {
 public:
  void Add(const void* data, size_t n);

  // Commutative combine of two partial fingerprints.
  void Merge(const MultisetFingerprint& other) {
    sum_ += other.sum_;
    xor_ ^= other.xor_;
    count_ += other.count_;
  }

  bool operator==(const MultisetFingerprint& other) const {
    return sum_ == other.sum_ && xor_ == other.xor_ &&
           count_ == other.count_;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t sum_ = 0;
  uint64_t xor_ = 0;
  uint64_t count_ = 0;
};

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_CHECKSUM_H_
