#ifndef ALPHASORT_COMMON_TABLE_H_
#define ALPHASORT_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace alphasort {

// Minimal ASCII table formatter used by the benchmark harnesses to print
// the paper's tables. Columns are sized to their widest cell; numeric
// formatting is the caller's responsibility (pass preformatted strings).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Renders the table with a header rule, e.g.
  //   System        | time(s) | $/sort
  //   --------------+---------+-------
  //   DEC 7000 AXP  |     7.0 | 0.014
  std::string ToString() const;

  void Print(FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style helper returning std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_TABLE_H_
