#ifndef ALPHASORT_COMMON_PREFETCH_H_
#define ALPHASORT_COMMON_PREFETCH_H_

#include <cstddef>

namespace alphasort {

// Software prefetch for the pipeline's three memory-bound loops (entry
// build, tournament leaf replacement, gather). The paper's §4 analysis is
// all about hiding main-memory latency behind useful work; on modern
// cores the same spots stall on demand misses that an explicit prefetch
// issued one batch ahead turns into hits. Hints are advisory: a bad
// address is ignored by the hardware, so callers may prefetch one element
// past a boundary without guarding.
#if defined(__GNUC__) || defined(__clang__)
// Read prefetch into all cache levels (locality 3: the data is consumed
// within the next few iterations).
#define ALPHASORT_PREFETCH_READ(addr) __builtin_prefetch((addr), 0, 3)
// Write prefetch: the line will be fully overwritten (gather output).
#define ALPHASORT_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define ALPHASORT_PREFETCH_READ(addr) ((void)(addr))
#define ALPHASORT_PREFETCH_WRITE(addr) ((void)(addr))
#endif

// How many elements ahead the memory-bound loops prefetch by default.
// Far enough that the line arrives before the loop reaches it, near
// enough that it is still resident; 8 records ≈ 800 B ≈ a DRAM access
// worth of loop iterations for Datamation-sized records. Tuned via
// SortOptions::prefetch_distance (0 disables the hints entirely).
inline constexpr size_t kDefaultPrefetchDistance = 8;

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_PREFETCH_H_
