#ifndef ALPHASORT_COMMON_BYTES_H_
#define ALPHASORT_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace alphasort {

// Byte-order helpers for key-prefix normalization.
//
// AlphaSort's central trick is to sort (key-prefix, pointer) pairs where the
// prefix is the first bytes of the key re-packed as a big-endian unsigned
// integer, so that a single integer compare has the same outcome as a
// lexicographic byte compare over those bytes (paper §4).

// Packs up to 8 leading bytes of `key` into a uint64_t whose unsigned
// integer order equals the lexicographic order of those bytes. Keys shorter
// than 8 bytes are zero-padded on the right (low-order side), which sorts
// them before any longer key sharing the same bytes — matching byte order.
inline uint64_t LoadKeyPrefix(const void* key, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(key);
  uint64_t v = 0;
  const size_t n = len < 8 ? len : 8;
  for (size_t i = 0; i < n; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (56 - 8 * i);
  }
  return v;
}

// Fast path for keys known to have >= 8 readable bytes.
inline uint64_t LoadKeyPrefix8(const void* key) {
  uint64_t v;
  memcpy(&v, key, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}

// Fixed-width little-endian encode/decode used by on-disk metadata.
inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_BYTES_H_
