#include "common/table.h"

#include <cstdarg>

namespace alphasort {

std::string TextTable::ToString() const {
  // Column widths: max over header and all rows.
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit_row = [&widths](std::string* out,
                            const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      out->append(cell);
      out->append(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) out->append(" | ");
    }
    out->push_back('\n');
  };

  std::string out;
  emit_row(&out, header_);
  for (size_t i = 0; i < widths.size(); ++i) {
    out.append(widths[i], '-');
    if (i + 1 < widths.size()) out.append("-+-");
  }
  out.push_back('\n');
  for (const auto& row : rows_) emit_row(&out, row);
  return out;
}

void TextTable::Print(FILE* out) const {
  const std::string s = ToString();
  fwrite(s.data(), 1, s.size(), out);
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace alphasort
