#ifndef ALPHASORT_COMMON_RANDOM_H_
#define ALPHASORT_COMMON_RANDOM_H_

#include <cstdint>

namespace alphasort {

// Deterministic xorshift128+ generator. Used everywhere instead of
// std::mt19937 so that record generation is fast (the Datamation input is
// hundreds of megabytes of random keys) and reproducible across platforms.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding to spread low-entropy seeds across both words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if ((s0_ | s1_) == 0) s1_ = 1;  // xorshift must not start at all-zero
  }

  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  // True with probability 1/n. Requires n > 0.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  double NextDouble() {  // uniform in [0, 1)
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_RANDOM_H_
