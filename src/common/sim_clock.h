#ifndef ALPHASORT_COMMON_SIM_CLOCK_H_
#define ALPHASORT_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace alphasort {

// Virtual time base for the discrete-event simulators. One tick is a
// nanosecond of simulated 1993 wall time; the simulators advance it
// explicitly, so simulated elapsed times are deterministic and independent
// of host speed.
class SimClock {
 public:
  SimClock() = default;

  int64_t NowNanos() const { return now_ns_; }
  double NowSeconds() const { return static_cast<double>(now_ns_) * 1e-9; }

  void AdvanceNanos(int64_t delta_ns) { now_ns_ += delta_ns; }
  void AdvanceSeconds(double s) {
    now_ns_ += static_cast<int64_t>(s * 1e9 + 0.5);
  }

  // Moves the clock forward to `t_ns` if it is in the future; a no-op
  // otherwise (events that completed in the past do not move time back).
  void AdvanceTo(int64_t t_ns) {
    if (t_ns > now_ns_) now_ns_ = t_ns;
  }

 private:
  int64_t now_ns_ = 0;
};

}  // namespace alphasort

#endif  // ALPHASORT_COMMON_SIM_CLOCK_H_
