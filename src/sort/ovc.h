#ifndef ALPHASORT_SORT_OVC_H_
#define ALPHASORT_SORT_OVC_H_

#include <cstdint>
#include <vector>

#include "record/record.h"
#include "sort/quicksort.h"

namespace alphasort {

// Offset-value coding (OVC) k-way merge — the IBM DFsort/SyncSort
// technique the paper says it is "evaluating" (§4, footnote 1; Conner,
// IBM TDB 1977). Each candidate key is coded relative to the key that
// last preceded or defeated it: code = (K - offset) << 16 | value, where
// `offset` is the length of the shared prefix and `value` packs the next
// two key bytes. Two candidates coded against the same base compare by
// code alone; only equal codes force a full-key comparison, after which
// the loser's code is recomputed relative to the winner.
//
// The tree-of-losers invariant that makes this sound: the loser stored at
// a node was last defeated by the winner that passed through that node,
// and a replacement item entering from a run is coded against the last
// global winner (its run predecessor). Unequal-code outcomes preserve the
// invariant automatically (the loser's shared prefix with the new winner
// is unchanged); only the equal-code path rewrites a code.
//
// The paper's verdict — for random binary keys like Datamation's, OVC
// "will not beat AlphaSort's simpler key-prefix sort" — is what
// bench/ablation_ovc measures.
class OvcMerger {
 public:
  struct Stats {
    uint64_t code_compares = 0;  // resolved on the 32-bit code alone
    uint64_t full_compares = 0;  // had to touch both keys
    uint64_t key_bytes_read = 0;
  };

  // `runs[i]` is a key-ascending run of record pointers. Pointers must
  // stay valid for the merger's lifetime.
  OvcMerger(const RecordFormat& format,
            std::vector<std::vector<const char*>> runs);

  bool Done() const { return winner_ == kNone; }

  // Next record pointer in global key order. Requires !Done().
  const char* Next();

  const Stats& stats() const { return stats_; }

 private:
  static constexpr size_t kNone = static_cast<size_t>(-1);

  struct Leaf {
    uint32_t code = 0;
    const char* record = nullptr;
    bool exhausted = true;
  };

  uint32_t CodeAgainst(const char* key_rec, const char* base_rec) const;
  uint32_t InitialCode(const char* rec) const;

  // Pulls run r's next record, coded against its run predecessor (= the
  // winner just emitted), into the leaf.
  void RefillLeaf(size_t r);

  // True iff leaf a beats (sorts before) leaf b; may rewrite the loser's
  // code when a full comparison was needed.
  bool LeafBeats(size_t a, size_t b);

  void Replay(size_t leaf);
  size_t RebuildSubtree(size_t node);

  RecordFormat format_;
  std::vector<std::vector<const char*>> runs_;
  std::vector<size_t> cursor_;
  size_t k_;
  std::vector<size_t> nodes_;  // loser tree over k_ leaves
  std::vector<Leaf> leaves_;
  size_t winner_ = kNone;
  Stats stats_;
};

}  // namespace alphasort

#endif  // ALPHASORT_SORT_OVC_H_
