# Empty dependencies file for alphasort_sort.
# This may be replaced when dependencies are built.
