file(REMOVE_RECURSE
  "CMakeFiles/alphasort_sort.dir/compact_entry.cc.o"
  "CMakeFiles/alphasort_sort.dir/compact_entry.cc.o.d"
  "CMakeFiles/alphasort_sort.dir/merge_partition.cc.o"
  "CMakeFiles/alphasort_sort.dir/merge_partition.cc.o.d"
  "CMakeFiles/alphasort_sort.dir/ovc.cc.o"
  "CMakeFiles/alphasort_sort.dir/ovc.cc.o.d"
  "CMakeFiles/alphasort_sort.dir/partition_sort.cc.o"
  "CMakeFiles/alphasort_sort.dir/partition_sort.cc.o.d"
  "CMakeFiles/alphasort_sort.dir/quicksort.cc.o"
  "CMakeFiles/alphasort_sort.dir/quicksort.cc.o.d"
  "CMakeFiles/alphasort_sort.dir/replacement_selection.cc.o"
  "CMakeFiles/alphasort_sort.dir/replacement_selection.cc.o.d"
  "CMakeFiles/alphasort_sort.dir/tournament_tree.cc.o"
  "CMakeFiles/alphasort_sort.dir/tournament_tree.cc.o.d"
  "libalphasort_sort.a"
  "libalphasort_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
