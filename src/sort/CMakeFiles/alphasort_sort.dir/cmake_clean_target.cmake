file(REMOVE_RECURSE
  "libalphasort_sort.a"
)
