
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sort/compact_entry.cc" "src/sort/CMakeFiles/alphasort_sort.dir/compact_entry.cc.o" "gcc" "src/sort/CMakeFiles/alphasort_sort.dir/compact_entry.cc.o.d"
  "/root/repo/src/sort/merge_partition.cc" "src/sort/CMakeFiles/alphasort_sort.dir/merge_partition.cc.o" "gcc" "src/sort/CMakeFiles/alphasort_sort.dir/merge_partition.cc.o.d"
  "/root/repo/src/sort/ovc.cc" "src/sort/CMakeFiles/alphasort_sort.dir/ovc.cc.o" "gcc" "src/sort/CMakeFiles/alphasort_sort.dir/ovc.cc.o.d"
  "/root/repo/src/sort/partition_sort.cc" "src/sort/CMakeFiles/alphasort_sort.dir/partition_sort.cc.o" "gcc" "src/sort/CMakeFiles/alphasort_sort.dir/partition_sort.cc.o.d"
  "/root/repo/src/sort/quicksort.cc" "src/sort/CMakeFiles/alphasort_sort.dir/quicksort.cc.o" "gcc" "src/sort/CMakeFiles/alphasort_sort.dir/quicksort.cc.o.d"
  "/root/repo/src/sort/replacement_selection.cc" "src/sort/CMakeFiles/alphasort_sort.dir/replacement_selection.cc.o" "gcc" "src/sort/CMakeFiles/alphasort_sort.dir/replacement_selection.cc.o.d"
  "/root/repo/src/sort/tournament_tree.cc" "src/sort/CMakeFiles/alphasort_sort.dir/tournament_tree.cc.o" "gcc" "src/sort/CMakeFiles/alphasort_sort.dir/tournament_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/record/CMakeFiles/alphasort_record.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
