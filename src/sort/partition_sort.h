#ifndef ALPHASORT_SORT_PARTITION_SORT_H_
#define ALPHASORT_SORT_PARTITION_SORT_H_

#include <cstddef>

#include "record/record.h"
#include "sort/entry.h"
#include "sort/quicksort.h"

namespace alphasort {

// Distributive partition sort — the paper's footnote 1 suggestion: "a
// distributive sort that partitions the key-pairs into 256 buckets based
// on the first byte of the key would eliminate 8 of the 20 compares needed
// for a 100 MB sort. Such a partition sort might beat AlphaSort's simple
// QuickSort."
//
// Implementation: one counting pass over the prefixes builds the 256
// bucket boundaries, entries are permuted into bucket order (out of
// place), and each bucket is QuickSorted independently. Because every key
// in a bucket shares its first byte, each bucket's QuickSort works on a
// key range 1/256th the size — saving ~log2(256) = 8 compares per element
// versus one big QuickSort, at the price of one extra pass over the
// entries.
//
// `entries` is sorted in place (a scratch array of n entries is allocated
// internally). Stats count the distribution pass's moves as exchanges.
void PartitionSortPrefixEntries(const RecordFormat& format,
                                PrefixEntry* entries, size_t n,
                                SortStats* stats = nullptr);

}  // namespace alphasort

#endif  // ALPHASORT_SORT_PARTITION_SORT_H_
