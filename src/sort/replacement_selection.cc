#include "sort/replacement_selection.h"

namespace alphasort {

std::vector<std::vector<const char*>> GenerateRunsReplacementSelection(
    const RecordFormat& format, const char* records, size_t n,
    size_t capacity, SortStats* stats, TreeLayout layout) {
  std::vector<std::vector<const char*>> runs;
  auto sink = [&runs](size_t run, const char* record) {
    if (run >= runs.size()) runs.resize(run + 1);
    runs[run].push_back(record);
  };
  ReplacementSelection<NullTracer> rs(format, capacity, sink, layout,
                                      nullptr, stats);
  for (size_t i = 0; i < n; ++i) {
    rs.Add(records + i * format.record_size);
  }
  rs.Finish();
  return runs;
}

}  // namespace alphasort
