#include "sort/merge_partition.h"

#include <algorithm>

namespace alphasort {

namespace {

// How many splitter candidates each wanted range contributes per run.
// Oversampling keeps the quantile splitters close to the true key-space
// quantiles even when runs disagree about the distribution (skewed
// inputs), which is what bounds range imbalance.
constexpr size_t kSplitterOversample = 8;

MergePartition SingleRange(const std::vector<EntryRun>& runs,
                           uint64_t total) {
  MergePartition out;
  MergeRange all;
  all.runs = runs;
  all.first_record = 0;
  all.num_records = total;
  out.ranges.push_back(std::move(all));
  return out;
}

}  // namespace

MergePartition PartitionEntryRuns(const RecordFormat& format,
                                  const std::vector<EntryRun>& runs,
                                  size_t max_ranges) {
  uint64_t total = 0;
  for (const auto& run : runs) total += run.size();
  if (max_ranges <= 1 || runs.size() <= 1 || total == 0) {
    return SingleRange(runs, total);
  }

  const EntryKeyLess less{&format};
  auto equal = [&less](const PrefixEntry& a, const PrefixEntry& b) {
    return !less(a, b) && !less(b, a);
  };

  // Sample evenly spaced entries from every run. Each run is sorted, so
  // its samples are order statistics of that run; pooled and sorted they
  // approximate the order statistics of the whole key population.
  std::vector<PrefixEntry> samples;
  const size_t per_run = max_ranges * kSplitterOversample;
  samples.reserve(per_run * runs.size());
  for (const auto& run : runs) {
    const size_t n = run.size();
    if (n == 0) continue;
    const size_t step = std::max<size_t>(1, n / per_run);
    for (size_t i = step - 1; i < n; i += step) {
      samples.push_back(run.begin[i]);
    }
  }
  std::sort(samples.begin(), samples.end(), less);

  // Splitters at sample quantiles; drop duplicates so an all-equal or
  // heavily clustered key population collapses to fewer ranges instead of
  // producing empty ones. upper_bound semantics below put every entry
  // equal to a splitter in the range below it, which is what keeps equal
  // keys from straddling a boundary.
  std::vector<PrefixEntry> splitters;
  splitters.reserve(max_ranges - 1);
  for (size_t p = 1; p < max_ranges; ++p) {
    const PrefixEntry cand = samples[p * samples.size() / max_ranges];
    if (!splitters.empty() && equal(splitters.back(), cand)) continue;
    splitters.push_back(cand);
  }

  // Per-run boundary cursors: bounds[s][r] is where run s's slice for
  // range r begins. Search resumes from the previous splitter's bound —
  // splitters ascend, so each run is scanned monotonically.
  const size_t num_ranges = splitters.size() + 1;
  std::vector<std::vector<const PrefixEntry*>> bounds(
      runs.size(), std::vector<const PrefixEntry*>(num_ranges + 1));
  for (size_t s = 0; s < runs.size(); ++s) {
    bounds[s][0] = runs[s].begin;
    for (size_t r = 0; r < splitters.size(); ++r) {
      bounds[s][r + 1] =
          std::upper_bound(bounds[s][r], runs[s].end, splitters[r], less);
    }
    bounds[s][num_ranges] = runs[s].end;
  }

  MergePartition out;
  out.ranges.resize(num_ranges);
  uint64_t first = 0;
  for (size_t r = 0; r < num_ranges; ++r) {
    MergeRange& range = out.ranges[r];
    range.runs.reserve(runs.size());
    uint64_t count = 0;
    for (size_t s = 0; s < runs.size(); ++s) {
      range.runs.push_back(EntryRun{bounds[s][r], bounds[s][r + 1]});
      count += range.runs.back().size();
    }
    range.first_record = first;
    range.num_records = count;
    first += count;
  }
  // Interior ranges always hold at least their sampled splitter key, but
  // the last range is empty when the largest splitter equals the maximum
  // key (all-equal inputs, clustered tails). An empty range is a no-op
  // chore — drop it so NumRanges() reflects real parallelism.
  while (out.ranges.size() > 1 && out.ranges.back().num_records == 0) {
    out.ranges.pop_back();
  }
  return out;
}

}  // namespace alphasort
