#ifndef ALPHASORT_SORT_MERGE_PARTITION_H_
#define ALPHASORT_SORT_MERGE_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "record/record.h"
#include "sort/entry.h"
#include "sort/merger.h"

namespace alphasort {

// Key-range partitioning of sorted entry runs, the decomposition behind
// the parallel one-pass merge (docs/perf.md).
//
// The paper's root/worker split (§5) parallelizes the QuickSort and
// gather chores but leaves the tournament merge itself on the root, so
// the merge phase stops scaling where Figure 6 keeps climbing. The fix is
// classic partitioned merging (DPG, Polyntsov et al. 2022): split the
// *key space* into P disjoint ranges, binary-search every sorted run for
// the range boundaries, and merge each range independently — range r's
// output is a contiguous slice of the final output whose offset is known
// exactly up front, because the per-range record counts are.
//
// Correctness contract (merge_partition_test pins all of it):
//   - The per-run sub-runs of consecutive ranges tile each input run
//     exactly: nothing dropped, nothing duplicated.
//   - Records with equal full keys never straddle a range boundary
//     (boundaries are upper-bounds of splitter keys), so each range's
//     loser tree applies the same stream-index tie-break the global
//     sequential merge would, and the concatenated per-range outputs are
//     byte-identical to the sequential merger's stream.
//   - Degenerate key distributions degrade to fewer (possibly one)
//     non-empty ranges, never to wrong output: all-equal keys put every
//     record in the first range.

// One key range: a per-source slice of every input run (same order and
// count as the partitioned runs, empty slices kept so stream numbering —
// and therefore equal-key tie-breaking — matches the global merge), plus
// the exact output slice it produces.
struct MergeRange {
  std::vector<EntryRun> runs;
  uint64_t first_record = 0;  // global output index of this range's start
  uint64_t num_records = 0;
};

struct MergePartition {
  std::vector<MergeRange> ranges;

  size_t NumRanges() const { return ranges.size(); }
  uint64_t TotalRecords() const {
    uint64_t n = 0;
    for (const auto& r : ranges) n += r.num_records;
    return n;
  }
};

// Pure key order over entries: prefix first, full record keys on prefix
// ties (the same order RunMerger's EntryLess resolves, minus stats and
// minus the merger's stream tie-break — partitioning must not depend on
// which run an entry came from).
struct EntryKeyLess {
  const RecordFormat* format;

  bool operator()(const PrefixEntry& a, const PrefixEntry& b) const {
    if (a.prefix != b.prefix) return a.prefix < b.prefix;
    if (format->key_size <= 8) return false;
    return format->CompareKeys(a.record, b.record) < 0;
  }
};

// Splits `runs` into at most `max_ranges` disjoint key ranges by sampling
// splitter keys from the runs (evenly spaced entries, oversampled, then
// quantiles) and binary-searching every run for each splitter's upper
// bound. Adjacent equal splitters are deduplicated, so heavily skewed
// inputs yield fewer ranges rather than empty ones; with max_ranges <= 1,
// a single run, or an empty input the result is one range covering
// everything (the sequential merge). Cost is O(S log S) on the sample
// plus O(K P log n) binary searches — microseconds next to the merge.
MergePartition PartitionEntryRuns(const RecordFormat& format,
                                  const std::vector<EntryRun>& runs,
                                  size_t max_ranges);

}  // namespace alphasort

#endif  // ALPHASORT_SORT_MERGE_PARTITION_H_
