#ifndef ALPHASORT_SORT_SORT_KERNEL_H_
#define ALPHASORT_SORT_SORT_KERNEL_H_

#include <string_view>

namespace alphasort {

// Which in-cache sort runs over the run's prefix-entry array
// (docs/perf.md "Kernel speed pass 2"):
//   kQuickSort   — the paper's key-prefix introsort, always correct.
//   kRadixHybrid — MSB-radix partition passes over the 64-bit prefixes
//                  into cache-sized buckets, each finished by the same
//                  introsort (src/sort/radix_partition.h).
//   kAuto        — radix for runs large enough to amortize the scatter,
//                  quicksort below that.
// Both kernels sort by the same strict total order (full key, then
// record position), so they produce byte-identical output — which one
// runs is purely a speed decision.
enum class SortKernel {
  kAuto = 0,
  kQuickSort = 1,
  kRadixHybrid = 2,
};

inline const char* SortKernelName(SortKernel k) {
  switch (k) {
    case SortKernel::kAuto:
      return "auto";
    case SortKernel::kQuickSort:
      return "quicksort";
    case SortKernel::kRadixHybrid:
      return "radix_hybrid";
  }
  return "invalid";
}

// Parses the SortOptions::sort_kernel spelling. Returns false (leaving
// *out untouched) on an unknown name.
inline bool ParseSortKernel(std::string_view name, SortKernel* out) {
  if (name == "auto") {
    *out = SortKernel::kAuto;
  } else if (name == "quicksort") {
    *out = SortKernel::kQuickSort;
  } else if (name == "radix_hybrid") {
    *out = SortKernel::kRadixHybrid;
  } else {
    return false;
  }
  return true;
}

inline bool SortKernelIsValid(SortKernel k) {
  return k == SortKernel::kAuto || k == SortKernel::kQuickSort ||
         k == SortKernel::kRadixHybrid;
}

}  // namespace alphasort

#endif  // ALPHASORT_SORT_SORT_KERNEL_H_
