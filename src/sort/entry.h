#ifndef ALPHASORT_SORT_ENTRY_H_
#define ALPHASORT_SORT_ENTRY_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "record/record.h"

namespace alphasort {

// The three detached representations a QuickSort can operate on instead of
// whole records (paper §4). Record sort needs no entry type: it permutes
// the record array itself.

// Pointer sort: sort raw record pointers; every compare chases both
// pointers into main memory.
using RecordPtr = const char*;

// Key sort: the full (conditioned) key is carried next to the pointer, so
// compares never touch the record. Keys longer than kInlineKeyCapacity are
// not supported by this discipline (use key-prefix sort, which falls back
// to the record on prefix ties).
struct KeyEntry {
  static constexpr size_t kInlineKeyCapacity = 16;

  std::array<char, kInlineKeyCapacity> key;  // zero-padded past key_size
  const char* record;
};

// Key-prefix sort — AlphaSort's choice. The first (up to) 8 key bytes are
// normalized into a big-endian integer; most compares are one integer
// compare, and ties go through the pointer to the full key.
struct PrefixEntry {
  uint64_t prefix;
  const char* record;
};

inline KeyEntry MakeKeyEntry(const RecordFormat& format, const char* record) {
  KeyEntry e;
  e.key.fill(0);
  const size_t n = format.key_size < KeyEntry::kInlineKeyCapacity
                       ? format.key_size
                       : KeyEntry::kInlineKeyCapacity;
  memcpy(e.key.data(), format.KeyPtr(record), n);
  e.record = record;
  return e;
}

inline PrefixEntry MakePrefixEntry(const RecordFormat& format,
                                   const char* record) {
  return PrefixEntry{format.KeyPrefix(record), record};
}

}  // namespace alphasort

#endif  // ALPHASORT_SORT_ENTRY_H_
