#ifndef ALPHASORT_SORT_COMPACT_ENTRY_H_
#define ALPHASORT_SORT_COMPACT_ENTRY_H_

#include <cstdint>

#include "common/prefetch.h"
#include "record/record.h"
#include "sort/quicksort.h"

namespace alphasort {

// The paper's actual entry layout: "AlphaSort extracts the 8-byte (record
// address, key-prefix) pairs from each record" (§7) — a 32-bit key prefix
// plus a 32-bit record reference, so twice as many entries fit in a cache
// line as with this library's default 16-byte (64-bit prefix, 64-bit
// pointer) entries. The cost is a weaker discriminator: a 4-byte prefix
// of random keys starts colliding around ~2^16 records (birthday bound),
// sending more compares through the records.
//
// The record reference is an index relative to a base pointer, which is
// how a 32-bit slot addresses >4 GB of records.
struct CompactEntry {
  uint32_t prefix;  // first 4 key bytes, big-endian normalized
  uint32_t index;   // record index relative to the base
};
static_assert(sizeof(CompactEntry) == 8, "the paper's 8-byte pairs");

// Builds entries over `n` contiguous records starting at `base`,
// prefetching keys `prefetch_distance` records ahead of the extract loop
// (0 disables the hints; see common/prefetch.h).
void BuildCompactEntryArray(const RecordFormat& format, const char* base,
                            size_t n, CompactEntry* out,
                            size_t prefetch_distance = kDefaultPrefetchDistance);

// Sorts entries by key (4-byte prefix fast path, full-key fallback
// through base + index on ties). Stats count tie-breaks as usual.
void SortCompactEntryArray(const RecordFormat& format, const char* base,
                           CompactEntry* entries, size_t n,
                           SortStats* stats = nullptr);

}  // namespace alphasort

#endif  // ALPHASORT_SORT_COMPACT_ENTRY_H_
