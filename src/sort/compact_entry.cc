#include "sort/compact_entry.h"

#include "common/bytes.h"

namespace alphasort {

namespace {

uint32_t Prefix32(const RecordFormat& fmt, const char* record) {
  return static_cast<uint32_t>(fmt.KeyPrefix(record) >> 32);
}

// Index-based Ops over compact entries for the shared introsort driver.
class CompactOps {
 public:
  CompactOps(const RecordFormat& format, const char* base,
             CompactEntry* entries, SortStats* stats)
      : fmt_(format), base_(base), a_(entries), stats_(stats) {}

  bool Less(size_t i, size_t j) { return LessEntries(a_[i], a_[j]); }

  void Swap(size_t i, size_t j) {
    ++stats_->exchanges;
    stats_->bytes_moved += 2 * sizeof(CompactEntry);
    std::swap(a_[i], a_[j]);
  }

  void SetPivot(size_t i) { pivot_ = a_[i]; }
  bool LessThanPivot(size_t i) { return LessEntries(a_[i], pivot_); }
  bool PivotLessThan(size_t i) { return LessEntries(pivot_, a_[i]); }

 private:
  const char* Rec(const CompactEntry& e) const {
    return base_ + static_cast<uint64_t>(e.index) * fmt_.record_size;
  }

  bool LessEntries(const CompactEntry& x, const CompactEntry& y) {
    ++stats_->compares;
    if (x.prefix != y.prefix) return x.prefix < y.prefix;
    if (fmt_.key_size <= 4) return false;
    ++stats_->tie_breaks;
    return fmt_.CompareKeys(Rec(x), Rec(y)) < 0;
  }

  RecordFormat fmt_;
  const char* base_;
  CompactEntry* a_;
  SortStats* stats_;
  CompactEntry pivot_{};
};

}  // namespace

void BuildCompactEntryArray(const RecordFormat& format, const char* base,
                            size_t n, CompactEntry* out,
                            size_t prefetch_distance) {
  const size_t r = format.record_size;
  const size_t d = prefetch_distance;
  for (size_t i = 0; i < n; ++i) {
    if (d != 0 && i + d < n) {
      ALPHASORT_PREFETCH_READ(format.KeyPtr(base + (i + d) * r));
    }
    out[i] = CompactEntry{Prefix32(format, base + i * r),
                          static_cast<uint32_t>(i)};
  }
}

void SortCompactEntryArray(const RecordFormat& format, const char* base,
                           CompactEntry* entries, size_t n,
                           SortStats* stats) {
  SortStats local;
  if (stats == nullptr) stats = &local;
  CompactOps ops(format, base, entries, stats);
  sort_internal::IntroSort(ops, n);
}

}  // namespace alphasort
