#include "sort/compact_entry.h"

#include "common/bytes.h"
#include "common/simd.h"

namespace alphasort {

namespace {

uint32_t Prefix32(const RecordFormat& fmt, const char* record) {
  return static_cast<uint32_t>(fmt.KeyPrefix(record) >> 32);
}

// Index-based Ops over compact entries for the shared introsort driver.
class CompactOps {
 public:
  CompactOps(const RecordFormat& format, const char* base,
             CompactEntry* entries, SortStats* stats)
      : fmt_(format),
        base_(base),
        a_(entries),
        stats_(stats),
        use_vector_(simd::VectorActive()) {}

  bool Less(size_t i, size_t j) { return LessEntries(a_[i], a_[j]); }

  void Swap(size_t i, size_t j) {
    ++stats_->exchanges;
    stats_->bytes_moved += 2 * sizeof(CompactEntry);
    std::swap(a_[i], a_[j]);
  }

  void SetPivot(size_t i) { pivot_ = a_[i]; }
  bool LessThanPivot(size_t i) { return LessEntries(a_[i], pivot_); }
  bool PivotLessThan(size_t i) { return LessEntries(pivot_, a_[i]); }

  // Vectorized partition scans (see IntroSortLoop): four 32-bit prefixes
  // per step, strictly-decided lanes skipped, everything else resolved by
  // the scalar compare below. Plain SSE2/NEON — 32-bit lane compares need
  // no SSE4.2.
  size_t ScanLessThanPivot(size_t i, size_t hi) {
#if defined(ALPHASORT_SIMD_VECTOR)
    if (use_vector_) {
      const simd::V128 pv = simd::Broadcast32(pivot_.prefix);
      while (i + 4 <= hi) {
        const simd::V128 p =
            simd::GatherU32Stride(&a_[i].prefix, sizeof(CompactEntry));
        if (simd::LessU32Mask(p, pv) != 0xFu) break;
        stats_->compares += 4;
        i += 4;
      }
    }
#else
    (void)hi;
#endif
    while (LessThanPivot(i)) ++i;
    return i;
  }

  size_t ScanPivotLessThan(size_t j, size_t lo) {
#if defined(ALPHASORT_SIMD_VECTOR)
    if (use_vector_) {
      const simd::V128 pv = simd::Broadcast32(pivot_.prefix);
      while (j >= lo + 3) {
        const simd::V128 p =
            simd::GatherU32Stride(&a_[j - 3].prefix, sizeof(CompactEntry));
        if (simd::GreaterU32Mask(p, pv) != 0xFu) break;
        stats_->compares += 4;
        j -= 4;
      }
    }
#else
    (void)lo;
#endif
    while (PivotLessThan(j)) --j;
    return j;
  }

 private:
  const char* Rec(const CompactEntry& e) const {
    return base_ + static_cast<uint64_t>(e.index) * fmt_.record_size;
  }

  bool LessEntries(const CompactEntry& x, const CompactEntry& y) {
    ++stats_->compares;
    if (x.prefix != y.prefix) return x.prefix < y.prefix;
    if (fmt_.key_size > 4) {
      // The 4-byte prefix already decided the first 4 key bytes — resume
      // the compare at byte 4 instead of re-reading them.
      ++stats_->tie_breaks;
      stats_->tie_break_bytes_skipped += 4;
      const int c = memcmp(fmt_.KeyPtr(Rec(x)) + 4, fmt_.KeyPtr(Rec(y)) + 4,
                           fmt_.key_size - 4);
      if (c != 0) return c < 0;
    }
    // Equal keys: order by record index — a strict total order, so every
    // kernel yields the same byte-identical permutation.
    return x.index < y.index;
  }

  RecordFormat fmt_;
  const char* base_;
  CompactEntry* a_;
  SortStats* stats_;
  CompactEntry pivot_{};
  bool use_vector_;
};

}  // namespace

void BuildCompactEntryArray(const RecordFormat& format, const char* base,
                            size_t n, CompactEntry* out,
                            size_t prefetch_distance) {
  const size_t r = format.record_size;
  const size_t d = prefetch_distance;
  size_t i = 0;
#if defined(ALPHASORT_SIMD_VECTOR)
  // Vector path: four records per step — gather the four 4-byte key
  // heads, byte-reverse all lanes at once, interleave with the index
  // lanes, and store four 8-byte entries with two 16-byte stores. Valid
  // whenever the key has >= 4 bytes (Prefix32 is then exactly the
  // big-endian load of the first 4; shorter keys keep the scalar path's
  // zero-padded packing).
  if (simd::VectorActive() && format.key_size >= 4) {
    // Four records retire per step, so the hint reaches 4x as many
    // records ahead to buy the scalar loop's time headroom (same logic
    // as BuildPrefixEntryArray's 2x).
    const size_t vd = 4 * d;
    for (; i + 4 <= n; i += 4) {
      if (vd != 0 && i + vd + 3 < n) {
        ALPHASORT_PREFETCH_READ(format.KeyPtr(base + (i + vd) * r));
        ALPHASORT_PREFETCH_READ(format.KeyPtr(base + (i + vd + 3) * r));
      }
      const simd::V128 pref = simd::Bswap32x4(
          simd::GatherU32Stride(format.KeyPtr(base + i * r), r));
      const simd::V128 idx = simd::SetU32(
          static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1),
          static_cast<uint32_t>(i + 2), static_cast<uint32_t>(i + 3));
      simd::StoreU128(&out[i], simd::InterleaveLo32(pref, idx));
      simd::StoreU128(&out[i + 2], simd::InterleaveHi32(pref, idx));
    }
  }
#endif
  for (; i < n; ++i) {
    if (d != 0 && i + d < n) {
      ALPHASORT_PREFETCH_READ(format.KeyPtr(base + (i + d) * r));
    }
    out[i] = CompactEntry{Prefix32(format, base + i * r),
                          static_cast<uint32_t>(i)};
  }
}

void SortCompactEntryArray(const RecordFormat& format, const char* base,
                           CompactEntry* entries, size_t n,
                           SortStats* stats) {
  SortStats local;
  if (stats == nullptr) stats = &local;
  CompactOps ops(format, base, entries, stats);
  sort_internal::IntroSort(ops, n);
}

}  // namespace alphasort
