#include "sort/tournament_tree.h"

namespace alphasort {

TreeLayoutMap::TreeLayoutMap(size_t num_nodes, TreeLayout layout,
                             int cluster_height)
    : num_nodes_(num_nodes),
      layout_(layout),
      cluster_height_(cluster_height),
      slots_per_cluster_(size_t{1} << cluster_height),  // 2^h - 1, padded
      positions_needed_(num_nodes) {
  if (layout_ != TreeLayout::kClustered) return;
  map_.assign(num_nodes_ + 1, 0);
  size_t next_pos = 0;
  NumberSubtree(1, &next_pos);
  positions_needed_ = next_pos;
}

void TreeLayoutMap::NumberSubtree(size_t root, size_t* next_pos) {
  if (root > num_nodes_) return;
  // The top `cluster_height_` levels of this subtree form one cluster
  // occupying a full aligned block of slots_per_cluster_ positions (2^h - 1
  // nodes plus one slot of padding); the subtree roots hanging below the
  // block are numbered recursively into their own clusters.
  const size_t block_start = *next_pos;
  *next_pos += slots_per_cluster_;
  size_t in_block = 0;
  std::vector<size_t> level = {root};
  std::vector<size_t> below;
  for (int h = 0; h < cluster_height_ && !level.empty(); ++h) {
    std::vector<size_t> next_level;
    for (size_t node : level) {
      if (node > num_nodes_) continue;
      map_[node] = block_start + in_block++;
      next_level.push_back(2 * node);
      next_level.push_back(2 * node + 1);
    }
    if (h + 1 == cluster_height_) {
      below = next_level;
    } else {
      level = next_level;
    }
  }
  for (size_t node : below) NumberSubtree(node, next_pos);
}

}  // namespace alphasort
