#include "sort/ovc.h"

#include <cassert>
#include <cstring>

namespace alphasort {

namespace {

// Packs key bytes [offset, offset+2) big-endian, zero-padded past the end.
uint32_t ValueBytes(const char* key, size_t key_size, size_t offset) {
  uint32_t v = 0;
  if (offset < key_size) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(key[offset])) << 8;
  }
  if (offset + 1 < key_size) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(key[offset + 1]));
  }
  return v;
}

}  // namespace

OvcMerger::OvcMerger(const RecordFormat& format,
                     std::vector<std::vector<const char*>> runs)
    : format_(format),
      runs_(std::move(runs)),
      cursor_(runs_.size(), 0),
      k_(runs_.size() == 0 ? 1 : runs_.size()),
      nodes_(k_ > 1 ? k_ - 1 : 1, kNone),
      leaves_(k_) {
  assert(format_.key_size < 65536);
  for (size_t r = 0; r < runs_.size(); ++r) {
    if (!runs_[r].empty()) {
      leaves_[r].record = runs_[r][0];
      leaves_[r].code = InitialCode(runs_[r][0]);
      leaves_[r].exhausted = false;
      cursor_[r] = 1;
    }
  }
  if (k_ == 1) {
    winner_ = (!runs_.empty() && !leaves_[0].exhausted) ? 0 : kNone;
  } else {
    const size_t w = RebuildSubtree(1);
    winner_ = (w != kNone && !leaves_[w].exhausted) ? w : kNone;
  }
}

uint32_t OvcMerger::CodeAgainst(const char* key_rec,
                                const char* base_rec) const {
  const char* a = format_.KeyPtr(key_rec);
  const char* b = format_.KeyPtr(base_rec);
  size_t off = 0;
  while (off < format_.key_size && a[off] == b[off]) ++off;
  return (static_cast<uint32_t>(format_.key_size - off) << 16) |
         ValueBytes(a, format_.key_size, off);
}

uint32_t OvcMerger::InitialCode(const char* rec) const {
  // First record of a run is coded against the virtual "minus infinity"
  // key: offset 0, value = first two key bytes.
  return (static_cast<uint32_t>(format_.key_size) << 16) |
         ValueBytes(format_.KeyPtr(rec), format_.key_size, 0);
}

void OvcMerger::RefillLeaf(size_t r) {
  Leaf& leaf = leaves_[r];
  if (cursor_[r] >= runs_[r].size()) {
    leaf.exhausted = true;
    return;
  }
  const char* prev = leaf.record;  // the record just emitted from run r
  const char* next = runs_[r][cursor_[r]++];
  leaf.record = next;
  leaf.code = CodeAgainst(next, prev);
  stats_.key_bytes_read += format_.key_size;  // code computation scan
  leaf.exhausted = false;
}

bool OvcMerger::LeafBeats(size_t a, size_t b) {
  if (a == kNone) return false;
  if (b == kNone) return true;
  Leaf& la = leaves_[a];
  Leaf& lb = leaves_[b];
  if (la.exhausted) return false;
  if (lb.exhausted) return true;
  if (la.code != lb.code) {
    ++stats_.code_compares;
    const bool a_wins = la.code < lb.code;
    // With a two-byte value field there is one case where the loser's code
    // goes stale: equal offsets and equal first value bytes (the keys agree
    // one byte past the offset). Recode the loser against the new winner —
    // its shared prefix is exactly offset+1 bytes.
    if ((la.code >> 16) == (lb.code >> 16) &&
        ((la.code ^ lb.code) & 0xff00) == 0) {
      Leaf& loser = a_wins ? lb : la;
      const uint32_t stored = la.code >> 16;  // K - offset
      const size_t new_off = format_.key_size - stored + 1;
      loser.code =
          ((stored - 1) << 16) |
          ValueBytes(format_.KeyPtr(loser.record), format_.key_size, new_off);
    }
    return a_wins;
  }
  // Equal codes relative to the same base: the keys agree through the
  // coded bytes; compare the remainder and recode the loser against the
  // winner.
  ++stats_.full_compares;
  const size_t shared = format_.key_size - (la.code >> 16);
  const char* ka = format_.KeyPtr(la.record);
  const char* kb = format_.KeyPtr(lb.record);
  size_t off = shared;
  while (off < format_.key_size && ka[off] == kb[off]) ++off;
  stats_.key_bytes_read += 2 * (off - shared + 1);
  if (off >= format_.key_size) {
    // Fully equal keys: break ties by run index (stable), loser's code
    // becomes "equal to base" = 0.
    const bool a_wins = a < b;
    (a_wins ? lb : la).code = 0;
    return a_wins;
  }
  const bool a_wins =
      static_cast<unsigned char>(ka[off]) < static_cast<unsigned char>(kb[off]);
  Leaf& loser = a_wins ? lb : la;
  const char* loser_key = a_wins ? kb : ka;
  loser.code = (static_cast<uint32_t>(format_.key_size - off) << 16) |
               ValueBytes(loser_key, format_.key_size, off);
  return a_wins;
}

void OvcMerger::Replay(size_t leaf) {
  if (k_ == 1) {
    winner_ = leaves_[0].exhausted ? kNone : 0;
    return;
  }
  size_t winner = leaf;
  for (size_t node = (k_ + leaf) / 2; node >= 1; node /= 2) {
    size_t& loser = nodes_[node - 1];
    if (LeafBeats(loser, winner)) std::swap(loser, winner);
  }
  winner_ = (winner != kNone && !leaves_[winner].exhausted) ? winner : kNone;
}

size_t OvcMerger::RebuildSubtree(size_t node) {
  auto resolve = [&](size_t c) -> size_t {
    if (c < k_) return RebuildSubtree(c);
    return c - k_;
  };
  const size_t wl = resolve(2 * node);
  const size_t wr = resolve(2 * node + 1);
  if (LeafBeats(wr, wl)) {
    nodes_[node - 1] = wl;
    return wr;
  }
  nodes_[node - 1] = wr;
  return wl;
}

const char* OvcMerger::Next() {
  assert(!Done());
  const size_t w = winner_;
  const char* rec = leaves_[w].record;
  RefillLeaf(w);
  Replay(w);
  return rec;
}

}  // namespace alphasort
