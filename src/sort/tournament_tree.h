#ifndef ALPHASORT_SORT_TOURNAMENT_TREE_H_
#define ALPHASORT_SORT_TOURNAMENT_TREE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/tracer.h"

namespace alphasort {

// Maps heap-numbered tournament nodes (1-based, parent i/2) to array
// positions. The paper (§4) investigates clustering "tournament nodes so
// that most parent-child node pairs are contained in the same cache line",
// reporting a 2-3x miss reduction; both layouts are provided so the cache
// simulator can reproduce that comparison (Figure 4).
enum class TreeLayout {
  kFlat,       // position = heap index (classic layout)
  kClustered,  // subtrees of `cluster_height` levels packed contiguously
};

class TreeLayoutMap {
 public:
  // `num_nodes` internal nodes, heap-numbered 1..num_nodes. For the
  // clustered layout, each subtree of `cluster_height` levels (2^h - 1
  // nodes) is padded to `slots_per_cluster` and placed at a
  // cluster-aligned position, so an aligned backing array keeps every
  // parent-child pair inside one cache line.
  TreeLayoutMap(size_t num_nodes, TreeLayout layout, int cluster_height = 2);

  size_t Position(size_t heap_index) const {
    assert(heap_index >= 1 && heap_index <= num_nodes_);
    return layout_ == TreeLayout::kFlat ? heap_index - 1
                                        : map_[heap_index];
  }

  // Array slots the layout occupies (>= num_nodes for the padded
  // clustered layout).
  size_t PositionsNeeded() const { return positions_needed_; }

  // Cluster padding in slots; an aligned allocation should align the
  // array base to this many elements.
  size_t SlotsPerCluster() const { return slots_per_cluster_; }

 private:
  void NumberSubtree(size_t root, size_t* next_pos);

  size_t num_nodes_;
  TreeLayout layout_;
  int cluster_height_;
  size_t slots_per_cluster_;
  size_t positions_needed_;
  std::vector<uint32_t> map_;  // heap index -> position (clustered only)
};

// K-way loser tree ("tournament of replacement-selection", paper §4).
//
// Leaves hold one candidate item per input stream; internal nodes hold the
// losers of their sub-tournaments, and the overall winner is cached at the
// root. Replacing the winner costs exactly one leaf-to-root path of
// compares: O(log K) per extracted item.
//
// Item is any copyable value; Less is a strict weak ordering. Exhausted
// streams are represented with an explicit "infinite" flag rather than a
// sentinel key, so any key value is legal input.
template <typename Item, typename Less, typename Tracer = NullTracer>
class LoserTree {
 public:
  // `k` streams (k >= 1). All leaves start exhausted; call Replace() for
  // each stream, then Rebuild(), before the first Winner().
  // `tracer` may be null only when Tracer is default-constructible (a
  // default-constructed instance is used then).
  LoserTree(size_t k, Less less, TreeLayout layout = TreeLayout::kFlat,
            Tracer* tracer = nullptr)
      : k_(k),
        less_(less),
        mem_(tracer != nullptr ? tracer : &default_tracer_),
        layout_map_(k > 1 ? k - 1 : 1, layout),
        node_storage_(layout_map_.PositionsNeeded() +
                          layout_map_.SlotsPerCluster(),
                      kInfinite),
        leaves_(k),
        leaf_infinite_(k, true) {
    assert(k >= 1);
    // Align the node array to the cluster size so a clustered layout's
    // parent-child blocks coincide with cache lines.
    const size_t align_bytes =
        layout_map_.SlotsPerCluster() * sizeof(size_t);
    const uintptr_t base = reinterpret_cast<uintptr_t>(node_storage_.data());
    const size_t skew = (align_bytes - base % align_bytes) % align_bytes;
    nodes_ = node_storage_.data() + skew / sizeof(size_t);
  }

  size_t k() const { return k_; }

  // Sets stream `s`'s current candidate (does not re-run the tournament;
  // use during initial fill, then call Rebuild()).
  void SetLeaf(size_t s, const Item& item) {
    mem_.TouchWrite(&leaves_[s], sizeof(Item));
    leaves_[s] = item;
    leaf_infinite_[s] = false;
  }

  void SetLeafExhausted(size_t s) { leaf_infinite_[s] = true; }

  // Plays the full tournament; O(K). Call once after initial SetLeaf()s.
  void Rebuild();

  // True iff every stream is exhausted.
  bool Empty() const { return winner_ == kInfinite; }

  // Stream index of the current winner. Requires !Empty().
  size_t WinnerStream() const {
    assert(!Empty());
    return winner_;
  }

  const Item& WinnerItem() const {
    assert(!Empty());
    return leaves_[winner_];
  }

  // Replaces the winner's leaf with the stream's next item (or marks the
  // stream exhausted) and replays the winner's leaf-to-root path.
  void ReplaceWinner(const Item& item) {
    const size_t s = WinnerStream();
    mem_.TouchWrite(&leaves_[s], sizeof(Item));
    leaves_[s] = item;
    leaf_infinite_[s] = false;
    Replay(s);
  }

  void ExhaustWinner() {
    const size_t s = WinnerStream();
    leaf_infinite_[s] = true;
    Replay(s);
  }

  uint64_t compares() const { return compares_; }

 private:
  static constexpr size_t kInfinite = static_cast<size_t>(-1);

  // True iff stream a's item sorts before stream b's (infinite sorts last;
  // ties broken by stream index for stability across equal keys).
  bool StreamLess(size_t a, size_t b) {
    if (a == kInfinite) return false;
    if (b == kInfinite) return true;
    if (leaf_infinite_[a]) return false;
    if (leaf_infinite_[b]) return true;
    ++compares_;
    mem_.TouchRead(&leaves_[a], sizeof(Item));
    mem_.TouchRead(&leaves_[b], sizeof(Item));
    if (less_(leaves_[a], leaves_[b])) return true;
    if (less_(leaves_[b], leaves_[a])) return false;
    return a < b;
  }

  size_t& NodeAt(size_t heap_index) {
    return nodes_[layout_map_.Position(heap_index)];
  }

  // Replays the path from leaf `s` to the root: at each node the incoming
  // winner is compared with the stored loser; the loser stays, the winner
  // moves up. Leaf s sits at virtual heap index k_+s; internal nodes are
  // 1..k_-1 (Knuth's tree-of-losers numbering).
  void Replay(size_t s) {
    if (k_ == 1) {
      winner_ = leaf_infinite_[0] ? kInfinite : 0;
      return;
    }
    size_t winner = s;
    for (size_t node = (k_ + s) / 2; node >= 1; node /= 2) {
      size_t& loser = NodeAt(node);
      mem_.TouchRead(&loser, sizeof(size_t));
      if (StreamLess(loser, winner)) {
        std::swap(loser, winner);
        mem_.TouchWrite(&NodeAt(node), sizeof(size_t));
      }
    }
    winner_ = (winner != kInfinite && leaf_infinite_[winner]) ? kInfinite
                                                              : winner;
  }

  size_t RebuildSubtree(size_t node);

  size_t k_;
  Less less_;
  Tracer default_tracer_{};
  Mem<Tracer> mem_;
  TreeLayoutMap layout_map_;
  std::vector<size_t> node_storage_;  // backing store (over-allocated)
  size_t* nodes_ = nullptr;  // aligned view: losing stream per position
  std::vector<Item> leaves_;
  std::vector<char> leaf_infinite_;
  size_t winner_ = kInfinite;
  uint64_t compares_ = 0;
};

template <typename Item, typename Less, typename Tracer>
size_t LoserTree<Item, Less, Tracer>::RebuildSubtree(size_t node) {
  // Returns the winning stream of the subtree rooted at heap node `node`,
  // storing losers on the way up. A child index c < k_ is an internal
  // node; c >= k_ is leaf c - k_ (the numbering Replay() inverts).
  auto resolve = [&](size_t c) -> size_t {
    if (c < k_) return RebuildSubtree(c);
    return c - k_;
  };
  const size_t w_left = resolve(2 * node);
  const size_t w_right = resolve(2 * node + 1);
  if (StreamLess(w_right, w_left)) {
    NodeAt(node) = w_left;
    return w_right;
  }
  NodeAt(node) = w_right;
  return w_left;
}

template <typename Item, typename Less, typename Tracer>
void LoserTree<Item, Less, Tracer>::Rebuild() {
  if (k_ == 1) {
    winner_ = leaf_infinite_[0] ? kInfinite : 0;
    return;
  }
  size_t w = RebuildSubtree(1);
  winner_ = (w != kInfinite && leaf_infinite_[w]) ? kInfinite : w;
  compares_ = 0;  // setup compares are not charged to the merge
}

}  // namespace alphasort

#endif  // ALPHASORT_SORT_TOURNAMENT_TREE_H_
