#ifndef ALPHASORT_SORT_QUICKSORT_H_
#define ALPHASORT_SORT_QUICKSORT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/prefetch.h"
#include "common/simd.h"
#include "common/tracer.h"
#include "record/record.h"
#include "sort/entry.h"

namespace alphasort {

// Counters reported by every sort discipline; the paper's §4 comparisons
// ("QuickSort makes fewer exchanges on average", "record exchanges move 2R
// bytes vs 2(K+P)") are stated in exactly these terms.
struct SortStats {
  uint64_t compares = 0;
  uint64_t exchanges = 0;
  uint64_t bytes_moved = 0;       // data moved by exchanges
  uint64_t tie_breaks = 0;        // prefix compares that went to the record
  uint64_t tie_break_bytes_skipped = 0;  // key bytes the prefix already
                                         // decided, not re-compared on ties

  void Merge(const SortStats& o) {
    compares += o.compares;
    exchanges += o.exchanges;
    bytes_moved += o.bytes_moved;
    tie_breaks += o.tie_breaks;
    tie_break_bytes_skipped += o.tie_break_bytes_skipped;
  }
};

// ---------------------------------------------------------------------------
// Generic introsort over an "Ops" policy.
//
// Ops must provide:
//   bool Less(size_t i, size_t j);       // a[i] < a[j]
//   void Swap(size_t i, size_t j);
//   void SetPivot(size_t i);             // copy a[i] into pivot storage
//   bool LessThanPivot(size_t i);        // a[i] < pivot
//   bool PivotLessThan(size_t i);        // pivot < a[i]
//
// The driver is a classic median-of-three Hoare quicksort with an
// insertion-sort cutoff for small partitions and a heapsort fallback when
// recursion exceeds 2*log2(n) — the paper (§4) accepts QuickSort's "terrible
// (N^2)" worst case on practical grounds; the depth guard removes the risk
// without changing average behaviour.
// ---------------------------------------------------------------------------

namespace sort_internal {

inline int FloorLog2(size_t n) {
  int r = 0;
  while (n > 1) {
    n >>= 1;
    ++r;
  }
  return r;
}

constexpr size_t kInsertionCutoff = 16;

template <typename Ops>
void InsertionSort(Ops& ops, size_t lo, size_t hi) {
  for (size_t i = lo + 1; i < hi; ++i) {
    for (size_t j = i; j > lo && ops.Less(j, j - 1); --j) {
      ops.Swap(j, j - 1);
    }
  }
}

template <typename Ops>
void SiftDown(Ops& ops, size_t lo, size_t root, size_t n) {
  // Max-heap over a[lo..lo+n), root is a heap-relative index.
  while (true) {
    const size_t child = 2 * root + 1;
    if (child >= n) return;
    size_t best = child;
    if (child + 1 < n && ops.Less(lo + child, lo + child + 1)) {
      best = child + 1;
    }
    if (!ops.Less(lo + root, lo + best)) return;
    ops.Swap(lo + root, lo + best);
    root = best;
  }
}

template <typename Ops>
void HeapSort(Ops& ops, size_t lo, size_t hi) {
  const size_t n = hi - lo;
  if (n < 2) return;
  for (size_t i = n / 2; i-- > 0;) SiftDown(ops, lo, i, n);
  for (size_t i = n - 1; i > 0; --i) {
    ops.Swap(lo, lo + i);
    SiftDown(ops, lo, 0, i);
  }
}

template <typename Ops>
void IntroSortLoop(Ops& ops, size_t lo, size_t hi, int depth_budget) {
  while (hi - lo > kInsertionCutoff) {
    if (depth_budget-- == 0) {
      HeapSort(ops, lo, hi);
      return;
    }
    const size_t mid = lo + (hi - lo) / 2;
    // Order a[lo] <= a[mid] <= a[hi-1]; the extremes then bound the Hoare
    // scans, and a[mid] is the median-of-three pivot.
    if (ops.Less(mid, lo)) ops.Swap(mid, lo);
    if (ops.Less(hi - 1, lo)) ops.Swap(hi - 1, lo);
    if (ops.Less(hi - 1, mid)) ops.Swap(hi - 1, mid);
    ops.SetPivot(mid);

    size_t i = lo;
    size_t j = hi - 1;
    while (true) {
      // An Ops may expose vectorized partition scans (ScanLessThanPivot /
      // ScanPivotLessThan advance past runs of entries the prefix alone
      // decides — src/common/simd.h); the classic do-while is the
      // fallback. Both rely on the median-of-three sentinels: a[lo] <=
      // pivot <= a[hi-1], so neither scan can leave [lo, hi).
      if constexpr (requires { ops.ScanLessThanPivot(i, hi); }) {
        i = ops.ScanLessThanPivot(i + 1, hi);
        j = ops.ScanPivotLessThan(j - 1, lo);
      } else {
        do {
          ++i;
        } while (ops.LessThanPivot(i));
        do {
          --j;
        } while (ops.PivotLessThan(j));
      }
      if (i >= j) break;
      ops.Swap(i, j);
    }
    // Recurse into the smaller side, iterate on the larger (O(log n) stack).
    if (j + 1 - lo < hi - (j + 1)) {
      IntroSortLoop(ops, lo, j + 1, depth_budget);
      lo = j + 1;
    } else {
      IntroSortLoop(ops, j + 1, hi, depth_budget);
      hi = j + 1;
    }
  }
  InsertionSort(ops, lo, hi);
}

template <typename Ops>
void IntroSort(Ops& ops, size_t n) {
  if (n < 2) return;
  IntroSortLoop(ops, 0, n, 2 * FloorLog2(n));
}

}  // namespace sort_internal

// ---------------------------------------------------------------------------
// The four disciplines of paper §4.
// ---------------------------------------------------------------------------

// (1) Record sort: permute the record array in place. Compares read keys
// out of records; exchanges move 2R bytes.
template <typename Tracer = NullTracer>
class RecordSortOps {
 public:
  RecordSortOps(const RecordFormat& format, char* records, Tracer* tracer,
                SortStats* stats)
      : fmt_(format),
        base_(records),
        mem_(tracer),
        stats_(stats),
        pivot_(format.record_size),
        tmp_(format.record_size) {}

  bool Less(size_t i, size_t j) {
    ++stats_->compares;
    mem_.TouchRead(Key(i), fmt_.key_size);
    mem_.TouchRead(Key(j), fmt_.key_size);
    return memcmp(Key(i), Key(j), fmt_.key_size) < 0;
  }

  void Swap(size_t i, size_t j) {
    ++stats_->exchanges;
    stats_->bytes_moved += 2 * fmt_.record_size;
    char* a = Rec(i);
    char* b = Rec(j);
    mem_.TouchRead(a, fmt_.record_size);
    mem_.TouchRead(b, fmt_.record_size);
    mem_.TouchWrite(a, fmt_.record_size);
    mem_.TouchWrite(b, fmt_.record_size);
    memcpy(tmp_.data(), a, fmt_.record_size);
    memmove(a, b, fmt_.record_size);
    memcpy(b, tmp_.data(), fmt_.record_size);
  }

  void SetPivot(size_t i) {
    mem_.TouchRead(Rec(i), fmt_.record_size);
    memcpy(pivot_.data(), Rec(i), fmt_.record_size);
  }

  bool LessThanPivot(size_t i) {
    ++stats_->compares;
    mem_.TouchRead(Key(i), fmt_.key_size);
    return memcmp(Key(i), fmt_.KeyPtr(pivot_.data()), fmt_.key_size) < 0;
  }

  bool PivotLessThan(size_t i) {
    ++stats_->compares;
    mem_.TouchRead(Key(i), fmt_.key_size);
    return memcmp(fmt_.KeyPtr(pivot_.data()), Key(i), fmt_.key_size) < 0;
  }

 private:
  char* Rec(size_t i) { return base_ + i * fmt_.record_size; }
  const char* Key(size_t i) { return fmt_.KeyPtr(Rec(i)); }

  RecordFormat fmt_;
  char* base_;
  Mem<Tracer> mem_;
  SortStats* stats_;
  std::vector<char> pivot_;
  std::vector<char> tmp_;
};

// (2) Pointer sort: sort an array of record pointers; every compare chases
// both pointers to the records' keys.
template <typename Tracer = NullTracer>
class PointerSortOps {
 public:
  PointerSortOps(const RecordFormat& format, RecordPtr* ptrs, Tracer* tracer,
                 SortStats* stats)
      : fmt_(format), a_(ptrs), mem_(tracer), stats_(stats) {}

  bool Less(size_t i, size_t j) {
    ++stats_->compares;
    const RecordPtr pi = mem_.Load(&a_[i]);
    const RecordPtr pj = mem_.Load(&a_[j]);
    mem_.TouchRead(fmt_.KeyPtr(pi), fmt_.key_size);
    mem_.TouchRead(fmt_.KeyPtr(pj), fmt_.key_size);
    return fmt_.CompareKeys(pi, pj) < 0;
  }

  void Swap(size_t i, size_t j) {
    ++stats_->exchanges;
    stats_->bytes_moved += 2 * sizeof(RecordPtr);
    const RecordPtr pi = mem_.Load(&a_[i]);
    const RecordPtr pj = mem_.Load(&a_[j]);
    mem_.Store(&a_[i], pj);
    mem_.Store(&a_[j], pi);
  }

  void SetPivot(size_t i) { pivot_ = mem_.Load(&a_[i]); }

  bool LessThanPivot(size_t i) {
    ++stats_->compares;
    const RecordPtr p = mem_.Load(&a_[i]);
    mem_.TouchRead(fmt_.KeyPtr(p), fmt_.key_size);
    mem_.TouchRead(fmt_.KeyPtr(pivot_), fmt_.key_size);
    return fmt_.CompareKeys(p, pivot_) < 0;
  }

  bool PivotLessThan(size_t i) {
    ++stats_->compares;
    const RecordPtr p = mem_.Load(&a_[i]);
    mem_.TouchRead(fmt_.KeyPtr(p), fmt_.key_size);
    mem_.TouchRead(fmt_.KeyPtr(pivot_), fmt_.key_size);
    return fmt_.CompareKeys(pivot_, p) < 0;
  }

 private:
  RecordFormat fmt_;
  RecordPtr* a_;
  Mem<Tracer> mem_;
  SortStats* stats_;
  RecordPtr pivot_ = nullptr;
};

// (3) Key sort: the full key is carried with the pointer; compares never
// leave the entry array.
template <typename Tracer = NullTracer>
class KeySortOps {
 public:
  KeySortOps(const RecordFormat& format, KeyEntry* entries, Tracer* tracer,
             SortStats* stats)
      : key_size_(format.key_size < KeyEntry::kInlineKeyCapacity
                      ? format.key_size
                      : KeyEntry::kInlineKeyCapacity),
        a_(entries),
        mem_(tracer),
        stats_(stats) {}

  bool Less(size_t i, size_t j) {
    ++stats_->compares;
    mem_.TouchRead(&a_[i], sizeof(KeyEntry));
    mem_.TouchRead(&a_[j], sizeof(KeyEntry));
    return memcmp(a_[i].key.data(), a_[j].key.data(), key_size_) < 0;
  }

  void Swap(size_t i, size_t j) {
    ++stats_->exchanges;
    stats_->bytes_moved += 2 * sizeof(KeyEntry);
    mem_.TouchRead(&a_[i], sizeof(KeyEntry));
    mem_.TouchRead(&a_[j], sizeof(KeyEntry));
    mem_.TouchWrite(&a_[i], sizeof(KeyEntry));
    mem_.TouchWrite(&a_[j], sizeof(KeyEntry));
    std::swap(a_[i], a_[j]);
  }

  void SetPivot(size_t i) {
    mem_.TouchRead(&a_[i], sizeof(KeyEntry));
    pivot_ = a_[i];
  }

  bool LessThanPivot(size_t i) {
    ++stats_->compares;
    mem_.TouchRead(&a_[i], sizeof(KeyEntry));
    return memcmp(a_[i].key.data(), pivot_.key.data(), key_size_) < 0;
  }

  bool PivotLessThan(size_t i) {
    ++stats_->compares;
    mem_.TouchRead(&a_[i], sizeof(KeyEntry));
    return memcmp(pivot_.key.data(), a_[i].key.data(), key_size_) < 0;
  }

 private:
  size_t key_size_;
  KeyEntry* a_;
  Mem<Tracer> mem_;
  SortStats* stats_;
  KeyEntry pivot_{};
};

// (4) Key-prefix sort — AlphaSort's discipline. Compares resolve on the
// normalized integer prefix; equal prefixes fall back to the full keys in
// the records (the paper's stated risk when the prefix discriminates
// poorly, in which case this degenerates to pointer sort).
template <typename Tracer = NullTracer>
class PrefixSortOps {
 public:
  PrefixSortOps(const RecordFormat& format, PrefixEntry* entries,
                Tracer* tracer, SortStats* stats)
      : fmt_(format),
        a_(entries),
        mem_(tracer),
        stats_(stats),
        use_vector_(simd::VectorActive()) {}

  bool Less(size_t i, size_t j) {
    mem_.TouchRead(&a_[i], sizeof(PrefixEntry));
    mem_.TouchRead(&a_[j], sizeof(PrefixEntry));
    return LessEntries(a_[i], a_[j]);
  }

  void Swap(size_t i, size_t j) {
    ++stats_->exchanges;
    stats_->bytes_moved += 2 * sizeof(PrefixEntry);
    mem_.TouchRead(&a_[i], sizeof(PrefixEntry));
    mem_.TouchRead(&a_[j], sizeof(PrefixEntry));
    mem_.TouchWrite(&a_[i], sizeof(PrefixEntry));
    mem_.TouchWrite(&a_[j], sizeof(PrefixEntry));
    std::swap(a_[i], a_[j]);
  }

  void SetPivot(size_t i) {
    mem_.TouchRead(&a_[i], sizeof(PrefixEntry));
    pivot_ = a_[i];
  }

  bool LessThanPivot(size_t i) {
    mem_.TouchRead(&a_[i], sizeof(PrefixEntry));
    return LessEntries(a_[i], pivot_);
  }

  bool PivotLessThan(size_t i) {
    mem_.TouchRead(&a_[i], sizeof(PrefixEntry));
    return LessEntries(pivot_, a_[i]);
  }

  // Vectorized Hoare partition scans (see IntroSortLoop). A lane whose
  // prefix is strictly below (resp. above) the pivot prefix is decided
  // without looking at the record; any equal-or-crossing lane drops to the
  // scalar compare, which owns the tie-break. The caller's sentinels bound
  // both scans, so the pair loads below never leave [lo, hi).
  size_t ScanLessThanPivot(size_t i, size_t hi) {
#if defined(ALPHASORT_SIMD_CMP64)
    if (use_vector_) {
      const simd::V128 pv = simd::Broadcast64(pivot_.prefix);
      while (i + 2 <= hi) {
        const simd::V128 p =
            simd::GatherU64Stride(&a_[i].prefix, sizeof(PrefixEntry));
        if (simd::LessU64Mask(p, pv) != 0x3u) break;
        mem_.TouchRead(&a_[i], 2 * sizeof(PrefixEntry));
        stats_->compares += 2;
        i += 2;
      }
    }
#else
    (void)hi;
#endif
    while (LessThanPivot(i)) ++i;
    return i;
  }

  size_t ScanPivotLessThan(size_t j, size_t lo) {
#if defined(ALPHASORT_SIMD_CMP64)
    if (use_vector_) {
      const simd::V128 pv = simd::Broadcast64(pivot_.prefix);
      while (j >= lo + 1) {
        const simd::V128 p =
            simd::GatherU64Stride(&a_[j - 1].prefix, sizeof(PrefixEntry));
        if (simd::GreaterU64Mask(p, pv) != 0x3u) break;
        mem_.TouchRead(&a_[j - 1], 2 * sizeof(PrefixEntry));
        stats_->compares += 2;
        j -= 2;
      }
    }
#else
    (void)lo;
#endif
    while (PivotLessThan(j)) --j;
    return j;
  }

 private:
  bool LessEntries(const PrefixEntry& x, const PrefixEntry& y) {
    ++stats_->compares;
    if (x.prefix != y.prefix) return x.prefix < y.prefix;
    if (fmt_.key_size > 8) {
      // The prefix already decided the first 8 key bytes — resume the
      // compare at byte 8 instead of re-reading them.
      ++stats_->tie_breaks;
      stats_->tie_break_bytes_skipped += 8;
      mem_.TouchRead(fmt_.KeyPtr(x.record) + 8, fmt_.key_size - 8);
      mem_.TouchRead(fmt_.KeyPtr(y.record) + 8, fmt_.key_size - 8);
      const int c = memcmp(fmt_.KeyPtr(x.record) + 8,
                           fmt_.KeyPtr(y.record) + 8, fmt_.key_size - 8);
      if (c != 0) return c < 0;
    }
    // Equal keys: order by record address. This makes the comparator a
    // strict total order, so every kernel (quicksort, radix_hybrid,
    // heapsort fallback) produces the same byte-identical permutation —
    // the CRC-equality contract pipeline.cc relies on.
    return x.record < y.record;
  }

  RecordFormat fmt_;
  PrefixEntry* a_;
  Mem<Tracer> mem_;
  SortStats* stats_;
  PrefixEntry pivot_{};
  bool use_vector_;
};

// ---------------------------------------------------------------------------
// Entry construction + sort drivers.
// ---------------------------------------------------------------------------

template <typename Tracer = NullTracer>
void QuickSortRecords(const RecordFormat& format, char* records, size_t n,
                      SortStats* stats, Tracer* tracer) {
  RecordSortOps<Tracer> ops(format, records, tracer, stats);
  sort_internal::IntroSort(ops, n);
}

template <typename Tracer = NullTracer>
void QuickSortPointers(const RecordFormat& format, RecordPtr* ptrs, size_t n,
                       SortStats* stats, Tracer* tracer) {
  PointerSortOps<Tracer> ops(format, ptrs, tracer, stats);
  sort_internal::IntroSort(ops, n);
}

template <typename Tracer = NullTracer>
void QuickSortKeyEntries(const RecordFormat& format, KeyEntry* entries,
                         size_t n, SortStats* stats, Tracer* tracer) {
  KeySortOps<Tracer> ops(format, entries, tracer, stats);
  sort_internal::IntroSort(ops, n);
}

template <typename Tracer = NullTracer>
void QuickSortPrefixEntries(const RecordFormat& format, PrefixEntry* entries,
                            size_t n, SortStats* stats, Tracer* tracer) {
  PrefixSortOps<Tracer> ops(format, entries, tracer, stats);
  sort_internal::IntroSort(ops, n);
}

// Builds the detached arrays from a contiguous block of records. These are
// the "extract the (key-prefix, pointer) pairs as records arrive" step of
// the AlphaSort pipeline (paper §7).
void BuildPointerArray(const RecordFormat& format, const char* records,
                       size_t n, RecordPtr* out);
void BuildKeyEntryArray(const RecordFormat& format, const char* records,
                        size_t n, KeyEntry* out);
// The prefix build is the hot one (every sort runs it over every record);
// it software-prefetches keys `prefetch_distance` records ahead of the
// extract loop (0 disables the hints; see common/prefetch.h).
void BuildPrefixEntryArray(const RecordFormat& format, const char* records,
                           size_t n, PrefixEntry* out,
                           size_t prefetch_distance = kDefaultPrefetchDistance);

// Non-templated convenience wrappers (NullTracer), used by tests, benches
// and the AlphaSort core.
void SortRecords(const RecordFormat& format, char* records, size_t n,
                 SortStats* stats = nullptr);
void SortPointerArray(const RecordFormat& format, RecordPtr* ptrs, size_t n,
                      SortStats* stats = nullptr);
void SortKeyEntryArray(const RecordFormat& format, KeyEntry* entries,
                       size_t n, SortStats* stats = nullptr);
void SortPrefixEntryArray(const RecordFormat& format, PrefixEntry* entries,
                          size_t n, SortStats* stats = nullptr);

}  // namespace alphasort

#endif  // ALPHASORT_SORT_QUICKSORT_H_
