#ifndef ALPHASORT_SORT_REPLACEMENT_SELECTION_H_
#define ALPHASORT_SORT_REPLACEMENT_SELECTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/tracer.h"
#include "record/record.h"
#include "sort/quicksort.h"
#include "sort/tournament_tree.h"

namespace alphasort {

// Replacement-selection run generation — the OpenVMS-sort baseline the
// paper measures AlphaSort against (§4). A tournament of `capacity`
// records is kept in memory; each step emits the smallest key eligible for
// the current run and replaces it with the next input record, which joins
// the current run if its key is not below the last key emitted, and the
// next run otherwise. On random input the expected run length is twice the
// tournament size (Knuth's "snowplow" law), which the paper cites as
// replacement-selection's advantage; its disadvantages — tournament
// compares are ~2-2.5x the cost of QuickSort compares and the tree
// thrashes the cache (Figure 4) — are what AlphaSort exploits.
//
// Output records are delivered, in run order, to a sink callback. Emission
// is stable: records with equal keys leave a run in arrival order.
template <typename Tracer = NullTracer>
class ReplacementSelection {
 public:
  // Sink receives (run_index, record). Runs are emitted in increasing
  // run_index with nondecreasing keys within a run.
  using Sink = std::function<void(size_t run, const char* record)>;

  // `tracer` may be null only when Tracer is default-constructible.
  ReplacementSelection(const RecordFormat& format, size_t capacity,
                       Sink sink, TreeLayout layout = TreeLayout::kFlat,
                       Tracer* tracer = nullptr, SortStats* stats = nullptr)
      : format_(format),
        capacity_(capacity),
        sink_(std::move(sink)),
        stats_(stats != nullptr ? stats : &local_stats_),
        tree_(capacity, ItemLess{format,
                                 tracer != nullptr ? tracer : &default_tracer_,
                                 stats_},
              layout, tracer != nullptr ? tracer : &default_tracer_) {}

  // Feeds one record. The record bytes must stay valid until emitted.
  void Add(const char* record) {
    const Item item = MakeItem(record);
    if (filled_ < capacity_) {
      tree_.SetLeaf(filled_++, item);
      if (filled_ == capacity_) tree_.Rebuild();
      return;
    }
    EmitWinner(&item);
  }

  // Drains the tournament; after this the generator is exhausted.
  void Finish() {
    if (filled_ < capacity_) {
      // Input smaller than the tournament: play what we have.
      tree_.Rebuild();
      filled_ = capacity_;
    }
    while (!tree_.Empty()) EmitWinner(nullptr);
  }

  // Number of distinct runs emitted so far.
  size_t num_runs() const { return emitted_ > 0 ? max_run_ + 1 : 0; }
  uint64_t emitted() const { return emitted_; }

 private:
  struct Item {
    uint32_t run;
    uint64_t prefix;
    uint64_t seq;  // arrival order; makes equal-key emission stable
    const char* record;
  };

  struct ItemLess {
    RecordFormat format;
    Tracer* tracer;
    SortStats* stats;

    bool operator()(const Item& a, const Item& b) const {
      if (a.run != b.run) return a.run < b.run;
      ++stats->compares;
      if (a.prefix != b.prefix) return a.prefix < b.prefix;
      if (format.key_size > 8) {
        ++stats->tie_breaks;
        Mem<Tracer> mem(tracer);
        mem.TouchRead(format.KeyPtr(a.record), format.key_size);
        mem.TouchRead(format.KeyPtr(b.record), format.key_size);
        const int c = format.CompareKeys(a.record, b.record);
        if (c != 0) return c < 0;
      }
      return a.seq < b.seq;
    }
  };

  Item MakeItem(const char* record) {
    return Item{0, format_.KeyPrefix(record), next_seq_++, record};
  }

  // True iff `record`'s key is below the last emitted key (and therefore
  // cannot extend the current run).
  bool BelowLastOutput(const Item& item) const {
    if (item.prefix != last_prefix_) return item.prefix < last_prefix_;
    if (format_.key_size <= 8) return false;
    return format_.CompareKeys(item.record, last_record_) < 0;
  }

  // Pops the winner to the sink; replaces its leaf with *incoming (tagged
  // with the right run) or exhausts the leaf when incoming is null.
  void EmitWinner(const Item* incoming) {
    const Item win = tree_.WinnerItem();
    sink_(win.run, win.record);
    ++emitted_;
    if (win.run > max_run_) max_run_ = win.run;
    last_prefix_ = win.prefix;
    last_record_ = win.record;
    if (incoming != nullptr) {
      Item item = *incoming;
      item.run = win.run + (BelowLastOutput(item) ? 1 : 0);
      tree_.ReplaceWinner(item);
    } else {
      tree_.ExhaustWinner();
    }
  }

  Tracer default_tracer_{};
  RecordFormat format_;
  size_t capacity_;
  Sink sink_;
  SortStats local_stats_;
  SortStats* stats_;
  LoserTree<Item, ItemLess, Tracer> tree_;
  size_t filled_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t emitted_ = 0;
  uint32_t max_run_ = 0;
  uint64_t last_prefix_ = 0;
  const char* last_record_ = nullptr;
};

// Convenience: generate runs over a contiguous block of records, returning
// the run partition as vectors of record pointers (each inner vector is a
// sorted run). Used by tests and the run-length-law benches.
std::vector<std::vector<const char*>> GenerateRunsReplacementSelection(
    const RecordFormat& format, const char* records, size_t n,
    size_t capacity, SortStats* stats = nullptr,
    TreeLayout layout = TreeLayout::kFlat);

}  // namespace alphasort

#endif  // ALPHASORT_SORT_REPLACEMENT_SELECTION_H_
