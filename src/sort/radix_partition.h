#ifndef ALPHASORT_SORT_RADIX_PARTITION_H_
#define ALPHASORT_SORT_RADIX_PARTITION_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/tracer.h"
#include "record/record.h"
#include "sort/compact_entry.h"
#include "sort/entry.h"
#include "sort/quicksort.h"
#include "sort/sort_kernel.h"

namespace alphasort {

// MSB-radix hybrid over the normalized key prefixes (docs/perf.md
// "Kernel pass 2"). The prefix array AlphaSort already builds is the
// ideal radix input: the prefix IS the key's leading bytes as a
// big-endian integer, so byte d of the prefix is byte d of the key, and
// a counting pass + scatter on it is a perfect 256-way partition.
//
// The hybrid does 1-2 (more under skew) such passes until buckets fit
// the in-cache sort budget, then finishes every bucket with the existing
// introsort — which also owns all tie-breaking, so the radix layer never
// looks at a record. Skew safety:
//   - a bucket larger than the budget recurses on the next prefix byte;
//   - a pass whose entries all share the current byte advances a byte
//     without re-scattering (no wasted pass on common-prefix keys);
//   - a bucket whose prefixes are all identical (duplicate-heavy input)
//     goes straight to the introsort tie-break path — more radix passes
//     cannot split it.
//
// Both kernels order by the same strict total order (prefix, full key,
// record position — see PrefixSortOps::LessEntries), so the hybrid's
// output is byte-identical to QuickSort's.

struct RadixStats {
  uint64_t partition_passes = 0;   // counting+scatter passes executed
  uint64_t buckets_sorted = 0;     // bucket ranges finished by introsort
  uint64_t buckets_recursed = 0;   // over-budget buckets sent a byte deeper
  uint64_t tie_shortcuts = 0;      // all-equal-prefix ranges handed straight
                                   // to the introsort tie-break path

  void Merge(const RadixStats& o) {
    partition_passes += o.partition_passes;
    buckets_sorted += o.buckets_sorted;
    buckets_recursed += o.buckets_recursed;
    tie_shortcuts += o.tie_shortcuts;
  }
};

namespace radix_internal {

// Bucket budget for the introsort finish: 2048 16-byte entries = 32 KB,
// a few cache-resident working sets below the simulated 4 MB B-cache and
// sized so the finishing sorts stay in L1/L2 (paper §4's "sort in
// cache" discipline).
inline constexpr size_t kBucketBudget = 2048;

// kAuto switches to the hybrid at this run size — below it one introsort
// is already cache-resident enough that a scatter pass cannot pay for
// itself (validated by the kernels bench suite).
inline constexpr size_t kAutoRadixMin = 1 << 14;

template <typename Tracer>
void RadixRangePrefix(const RecordFormat& fmt, PrefixEntry* a, size_t n,
                      int depth, PrefixEntry* scratch, SortStats* stats,
                      Tracer* tracer, RadixStats* rs) {
  Mem<Tracer> mem(tracer);
  // Bytes of prefix that actually discriminate (zero-padded past
  // key_size, so deeper bytes are all equal).
  const int max_depth =
      fmt.key_size < 8 ? static_cast<int>(fmt.key_size) : 8;
  while (true) {
    if (n <= kBucketBudget || depth >= max_depth) {
      ++rs->buckets_sorted;
      QuickSortPrefixEntries(fmt, a, n, stats, tracer);
      return;
    }

    const int shift = 56 - 8 * depth;
    std::array<size_t, 257> offsets{};
    const uint64_t first = a[0].prefix;
    bool all_same_prefix = true;
    for (size_t i = 0; i < n; ++i) {
      mem.TouchRead(&a[i], sizeof(PrefixEntry));
      ++offsets[((a[i].prefix >> shift) & 0xFF) + 1];
      all_same_prefix &= a[i].prefix == first;
    }
    if (all_same_prefix) {
      // Duplicate-heavy range: the prefix cannot split it; only the
      // introsort's full-key tie-break path can order it.
      ++rs->tie_shortcuts;
      ++rs->buckets_sorted;
      QuickSortPrefixEntries(fmt, a, n, stats, tracer);
      return;
    }
    if (offsets[((first >> shift) & 0xFF) + 1] == n) {
      // Everything shares this byte (common key prefix) — advance to the
      // next byte without paying a scatter.
      ++depth;
      continue;
    }

    ++rs->partition_passes;
    for (size_t b = 0; b < 256; ++b) offsets[b + 1] += offsets[b];
    {
      std::array<size_t, 256> cursor{};
      memcpy(cursor.data(), offsets.data(), sizeof(cursor));
      for (size_t i = 0; i < n; ++i) {
        mem.TouchRead(&a[i], sizeof(PrefixEntry));
        const size_t dst = cursor[(a[i].prefix >> shift) & 0xFF]++;
        mem.TouchWrite(&scratch[dst], sizeof(PrefixEntry));
        scratch[dst] = a[i];
        ++stats->exchanges;
        stats->bytes_moved += sizeof(PrefixEntry);
      }
    }
    memcpy(a, scratch, n * sizeof(PrefixEntry));

    for (size_t b = 0; b < 256; ++b) {
      const size_t lo = offsets[b];
      const size_t len = offsets[b + 1] - lo;
      if (len < 2) {
        if (len == 1) ++rs->buckets_sorted;
        continue;
      }
      if (len > kBucketBudget) ++rs->buckets_recursed;
      RadixRangePrefix(fmt, a + lo, len, depth + 1, scratch + lo, stats,
                       tracer, rs);
    }
    return;
  }
}

}  // namespace radix_internal

// Sorts a prefix-entry array with the MSB-radix hybrid. Allocates an
// n-entry scratch array internally (same cost as PartitionSort). Stats
// account scatter moves as exchanges/bytes_moved and the bucket
// introsorts as usual; per-kernel shape lands in *radix_stats.
template <typename Tracer = NullTracer>
void RadixSortPrefixEntries(const RecordFormat& format, PrefixEntry* entries,
                            size_t n, SortStats* stats, Tracer* tracer,
                            RadixStats* radix_stats = nullptr) {
  RadixStats local_rs;
  if (radix_stats == nullptr) radix_stats = &local_rs;
  if (n < 2) return;
  if (n <= radix_internal::kBucketBudget) {
    ++radix_stats->buckets_sorted;
    QuickSortPrefixEntries(format, entries, n, stats, tracer);
    return;
  }
  std::vector<PrefixEntry> scratch(n);
  radix_internal::RadixRangePrefix(format, entries, n, /*depth=*/0,
                                   scratch.data(), stats, tracer,
                                   radix_stats);
}

// Kernel dispatch used by run generation (core/pipeline.cc,
// core/external_sort.cc): kAuto takes the hybrid once a run is large
// enough to amortize the scatter pass.
template <typename Tracer = NullTracer>
void SortPrefixEntriesWithKernel(const RecordFormat& format,
                                 PrefixEntry* entries, size_t n,
                                 SortKernel kernel, SortStats* stats,
                                 Tracer* tracer,
                                 RadixStats* radix_stats = nullptr) {
  const bool radix =
      kernel == SortKernel::kRadixHybrid ||
      (kernel == SortKernel::kAuto && n >= radix_internal::kAutoRadixMin);
  if (radix) {
    RadixSortPrefixEntries(format, entries, n, stats, tracer, radix_stats);
  } else {
    QuickSortPrefixEntries(format, entries, n, stats, tracer);
  }
}

// Non-templated conveniences (NullTracer), mirroring SortPrefixEntryArray.
void RadixSortPrefixEntryArray(const RecordFormat& format,
                               PrefixEntry* entries, size_t n,
                               SortStats* stats = nullptr,
                               RadixStats* radix_stats = nullptr);
void SortPrefixEntryArrayWithKernel(const RecordFormat& format,
                                    PrefixEntry* entries, size_t n,
                                    SortKernel kernel,
                                    SortStats* stats = nullptr,
                                    RadixStats* radix_stats = nullptr);

// The paper's 8-byte (prefix32, index) entries get the same hybrid: 4
// discriminating prefix bytes, buckets finished by SortCompactEntryArray
// (which owns the compact tie-break path).
void RadixSortCompactEntryArray(const RecordFormat& format, const char* base,
                                CompactEntry* entries, size_t n,
                                SortStats* stats = nullptr,
                                RadixStats* radix_stats = nullptr);

}  // namespace alphasort

#endif  // ALPHASORT_SORT_RADIX_PARTITION_H_
