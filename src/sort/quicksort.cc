#include "sort/quicksort.h"

namespace alphasort {

void BuildPointerArray(const RecordFormat& format, const char* records,
                       size_t n, RecordPtr* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = records + i * format.record_size;
  }
}

void BuildKeyEntryArray(const RecordFormat& format, const char* records,
                        size_t n, KeyEntry* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = MakeKeyEntry(format, records + i * format.record_size);
  }
}

void BuildPrefixEntryArray(const RecordFormat& format, const char* records,
                           size_t n, PrefixEntry* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = MakePrefixEntry(format, records + i * format.record_size);
  }
}

namespace {
SortStats* OrLocal(SortStats* stats, SortStats* local) {
  return stats != nullptr ? stats : local;
}
}  // namespace

void SortRecords(const RecordFormat& format, char* records, size_t n,
                 SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortRecords(format, records, n, OrLocal(stats, &local), &tracer);
}

void SortPointerArray(const RecordFormat& format, RecordPtr* ptrs, size_t n,
                      SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortPointers(format, ptrs, n, OrLocal(stats, &local), &tracer);
}

void SortKeyEntryArray(const RecordFormat& format, KeyEntry* entries,
                       size_t n, SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortKeyEntries(format, entries, n, OrLocal(stats, &local), &tracer);
}

void SortPrefixEntryArray(const RecordFormat& format, PrefixEntry* entries,
                          size_t n, SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortPrefixEntries(format, entries, n, OrLocal(stats, &local), &tracer);
}

}  // namespace alphasort
