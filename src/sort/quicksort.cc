#include "sort/quicksort.h"

#include "common/prefetch.h"

namespace alphasort {

void BuildPointerArray(const RecordFormat& format, const char* records,
                       size_t n, RecordPtr* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = records + i * format.record_size;
  }
}

void BuildKeyEntryArray(const RecordFormat& format, const char* records,
                        size_t n, KeyEntry* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = MakeKeyEntry(format, records + i * format.record_size);
  }
}

void BuildPrefixEntryArray(const RecordFormat& format, const char* records,
                           size_t n, PrefixEntry* out,
                           size_t prefetch_distance) {
  // The build streams the record array once, touching only each record's
  // key bytes — a strided access pattern the hardware prefetcher gives up
  // on for large records. Prefetching the key `prefetch_distance` records
  // ahead hides the miss behind the entry stores (docs/perf.md).
  const size_t r = format.record_size;
  const size_t d = prefetch_distance;
  for (size_t i = 0; i < n; ++i) {
    if (d != 0 && i + d < n) {
      ALPHASORT_PREFETCH_READ(format.KeyPtr(records + (i + d) * r));
    }
    out[i] = MakePrefixEntry(format, records + i * r);
  }
}

namespace {
SortStats* OrLocal(SortStats* stats, SortStats* local) {
  return stats != nullptr ? stats : local;
}
}  // namespace

void SortRecords(const RecordFormat& format, char* records, size_t n,
                 SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortRecords(format, records, n, OrLocal(stats, &local), &tracer);
}

void SortPointerArray(const RecordFormat& format, RecordPtr* ptrs, size_t n,
                      SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortPointers(format, ptrs, n, OrLocal(stats, &local), &tracer);
}

void SortKeyEntryArray(const RecordFormat& format, KeyEntry* entries,
                       size_t n, SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortKeyEntries(format, entries, n, OrLocal(stats, &local), &tracer);
}

void SortPrefixEntryArray(const RecordFormat& format, PrefixEntry* entries,
                          size_t n, SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortPrefixEntries(format, entries, n, OrLocal(stats, &local), &tracer);
}

}  // namespace alphasort
