#include "sort/quicksort.h"

#include "common/prefetch.h"
#include "common/simd.h"

namespace alphasort {

void BuildPointerArray(const RecordFormat& format, const char* records,
                       size_t n, RecordPtr* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = records + i * format.record_size;
  }
}

void BuildKeyEntryArray(const RecordFormat& format, const char* records,
                        size_t n, KeyEntry* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = MakeKeyEntry(format, records + i * format.record_size);
  }
}

void BuildPrefixEntryArray(const RecordFormat& format, const char* records,
                           size_t n, PrefixEntry* out,
                           size_t prefetch_distance) {
  // The build streams the record array once, touching only each record's
  // key bytes — a strided access pattern the hardware prefetcher gives up
  // on for large records. Prefetching the key `prefetch_distance` records
  // ahead hides the miss behind the entry stores (docs/perf.md).
  const size_t r = format.record_size;
  const size_t d = prefetch_distance;
  size_t i = 0;
#if defined(ALPHASORT_SIMD_VECTOR)
  // Vector path: two records per step — load both 8-byte key heads into
  // one register, byte-reverse each 64-bit lane (the big-endian prefix
  // normalization), interleave with the two record pointers, and store
  // two 16-byte entries. Valid when the key has >= 8 bytes (the prefix is
  // then exactly the byte-reversed load) on a 64-bit pointer target.
  if (simd::VectorActive() && format.key_size >= 8 &&
      sizeof(void*) == sizeof(uint64_t)) {
    // The vector loop retires two records per step, so the hint must
    // reach twice as many records ahead to buy the same time headroom
    // the scalar loop gets from `d`.
    const size_t vd = 2 * d;
    for (; i + 2 <= n; i += 2) {
      if (vd != 0 && i + vd + 1 < n) {
        ALPHASORT_PREFETCH_READ(format.KeyPtr(records + (i + vd) * r));
        ALPHASORT_PREFETCH_READ(format.KeyPtr(records + (i + vd + 1) * r));
      }
      const char* r0 = records + i * r;
      const char* r1 = r0 + r;
      const simd::V128 pref = simd::Bswap64x2(
          simd::LoadU64Pair(format.KeyPtr(r0), format.KeyPtr(r1)));
      const simd::V128 ptrs =
          simd::SetU64(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(r0)),
                       static_cast<uint64_t>(reinterpret_cast<uintptr_t>(r1)));
      simd::StoreU128(&out[i], simd::InterleaveLo64(pref, ptrs));
      simd::StoreU128(&out[i + 1], simd::InterleaveHi64(pref, ptrs));
    }
  }
#endif
  for (; i < n; ++i) {
    if (d != 0 && i + d < n) {
      ALPHASORT_PREFETCH_READ(format.KeyPtr(records + (i + d) * r));
    }
    out[i] = MakePrefixEntry(format, records + i * r);
  }
}

namespace {
SortStats* OrLocal(SortStats* stats, SortStats* local) {
  return stats != nullptr ? stats : local;
}
}  // namespace

void SortRecords(const RecordFormat& format, char* records, size_t n,
                 SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortRecords(format, records, n, OrLocal(stats, &local), &tracer);
}

void SortPointerArray(const RecordFormat& format, RecordPtr* ptrs, size_t n,
                      SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortPointers(format, ptrs, n, OrLocal(stats, &local), &tracer);
}

void SortKeyEntryArray(const RecordFormat& format, KeyEntry* entries,
                       size_t n, SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortKeyEntries(format, entries, n, OrLocal(stats, &local), &tracer);
}

void SortPrefixEntryArray(const RecordFormat& format, PrefixEntry* entries,
                          size_t n, SortStats* stats) {
  SortStats local;
  NullTracer tracer;
  QuickSortPrefixEntries(format, entries, n, OrLocal(stats, &local), &tracer);
}

}  // namespace alphasort
