#ifndef ALPHASORT_SORT_MERGER_H_
#define ALPHASORT_SORT_MERGER_H_

#include <cstddef>
#include <vector>

#include "common/prefetch.h"
#include "common/tracer.h"
#include "record/record.h"
#include "sort/entry.h"
#include "sort/quicksort.h"
#include "sort/tournament_tree.h"

namespace alphasort {

// A sorted run of (key-prefix, pointer) entries, as produced by the
// QuickSort phase. The entries reference records that stay where they were
// read into memory; records are only copied once, by the gather step.
struct EntryRun {
  const PrefixEntry* begin = nullptr;
  const PrefixEntry* end = nullptr;

  size_t size() const { return static_cast<size_t>(end - begin); }
};

// Merges K sorted runs of prefix entries with a loser tree, emitting the
// globally ordered stream of record pointers (paper §4/§7: "the merge
// results in a stream of in-order record pointers"). Compares resolve on
// the prefix; ties "examine the full keys in the records".
template <typename Tracer = NullTracer>
class RunMerger {
 public:
  // `tracer` may be null only when Tracer is default-constructible (a
  // default-constructed instance is used then). `prefetch` enables the
  // leaf-replacement record prefetch (common/prefetch.h): the replay
  // after a replacement tie-breaks through the incoming candidate's
  // record, a dependent random access the paper flags as the merge's
  // memory wall; prefetching the record before the replay overlaps the
  // miss with the path compares. Default off — on the sequential
  // tournament the hint traffic measures ~20% slower than no hints
  // (BENCH_kernels.json; SortOptions::merge_prefetch opts back in).
  RunMerger(const RecordFormat& format, std::vector<EntryRun> runs,
            TreeLayout layout = TreeLayout::kFlat, Tracer* tracer = nullptr,
            SortStats* stats = nullptr, bool prefetch = false)
      : format_(format),
        runs_(std::move(runs)),
        cursors_(runs_.size()),
        prefetch_(prefetch),
        stats_(stats != nullptr ? stats : &local_stats_),
        tree_(runs_.empty() ? 1 : runs_.size(),
              EntryLess{format, tracer != nullptr ? tracer : &default_tracer_,
                        stats_},
              layout, tracer != nullptr ? tracer : &default_tracer_) {
    for (size_t s = 0; s < runs_.size(); ++s) {
      cursors_[s] = runs_[s].begin;
      if (cursors_[s] != runs_[s].end) {
        tree_.SetLeaf(s, *cursors_[s]++);
      }
    }
    tree_.Rebuild();
  }

  bool Done() const { return tree_.Empty(); }

  // Next record pointer in global key order. Requires !Done().
  const char* Next() {
    const PrefixEntry win = tree_.WinnerItem();
    const size_t s = tree_.WinnerStream();
    if (cursors_[s] != runs_[s].end) {
      const PrefixEntry next = *cursors_[s]++;
      if (prefetch_) {
        // The incoming candidate's record: touched by any tie-break on
        // the replay path and again by the gather a batch later.
        ALPHASORT_PREFETCH_READ(format_.KeyPtr(next.record));
        // The candidate after it: its entry is needed by the next
        // replacement from this stream.
        if (cursors_[s] != runs_[s].end) {
          ALPHASORT_PREFETCH_READ(cursors_[s]);
        }
      }
      tree_.ReplaceWinner(next);
    } else {
      tree_.ExhaustWinner();
    }
    return win.record;
  }

  // Drains up to `max` pointers into `out`; returns the count produced.
  size_t NextBatch(const char** out, size_t max) {
    size_t n = 0;
    while (n < max && !Done()) out[n++] = Next();
    return n;
  }

  uint64_t tree_compares() const { return tree_.compares(); }

 private:
  struct EntryLess {
    RecordFormat format;
    Tracer* tracer;
    SortStats* stats;

    bool operator()(const PrefixEntry& a, const PrefixEntry& b) const {
      ++stats->compares;
      if (a.prefix != b.prefix) return a.prefix < b.prefix;
      if (format.key_size <= 8) return false;
      ++stats->tie_breaks;
      Mem<Tracer> mem(tracer);
      mem.TouchRead(format.KeyPtr(a.record), format.key_size);
      mem.TouchRead(format.KeyPtr(b.record), format.key_size);
      return format.CompareKeys(a.record, b.record) < 0;
    }
  };

  Tracer default_tracer_{};
  RecordFormat format_;
  std::vector<EntryRun> runs_;
  std::vector<const PrefixEntry*> cursors_;
  bool prefetch_;
  SortStats local_stats_;
  SortStats* stats_;
  LoserTree<PrefixEntry, EntryLess, Tracer> tree_;
};

// Gathers records into an output buffer following the merged pointer
// stream. This is AlphaSort's single record copy — "records are only
// copied this one time" (§4) — and the memory-intensive step that workers
// execute during the merge phase (§5).
template <typename Tracer>
void GatherRecords(const RecordFormat& format, const char* const* pointers,
                   size_t n, char* out, Tracer* tracer,
                   size_t prefetch_distance = kDefaultPrefetchDistance) {
  Mem<Tracer> mem(tracer);
  const size_t r = format.record_size;
  const size_t d = prefetch_distance;
  for (size_t i = 0; i < n; ++i) {
    // The pointer stream is in key order, so the source records are a
    // random walk over the record array — every copy misses. Prefetch
    // `d` pointers ahead: by the time the loop reaches that record its
    // line is resident (docs/perf.md measures the effect).
    if (d != 0 && i + d < n) {
      ALPHASORT_PREFETCH_READ(pointers[i + d]);
    }
    mem.TouchRead(pointers[i], r);
    mem.TouchWrite(out + i * r, r);
    memcpy(out + i * r, pointers[i], r);
  }
}

inline void GatherRecords(const RecordFormat& format,
                          const char* const* pointers, size_t n, char* out,
                          size_t prefetch_distance = kDefaultPrefetchDistance) {
  NullTracer tracer;
  GatherRecords(format, pointers, n, out, &tracer, prefetch_distance);
}

}  // namespace alphasort

#endif  // ALPHASORT_SORT_MERGER_H_
