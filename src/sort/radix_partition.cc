#include "sort/radix_partition.h"

namespace alphasort {

namespace {

// Compact-entry mirror of radix_internal::RadixRangePrefix: 4
// discriminating prefix bytes, introsort finish via
// SortCompactEntryArray (no tracer — CompactOps has none).
void RadixRangeCompact(const RecordFormat& fmt, const char* base,
                       CompactEntry* a, size_t n, int depth,
                       CompactEntry* scratch, SortStats* stats,
                       RadixStats* rs) {
  const int max_depth = fmt.key_size < 4 ? static_cast<int>(fmt.key_size) : 4;
  while (true) {
    if (n <= radix_internal::kBucketBudget || depth >= max_depth) {
      ++rs->buckets_sorted;
      SortCompactEntryArray(fmt, base, a, n, stats);
      return;
    }

    const int shift = 24 - 8 * depth;
    std::array<size_t, 257> offsets{};
    const uint32_t first = a[0].prefix;
    bool all_same_prefix = true;
    for (size_t i = 0; i < n; ++i) {
      ++offsets[((a[i].prefix >> shift) & 0xFF) + 1];
      all_same_prefix &= a[i].prefix == first;
    }
    if (all_same_prefix) {
      ++rs->tie_shortcuts;
      ++rs->buckets_sorted;
      SortCompactEntryArray(fmt, base, a, n, stats);
      return;
    }
    if (offsets[((first >> shift) & 0xFF) + 1] == n) {
      ++depth;
      continue;
    }

    ++rs->partition_passes;
    for (size_t b = 0; b < 256; ++b) offsets[b + 1] += offsets[b];
    {
      std::array<size_t, 256> cursor{};
      memcpy(cursor.data(), offsets.data(), sizeof(cursor));
      for (size_t i = 0; i < n; ++i) {
        scratch[cursor[(a[i].prefix >> shift) & 0xFF]++] = a[i];
        ++stats->exchanges;
        stats->bytes_moved += sizeof(CompactEntry);
      }
    }
    memcpy(a, scratch, n * sizeof(CompactEntry));

    for (size_t b = 0; b < 256; ++b) {
      const size_t lo = offsets[b];
      const size_t len = offsets[b + 1] - lo;
      if (len < 2) {
        if (len == 1) ++rs->buckets_sorted;
        continue;
      }
      if (len > radix_internal::kBucketBudget) ++rs->buckets_recursed;
      RadixRangeCompact(fmt, base, a + lo, len, depth + 1, scratch + lo,
                        stats, rs);
    }
    return;
  }
}

}  // namespace

void RadixSortPrefixEntryArray(const RecordFormat& format,
                               PrefixEntry* entries, size_t n,
                               SortStats* stats, RadixStats* radix_stats) {
  SortStats local;
  if (stats == nullptr) stats = &local;
  NullTracer tracer;
  RadixSortPrefixEntries(format, entries, n, stats, &tracer, radix_stats);
}

void SortPrefixEntryArrayWithKernel(const RecordFormat& format,
                                    PrefixEntry* entries, size_t n,
                                    SortKernel kernel, SortStats* stats,
                                    RadixStats* radix_stats) {
  SortStats local;
  if (stats == nullptr) stats = &local;
  NullTracer tracer;
  SortPrefixEntriesWithKernel(format, entries, n, kernel, stats, &tracer,
                              radix_stats);
}

void RadixSortCompactEntryArray(const RecordFormat& format, const char* base,
                                CompactEntry* entries, size_t n,
                                SortStats* stats, RadixStats* radix_stats) {
  SortStats local;
  if (stats == nullptr) stats = &local;
  RadixStats local_rs;
  if (radix_stats == nullptr) radix_stats = &local_rs;
  if (n < 2) return;
  if (n <= radix_internal::kBucketBudget) {
    ++radix_stats->buckets_sorted;
    SortCompactEntryArray(format, base, entries, n, stats);
    return;
  }
  std::vector<CompactEntry> scratch(n);
  RadixRangeCompact(format, base, entries, n, /*depth=*/0, scratch.data(),
                    stats, radix_stats);
}

}  // namespace alphasort
