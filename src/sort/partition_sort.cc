#include "sort/partition_sort.h"

#include <array>
#include <cstring>
#include <vector>

namespace alphasort {

void PartitionSortPrefixEntries(const RecordFormat& format,
                                PrefixEntry* entries, size_t n,
                                SortStats* stats) {
  SortStats local;
  if (stats == nullptr) stats = &local;
  if (n < 2) return;

  // Bucket by the key's first byte = the prefix's most significant byte.
  auto bucket_of = [](const PrefixEntry& e) -> size_t {
    return static_cast<size_t>(e.prefix >> 56);
  };

  std::array<size_t, 257> offsets{};
  for (size_t i = 0; i < n; ++i) ++offsets[bucket_of(entries[i]) + 1];
  for (size_t b = 0; b < 256; ++b) offsets[b + 1] += offsets[b];

  std::vector<PrefixEntry> scratch(n);
  {
    std::array<size_t, 256> cursor{};
    memcpy(cursor.data(), offsets.data(), sizeof(cursor));
    for (size_t i = 0; i < n; ++i) {
      scratch[cursor[bucket_of(entries[i])]++] = entries[i];
      ++stats->exchanges;
      stats->bytes_moved += sizeof(PrefixEntry);
    }
  }
  memcpy(entries, scratch.data(), n * sizeof(PrefixEntry));

  for (size_t b = 0; b < 256; ++b) {
    const size_t lo = offsets[b];
    const size_t hi = offsets[b + 1];
    if (hi - lo > 1) {
      SortPrefixEntryArray(format, entries + lo, hi - lo, stats);
    }
  }
}

}  // namespace alphasort
