#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/table.h"

namespace alphasort {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, strerror(errno)));
}

}  // namespace

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status TcpConn::WriteAll(const char* data, size_t n) {
  if (fd_ < 0) return Status::IOError("write on closed connection");
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += size_t(w);
  }
  return Status::OK();
}

Status TcpConn::ReadSome(char* out, size_t n, size_t* bytes_read) {
  *bytes_read = 0;
  if (fd_ < 0) return Status::IOError("read on closed connection");
  for (;;) {
    const ssize_t r = ::recv(fd_, out, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    *bytes_read = size_t(r);
    return Status::OK();
  }
}

bool TcpConn::Readable(int timeout_ms) {
  if (fd_ < 0) return false;
  struct pollfd pfd = {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int r = ::poll(&pfd, 1, timeout_ms);
  return r > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void TcpConn::SetNoDelay() {
  if (fd_ < 0) return;
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpListener::Listen(const std::string& host, int port, int backlog) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(uint16_t(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("cannot parse listen address %s", host.c_str()));
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = Errno("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) < 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  closed_.store(false, std::memory_order_release);
  fd_.store(fd, std::memory_order_release);
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<TcpConn> TcpListener::Accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0 || closed_.load(std::memory_order_acquire)) {
    return Status::Aborted("listener closed");
  }
  const int conn = ::accept(fd, nullptr, nullptr);
  if (conn < 0) {
    if (closed_.load(std::memory_order_acquire) || errno == EBADF ||
        errno == EINVAL) {
      return Status::Aborted("listener closed");
    }
    return Errno("accept");
  }
  return TcpConn(conn);
}

void TcpListener::Close() {
  // A wake, not a free: shutdown() fails a blocked accept() with
  // EINVAL (close() alone would leave it sleeping), while the fd
  // number stays owned by this object until the destructor — so a
  // concurrent Accept() can never operate on a reused descriptor.
  // Same reasoning as Connection::HalfClose() in server.cc.
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

TcpListener::~TcpListener() {
  Close();
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Result<TcpConn> TcpConnect(const std::string& host, int port,
                           double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  Status last = Status::IOError("connect never attempted");
  do {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument(
          StrFormat("cannot parse address %s", host.c_str()));
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return TcpConn(fd);
    }
    last = Errno("connect");
    ::close(fd);
    // A refused connection during server startup is expected: back off
    // briefly and retry until the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } while (std::chrono::steady_clock::now() < deadline);
  return last;
}

Status FrameReader::Read(Frame* out) {
  for (;;) {
    bool got = false;
    ALPHASORT_RETURN_IF_ERROR(decoder_.Next(out, &got));
    if (got) return Status::OK();
    char buf[16 * 1024];
    size_t n = 0;
    ALPHASORT_RETURN_IF_ERROR(conn_->ReadSome(buf, sizeof(buf), &n));
    if (n == 0) {
      if (decoder_.buffered() > 0) {
        return Status::Corruption(
            "connection closed mid-frame (truncated stream)");
      }
      return Status::NotFound("connection closed");
    }
    decoder_.Append(buf, n);
  }
}

Status FrameReader::Poll(Frame* out, bool* got, int timeout_ms) {
  *got = false;
  ALPHASORT_RETURN_IF_ERROR(decoder_.Next(out, got));
  if (*got) return Status::OK();
  if (!conn_->Readable(timeout_ms)) return Status::OK();
  char buf[16 * 1024];
  size_t n = 0;
  ALPHASORT_RETURN_IF_ERROR(conn_->ReadSome(buf, sizeof(buf), &n));
  if (n == 0) {
    if (decoder_.buffered() > 0) {
      return Status::Corruption(
          "connection closed mid-frame (truncated stream)");
    }
    return Status::NotFound("connection closed");
  }
  decoder_.Append(buf, n);
  return decoder_.Next(out, got);
}

Status WriteFrame(TcpConn* conn, FrameType type, const std::string& payload) {
  return conn->WriteAll(EncodeFrame(type, payload));
}

}  // namespace net
}  // namespace alphasort
