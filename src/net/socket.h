#ifndef ALPHASORT_NET_SOCKET_H_
#define ALPHASORT_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "net/frame.h"

namespace alphasort {
namespace net {

// Minimal blocking TCP wrappers over POSIX sockets, Status-returning in
// the library's idiom. IPv4 loopback/hostnames only — the service front
// door, not a general networking library.

// One connected stream socket. Movable; the destructor closes.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn() { Close(); }

  TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all n bytes (retrying short writes and EINTR). A blocked
  // peer blocks the call — TCP's own backpressure, relied upon by the
  // server's stream-back path.
  Status WriteAll(const char* data, size_t n);
  Status WriteAll(const std::string& bytes) {
    return WriteAll(bytes.data(), bytes.size());
  }

  // Reads up to n bytes; *bytes_read = 0 with OK means orderly EOF.
  Status ReadSome(char* out, size_t n, size_t* bytes_read);

  // True when a read would not block within timeout_ms (0 = poll once).
  // Used by the server to service interleaved STATUS/CANCEL frames
  // while a sort job runs.
  bool Readable(int timeout_ms);

  // Disables Nagle so small frames (STATUS, RESULT) don't wait behind
  // the 40ms delayed-ack dance.
  void SetNoDelay();

  void Close();

 private:
  int fd_ = -1;
};

// Listening socket bound to host:port (port 0 = kernel-chosen; port()
// reports the actual one).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  Status Listen(const std::string& host, int port, int backlog = 128);

  // Blocks for the next connection. Fails with Aborted after Close()
  // from another thread (the server's shutdown path).
  Result<TcpConn> Accept();

  int port() const { return port_; }
  bool listening() const {
    return !closed_.load(std::memory_order_acquire) &&
           fd_.load(std::memory_order_acquire) >= 0;
  }

  // Thread-safe wake: shuts the listening socket down, failing a
  // blocked Accept() with Aborted. The fd itself stays owned by this
  // object (freed by the destructor), so a racing Accept() can never
  // land on a reused descriptor.
  void Close();

 private:
  std::atomic<int> fd_{-1};
  std::atomic<bool> closed_{false};
  int port_ = 0;
};

// Connects to host:port with a bounded wait.
Result<TcpConn> TcpConnect(const std::string& host, int port,
                           double timeout_s = 5.0);

// --- Frame transport over a connection ------------------------------

// Reads whole frames off `conn`, buffering through a FrameDecoder.
// Decode errors (bad length/type/CRC) surface exactly as FrameDecoder
// reports them; EOF mid-frame is Corruption, EOF on a frame boundary is
// NotFound("connection closed") so callers can tell an orderly goodbye
// from a torn stream.
class FrameReader {
 public:
  explicit FrameReader(TcpConn* conn) : conn_(conn) {}

  Status Read(Frame* out);

  // Bounded-wait variant: drains already-buffered bytes first, then
  // waits at most timeout_ms for more. *got=false with OK means no
  // complete frame arrived in time. EOF and decode errors map exactly
  // as in Read().
  Status Poll(Frame* out, bool* got, int timeout_ms);

 private:
  TcpConn* conn_;
  FrameDecoder decoder_;
};

// Serializes and sends one frame.
Status WriteFrame(TcpConn* conn, FrameType type, const std::string& payload);

}  // namespace net
}  // namespace alphasort

#endif  // ALPHASORT_NET_SOCKET_H_
