#include "net/client.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/table.h"

namespace alphasort {
namespace net {

Status SortClient::Connect(const std::string& host, int port,
                           const std::string& tenant, double timeout_s) {
  Close();
  Result<TcpConn> conn = TcpConnect(host, port, timeout_s);
  if (!conn.ok()) return conn.status();
  conn_ = std::move(conn).value();
  conn_.SetNoDelay();
  reader_ = std::make_unique<FrameReader>(&conn_);

  HelloFrame hello;
  hello.tenant = tenant;
  ALPHASORT_RETURN_IF_ERROR(
      WriteFrame(&conn_, FrameType::kHello, hello.Encode()));

  Frame frame;
  ALPHASORT_RETURN_IF_ERROR(reader_->Read(&frame));
  if (frame.type == FrameType::kResult) {
    // The server refused the handshake (capacity, version); relay why.
    ResultFrame result;
    ALPHASORT_RETURN_IF_ERROR(result.Decode(frame.payload));
    Close();
    return result.ToStatus();
  }
  if (frame.type != FrameType::kHello) {
    Close();
    return Status::InvalidArgument(StrFormat(
        "expected HELLO reply, got %s", FrameTypeName(frame.type)));
  }
  HelloFrame reply;
  ALPHASORT_RETURN_IF_ERROR(reply.Decode(frame.payload));
  conn_id_ = reply.conn_id;
  return Status::OK();
}

Status SortClient::SubmitSort(const SubmitSpec& spec, const char* data,
                              size_t n, std::string* sorted,
                              NetSortOutcome* outcome) {
  *outcome = NetSortOutcome();
  if (sorted != nullptr) sorted->clear();
  if (!conn_.valid()) return Status::IOError("client is not connected");

  SubmitFrame submit;
  submit.memory_budget = spec.memory_budget;
  submit.record_size = uint32_t(spec.format.record_size);
  submit.key_size = uint32_t(spec.format.key_size);
  submit.expected_bytes = n;
  ALPHASORT_RETURN_IF_ERROR(
      WriteFrame(&conn_, FrameType::kSubmit, submit.Encode()));

  // Stream the records. Between chunks, peek for an early RESULT — a
  // quota or capacity rejection arrives while we are still sending, and
  // stopping promptly keeps a rejected tenant from shipping gigabytes
  // nobody will read.
  Frame frame;
  bool early_result = false;
  uint32_t crc = 0;
  size_t off = 0;
  while (off < n) {
    bool got = false;
    ALPHASORT_RETURN_IF_ERROR(reader_->Poll(&frame, &got, 0));
    if (got) {
      if (frame.type != FrameType::kResult) {
        return Status::InvalidArgument(StrFormat(
            "unexpected %s frame while uploading", FrameTypeName(frame.type)));
      }
      early_result = true;
      // Close the stream so the server's drain ends on a frame boundary
      // and the connection returns to idle for a later retry.
      DoneFrame done;
      done.total_bytes = off;
      done.crc32c = crc;
      (void)WriteFrame(&conn_, FrameType::kDone, done.Encode());
      break;
    }
    const size_t chunk = std::min(spec.chunk_bytes, n - off);
    ALPHASORT_RETURN_IF_ERROR(WriteFrame(
        &conn_, FrameType::kData, std::string(data + off, chunk)));
    crc = Crc32c(data + off, chunk, crc);
    off += chunk;
  }
  if (!early_result) {
    DoneFrame done;
    done.total_bytes = n;
    done.crc32c = crc;
    ALPHASORT_RETURN_IF_ERROR(
        WriteFrame(&conn_, FrameType::kDone, done.Encode()));
    // Wait for the job's terminal RESULT, ignoring any STATUS replies a
    // sibling thread's queries might have left interleaved.
    do {
      ALPHASORT_RETURN_IF_ERROR(reader_->Read(&frame));
    } while (frame.type == FrameType::kStatus);
    if (frame.type != FrameType::kResult) {
      return Status::InvalidArgument(StrFormat(
          "expected RESULT, got %s", FrameTypeName(frame.type)));
    }
  }

  ResultFrame result;
  ALPHASORT_RETURN_IF_ERROR(result.Decode(frame.payload));
  outcome->status = result.ToStatus();
  outcome->job_id = result.job_id;
  outcome->output_bytes = result.output_bytes;
  outcome->server_elapsed_us = result.elapsed_us;
  if (!outcome->status.ok()) {
    // A delivered rejection: the stream is over, the connection fine.
    return Status::OK();
  }

  // Receive the sorted stream: DATA frames, then DONE carrying the
  // authoritative byte count and CRC.
  uint64_t received = 0;
  uint32_t rx_crc = 0;
  for (;;) {
    ALPHASORT_RETURN_IF_ERROR(reader_->Read(&frame));
    if (frame.type == FrameType::kData) {
      rx_crc = Crc32c(frame.payload.data(), frame.payload.size(), rx_crc);
      received += frame.payload.size();
      if (sorted != nullptr) sorted->append(frame.payload);
      continue;
    }
    if (frame.type == FrameType::kDone) {
      DoneFrame done;
      ALPHASORT_RETURN_IF_ERROR(done.Decode(frame.payload));
      if (done.total_bytes != received || received != result.output_bytes) {
        return Status::Corruption(StrFormat(
            "sorted stream length mismatch: RESULT %llu, DONE %llu, "
            "received %llu",
            static_cast<unsigned long long>(result.output_bytes),
            static_cast<unsigned long long>(done.total_bytes),
            static_cast<unsigned long long>(received)));
      }
      if (done.crc32c != rx_crc) {
        return Status::Corruption("sorted stream failed its CRC check");
      }
      outcome->output_crc32c = done.crc32c;
      return Status::OK();
    }
    return Status::InvalidArgument(StrFormat(
        "unexpected %s frame in the sorted stream", FrameTypeName(frame.type)));
  }
}

Status SortClient::QueryServerStatus(StatusReplyFrame* reply) {
  if (!conn_.valid()) return Status::IOError("client is not connected");
  StatusRequestFrame req;
  ALPHASORT_RETURN_IF_ERROR(
      WriteFrame(&conn_, FrameType::kStatus, req.Encode()));
  Frame frame;
  ALPHASORT_RETURN_IF_ERROR(reader_->Read(&frame));
  if (frame.type != FrameType::kStatus) {
    return Status::InvalidArgument(StrFormat(
        "expected STATUS reply, got %s", FrameTypeName(frame.type)));
  }
  return reply->Decode(frame.payload);
}

void SortClient::Close() {
  reader_.reset();
  conn_.Close();
  conn_id_ = 0;
}

}  // namespace net
}  // namespace alphasort
