#include "net/client.h"

#include <algorithm>
#include <atomic>
#include <random>

#include "common/checksum.h"
#include "common/table.h"
#include "obs/trace.h"

namespace alphasort {
namespace net {

namespace {

// Minted trace ids stay within 48 bits: the trace tooling parses JSON
// numbers as doubles, and 48-bit integers are exact in a double (53-bit
// mantissa) with headroom. Nonzero by construction (0 = "no trace").
uint64_t MintTraceId() {
  constexpr uint64_t kMask = (uint64_t{1} << 48) - 1;
  static std::atomic<uint64_t> counter{0};
  static const uint64_t seed = [] {
    std::random_device rd;
    return (uint64_t(rd()) << 32) ^ uint64_t(rd());
  }();
  uint64_t id = 0;
  while (id == 0) {
    // Weyl-style sequence from a random seed: unique per process, very
    // likely distinct across concurrent clients.
    const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
    id = (seed + 0x9e3779b97f4a7c15ull * (n + 1)) & kMask;
  }
  return id;
}

}  // namespace

Status SortClient::Connect(const std::string& host, int port,
                           const std::string& tenant, double timeout_s) {
  Close();
  Result<TcpConn> conn = TcpConnect(host, port, timeout_s);
  if (!conn.ok()) return conn.status();
  conn_ = std::move(conn).value();
  conn_.SetNoDelay();
  reader_ = std::make_unique<FrameReader>(&conn_);

  HelloFrame hello;
  hello.tenant = tenant;
  hello.now_us = obs::TraceRawNowUs();
  ALPHASORT_RETURN_IF_ERROR(
      WriteFrame(&conn_, FrameType::kHello, hello.Encode()));

  Frame frame;
  ALPHASORT_RETURN_IF_ERROR(reader_->Read(&frame));
  if (frame.type == FrameType::kResult) {
    // The server refused the handshake (capacity, version); relay why.
    ResultFrame result;
    ALPHASORT_RETURN_IF_ERROR(result.Decode(frame.payload));
    Close();
    return result.ToStatus();
  }
  if (frame.type != FrameType::kHello) {
    Close();
    return Status::InvalidArgument(StrFormat(
        "expected HELLO reply, got %s", FrameTypeName(frame.type)));
  }
  HelloFrame reply;
  ALPHASORT_RETURN_IF_ERROR(reply.Decode(frame.payload));
  conn_id_ = reply.conn_id;
  // Pair of clock-sync events (one here, one server-side on our HELLO):
  // trace_merge aligns the two recorders' timelines from them.
  if (reply.now_us != 0) obs::TraceClockSync("net.clock_sync", reply.now_us);
  return Status::OK();
}

Status SortClient::SubmitSort(const SubmitSpec& spec, const char* data,
                              size_t n, std::string* sorted,
                              NetSortOutcome* outcome) {
  *outcome = NetSortOutcome();
  if (sorted != nullptr) sorted->clear();
  if (!conn_.valid()) return Status::IOError("client is not connected");

  // The whole round trip — upload, wait, download — runs under the
  // job's trace id, as one client-side net.submit span. The server
  // re-establishes the same id around everything it does for the job,
  // so the two trace files join on it (examples/trace_merge).
  const uint64_t trace_id =
      spec.trace_id != 0 ? spec.trace_id : MintTraceId();
  outcome->trace_id = trace_id;
  obs::ScopedTraceId trace_scope(trace_id);
  obs::TraceSpan submit_span("net.submit", "net");

  SubmitFrame submit;
  submit.memory_budget = spec.memory_budget;
  submit.record_size = uint32_t(spec.format.record_size);
  submit.key_size = uint32_t(spec.format.key_size);
  submit.expected_bytes = n;
  submit.trace_id = trace_id;
  ALPHASORT_RETURN_IF_ERROR(
      WriteFrame(&conn_, FrameType::kSubmit, submit.Encode()));

  // Stream the records. Between chunks, peek for an early RESULT — a
  // quota or capacity rejection arrives while we are still sending, and
  // stopping promptly keeps a rejected tenant from shipping gigabytes
  // nobody will read.
  Frame frame;
  bool early_result = false;
  uint32_t crc = 0;
  size_t off = 0;
  while (off < n) {
    bool got = false;
    ALPHASORT_RETURN_IF_ERROR(reader_->Poll(&frame, &got, 0));
    if (got) {
      if (frame.type != FrameType::kResult) {
        return Status::InvalidArgument(StrFormat(
            "unexpected %s frame while uploading", FrameTypeName(frame.type)));
      }
      early_result = true;
      // Close the stream so the server's drain ends on a frame boundary
      // and the connection returns to idle for a later retry.
      DoneFrame done;
      done.total_bytes = off;
      done.crc32c = crc;
      (void)WriteFrame(&conn_, FrameType::kDone, done.Encode());
      break;
    }
    const size_t chunk = std::min(spec.chunk_bytes, n - off);
    ALPHASORT_RETURN_IF_ERROR(WriteFrame(
        &conn_, FrameType::kData, std::string(data + off, chunk)));
    crc = Crc32c(data + off, chunk, crc);
    off += chunk;
  }
  if (!early_result) {
    DoneFrame done;
    done.total_bytes = n;
    done.crc32c = crc;
    ALPHASORT_RETURN_IF_ERROR(
        WriteFrame(&conn_, FrameType::kDone, done.Encode()));
  }
  // Receive until the job's terminal RESULT. On success the server
  // sends the sorted stream first (DATA... then DONE with the
  // authoritative byte count and CRC) and the RESULT last, so its
  // elapsed_us and stage breakdown cover the stream-back; on rejection
  // or failure the RESULT stands alone. STATUS replies a sibling
  // thread's queries might have left interleaved are skipped.
  uint64_t received = 0;
  uint32_t rx_crc = 0;
  bool got_done = false;
  DoneFrame rx_done;
  while (!early_result) {
    ALPHASORT_RETURN_IF_ERROR(reader_->Read(&frame));
    if (frame.type == FrameType::kStatus) continue;
    if (frame.type == FrameType::kResult) break;
    if (frame.type == FrameType::kData && !got_done) {
      rx_crc = Crc32c(frame.payload.data(), frame.payload.size(), rx_crc);
      received += frame.payload.size();
      if (sorted != nullptr) sorted->append(frame.payload);
      continue;
    }
    if (frame.type == FrameType::kDone && !got_done) {
      ALPHASORT_RETURN_IF_ERROR(rx_done.Decode(frame.payload));
      got_done = true;
      continue;
    }
    return Status::InvalidArgument(StrFormat(
        "unexpected %s frame in the sorted stream",
        FrameTypeName(frame.type)));
  }

  ResultFrame result;
  ALPHASORT_RETURN_IF_ERROR(result.Decode(frame.payload));
  outcome->status = result.ToStatus();
  outcome->job_id = result.job_id;
  outcome->output_bytes = result.output_bytes;
  outcome->server_elapsed_us = result.elapsed_us;
  outcome->ingest_us = result.ingest_us;
  outcome->queue_us = result.queue_us;
  outcome->sort_us = result.sort_us;
  outcome->merge_us = result.merge_us;
  outcome->stream_us = result.stream_us;
  if (!outcome->status.ok()) {
    if (received != 0 || got_done) {
      return Status::InvalidArgument(
          "server streamed sorted data before a failure RESULT");
    }
    // A delivered rejection: the stream is over, the connection fine.
    return Status::OK();
  }

  if (!got_done) {
    return Status::InvalidArgument(
        "RESULT(OK) arrived without a sorted DATA...DONE stream");
  }
  if (rx_done.total_bytes != received ||
      received != result.output_bytes) {
    return Status::Corruption(StrFormat(
        "sorted stream length mismatch: RESULT %llu, DONE %llu, "
        "received %llu",
        static_cast<unsigned long long>(result.output_bytes),
        static_cast<unsigned long long>(rx_done.total_bytes),
        static_cast<unsigned long long>(received)));
  }
  if (rx_done.crc32c != rx_crc) {
    return Status::Corruption("sorted stream failed its CRC check");
  }
  outcome->output_crc32c = rx_done.crc32c;
  return Status::OK();
}

Status SortClient::QueryServerStatus(StatusReplyFrame* reply) {
  if (!conn_.valid()) return Status::IOError("client is not connected");
  StatusRequestFrame req;
  ALPHASORT_RETURN_IF_ERROR(
      WriteFrame(&conn_, FrameType::kStatus, req.Encode()));
  Frame frame;
  ALPHASORT_RETURN_IF_ERROR(reader_->Read(&frame));
  if (frame.type != FrameType::kStatus) {
    return Status::InvalidArgument(StrFormat(
        "expected STATUS reply, got %s", FrameTypeName(frame.type)));
  }
  return reply->Decode(frame.payload);
}

void SortClient::Close() {
  reader_.reset();
  conn_.Close();
  conn_id_ = 0;
}

}  // namespace net
}  // namespace alphasort
