#ifndef ALPHASORT_NET_SERVER_H_
#define ALPHASORT_NET_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "io/env.h"
#include "net/quota.h"
#include "net/socket.h"
#include "svc/sort_service.h"

namespace alphasort {
namespace net {

// The networked front door to a SortService (docs/net.md).
//
// A NetServer owns one TCP listener, one SortService, and one tenant
// quota registry. Each accepted connection is served by its own thread
// (the paper's root/worker split puts all sorting parallelism inside
// the service's shared pools — a connection thread only shuttles bytes
// and blocks on IO, so thread-per-connection scales to the hundreds of
// connections the loadgen drives):
//
//   accept -> HELLO handshake -> { SUBMIT -> SortService::Submit ->
//   DATA frames feed the job's StreamRecordSource under quota (the
//   pipeline sorts the upload as it arrives — no input spool file) ->
//   DONE -> wait (answering STATUS, honouring CANCEL, noticing
//   disconnects) -> RESULT + sorted DATA stream }* -> close.
//
// Resource protection is layered, every layer speaking Unavailable:
//   * max_conns caps connection threads; excess connections get an
//     immediate RESULT{Unavailable} and a close.
//   * per-tenant token buckets (net/quota.h) cap ingest bytes; a tenant
//     over its bucket is rejected, not stalled.
//   * the SortService's global memory budget and bounded queue gate
//     admission exactly as for in-process callers.
//
// Input bytes never touch the server Env: they stream straight from
// the socket into the pipeline. Only the sorted output ("<data_root>/
// c<conn>-j<seq>.out") and the job's scratch live on disk, deleted when
// the result has been streamed back (or the stream aborts). A run that
// ends with conns_active == 0 must leave "<data_root>/" empty; the
// loadgen smoke gate checks exactly that.
struct NetServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = kernel-chosen; NetServer::port() reports it
  int max_conns = 256;

  // The arbitration layer the wire fronts for.
  svc::SortServiceOptions service;

  // Per-tenant ingest fairness.
  TenantQuotaOptions quota;

  // Env namespace for staged output files and job scratch. (The name
  // predates the spool-free ingest path; input is never written here.)
  std::string data_root = "net_spool";

  // Jobs whose end-to-end time (SUBMIT received -> sorted stream sent)
  // reaches this bound emit a svc.job.slow warning carrying the full
  // per-stage breakdown (obs::JobTimeline). 0 disables the check.
  uint64_t slow_job_threshold_us = 0;

  // Template for per-job SortOptions: io_chunk_bytes, run_size_records,
  // retry policy, etc. Paths, format, and memory_budget are overridden
  // per job from the SUBMIT frame; a SUBMIT budget of 0 inherits the
  // template's.
  SortOptions job_defaults;
};

struct NetServerStats {
  uint64_t conns_accepted = 0;
  uint64_t conns_rejected = 0;  // over max_conns
  uint64_t jobs_submitted = 0;  // reached SortService::Submit
  uint64_t jobs_completed = 0;  // OK result streamed back
  uint64_t jobs_failed = 0;     // any non-OK terminal result
  uint64_t quota_rejected = 0;
  uint64_t protocol_errors = 0;  // envelope or state-machine violations
  uint64_t bytes_rx = 0;         // DATA payload bytes received
  uint64_t bytes_tx = 0;         // DATA payload bytes sent
  int conns_active = 0;
  int jobs_inflight = 0;  // ingesting, sorting, or streaming back
};

class NetServer {
 public:
  // `env` must outlive the server; all output and scratch IO goes
  // through it (an in-memory Env serves tests and CI).
  NetServer(Env* env, const NetServerOptions& options);

  // Stops and drains, like ~SortService.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, and starts the accept loop.
  Status Start();

  // Closes the listener and every live connection, then joins all
  // connection threads and drains the service. Idempotent.
  void Stop();

  // The bound port (after Start()).
  int port() const { return listener_.port(); }

  NetServerStats stats() const;
  svc::SortServiceStats service_stats() const { return service_.stats(); }

 private:
  class Connection;

  void AcceptLoop();
  void ReapDoneConnsLocked();

  // Stats/instrument updates shared by connection threads; each keeps
  // stats_ and the net.* registry instruments in step under mu_.
  void NoteConnClosed();
  void NoteJobInflight(int delta);
  void NoteJobSubmitted();
  void NoteJobResult(bool ok);
  void NoteQuotaRejected();
  void NoteProtocolError();
  void NoteBytesRx(uint64_t n);
  void NoteBytesTx(uint64_t n);

  Env* const env_;
  const NetServerOptions options_;
  svc::SortService service_;
  TenantQuotas quotas_;
  TcpListener listener_;

  mutable std::mutex mu_;
  bool started_ = false;
  bool stopping_ = false;
  uint64_t next_conn_id_ = 1;
  NetServerStats stats_;
  std::thread accept_thread_;
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
};

}  // namespace net
}  // namespace alphasort

#endif  // ALPHASORT_NET_SERVER_H_
