#ifndef ALPHASORT_NET_QUOTA_H_
#define ALPHASORT_NET_QUOTA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace alphasort {
namespace net {

// Per-tenant ingest quotas for the networked sort service (docs/net.md).
//
// The SortService's global memory budget protects the *machine*; it says
// nothing about *who* gets the capacity. Without a per-client layer, one
// greedy tenant streaming huge sorts starves everyone behind the shared
// admission queue. The fairness layer here is a classic token bucket per
// tenant, charged in ingest bytes as DATA frames arrive:
//
//   * capacity_bytes   — the burst a tenant may spend at once; also the
//                        hard cap on a single job's size for that tenant
//                        (a job larger than the bucket can never pass).
//   * refill_per_s     — sustained ingest rate the tenant earns back.
//
// A charge that does not fit is rejected with Status::Unavailable — the
// same backpressure code the admission queue uses, so clients have one
// "back off and retry" signal regardless of which layer said no. The
// charge is atomic per call: either the whole amount is taken or none
// (no partial debits that would strand a half-admitted stream).

class TokenBucket {
 public:
  TokenBucket(uint64_t capacity, double refill_per_s)
      : capacity_(capacity),
        refill_per_s_(refill_per_s),
        tokens_(double(capacity)) {}

  // Takes `n` tokens if available after refilling for the elapsed time;
  // false leaves the bucket unchanged. `now_us` is a monotonic clock in
  // microseconds (injected for deterministic tests).
  bool TryAcquire(uint64_t n, uint64_t now_us);

  // Returns tokens to the bucket (a rejected or aborted job gives its
  // charge back so the failed attempt doesn't count against the tenant).
  void Refund(uint64_t n);

  uint64_t capacity() const { return capacity_; }
  double tokens() const;

  // Tokens available right now: refills for the elapsed time first, so
  // the answer reflects what a TryAcquire at `now_us` would see (tokens()
  // reports the balance as of the last charge, which understates an idle
  // bucket).
  uint64_t Available(uint64_t now_us);

 private:
  void RefillLocked(uint64_t now_us);

  const uint64_t capacity_;
  const double refill_per_s_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t last_refill_us_ = 0;
};

struct TenantQuotaOptions {
  // 0 disables quotas entirely (every charge succeeds).
  uint64_t capacity_bytes = 256ull << 20;
  double refill_bytes_per_s = 64.0 * (1 << 20);
};

// Thread-safe registry of per-tenant buckets, created on first use. The
// tenant name comes from the connection's HELLO frame; every connection
// that says the same name shares one bucket.
class TenantQuotas {
 public:
  explicit TenantQuotas(const TenantQuotaOptions& options)
      : options_(options) {}

  // Charges `bytes` to `tenant`, creating its bucket on first sight.
  // Unavailable when the bucket cannot cover the charge; the message
  // distinguishes "larger than the bucket will ever hold" from "back
  // off and retry".
  Status Charge(const std::string& tenant, uint64_t bytes, uint64_t now_us);

  // Returns a previous charge (failed/cancelled job).
  void Refund(const std::string& tenant, uint64_t bytes);

  // Bytes the tenant could charge right now (refill applied). UINT64_MAX
  // when quotas are disabled — "spend freely", matching Charge()'s
  // unconditional OK. Exposed to clients in the STATUS reply so they can
  // back off before earning an Unavailable.
  uint64_t Remaining(const std::string& tenant, uint64_t now_us);

  bool enabled() const { return options_.capacity_bytes > 0; }

 private:
  TokenBucket* BucketFor(const std::string& tenant);

  const TenantQuotaOptions options_;
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<TokenBucket>> buckets_;
};

}  // namespace net
}  // namespace alphasort

#endif  // ALPHASORT_NET_QUOTA_H_
