#ifndef ALPHASORT_NET_CLIENT_H_
#define ALPHASORT_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/socket.h"
#include "record/record.h"

namespace alphasort {
namespace net {

// Client half of the wire protocol (docs/net.md): connect, say HELLO,
// then SubmitSort() as many jobs as wanted over the one connection.
// Blocking, single-threaded by design — the loadgen gets concurrency by
// running many clients, mirroring how tenants actually arrive.

// Per-job parameters mirrored into the SUBMIT frame.
struct SubmitSpec {
  uint64_t memory_budget = 0;  // 0 = server default
  RecordFormat format = kDatamationFormat;
  size_t chunk_bytes = 256 * 1024;  // DATA frame payload size
  // Distributed trace id to submit under; 0 = mint one. Minted ids are
  // nonzero and fit in 48 bits, so tooling that parses trace JSON with
  // double-precision numbers (trace_merge, trace_lint) round-trips them
  // exactly. A caller-provided id is used verbatim.
  uint64_t trace_id = 0;
};

// Terminal outcome of one submitted job, unpacked from the terminal
// RESULT (and, on success, the preceding sorted-stream DONE) frames.
struct NetSortOutcome {
  Status status;  // the job's own outcome, distinct from transport health
  uint64_t job_id = 0;
  uint64_t output_bytes = 0;
  uint32_t output_crc32c = 0;  // CRC of the sorted stream (from DONE)
  uint64_t server_elapsed_us = 0;
  uint64_t trace_id = 0;  // the id this job ran under (minted or given)
  // Server-side per-stage attribution from the v2 RESULT (zero on
  // failure paths): where server_elapsed_us went. ingest_us overlaps
  // sort_us (the server sorts the upload as it arrives), so the stage
  // sum can exceed server_elapsed_us. See docs/net.md.
  uint64_t ingest_us = 0;
  uint64_t queue_us = 0;
  uint64_t sort_us = 0;
  uint64_t merge_us = 0;
  uint64_t stream_us = 0;
};

class SortClient {
 public:
  SortClient() = default;
  ~SortClient() { Close(); }

  SortClient(const SortClient&) = delete;
  SortClient& operator=(const SortClient&) = delete;

  // Connects and completes the HELLO handshake under `tenant`'s quota
  // identity (empty = the "default" tenant).
  Status Connect(const std::string& host, int port,
                 const std::string& tenant = "",
                 double timeout_s = 5.0);

  // Streams `n` bytes of records, waits for the job, and receives the
  // sorted stream into *sorted (cleared first; pass nullptr to discard
  // the bytes while still checking the stream CRC).
  //
  // The return value is transport health: non-OK means the conversation
  // itself broke (torn connection, frame corruption) and the client
  // must Close(). An OK return with outcome->status non-OK is a
  // well-delivered rejection — quota (Unavailable), admission
  // backpressure (Unavailable), validation (InvalidArgument), and so
  // on; the connection stays usable for another attempt.
  Status SubmitSort(const SubmitSpec& spec, const char* data, size_t n,
                    std::string* sorted, NetSortOutcome* outcome);

  // Server-level stats snapshot (STATUS with job_id = 0). Only valid
  // between jobs — SubmitSort owns the connection while it runs.
  Status QueryServerStatus(StatusReplyFrame* reply);

  bool connected() const { return conn_.valid(); }
  uint64_t conn_id() const { return conn_id_; }

  void Close();

  // The raw connection, for tests that need to speak malformed frames.
  TcpConn* raw_conn() { return &conn_; }

 private:
  TcpConn conn_;
  std::unique_ptr<FrameReader> reader_;
  uint64_t conn_id_ = 0;
};

}  // namespace net
}  // namespace alphasort

#endif  // ALPHASORT_NET_CLIENT_H_
