# Empty dependencies file for alphasort_net.
# This may be replaced when dependencies are built.
