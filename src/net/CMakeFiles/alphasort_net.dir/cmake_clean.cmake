file(REMOVE_RECURSE
  "CMakeFiles/alphasort_net.dir/client.cc.o"
  "CMakeFiles/alphasort_net.dir/client.cc.o.d"
  "CMakeFiles/alphasort_net.dir/frame.cc.o"
  "CMakeFiles/alphasort_net.dir/frame.cc.o.d"
  "CMakeFiles/alphasort_net.dir/quota.cc.o"
  "CMakeFiles/alphasort_net.dir/quota.cc.o.d"
  "CMakeFiles/alphasort_net.dir/server.cc.o"
  "CMakeFiles/alphasort_net.dir/server.cc.o.d"
  "CMakeFiles/alphasort_net.dir/socket.cc.o"
  "CMakeFiles/alphasort_net.dir/socket.cc.o.d"
  "libalphasort_net.a"
  "libalphasort_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
