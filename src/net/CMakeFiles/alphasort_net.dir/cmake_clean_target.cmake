file(REMOVE_RECURSE
  "libalphasort_net.a"
)
