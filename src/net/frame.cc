#include "net/frame.h"

#include <cstring>

#include "common/checksum.h"
#include "common/table.h"

namespace alphasort {
namespace net {

namespace {

// Little-endian fixed-width primitives. The protocol never uses
// variable-width encodings: a fixed layout keeps the truncation checks
// trivial and the fuzz corpus exhaustive.
void PutU8(std::string* out, uint8_t v) { out->push_back(char(v)); }

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = char((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = char((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Cursor over a payload; every getter fails with InvalidArgument on
// truncation so payload decoders are a straight sequence of reads plus
// one trailing-bytes check.
class Reader {
 public:
  explicit Reader(const std::string& buf) : buf_(buf) {}

  Status U8(uint8_t* v) {
    if (buf_.size() - pos_ < 1) return Truncated();
    *v = uint8_t(buf_[pos_++]);
    return Status::OK();
  }
  Status U32(uint32_t* v) {
    if (buf_.size() - pos_ < 4) return Truncated();
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= uint32_t(uint8_t(buf_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return Status::OK();
  }
  Status U64(uint64_t* v) {
    if (buf_.size() - pos_ < 8) return Truncated();
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= uint64_t(uint8_t(buf_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return Status::OK();
  }
  Status Str(std::string* v) {
    uint32_t n = 0;
    ALPHASORT_RETURN_IF_ERROR(U32(&n));
    if (buf_.size() - pos_ < n) return Truncated();
    v->assign(buf_, pos_, n);
    pos_ += n;
    return Status::OK();
  }
  // Rejects bytes past the last field: a longer-than-expected payload
  // means the peer speaks a different layout.
  Status Done() const {
    if (pos_ != buf_.size()) {
      return Status::InvalidArgument(StrFormat(
          "payload carries %zu trailing byte(s)", buf_.size() - pos_));
    }
    return Status::OK();
  }

 private:
  static Status Truncated() {
    return Status::InvalidArgument("payload truncated");
  }

  const std::string& buf_;
  size_t pos_ = 0;
};

uint32_t FrameCrc(uint8_t type, const char* payload, size_t n) {
  const char t = char(type);
  uint32_t crc = Crc32c(&t, 1);
  return Crc32c(payload, n, crc);
}

}  // namespace

bool FrameTypeValid(uint8_t type) {
  return type >= uint8_t(FrameType::kHello) &&
         type <= uint8_t(FrameType::kResult);
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kSubmit:
      return "SUBMIT";
    case FrameType::kData:
      return "DATA";
    case FrameType::kDone:
      return "DONE";
    case FrameType::kStatus:
      return "STATUS";
    case FrameType::kCancel:
      return "CANCEL";
    case FrameType::kResult:
      return "RESULT";
  }
  return "?";
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + kFrameOverhead);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU8(&out, uint8_t(type));
  out.append(payload);
  PutU32(&out, FrameCrc(uint8_t(type), payload.data(), payload.size()));
  return out;
}

void FrameDecoder::Append(const char* data, size_t n) {
  if (!error_.ok()) return;  // poisoned: drop input
  buf_.append(data, n);
}

// Consumed-prefix bytes a decoder tolerates before compacting. A
// streamed DATA sequence leaves a partial frame pending at nearly every
// socket-read boundary, so compaction cannot wait for the buffer to be
// exactly consumed — that would grow it with the total bytes ever
// received on the connection. Erasing once the dead prefix passes this
// threshold (or dominates the buffer) bounds the buffer near
// threshold + one frame while amortising the memmove.
static constexpr size_t kDecoderCompactThreshold = 64 * 1024;

Status FrameDecoder::Next(Frame* out, bool* got) {
  *got = false;
  if (!error_.ok()) return error_;

  // Compact before parsing, whether or not a full frame is buffered.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kDecoderCompactThreshold || pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }

  // Envelope header: length + type. The length is validated before the
  // body is waited for, so a garbage length fails fast.
  if (buf_.size() - pos_ < 5) return Status::OK();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= uint32_t(uint8_t(buf_[pos_ + i])) << (8 * i);
  const uint8_t type = uint8_t(buf_[pos_ + 4]);
  if (len > kMaxFramePayload) {
    error_ = Status::InvalidArgument(StrFormat(
        "frame payload length %u exceeds the %u-byte bound", len,
        kMaxFramePayload));
    return error_;
  }
  if (!FrameTypeValid(type)) {
    error_ = Status::InvalidArgument(
        StrFormat("unknown frame type 0x%02x", type));
    return error_;
  }
  if (buf_.size() - pos_ < size_t(len) + kFrameOverhead) return Status::OK();

  const char* payload = buf_.data() + pos_ + 5;
  uint32_t wire_crc = 0;
  for (int i = 0; i < 4; ++i)
    wire_crc |= uint32_t(uint8_t(payload[len + i])) << (8 * i);
  if (wire_crc != FrameCrc(type, payload, len)) {
    error_ = Status::Corruption(
        StrFormat("%s frame failed its CRC-32C check",
                  FrameTypeName(FrameType(type))));
    return error_;
  }

  out->type = FrameType(type);
  out->payload.assign(payload, len);
  pos_ += size_t(len) + kFrameOverhead;
  *got = true;
  return Status::OK();
}

// --- HELLO ----------------------------------------------------------

std::string HelloFrame::Encode() const {
  std::string p;
  PutU32(&p, version);
  PutString(&p, tenant);
  PutU64(&p, conn_id);
  PutU64(&p, now_us);
  return p;
}

Status HelloFrame::Decode(const std::string& payload) {
  Reader r(payload);
  ALPHASORT_RETURN_IF_ERROR(r.U32(&version));
  // Version gates the rest of the layout: a v1 HELLO is 8 bytes shorter,
  // so checking after the reads would report "payload truncated" instead
  // of the actionable mismatch message old peers are promised.
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(StrFormat(
        "protocol version mismatch: peer speaks %u, this side speaks %u",
        version, kProtocolVersion));
  }
  ALPHASORT_RETURN_IF_ERROR(r.Str(&tenant));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&conn_id));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&now_us));
  return r.Done();
}

// --- SUBMIT ---------------------------------------------------------

std::string SubmitFrame::Encode() const {
  std::string p;
  PutU64(&p, memory_budget);
  PutU32(&p, record_size);
  PutU32(&p, key_size);
  PutU64(&p, expected_bytes);
  PutU64(&p, trace_id);
  return p;
}

Status SubmitFrame::Decode(const std::string& payload) {
  Reader r(payload);
  ALPHASORT_RETURN_IF_ERROR(r.U64(&memory_budget));
  ALPHASORT_RETURN_IF_ERROR(r.U32(&record_size));
  ALPHASORT_RETURN_IF_ERROR(r.U32(&key_size));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&expected_bytes));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&trace_id));
  ALPHASORT_RETURN_IF_ERROR(r.Done());
  if (record_size == 0 || record_size > (1u << 16)) {
    return Status::InvalidArgument(
        StrFormat("record_size %u out of range", record_size));
  }
  if (key_size == 0 || key_size > record_size) {
    return Status::InvalidArgument(StrFormat(
        "key_size %u invalid for record_size %u", key_size, record_size));
  }
  return Status::OK();
}

// --- DONE -----------------------------------------------------------

std::string DoneFrame::Encode() const {
  std::string p;
  PutU64(&p, total_bytes);
  PutU32(&p, crc32c);
  return p;
}

Status DoneFrame::Decode(const std::string& payload) {
  Reader r(payload);
  ALPHASORT_RETURN_IF_ERROR(r.U64(&total_bytes));
  ALPHASORT_RETURN_IF_ERROR(r.U32(&crc32c));
  return r.Done();
}

// --- STATUS ---------------------------------------------------------

std::string StatusRequestFrame::Encode() const {
  std::string p;
  PutU64(&p, job_id);
  return p;
}

Status StatusRequestFrame::Decode(const std::string& payload) {
  Reader r(payload);
  ALPHASORT_RETURN_IF_ERROR(r.U64(&job_id));
  return r.Done();
}

std::string StatusReplyFrame::Encode() const {
  std::string p;
  PutU64(&p, job_id);
  PutU8(&p, job_state);
  PutU32(&p, job_permille);
  PutU64(&p, jobs_queued);
  PutU64(&p, jobs_running);
  PutU64(&p, admitted_bytes);
  PutU64(&p, conns_active);
  PutU64(&p, net_jobs_inflight);
  PutU64(&p, quota_remaining);
  return p;
}

Status StatusReplyFrame::Decode(const std::string& payload) {
  Reader r(payload);
  ALPHASORT_RETURN_IF_ERROR(r.U64(&job_id));
  ALPHASORT_RETURN_IF_ERROR(r.U8(&job_state));
  ALPHASORT_RETURN_IF_ERROR(r.U32(&job_permille));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&jobs_queued));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&jobs_running));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&admitted_bytes));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&conns_active));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&net_jobs_inflight));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&quota_remaining));
  return r.Done();
}

// --- CANCEL ---------------------------------------------------------

std::string CancelFrame::Encode() const {
  std::string p;
  PutU64(&p, job_id);
  return p;
}

Status CancelFrame::Decode(const std::string& payload) {
  Reader r(payload);
  ALPHASORT_RETURN_IF_ERROR(r.U64(&job_id));
  return r.Done();
}

// --- RESULT ---------------------------------------------------------

std::string ResultFrame::Encode() const {
  std::string p;
  PutU64(&p, job_id);
  PutU32(&p, code);
  PutString(&p, message);
  PutU64(&p, output_bytes);
  PutU32(&p, output_crc32c);
  PutU64(&p, elapsed_us);
  PutU64(&p, ingest_us);
  PutU64(&p, queue_us);
  PutU64(&p, sort_us);
  PutU64(&p, merge_us);
  PutU64(&p, stream_us);
  return p;
}

Status ResultFrame::Decode(const std::string& payload) {
  Reader r(payload);
  ALPHASORT_RETURN_IF_ERROR(r.U64(&job_id));
  ALPHASORT_RETURN_IF_ERROR(r.U32(&code));
  ALPHASORT_RETURN_IF_ERROR(r.Str(&message));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&output_bytes));
  ALPHASORT_RETURN_IF_ERROR(r.U32(&output_crc32c));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&elapsed_us));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&ingest_us));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&queue_us));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&sort_us));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&merge_us));
  ALPHASORT_RETURN_IF_ERROR(r.U64(&stream_us));
  ALPHASORT_RETURN_IF_ERROR(r.Done());
  if (code > uint32_t(Status::Code::kDeadlineExceeded)) {
    return Status::InvalidArgument(
        StrFormat("unknown status code %u in RESULT", code));
  }
  return Status::OK();
}

uint32_t ResultFrame::CodeOf(const Status& s) {
  return uint32_t(s.code());
}

Status ResultFrame::ToStatus() const {
  switch (Status::Code(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kCorruption:
      return Status::Corruption(message);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kIOError:
      return Status::IOError(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case Status::Code::kAborted:
      return Status::Aborted(message);
    case Status::Code::kUnavailable:
      return Status::Unavailable(message);
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
  }
  return Status::InvalidArgument("unknown status code");
}

}  // namespace net
}  // namespace alphasort
