#include "net/quota.h"

#include <algorithm>

#include "common/table.h"

namespace alphasort {
namespace net {

void TokenBucket::RefillLocked(uint64_t now_us) {
  if (last_refill_us_ == 0) {
    last_refill_us_ = now_us;
    return;
  }
  if (now_us <= last_refill_us_) return;
  const double elapsed_s = double(now_us - last_refill_us_) / 1e6;
  tokens_ = std::min(double(capacity_), tokens_ + elapsed_s * refill_per_s_);
  last_refill_us_ = now_us;
}

bool TokenBucket::TryAcquire(uint64_t n, uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now_us);
  if (tokens_ < double(n)) return false;
  tokens_ -= double(n);
  return true;
}

void TokenBucket::Refund(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(double(capacity_), tokens_ + double(n));
}

double TokenBucket::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_;
}

uint64_t TokenBucket::Available(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(now_us);
  return tokens_ <= 0 ? 0 : static_cast<uint64_t>(tokens_);
}

TokenBucket* TenantQuotas::BucketFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = buckets_[tenant];
  if (slot == nullptr) {
    slot = std::make_unique<TokenBucket>(options_.capacity_bytes,
                                         options_.refill_bytes_per_s);
  }
  return slot.get();
}

Status TenantQuotas::Charge(const std::string& tenant, uint64_t bytes,
                            uint64_t now_us) {
  if (!enabled() || bytes == 0) return Status::OK();
  if (bytes > options_.capacity_bytes) {
    // No amount of waiting makes this fit; say so instead of inviting a
    // retry loop. Still Unavailable (not InvalidArgument): the same job
    // may be acceptable for a tenant with a bigger bucket.
    return Status::Unavailable(StrFormat(
        "tenant '%s' quota: %llu bytes exceeds the %llu-byte bucket "
        "capacity",
        tenant.c_str(), static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(options_.capacity_bytes)));
  }
  if (!BucketFor(tenant)->TryAcquire(bytes, now_us)) {
    return Status::Unavailable(StrFormat(
        "tenant '%s' quota exhausted (%llu bytes requested); back off and "
        "retry",
        tenant.c_str(), static_cast<unsigned long long>(bytes)));
  }
  return Status::OK();
}

void TenantQuotas::Refund(const std::string& tenant, uint64_t bytes) {
  if (!enabled() || bytes == 0) return;
  BucketFor(tenant)->Refund(bytes);
}

uint64_t TenantQuotas::Remaining(const std::string& tenant,
                                 uint64_t now_us) {
  if (!enabled()) return UINT64_MAX;
  return BucketFor(tenant)->Available(now_us);
}

}  // namespace net
}  // namespace alphasort
