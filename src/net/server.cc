#include "net/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/checksum.h"
#include "common/table.h"
#include "core/record_source.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace alphasort {
namespace net {

namespace {

// Registry instruments (docs/observability.md): gauges mirror live
// levels, counters accumulate. Per-job latency histograms (net.job.*_us,
// end-to-end and per-stage) are recorded via obs::RecordTimelineHistograms.
obs::Gauge* ConnsActive() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global()->GetGauge("net.conns_active");
  return g;
}
obs::Gauge* JobsInflight() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global()->GetGauge("net.jobs_inflight");
  return g;
}
obs::Counter* ConnsAccepted() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.conns_accepted");
  return c;
}
obs::Counter* ConnsRejected() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.conns_rejected");
  return c;
}
obs::Counter* JobsSubmitted() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.jobs_submitted");
  return c;
}
obs::Counter* JobsCompleted() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.jobs_completed");
  return c;
}
obs::Counter* JobsFailed() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.jobs_failed");
  return c;
}
obs::Counter* QuotaRejected() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.quota_rejected");
  return c;
}
obs::Counter* ProtocolErrors() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.protocol_errors");
  return c;
}
obs::Counter* BytesRx() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.bytes_rx");
  return c;
}
obs::Counter* BytesTx() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global()->GetCounter("net.bytes_tx");
  return c;
}
uint64_t NowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

uint8_t WireJobState(SortJobState s) {
  switch (s) {
    case SortJobState::kQueued:
      return 1;
    case SortJobState::kRunning:
      return 2;
    case SortJobState::kDone:
      return 3;
  }
  return 0;
}

// Output stream chunking: comfortably under kMaxFramePayload, large
// enough that frame overhead is noise.
constexpr size_t kStreamChunk = 256 * 1024;

}  // namespace

// One accepted connection: its socket, its thread, and the per-stream
// state machine. All sorting happens inside the shared SortService;
// this thread only shuttles bytes — DATA frames feed the job's
// StreamRecordSource directly, so the sort ingests the upload as it
// arrives (no input spool file) — and relays results.
class NetServer::Connection {
 public:
  Connection(NetServer* server, uint64_t id, TcpConn conn)
      : server_(server), id_(id), conn_(std::move(conn)) {}

  void Start() {
    thread_ = std::thread([this] { Run(); });
  }

  // Thread-safe: unblocks any read/write so Run() exits promptly.
  // Defers the close itself to conn_'s destructor (after Join()) for
  // the same fd-ownership reasons as HalfClose() below.
  void Shutdown() { HalfClose(); }

  // Half-closes the socket when Run() is done with it, so the peer
  // sees EOF right away instead of waiting for this object to be
  // reaped. shutdown() rather than close() on purpose: the fd number
  // stays owned by conn_ (freed by the destructor), so a concurrent
  // Shutdown() from Stop() can never hit a reused descriptor.
  void HalfClose() {
    if (conn_.valid()) ::shutdown(conn_.fd(), SHUT_RDWR);
  }

  bool done() const { return done_.load(std::memory_order_acquire); }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct StreamState {
    SubmitFrame submit;
    std::string tenant;
    std::string out_path;
    // The job's input, fed frame by frame; the pipeline reads the other
    // end concurrently (backpressure: TryAppend stalls the upload when
    // the sort falls behind, instead of buffering the whole stream).
    std::shared_ptr<StreamRecordSource> stream;
    uint64_t received = 0;
    uint32_t crc = 0;
    uint64_t charged = 0;   // quota bytes to refund on failure
    // True once the job's work is spent (a RESULT(OK) is imminent): the
    // quota charge is consumed, not refunded, even if the client then
    // vanishes mid stream-back.
    bool charge_consumed = false;
    uint64_t start_us = 0;   // SUBMIT receive time
    uint64_t ingest_us = 0;  // measured around IngestInput
  };

  void Run();
  Status ServeOneJob(FrameReader* reader, const Frame& submit_frame);
  Status IngestInput(FrameReader* reader, StreamState* st, SortJob* job,
                     bool* settled);
  Status RunAndStreamBack(FrameReader* reader, StreamState* st,
                          SortJob* job);
  Status DrainUntilDone(FrameReader* reader);
  void AnswerStatus(const Frame& frame, const SortJob* job);
  Status SendResult(uint64_t job_id, const Status& outcome,
                    uint64_t output_bytes, uint64_t elapsed_us,
                    const obs::JobTimeline* timeline = nullptr);
  void CleanupStream(StreamState* st);

  NetServer* const server_;
  const uint64_t id_;
  TcpConn conn_;
  std::string tenant_ = "default";
  uint64_t job_seq_ = 0;
  std::thread thread_;
  std::atomic<bool> done_{false};
};

void NetServer::Connection::Run() {
  conn_.SetNoDelay();
  ALPHASORT_LOG(kDebug, "svc.conn.open").U64("conn", id_);

  FrameReader reader(&conn_);
  Frame frame;

  // Handshake: the first frame must be a HELLO with our version.
  Status s = reader.Read(&frame);
  if (s.ok() && frame.type != FrameType::kHello) {
    s = Status::InvalidArgument(StrFormat(
        "expected HELLO, got %s", FrameTypeName(frame.type)));
  }
  HelloFrame hello;
  if (s.ok()) s = hello.Decode(frame.payload);
  if (!s.ok()) {
    // Best-effort rejection so the peer learns why before the close.
    server_->NoteProtocolError();
    ALPHASORT_LOG(kWarn, "svc.conn.error")
        .U64("conn", id_)
        .Str("status", s.ToString());
    SendResult(0, s, 0, 0);
    HalfClose();
    done_.store(true, std::memory_order_release);
    server_->NoteConnClosed();
    return;
  }
  if (!hello.tenant.empty()) tenant_ = hello.tenant;
  // Clock sync, one event per direction: record the client's send-time
  // reading now (closest to receipt), answer with our own fresh reading.
  // trace_merge pairs the two events to align the recorders' epochs.
  if (hello.now_us != 0) obs::TraceClockSync("net.clock_sync", hello.now_us);
  HelloFrame reply;
  reply.conn_id = id_;
  reply.now_us = obs::TraceRawNowUs();
  (void)WriteFrame(&conn_, FrameType::kHello, reply.Encode());
  ALPHASORT_LOG(kInfo, "svc.conn.hello")
      .U64("conn", id_)
      .Str("tenant", tenant_);

  // Steady state: jobs and queries until the peer hangs up.
  for (;;) {
    s = reader.Read(&frame);
    if (s.IsNotFound()) {
      s = Status::OK();  // orderly goodbye on a frame boundary
      break;
    }
    if (!s.ok()) break;
    if (frame.type == FrameType::kSubmit) {
      s = ServeOneJob(&reader, frame);
      if (s.IsNotFound()) {
        // The peer hung up mid-protocol (a vanished client, not a
        // malformed one); the job-level cleanup already ran.
        s = Status::OK();
        break;
      }
      if (!s.ok()) break;
    } else if (frame.type == FrameType::kStatus) {
      AnswerStatus(frame, nullptr);
    } else if (frame.type == FrameType::kCancel) {
      // No job in flight: nothing to cancel, by design not an error.
    } else {
      s = Status::InvalidArgument(StrFormat(
          "%s frame outside a data stream", FrameTypeName(frame.type)));
      break;
    }
  }

  if (!s.ok()) {
    server_->NoteProtocolError();
    ALPHASORT_LOG(kWarn, "svc.conn.error")
        .U64("conn", id_)
        .Str("status", s.ToString());
    SendResult(0, s, 0, 0);
  }
  ALPHASORT_LOG(kDebug, "svc.conn.close").U64("conn", id_);
  HalfClose();
  done_.store(true, std::memory_order_release);
  server_->NoteConnClosed();
}

// A SUBMIT frame arrived; run the whole job protocol. A non-OK return
// tears the connection down (protocol violation or torn stream); quota
// and admission rejections RESULT back to the peer and return OK so the
// connection survives for the next job.
Status NetServer::Connection::ServeOneJob(FrameReader* reader,
                                          const Frame& submit_frame) {
  StreamState st;
  st.start_us = NowUs();
  st.tenant = tenant_;
  ALPHASORT_RETURN_IF_ERROR(st.submit.Decode(submit_frame.payload));
  // Everything this job touches on the server — ingest/wait/stream
  // spans, log events, and (via SortOptions) the pipeline itself —
  // carries the client-minted trace id from here on.
  obs::ScopedTraceId trace_scope(st.submit.trace_id);

  server_->NoteJobInflight(+1);
  struct InflightScope {
    NetServer* server;
    ~InflightScope() { server->NoteJobInflight(-1); }
  } inflight{server_};

  const uint64_t seq = ++job_seq_;
  st.out_path = StrFormat("%s/c%llu-j%llu.out",
                          server_->options_.data_root.c_str(),
                          static_cast<unsigned long long>(id_),
                          static_cast<unsigned long long>(seq));
  ALPHASORT_LOG(kInfo, "svc.conn.submit")
      .U64("conn", id_)
      .Str("tenant", tenant_)
      .U64("expected", st.submit.expected_bytes)
      .U64("budget", st.submit.memory_budget);

  // The tenant's quota is charged up front for the advertised size, so
  // an over-quota job is rejected before a byte is ingested. Streams
  // that understate expected_bytes are charged the excess per frame.
  if (st.submit.expected_bytes > 0) {
    if (Status q = server_->quotas_.Charge(tenant_, st.submit.expected_bytes,
                                           NowUs());
        !q.ok()) {
      server_->NoteQuotaRejected();
      ALPHASORT_LOG(kWarn, "svc.conn.reject")
          .U64("conn", id_)
          .Str("tenant", tenant_)
          .Str("reason", "quota")
          .U64("bytes", st.submit.expected_bytes);
      (void)SendResult(0, q, 0, NowUs() - st.start_us);
      return DrainUntilDone(reader);
    }
    st.charged = st.submit.expected_bytes;
  }

  // Every exit below — including mid-ingest disconnects and the
  // write-failure returns while streaming the result back to a client
  // that hung up — must release the output file and settle the quota
  // charge, or each failure leaks into data_root or the tenant's
  // bucket. The charge is refunded unless the job's work was actually
  // spent (charge_consumed flips just before a RESULT(OK)).
  struct StreamCleanup {
    Connection* conn;
    StreamState* st;
    ~StreamCleanup() { conn->CleanupStream(st); }
  } cleanup{this, &st};

  // The job is submitted *before* its input exists: DATA frames feed
  // the StreamRecordSource below while the pipeline QuickSorts what has
  // already arrived, so ingest and the sort's read pass overlap instead
  // of serializing through a spool file.
  SortOptions opts = server_->options_.job_defaults;
  opts.input_path.clear();
  st.stream = std::make_shared<StreamRecordSource>();
  opts.source = [stream = st.stream]() -> std::shared_ptr<RecordSource> {
    return stream;
  };
  opts.output_path = st.out_path;
  opts.format =
      RecordFormat(st.submit.record_size, st.submit.key_size);
  if (st.submit.memory_budget > 0) {
    opts.memory_budget = st.submit.memory_budget;
  }
  opts.scratch_path = server_->options_.data_root + "/scratch";
  opts.trace_id = st.submit.trace_id;

  Result<SortJob> submitted = server_->service_.Submit(opts);
  if (!submitted.ok()) {
    // Admission backpressure (queue full) or invalid options: the
    // RESULT relays the code, the unsent upload is drained, and the
    // connection stays usable.
    ALPHASORT_LOG(kWarn, "svc.conn.reject")
        .U64("conn", id_)
        .Str("tenant", tenant_)
        .Str("reason", "admission")
        .Str("status", submitted.status().ToString());
    server_->NoteJobResult(false);
    (void)SendResult(0, submitted.status(), 0, NowUs() - st.start_us);
    return DrainUntilDone(reader);
  }
  SortJob job = std::move(submitted).value();
  server_->NoteJobSubmitted();

  // Spans from here carry the service-assigned job id, so a trace
  // follows one request across accept/ingest/sort/stream-back.
  obs::ScopedJobId job_scope(job.id());

  bool settled = false;
  const uint64_t ingest_begin_us = NowUs();
  Status s = IngestInput(reader, &st, &job, &settled);
  st.ingest_us = NowUs() - ingest_begin_us;
  if (!s.ok()) {
    // Torn stream (mid-ingest disconnect) or protocol violation: poison
    // the input so the pipeline stops, reap the job, refund (via the
    // cleanup guard), drop the connection.
    st.stream->Fail(Status::Aborted("connection lost mid-upload"));
    job.Cancel();
    job.Wait();
    server_->NoteJobResult(false);
    ALPHASORT_LOG(kWarn, "svc.conn.eof_midingest")
        .U64("conn", id_)
        .U64("job", job.id());
    return s;
  }
  if (settled) {
    // IngestInput already reaped the job and sent the RESULT; the
    // connection stays usable for the next SUBMIT.
    return Status::OK();
  }
  return RunAndStreamBack(reader, &st, &job);
}

// Receives DATA frames into the job's StreamRecordSource until DONE.
// Sets *settled (with the job reaped and the RESULT already sent) for
// refusals and upload-time failures the connection survives; returns
// non-OK only for unrecoverable connection states (the caller reaps the
// job). On a plain OK return the upload is complete and verified, the
// stream is closed for writing, and the job is still in flight.
Status NetServer::Connection::IngestInput(FrameReader* reader,
                                          StreamState* st, SortJob* job,
                                          bool* settled) {
  *settled = false;
  obs::TraceSpan span("net.ingest", "net");

  // Reaps the job and RESULTs its (or the given) failure to the peer.
  auto settle = [&](Status outcome) {
    st->stream->Fail(outcome);
    job->Cancel();
    const SortResult& r = job->Wait();
    if (outcome.ok()) outcome = r.status;
    server_->NoteJobResult(false);
    (void)SendResult(job->id(), outcome, 0, NowUs() - st->start_us);
    *settled = true;
  };

  // Flips true when the pipeline stopped consuming (the job died:
  // invalid options discovered at open, deadline, service shutdown).
  // The remaining upload is read and discarded so the RESULT stays
  // deliverable, then the job's own status is reported at DONE.
  bool stream_dead = false;

  Frame frame;
  for (;;) {
    ALPHASORT_RETURN_IF_ERROR(reader->Read(&frame));
    switch (frame.type) {
      case FrameType::kData: {
        const uint64_t n = frame.payload.size();
        // Bytes past the advertised size charge quota as they arrive.
        const uint64_t prepaid = st->submit.expected_bytes > st->received
                                     ? st->submit.expected_bytes - st->received
                                     : 0;
        if (n > prepaid) {
          if (Status q = server_->quotas_.Charge(tenant_, n - prepaid,
                                                 NowUs());
              !q.ok()) {
            server_->NoteQuotaRejected();
            ALPHASORT_LOG(kWarn, "svc.conn.reject")
                .U64("conn", id_)
                .Str("tenant", tenant_)
                .Str("reason", "quota_midstream");
            settle(q);
            return DrainUntilDone(reader);
          }
          st->charged += n - prepaid;
        }
        st->crc = Crc32c(frame.payload.data(), frame.payload.size(), st->crc);
        st->received += n;
        server_->NoteBytesRx(n);
        while (!stream_dead) {
          // Bounded-buffer append with a deadline, so a dead consumer
          // (the job failed mid-ingest) is noticed instead of blocking
          // this thread on a reader that will never drain the stream.
          bool accepted = false;
          Status as = st->stream->TryAppend(frame.payload.data(),
                                            frame.payload.size(),
                                            /*timeout_ms=*/50, &accepted);
          if (!as.ok() || accepted) {
            stream_dead = !as.ok();
            break;
          }
          if (job->TryWait()) {
            // Finished without reading to EOF: the job failed (a queued
            // job reaped by its deadline never opens the stream at all).
            stream_dead = true;
          }
        }
        break;
      }
      case FrameType::kDone: {
        DoneFrame done;
        ALPHASORT_RETURN_IF_ERROR(done.Decode(frame.payload));
        Status verdict;
        if (done.total_bytes != st->received) {
          verdict = Status::Corruption(StrFormat(
              "stream advertised %llu bytes, received %llu",
              static_cast<unsigned long long>(done.total_bytes),
              static_cast<unsigned long long>(st->received)));
        } else if (done.crc32c != st->crc) {
          verdict = Status::Corruption("input stream failed its CRC check");
        } else if (st->received == 0 ||
                   st->received % st->submit.record_size != 0) {
          verdict = Status::InvalidArgument(StrFormat(
              "%llu streamed bytes is not a positive multiple of the "
              "%u-byte record size",
              static_cast<unsigned long long>(st->received),
              st->submit.record_size));
        }
        if (!verdict.ok() || stream_dead) {
          settle(verdict);  // OK verdict reports the job's own failure
          return Status::OK();
        }
        st->stream->CloseWrite();
        return Status::OK();
      }
      case FrameType::kStatus:
        AnswerStatus(frame, job);
        break;
      case FrameType::kCancel:
        settle(Status::Aborted("cancelled during upload"));
        // A well-behaved canceller still ends the upload with DONE;
        // drain to that boundary so the connection stays reusable.
        return DrainUntilDone(reader);
      default:
        return Status::InvalidArgument(StrFormat(
            "%s frame inside a data stream", FrameTypeName(frame.type)));
    }
  }
}

// The upload has fully arrived and verified: answer STATUS and honour
// CANCEL while the job drains the stream and sorts, then stream the
// output back.
Status NetServer::Connection::RunAndStreamBack(FrameReader* reader,
                                               StreamState* st,
                                               SortJob* job_ptr) {
  SortJob& job = *job_ptr;
  const uint64_t wait_begin_us = NowUs();
  {
    obs::TraceSpan wait_span("net.sort_wait", "net");
    while (!job.TryWait()) {
      Frame frame;
      bool got = false;
      Status ps = reader->Poll(&frame, &got, 20);
      if (!ps.ok()) {
        // The client vanished mid-job: cancel, wait for the service to
        // reap it (scratch swept), clean the output, drop the conn.
        ALPHASORT_LOG(kWarn, "svc.conn.eof_midjob")
            .U64("conn", id_)
            .U64("job", job.id());
        job.Cancel();
        job.Wait();
        server_->NoteJobResult(false);
        return ps.IsNotFound() ? Status::OK() : ps;
      }
      if (!got) continue;
      if (frame.type == FrameType::kStatus) {
        AnswerStatus(frame, &job);
      } else if (frame.type == FrameType::kCancel) {
        job.Cancel();
      } else {
        job.Cancel();
        job.Wait();
        server_->NoteJobResult(false);
        return Status::InvalidArgument(StrFormat(
            "%s frame while a job is in flight", FrameTypeName(frame.type)));
      }
    }
  }

  const uint64_t wait_us = NowUs() - wait_begin_us;

  const SortResult& r = job.Wait();
  if (!r.status.ok()) {
    server_->NoteJobResult(false);
    ALPHASORT_LOG(kInfo, "svc.conn.result")
        .U64("conn", id_)
        .U64("job", job.id())
        .Str("status", r.status.ToString());
    (void)SendResult(job.id(), r.status, 0, NowUs() - st->start_us);
    return Status::OK();
  }

  // Success: the sorted bytes, DONE with the stream CRC, then the
  // terminal RESULT — last so its elapsed_us and stage breakdown cover
  // the stream-back. Socket writes block when the client reads slowly —
  // TCP backpressure is the flow control.
  Result<uint64_t> out_size = server_->env_->GetFileSize(st->out_path);
  if (!out_size.ok()) {
    server_->NoteJobResult(false);
    (void)SendResult(job.id(), out_size.status(), 0,
                     NowUs() - st->start_us);
    return Status::OK();
  }
  const uint64_t total = out_size.value();
  // The sort has run: the quota charge is consumed from here on, even if
  // the client disappears while the result streams back.
  st->charge_consumed = true;

  const uint64_t stream_begin_us = NowUs();
  {
    obs::TraceSpan stream_span("net.stream_back", "net");
    Result<std::unique_ptr<File>> out_file =
        server_->env_->OpenFile(st->out_path, OpenMode::kReadOnly);
    if (!out_file.ok()) return out_file.status();
    std::string chunk;
    uint32_t crc = 0;
    uint64_t off = 0;
    while (off < total) {
      const size_t want =
          size_t(std::min<uint64_t>(kStreamChunk, total - off));
      chunk.resize(want);
      size_t got = 0;
      Status rs = out_file.value()->Read(off, want, chunk.data(), &got);
      if (rs.ok() && got != want) {
        rs = Status::IOError("short read streaming sorted output");
      }
      if (!rs.ok()) return rs;
      ALPHASORT_RETURN_IF_ERROR(
          WriteFrame(&conn_, FrameType::kData, chunk));
      crc = Crc32c(chunk.data(), want, crc);
      off += want;
      server_->NoteBytesTx(want);
    }
    DoneFrame done;
    done.total_bytes = total;
    done.crc32c = crc;
    ALPHASORT_RETURN_IF_ERROR(
        WriteFrame(&conn_, FrameType::kDone, done.Encode()));
  }

  // Attribute the job's whole life before the terminal RESULT ships it.
  obs::JobTimeline timeline;
  timeline.job_id = job.id();
  timeline.trace_id = st->submit.trace_id;
  timeline.ingest_us = st->ingest_us;
  timeline.FillFromSortMetrics(r.metrics);
  timeline.DeriveQueue(wait_us);
  timeline.stream_us = NowUs() - stream_begin_us;
  timeline.e2e_us = NowUs() - st->start_us;
  ALPHASORT_RETURN_IF_ERROR(
      SendResult(job.id(), Status::OK(), total, timeline.e2e_us,
                 &timeline));

  server_->NoteJobResult(true);
  obs::RecordTimelineHistograms(timeline);
  obs::MaybeLogSlowJob(timeline,
                       server_->options_.slow_job_threshold_us);
  ALPHASORT_LOG(kInfo, "svc.conn.result")
      .U64("conn", id_)
      .U64("job", job.id())
      .Str("status", "OK")
      .U64("bytes", total)
      .U64("elapsed_us", timeline.e2e_us);
  return Status::OK();
}

// After a mid-stream rejection the peer may still be sending its DATA
// stream; reading (and discarding) until its DONE keeps the already-sent
// RESULT deliverable instead of getting torn down by a reset.
Status NetServer::Connection::DrainUntilDone(FrameReader* reader) {
  Frame frame;
  for (;;) {
    ALPHASORT_RETURN_IF_ERROR(reader->Read(&frame));
    if (frame.type == FrameType::kDone ||
        frame.type == FrameType::kCancel) {
      return Status::OK();
    }
    if (frame.type != FrameType::kData &&
        frame.type != FrameType::kStatus) {
      return Status::InvalidArgument(StrFormat(
          "%s frame while draining a rejected stream",
          FrameTypeName(frame.type)));
    }
  }
}

void NetServer::Connection::AnswerStatus(const Frame& frame,
                                         const SortJob* job) {
  StatusRequestFrame req;
  if (!req.Decode(frame.payload).ok()) return;
  StatusReplyFrame reply;
  if (job != nullptr) {
    reply.job_id = job->id();
    reply.job_state = WireJobState(job->state());
    const obs::JobProgress p = job->Progress();
    reply.job_permille = uint32_t(p.fraction * 1000.0);
  }
  const svc::SortServiceStats svc_stats = server_->service_.stats();
  reply.jobs_queued = uint64_t(svc_stats.queued);
  reply.jobs_running = uint64_t(svc_stats.running);
  reply.admitted_bytes = svc_stats.admitted_bytes;
  const NetServerStats net_stats = server_->stats();
  reply.conns_active = uint64_t(net_stats.conns_active);
  reply.net_jobs_inflight = uint64_t(net_stats.jobs_inflight);
  reply.quota_remaining = server_->quotas_.Remaining(tenant_, NowUs());
  (void)WriteFrame(&conn_, FrameType::kStatus, reply.Encode());
}

Status NetServer::Connection::SendResult(uint64_t job_id,
                                         const Status& outcome,
                                         uint64_t output_bytes,
                                         uint64_t elapsed_us,
                                         const obs::JobTimeline* timeline) {
  ResultFrame result;
  result.job_id = job_id;
  result.code = ResultFrame::CodeOf(outcome);
  result.message = outcome.message();
  result.output_bytes = output_bytes;
  result.elapsed_us = elapsed_us;
  if (timeline != nullptr) {
    result.ingest_us = timeline->ingest_us;
    result.queue_us = timeline->queue_us;
    result.sort_us = timeline->sort_us;
    result.merge_us = timeline->merge_us;
    result.stream_us = timeline->stream_us;
  }
  return WriteFrame(&conn_, FrameType::kResult, result.Encode());
}

void NetServer::Connection::CleanupStream(StreamState* st) {
  if (st->stream != nullptr) {
    // Belt and braces: if the job was reaped without ever opening its
    // source, a producer-side close here frees the buffered chunks. A
    // live pipeline was already handled (CloseWrite at DONE or Fail on
    // the error paths) — this is a no-op then.
    st->stream->CloseWrite();
    st->stream.reset();
  }
  if (!st->out_path.empty()) (void)server_->env_->DeleteFile(st->out_path);
  if (!st->charge_consumed && st->charged > 0) {
    server_->quotas_.Refund(st->tenant, st->charged);
    st->charged = 0;
  }
}

NetServer::NetServer(Env* env, const NetServerOptions& options)
    : env_(env),
      options_(options),
      service_(env, options.service),
      quotas_(options.quota) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("server already started");
  }
  ALPHASORT_RETURN_IF_ERROR(env_->CreateDir(options_.data_root));
  ALPHASORT_RETURN_IF_ERROR(
      listener_.Listen(options_.host, options_.port,
                       std::max(16, options_.max_conns)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ALPHASORT_LOG(kInfo, "svc.net.start")
      .Str("host", options_.host)
      .I64("port", port())
      .I64("max_conns", options_.max_conns);
  return Status::OK();
}

void NetServer::AcceptLoop() {
  for (;;) {
    Result<TcpConn> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed: shutting down

    std::unique_lock<std::mutex> lock(mu_);
    ReapDoneConnsLocked();
    if (stopping_) return;
    if (stats_.conns_active >= options_.max_conns) {
      // Connection-level backpressure: a full house answers with the
      // same Unavailable the admission queue uses, then hangs up.
      ++stats_.conns_rejected;
      ConnsRejected()->Add();
      lock.unlock();
      TcpConn conn = std::move(accepted).value();
      ResultFrame result;
      result.code = ResultFrame::CodeOf(
          Status::Unavailable("server at connection capacity"));
      result.message = "server at connection capacity; back off and retry";
      (void)WriteFrame(&conn, FrameType::kResult, result.Encode());
      ALPHASORT_LOG(kWarn, "svc.conn.reject")
          .Str("reason", "conn_capacity");
      continue;
    }
    const uint64_t id = next_conn_id_++;
    ++stats_.conns_accepted;
    ++stats_.conns_active;
    ConnsAccepted()->Add();
    ConnsActive()->Set(stats_.conns_active);
    auto conn = std::make_unique<Connection>(this, id,
                                             std::move(accepted).value());
    Connection* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    lock.unlock();
    raw->Start();
  }
}

void NetServer::ReapDoneConnsLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->done()) {
      it->second->Join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock every connection thread, then join them all.
  std::map<uint64_t, std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : conns_) conn->Shutdown();
    conns.swap(conns_);
  }
  for (auto& [id, conn] : conns) conn->Join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  ALPHASORT_LOG(kInfo, "svc.net.stop")
      .U64("conns", stats_.conns_accepted)
      .U64("jobs", stats_.jobs_completed);
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void NetServer::NoteConnClosed() {
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.conns_active;
  ConnsActive()->Set(stats_.conns_active);
}

void NetServer::NoteJobInflight(int delta) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.jobs_inflight += delta;
  JobsInflight()->Set(stats_.jobs_inflight);
}

void NetServer::NoteJobSubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.jobs_submitted;
  JobsSubmitted()->Add();
}

void NetServer::NoteJobResult(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++stats_.jobs_completed;
    JobsCompleted()->Add();
  } else {
    ++stats_.jobs_failed;
    JobsFailed()->Add();
  }
}

void NetServer::NoteQuotaRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.quota_rejected;
  QuotaRejected()->Add();
}

void NetServer::NoteProtocolError() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.protocol_errors;
  ProtocolErrors()->Add();
}

void NetServer::NoteBytesRx(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_rx += n;
  BytesRx()->Add(n);
}

void NetServer::NoteBytesTx(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_tx += n;
  BytesTx()->Add(n);
}

}  // namespace net
}  // namespace alphasort
