#ifndef ALPHASORT_NET_FRAME_H_
#define ALPHASORT_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace alphasort {
namespace net {

// The sort service's wire protocol (docs/net.md).
//
// Everything on the wire is a *frame*: a length-prefixed, type-tagged,
// CRC-guarded byte envelope. Framing is deliberately dumb — fixed
// little-endian integers, no compression, no variable-width encodings —
// so a truncated, reordered, or corrupted stream is detected at the
// envelope layer and surfaces as a clean Status::Corruption or
// Status::InvalidArgument instead of a confused state machine.
//
// Wire layout of one frame:
//
//   [u32 payload_len][u8 type][payload_len bytes][u32 crc32c]
//
// where the CRC-32C covers the type byte followed by the payload, so a
// bit flip in either is caught. payload_len is bounded by
// kMaxFramePayload; a larger length is rejected *before* any buffering
// (a malicious or garbage length cannot make the peer allocate).
//
// A conversation (client speaks first):
//
//   C: HELLO{version, tenant, now_us}  S: HELLO{version, conn_id, now_us}
//   C: SUBMIT{budget, record fmt, trace_id}
//   C: DATA{record bytes}...           (STATUS/CANCEL may interleave)
//   C: DONE{total_bytes, crc}
//                                      S: DATA{sorted bytes}...
//                                      S: DONE{total_bytes, crc}
//                                      S: RESULT{job, status, bytes, crc,
//                                                stage micros}
//   ... the connection is back to idle; SUBMIT may repeat.
//
// RESULT is always the terminal frame of a job (since v2): on success it
// follows the sorted DATA...DONE stream, so its elapsed_us and per-stage
// breakdown cover the stream-back; on failure or rejection it stands
// alone and nothing follows. STATUS works at any point after HELLO:
// job_id=0 asks for server-level stats, otherwise for that job's
// state/progress. CANCEL aborts the connection's in-flight job. Errors
// end with a RESULT carrying the non-OK code; the server closes after
// protocol errors.

// Bump when the frame grammar or any payload layout changes. A HELLO
// carrying a different version is answered with InvalidArgument and the
// connection is closed — no silent downgrade.
//
// v2: HELLO gained now_us (clock sync), SUBMIT gained trace_id,
// STATUS-reply gained quota_remaining, RESULT gained the per-stage
// breakdown and moved behind the sorted stream (docs/net.md appendix).
inline constexpr uint32_t kProtocolVersion = 2;

// Largest payload a frame may carry. Data is chunked under this by the
// senders; the bound is what lets a receiver reject a garbage length
// without allocating.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;

// Bytes of envelope around a payload: len + type + crc.
inline constexpr size_t kFrameOverhead = 4 + 1 + 4;

enum class FrameType : uint8_t {
  kHello = 1,
  kSubmit = 2,
  kData = 3,
  kDone = 4,
  kStatus = 5,
  kCancel = 6,
  kResult = 7,
};

// True for the types the grammar defines (decoder rejects the rest).
bool FrameTypeValid(uint8_t type);
const char* FrameTypeName(FrameType type);

// One decoded frame: the type tag and the raw payload bytes. Typed
// payload structs below parse from / serialize to `payload`.
struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

// Serializes one frame into its wire bytes (envelope + CRC).
std::string EncodeFrame(FrameType type, const std::string& payload);

// Incremental frame parser: feed arbitrary byte slices in arrival
// order, pull complete frames out. Safe against truncation (Next says
// "need more"), oversized lengths (InvalidArgument before buffering the
// body), unknown types (InvalidArgument), and payload corruption
// (Corruption on CRC mismatch). Once an error is returned the decoder
// is poisoned: every later Next returns the same error, because a
// byte stream with a broken envelope has no trustworthy resync point.
class FrameDecoder {
 public:
  void Append(const char* data, size_t n);
  void Append(const std::string& bytes) { Append(bytes.data(), bytes.size()); }

  // On success sets *got to whether a complete frame was produced in
  // *out (false = need more bytes). On failure returns the decode error
  // (and keeps returning it).
  Status Next(Frame* out, bool* got);

  // Bytes buffered but not yet consumed by complete frames. A nonzero
  // remainder at connection EOF is a truncated frame.
  size_t buffered() const { return buf_.size() - pos_; }

  // Total bytes currently held, consumed prefix included. Exposed so
  // tests can assert the consumed prefix gets compacted away instead of
  // growing with the total bytes ever received on the connection.
  size_t internal_buffer_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status error_;    // sticky decode error
};

// --- Typed payloads -------------------------------------------------
// Each struct round-trips through Encode()/Decode(). Decode returns
// InvalidArgument on truncation or out-of-range fields; trailing bytes
// after the last field are rejected too (catches layout skew between
// versions that the HELLO check should have prevented).

// Client -> server: first frame on a connection. Server replies with
// its own Hello (tenant empty, conn_id set).
struct HelloFrame {
  uint32_t version = kProtocolVersion;
  std::string tenant;    // quota identity; empty = "default" tenant
  uint64_t conn_id = 0;  // server->client only
  // Sender's raw steady-clock reading (obs::TraceRawNowUs) at send time.
  // Each side records the peer's value as a trace clock-sync event;
  // examples/trace_merge uses the exchanged pair to map client and
  // server traces onto one timeline.
  uint64_t now_us = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

// Client -> server: opens one sort job on this connection. The record
// stream follows as DATA frames, ended by DONE.
struct SubmitFrame {
  uint64_t memory_budget = 0;   // requested job budget (service may clamp)
  uint32_t record_size = 100;   // RecordFormat::record_size
  uint32_t key_size = 10;       // RecordFormat::key_size
  uint64_t expected_bytes = 0;  // advisory; 0 = unknown
  // Client-minted distributed trace id (0 = none). The server carries it
  // through the job's whole life — spans, log events, progress gauges —
  // so both sides' observability joins on one id. Client-generated ids
  // stay within 48 bits (SortClient masks) so JSON tooling that parses
  // numbers as doubles round-trips them exactly.
  uint64_t trace_id = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

// Both directions: closes a DATA stream. total_bytes and crc32c cover
// every DATA payload byte since the stream opened, in order.
struct DoneFrame {
  uint64_t total_bytes = 0;
  uint32_t crc32c = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

// Client -> server: job_id = 0 asks for server-level stats, anything
// else for that specific job.
struct StatusRequestFrame {
  uint64_t job_id = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

// Server -> client STATUS reply. job_* fields are zero for job_id=0
// requests; the server-level fields are always filled.
struct StatusReplyFrame {
  uint64_t job_id = 0;
  uint8_t job_state = 0;      // 0 none, 1 queued, 2 running, 3 done
  uint32_t job_permille = 0;  // progress in [0, 1000]
  uint64_t jobs_queued = 0;   // service admission queue
  uint64_t jobs_running = 0;
  uint64_t admitted_bytes = 0;
  uint64_t conns_active = 0;
  uint64_t net_jobs_inflight = 0;  // ingesting/running/streaming over net
  // Quota tokens the requesting tenant has left right now (refill
  // applied), so clients can back off *before* earning an Unavailable.
  // UINT64_MAX = quotas disabled, spend freely.
  uint64_t quota_remaining = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

// Client -> server: abort this connection's in-flight job (job_id is
// advisory; a connection has at most one live job).
struct CancelFrame {
  uint64_t job_id = 0;

  std::string Encode() const;
  Status Decode(const std::string& payload);
};

// Server -> client: terminal outcome of one job (or of a protocol-level
// rejection, job_id = 0). Since v2 the RESULT *follows* the sorted
// DATA...DONE stream on success, so elapsed_us and the stage breakdown
// cover the stream-back; on error it stands alone and nothing follows
// (the connection is back to idle, or closed for envelope-level
// errors).
struct ResultFrame {
  uint64_t job_id = 0;
  uint32_t code = 0;  // Status::Code cast to its numeric value
  std::string message;
  uint64_t output_bytes = 0;
  uint32_t output_crc32c = 0;
  uint64_t elapsed_us = 0;  // submit received -> stream-back done, server clock
  // Per-stage latency attribution (obs::JobTimeline): where elapsed_us
  // went. Since the spool-free ingest path, ingest overlaps the sort's
  // read pass, so the stage sum can exceed elapsed_us — the overlap IS
  // the win. (Wire layout unchanged: this is the field once named
  // spool_us.) All zero on failure paths.
  uint64_t ingest_us = 0;  // receiving the upload (overlaps sort_us)
  uint64_t queue_us = 0;   // admission + queue wait beyond pipeline work
  uint64_t sort_us = 0;    // pipeline startup + read/QuickSort + last run
  uint64_t merge_us = 0;   // pipeline merge + close
  uint64_t stream_us = 0;  // streaming the sorted output back

  std::string Encode() const;
  Status Decode(const std::string& payload);

  Status ToStatus() const;  // reconstructs the Status
  static uint32_t CodeOf(const Status& s);
};

}  // namespace net
}  // namespace alphasort

#endif  // ALPHASORT_NET_FRAME_H_
