#include "obs/log.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/table.h"
#include "obs/json.h"

namespace alphasort {
namespace obs {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

uint64_t LogWallTimeUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

namespace {

void CopyTruncated(const char* src, char* dst, size_t cap) {
  size_t i = 0;
  for (; src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

}  // namespace

void LogEvent::AddString(const char* key, const char* value) {
  if (num_fields >= kMaxFields) return;
  Field& f = fields[num_fields++];
  CopyTruncated(key, f.key, kKeyCap);
  CopyTruncated(value, f.value, kValueCap);
  f.is_string = true;
}

void LogEvent::AddNumber(const char* key, const char* formatted) {
  if (num_fields >= kMaxFields) return;
  Field& f = fields[num_fields++];
  CopyTruncated(key, f.key, kKeyCap);
  CopyTruncated(formatted, f.value, kValueCap);
  f.is_string = false;
}

std::string FormatLogText(const LogEvent& ev) {
  std::string out = StrFormat(
      "ts=%llu level=%s event=%s tid=%d",
      static_cast<unsigned long long>(ev.ts_us), LogLevelName(ev.level),
      ev.event == nullptr ? "?" : ev.event, ev.tid);
  if (ev.job_id != 0) {
    out += StrFormat(" job=%llu",
                     static_cast<unsigned long long>(ev.job_id));
  }
  if (ev.trace_id != 0) {
    out += StrFormat(" trace=%llu",
                     static_cast<unsigned long long>(ev.trace_id));
  }
  for (int i = 0; i < ev.num_fields; ++i) {
    out += StrFormat(" %s=%s", ev.fields[i].key, ev.fields[i].value);
  }
  if (ev.suppressed != 0) {
    out += StrFormat(" suppressed=%llu",
                     static_cast<unsigned long long>(ev.suppressed));
  }
  return out;
}

std::string FormatLogJson(const LogEvent& ev) {
  std::string out = StrFormat(
      "{\"ts_us\":%llu,\"level\":\"%s\",\"event\":\"",
      static_cast<unsigned long long>(ev.ts_us), LogLevelName(ev.level));
  AppendJsonEscaped(ev.event == nullptr ? "?" : ev.event, &out);
  out += StrFormat("\",\"tid\":%d", ev.tid);
  if (ev.job_id != 0) {
    out += StrFormat(",\"job\":%llu",
                     static_cast<unsigned long long>(ev.job_id));
  }
  if (ev.trace_id != 0) {
    out += StrFormat(",\"trace\":%llu",
                     static_cast<unsigned long long>(ev.trace_id));
  }
  if (ev.suppressed != 0) {
    out += StrFormat(",\"suppressed\":%llu",
                     static_cast<unsigned long long>(ev.suppressed));
  }
  if (ev.num_fields > 0) {
    out += ",\"fields\":{";
    for (int i = 0; i < ev.num_fields; ++i) {
      if (i != 0) out += ",";
      out += "\"";
      AppendJsonEscaped(ev.fields[i].key, &out);
      out += "\":";
      if (ev.fields[i].is_string) {
        out += "\"";
        AppendJsonEscaped(ev.fields[i].value, &out);
        out += "\"";
      } else {
        // Numbers were formatted by the builder; an empty capture (never
        // produced, but keep the output parseable) becomes 0.
        out += ev.fields[i].value[0] == '\0' ? "0" : ev.fields[i].value;
      }
    }
    out += "}";
  }
  out += "}";
  return out;
}

void StderrLogSink::Write(const LogEvent& ev) {
  const std::string line = FormatLogText(ev);
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "%s\n", line.c_str());
}

JsonlFileLogSink::JsonlFileLogSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

JsonlFileLogSink::~JsonlFileLogSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void JsonlFileLogSink::Write(const LogEvent& ev) {
  const std::string line = FormatLogJson(ev);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fprintf(file_, "%s\n", line.c_str());
  // Per-line flush: a wedged or crashed process leaves complete records,
  // which is the whole point of an operational log.
  std::fflush(file_);
}

void MemoryLogSink::Write(const LogEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(ev);
}

std::vector<LogEvent> MemoryLogSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t MemoryLogSink::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Logger::Logger() : ring_(4096) {}

Logger* Logger::Global() {
  static Logger* logger = new Logger();
  return logger;
}

void Logger::AddSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sinks_.push_back(sink);
}

void Logger::RemoveSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (*it == sink) {
      sinks_.erase(it);
      return;
    }
  }
}

void Logger::Dispatch(const LogEvent& ev) {
  // Ring first, under its own mutex: once the ring wraps, a writer and a
  // Tail reader can land on the same slot, and a LogEvent copy is not
  // atomic — unsynchronized they'd produce a torn event. The ring mutex
  // is never held across sink writes, so the last N events stay
  // recoverable even when no sink is installed or a sink is wedged.
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_[next_ % ring_.size()] = ev;
    ++next_;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(sink_mu_);
  for (LogSink* sink : sinks_) sink->Write(ev);
}

std::vector<LogEvent> Logger::Tail(size_t max) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  const uint64_t total = next_;
  const uint64_t kept = std::min<uint64_t>(total, ring_.size());
  const uint64_t want = std::min<uint64_t>(kept, max);
  std::vector<LogEvent> out;
  out.reserve(static_cast<size_t>(want));
  for (uint64_t i = total - want; i < total; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

bool LogRateLimiter::Admit(uint64_t now_us, uint64_t* suppressed_out) {
  uint64_t window = window_start_us_.load(std::memory_order_relaxed);
  if (now_us - window >= window_us_) {
    // One thread rotates the window; losers just count into whichever
    // window won (the cap is approximate by design — it bounds sink
    // traffic, it is not an SLA).
    if (window_start_us_.compare_exchange_strong(
            window, now_us, std::memory_order_relaxed)) {
      in_window_.store(0, std::memory_order_relaxed);
    }
  }
  const uint32_t n = in_window_.fetch_add(1, std::memory_order_relaxed);
  if (n < max_per_window_) {
    *suppressed_out =
        pending_suppressed_.exchange(0, std::memory_order_relaxed);
    return true;
  }
  pending_suppressed_.fetch_add(1, std::memory_order_relaxed);
  total_suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

LogMessage::LogMessage(LogLevel level, const char* event,
                       uint64_t suppressed) {
  ev_.level = level;
  ev_.event = event;
  ev_.ts_us = LogWallTimeUs();
  ev_.tid = CurrentThreadId();
  ev_.job_id = CurrentJobId();
  ev_.trace_id = CurrentTraceId();
  ev_.suppressed = suppressed;
}

LogMessage::~LogMessage() { Logger::Global()->Dispatch(ev_); }

LogMessage& LogMessage::Str(const char* key, const char* value) {
  ev_.AddString(key, value);
  return *this;
}

LogMessage& LogMessage::Str(const char* key, const std::string& value) {
  ev_.AddString(key, value.c_str());
  return *this;
}

LogMessage& LogMessage::U64(const char* key, uint64_t value) {
  ev_.AddNumber(
      key,
      StrFormat("%llu", static_cast<unsigned long long>(value)).c_str());
  return *this;
}

LogMessage& LogMessage::I64(const char* key, int64_t value) {
  ev_.AddNumber(
      key, StrFormat("%lld", static_cast<long long>(value)).c_str());
  return *this;
}

LogMessage& LogMessage::F64(const char* key, double value) {
  ev_.AddNumber(key, JsonNumber(value).c_str());
  return *this;
}

LogMessage& LogMessage::Bool(const char* key, bool value) {
  ev_.AddNumber(key, value ? "true" : "false");
  return *this;
}

Status ValidateLogJsonl(const std::string& content) {
  size_t line_no = 0;
  size_t pos = 0;
  size_t parsed = 0;
  while (pos <= content.size()) {
    const size_t eol = content.find('\n', pos);
    const std::string line =
        content.substr(pos, eol == std::string::npos ? std::string::npos
                                                     : eol - pos);
    pos = eol == std::string::npos ? content.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    JsonValue root;
    if (Status s = ParseJson(line, &root); !s.ok()) {
      return Status::Corruption(StrFormat(
          "log line %zu does not parse as JSON: %s", line_no,
          s.message().c_str()));
    }
    if (!root.IsObject()) {
      return Status::Corruption(
          StrFormat("log line %zu is not a JSON object", line_no));
    }
    const JsonValue* ts = root.Find("ts_us");
    if (ts == nullptr || !ts->IsNumber()) {
      return Status::Corruption(
          StrFormat("log line %zu missing numeric \"ts_us\"", line_no));
    }
    const JsonValue* level = root.Find("level");
    if (level == nullptr || !level->IsString()) {
      return Status::Corruption(
          StrFormat("log line %zu missing string \"level\"", line_no));
    }
    const std::string& lv = level->string_value;
    if (lv != "debug" && lv != "info" && lv != "warn" && lv != "error") {
      return Status::Corruption(StrFormat(
          "log line %zu has unknown level \"%s\"", line_no, lv.c_str()));
    }
    const JsonValue* event = root.Find("event");
    if (event == nullptr || !event->IsString() ||
        event->string_value.empty()) {
      return Status::Corruption(
          StrFormat("log line %zu missing string \"event\"", line_no));
    }
    ++parsed;
  }
  if (parsed == 0) {
    return Status::Corruption("log capture contains no events");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace alphasort
