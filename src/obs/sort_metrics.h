#ifndef ALPHASORT_OBS_SORT_METRICS_H_
#define ALPHASORT_OBS_SORT_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "sort/quicksort.h"

// SortMetrics lives with the observability layer (obs/report.h folds it
// into the versioned SortReport JSON) but stays in the top-level
// alphasort namespace: it is the result struct of AlphaSort::Run and
// predates the move. core/sort_metrics.h forwards here.

namespace alphasort {

// Latency/volume summary of one direction of IO (reads or writes),
// filled from the obs::MetricsEnv histograms when the pipeline runs with
// SortOptions::collect_io_metrics. Percentiles are microseconds.
struct IoLatencyStats {
  uint64_t ops = 0;
  uint64_t bytes = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;

  bool Valid() const { return ops > 0; }
};

// Sort throughput derived from a SortMetrics (see
// SortMetrics::Throughput); zero when the sort recorded no time.
struct SortThroughput {
  double mb_per_s = 0;       // input megabytes (1e6 bytes) per second
  double records_per_s = 0;
};

// Wall-clock phase breakdown of one sort, mirroring the paper's §7
// walkthrough (open/read/QuickSort overlap, last run, merge+gather+write,
// close) — the data behind Figure 7's "where the time goes".
struct SortMetrics {
  double startup_s = 0;      // opens, output creation, planning
  double read_phase_s = 0;   // striped read overlapped with QuickSorts
  double last_run_s = 0;     // final QuickSort after EOF
  double merge_phase_s = 0;  // merge + gather + striped write
  double close_s = 0;        // closes and cleanup
  double total_s = 0;

  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t num_records = 0;
  uint64_t num_runs = 0;
  // Key ranges the in-memory merge was split into (1 = the classic single
  // global tournament; >1 = the §5 partitioned parallel merge, see
  // SortOptions::merge_parallelism and docs/perf.md).
  uint64_t merge_ranges = 1;
  int passes = 1;
  uint64_t scratch_bytes_written = 0;  // two-pass only

  SortStats quicksort_stats;
  SortStats merge_stats;

  // Fault-tolerance telemetry (docs/fault_tolerance.md). Retry counts
  // come from the RetryEnv the pipeline wraps around the caller's Env:
  // io_retries counts re-attempts after transient IOErrors, io_retries
  // recovered counts operations that then succeeded, and a non-zero
  // io_retries_exhausted means some operation failed every attempt (the
  // sort reported that error). runs_checksum_verified counts spilled runs
  // whose CRC-32C matched on merge-read; output_crc32c is the CRC-32C of
  // the sorted output byte stream (both passes compute it).
  uint64_t io_retries = 0;
  uint64_t io_retries_recovered = 0;
  uint64_t io_retries_exhausted = 0;
  uint64_t runs_checksum_verified = 0;
  uint32_t output_crc32c = 0;

  // Per-direction IO latency percentiles: reads cover the read phase's
  // striped input (plus scratch re-reads on two-pass sorts), writes cover
  // the merge phase's output (plus scratch spills). Empty when IO metrics
  // collection is disabled.
  IoLatencyStats read_io;
  IoLatencyStats write_io;

  // This run's traffic through the process-global metrics registry
  // (async IO scheduler waits, stripe fanout, chore counts, retries):
  // the delta of a Snapshot() taken before and after the sort, so
  // back-to-back runs in one process each report only their own events
  // (SortOptions::collect_registry_delta).
  obs::RegistrySnapshot registry_delta;

  // Hardware counters (cycles, instructions, cache refs/misses, branch
  // misses) per pipeline region — "quicksort", "gather", "merge", the
  // phase scopes, and "total" — sampled via perf_event_open when
  // SortOptions::collect_perf_counters is set. Regions overlap by
  // design (phases contain their chores), like the paper's Figure 7
  // overlap accounting. When the syscall is denied (containers,
  // perf_event_paranoid) every region reports available=false with the
  // reason instead of failing the sort.
  obs::PerfReport perf;

  // Sum of the five phase laps. `total_s` is measured independently by
  // the pipeline; the two agree within timer noise, and ToString() flags
  // a total that drifts from its parts (a phase not being timed).
  double PhaseSum() const {
    return startup_s + read_phase_s + last_run_s + merge_phase_s + close_s;
  }

  // MB/s and records/s over the total wall clock (falling back to the
  // phase sum when total_s was never set). The single definition used by
  // ToString() and the benches.
  SortThroughput Throughput() const;

  std::string ToString() const;
};

// Monotonic stopwatch for phase timing.
class PhaseTimer {
 public:
  PhaseTimer() : start_(Clock::now()) {}

  // Seconds since construction or the last Lap().
  double Lap() {
    const auto now = Clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace alphasort

#endif  // ALPHASORT_OBS_SORT_METRICS_H_
