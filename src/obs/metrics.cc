#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "common/table.h"

namespace alphasort {
namespace obs {

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; p=0 means the first sample.
  const double rank = std::max(1.0, p / 100.0 * double(count));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cumulative + buckets[b];
    if (double(next) >= rank) {
      // Single-value buckets ({0} and {1}) need no interpolation.
      if (Histogram::UpperBound(b) - Histogram::LowerBound(b) <= 1) {
        return double(Histogram::LowerBound(b));
      }
      // Interpolate by the sample's position among this bucket's samples.
      const double lo = double(Histogram::LowerBound(b));
      const double hi =
          b + 1 == kNumBuckets
              ? double(max)
              : std::min<double>(double(Histogram::UpperBound(b)),
                                 double(max));
      const double frac = (rank - double(cumulative)) / double(buckets[b]);
      return std::min(lo + (hi - lo) * frac, double(max));
    }
    cumulative = next;
  }
  return double(max);
}

std::string HistogramSnapshot::Summary(const char* unit) const {
  if (count == 0) return "n=0";
  return StrFormat("n=%llu mean=%.1f%s p50=%.0f%s p95=%.0f%s p99=%.0f%s "
                   "max=%llu%s",
                   static_cast<unsigned long long>(count), Mean(), unit,
                   Percentile(50), unit, Percentile(95), unit,
                   Percentile(99), unit,
                   static_cast<unsigned long long>(max), unit);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
}

size_t Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  // bit_width(1) == 1 -> bucket 1; bit_width(2..3) == 2 -> bucket 2; the
  // top bucket absorbs values with bit_width > 63.
  return std::min<size_t>(std::bit_width(value), kNumBuckets - 1);
}

uint64_t Histogram::LowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return uint64_t{1} << (bucket - 1);
}

uint64_t Histogram::UpperBound(size_t bucket) {
  if (bucket == 0) return 1;
  if (bucket >= kNumBuckets - 1) return UINT64_MAX;
  return uint64_t{1} << bucket;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

RegistrySnapshot RegistrySnapshot::DeltaSince(
    const RegistrySnapshot& earlier) const {
  RegistrySnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    const uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    // Counters are monotonic while a run is in flight; the clamp only
    // matters if someone ResetAll()s between the two snapshots.
    delta.counters[name] = value >= base ? value - base : value;
  }
  for (const auto& [name, snap] : histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      delta.histograms[name] = snap;
      continue;
    }
    const HistogramSnapshot& base = it->second;
    HistogramSnapshot d;
    d.count = snap.count >= base.count ? snap.count - base.count : snap.count;
    d.sum = snap.sum >= base.sum ? snap.sum - base.sum : snap.sum;
    d.max = snap.max;  // interval max is unknowable; keep the upper bound
    for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
      d.buckets[b] = snap.buckets[b] >= base.buckets[b]
                         ? snap.buckets[b] - base.buckets[b]
                         : snap.buckets[b];
    }
    delta.histograms[name] = d;
  }
  delta.gauges = gauges;  // levels carry over, not differences
  return delta;
}

std::string RegistrySnapshot::ToString() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    out += StrFormat("%-32s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, snap] : histograms) {
    if (snap.count == 0) continue;
    out += StrFormat("%-32s %s\n", name.c_str(), snap.Summary("").c_str());
  }
  for (const auto& [name, value] : gauges) {
    if (value == 0) continue;
    out += StrFormat("%-32s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  return out;
}

bool RegistrySnapshot::Empty() const {
  for (const auto& [name, value] : counters) {
    if (value != 0) return false;
  }
  for (const auto& [name, snap] : histograms) {
    if (snap.count != 0) return false;
  }
  for (const auto& [name, value] : gauges) {
    if (value != 0) return false;
  }
  return true;
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    if (counter->Value() == 0) continue;
    out += StrFormat("%-32s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(counter->Value()));
  }
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    if (snap.count == 0) continue;
    out += StrFormat("%-32s %s\n", name.c_str(),
                     snap.Summary("").c_str());
  }
  for (const auto& [name, gauge] : gauges_) {
    if (gauge->Value() == 0) continue;
    out += StrFormat("%-32s %lld\n", name.c_str(),
                     static_cast<long long>(gauge->Value()));
  }
  return out;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
}

}  // namespace obs
}  // namespace alphasort
