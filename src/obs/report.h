#ifndef ALPHASORT_OBS_REPORT_H_
#define ALPHASORT_OBS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/sort_metrics.h"

namespace alphasort {
namespace obs {

// Structured sort reports and benchmark trajectories.
//
// The paper's evidence is a handful of tables: Figure 7's "where do the
// 9.11 seconds go" and Figure 4's cache-misses-per-compare. A SortReport
// is the machine-readable version of that evidence for one run — the
// phase breakdown, throughput, IO latency percentiles, fault-tolerance
// telemetry, the run's metrics-registry delta, and hardware cache
// counters — under one versioned JSON schema, plus a Figure-7-style text
// rendering. A BenchReport is the same discipline applied across runs:
// a named suite of configurations with numeric metrics, written as
// BENCH_<name>.json at the repo root so successive PRs accumulate a
// comparable perf trajectory (scripts/bench.sh, scripts/bench_compare.py).
//
// Schema stability contract: consumers match on `kind` and
// `schema_version`. Adding keys is backward compatible; removing or
// renaming any key the validators below require bumps kSchemaVersion.
// `schema_minor` records additive revisions within a major version
// (minor 1: registry.gauges is always present).

// One sort's full report.
struct SortReport {
  static constexpr int kSchemaVersion = 1;
  static constexpr int kSchemaVersionMinor = 1;
  static constexpr const char* kKind = "alphasort.sort_report";

  std::string tool;    // producing binary, e.g. "asort"
  std::string config;  // free-form flag/config summary
  SortMetrics metrics;

  // The versioned JSON document (docs/observability.md lists the
  // schema).
  std::string ToJson() const;

  // Human rendering: the Figure-7 phase table, IO percentiles, and the
  // per-region hardware-counter table.
  std::string ToText() const;
};

// Checks that `json` parses and carries the v1 sort-report schema:
// kind/schema_version, the phase breakdown (whose parts must sum to the
// total within overlap/timer tolerance), throughput, IO percentiles, and
// a hardware_counters section that is either populated or explicitly
// marked unavailable.
Status ValidateSortReportJson(const std::string& json);

// One benchmark configuration's numeric results.
struct BenchEntry {
  std::string suite;   // e.g. "quicksort_vs_replacement"
  std::string config;  // e.g. "width=4"
  std::vector<std::pair<std::string, double>> values;  // metric -> value
};

// A named benchmark run: the unit of the BENCH_*.json perf trajectory.
struct BenchReport {
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kKind = "alphasort.bench_report";

  std::string name;  // "smoke", "full", ... -> BENCH_<name>.json
  std::vector<BenchEntry> entries;

  std::string ToJson() const;
  std::string ToText() const;
};

// Checks the v1 bench-report schema: kind/schema_version/name and a
// non-empty suites array whose entries each carry suite, config, and a
// non-empty numeric metrics object.
Status ValidateBenchReportJson(const std::string& json);

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_REPORT_H_
