#include "obs/metrics_env.h"

#include <chrono>

#include "common/table.h"
#include "obs/trace.h"

namespace alphasort {
namespace obs {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

std::string ModeLine(const char* name, const IoModeSnapshot& m) {
  std::string out;
  if (m.reads > 0) {
    out += StrFormat("io[%s] reads: %llu ops, %.1f MB, %s\n", name,
                     static_cast<unsigned long long>(m.reads),
                     m.read_bytes / 1e6,
                     m.read_latency_us.Summary("us").c_str());
  }
  if (m.writes > 0) {
    out += StrFormat("io[%s] writes: %llu ops, %.1f MB, %s\n", name,
                     static_cast<unsigned long long>(m.writes),
                     m.write_bytes / 1e6,
                     m.write_latency_us.Summary("us").c_str());
  }
  return out;
}

}  // namespace

IoModeSnapshot IoSnapshot::Total() const {
  IoModeSnapshot total = read_only;
  for (const IoModeSnapshot* m : {&read_write, &create_read_write}) {
    total.opens += m->opens;
    total.reads += m->reads;
    total.writes += m->writes;
    total.read_bytes += m->read_bytes;
    total.write_bytes += m->write_bytes;
    total.read_latency_us.Merge(m->read_latency_us);
    total.write_latency_us.Merge(m->write_latency_us);
  }
  return total;
}

std::string IoSnapshot::ToString() const {
  return ModeLine("read-only", read_only) +
         ModeLine("read-write", read_write) +
         ModeLine("create", create_read_write);
}

// Live counters behind one open mode. Updates are lock-free; files opened
// in the same mode share one instance.
struct MetricsEnv::ModeStats {
  Counter opens;
  Counter reads;
  Counter writes;
  Counter read_bytes;
  Counter write_bytes;
  Histogram read_latency_us;
  Histogram write_latency_us;

  IoModeSnapshot Snapshot() const {
    IoModeSnapshot snap;
    snap.opens = opens.Value();
    snap.reads = reads.Value();
    snap.writes = writes.Value();
    snap.read_bytes = read_bytes.Value();
    snap.write_bytes = write_bytes.Value();
    snap.read_latency_us = read_latency_us.Snapshot();
    snap.write_latency_us = write_latency_us.Snapshot();
    return snap;
  }
};

namespace {

// Pass-through File that times reads and writes into the owning mode's
// stats. The stats object is owned by the MetricsEnv, which must outlive
// the file (same lifetime rule as the base Env itself).
class MetricsFile : public File {
 public:
  MetricsFile(std::unique_ptr<File> base, MetricsEnv::ModeStats* stats)
      : base_(std::move(base)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override;
  Status Write(uint64_t offset, const char* data, size_t n) override;

  Result<uint64_t> Size() override { return base_->Size(); }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<File> base_;
  MetricsEnv::ModeStats* const stats_;
};

Status MetricsFile::Read(uint64_t offset, size_t n, char* scratch,
                         size_t* bytes_read) {
  TraceSpan span("io.read", "io");
  const auto start = std::chrono::steady_clock::now();
  Status s = base_->Read(offset, n, scratch, bytes_read);
  stats_->read_latency_us.Record(ElapsedUs(start));
  stats_->reads.Add();
  if (s.ok()) stats_->read_bytes.Add(*bytes_read);
  return s;
}

Status MetricsFile::Write(uint64_t offset, const char* data, size_t n) {
  TraceSpan span("io.write", "io");
  const auto start = std::chrono::steady_clock::now();
  Status s = base_->Write(offset, data, n);
  stats_->write_latency_us.Record(ElapsedUs(start));
  stats_->writes.Add();
  if (s.ok()) stats_->write_bytes.Add(n);
  return s;
}

}  // namespace

MetricsEnv::MetricsEnv(Env* base)
    : base_(base), stats_(new ModeStats[3]) {}

MetricsEnv::~MetricsEnv() = default;

Result<std::unique_ptr<File>> MetricsEnv::OpenFile(const std::string& path,
                                                   OpenMode mode) {
  TraceSpan span("io.open", "io");
  Result<std::unique_ptr<File>> f = base_->OpenFile(path, mode);
  ALPHASORT_RETURN_IF_ERROR(f.status());
  ModeStats* stats = &stats_[static_cast<size_t>(mode)];
  stats->opens.Add();
  return {std::unique_ptr<File>(
      new MetricsFile(std::move(f).value(), stats))};
}

Status MetricsEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

bool MetricsEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> MetricsEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status MetricsEnv::ListFiles(const std::string& prefix,
                             std::vector<std::string>* out) {
  return base_->ListFiles(prefix, out);
}

Status MetricsEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status MetricsEnv::RemoveDir(const std::string& path) {
  return base_->RemoveDir(path);
}

IoSnapshot MetricsEnv::Snapshot() const {
  IoSnapshot snap;
  snap.read_only = stats_[size_t{0}].Snapshot();
  snap.read_write = stats_[size_t{1}].Snapshot();
  snap.create_read_write = stats_[size_t{2}].Snapshot();
  return snap;
}

std::string MetricsEnv::ToString() const { return Snapshot().ToString(); }

}  // namespace obs
}  // namespace alphasort
