#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/table.h"

namespace alphasort {
namespace obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(const std::string& text)
      : begin_(text.data()), p_(text.data()), end_(text.data() + text.size()) {}

  Status Parse(JsonValue* out) {
    ALPHASORT_RETURN_IF_ERROR(ParseValue(out, 0));
    SkipSpace();
    if (p_ != end_) return Fail("trailing characters after JSON value");
    return Status::OK();
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::Corruption(StrFormat(
        "JSON invalid at byte %zu: %s", static_cast<size_t>(p_ - begin_),
        why.c_str()));
  }

  void SkipSpace() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Status ConsumeWord(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ >= end_ || *p_ != *w) return Fail("malformed literal");
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (p_ >= end_ || *p_ != '"') return Fail("expected string");
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return Fail("unterminated escape");
        const char esc = *p_;
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            // Validate the four hex digits; keep the escape verbatim
            // (report fields are ASCII; decoding is not needed).
            out->push_back('\\');
            out->push_back('u');
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (p_ >= end_ ||
                  !isxdigit(static_cast<unsigned char>(*p_))) {
                return Fail("bad \\u escape");
              }
              out->push_back(*p_);
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
        ++p_;
      } else {
        out->push_back(*p_);
        ++p_;
      }
    }
    if (p_ >= end_) return Fail("unterminated string");
    ++p_;  // closing quote
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    SkipSpace();
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    const char* int_start = p_;
    while (p_ < end_ && isdigit(static_cast<unsigned char>(*p_))) ++p_;
    // JSON forbids leading zeros ("01"); a lone "0" is fine.
    if (p_ - int_start > 1 && *int_start == '0') {
      return Fail("number has a leading zero");
    }
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      while (p_ < end_ && isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      while (p_ < end_ && isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ == start || (p_ == start + 1 && *start == '-')) {
      return Fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = strtod(std::string(start, p_).c_str(), nullptr);
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (p_ >= end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{': {
        out->type = JsonValue::Type::kObject;
        ++p_;
        if (Consume('}')) return Status::OK();
        do {
          std::string key;
          ALPHASORT_RETURN_IF_ERROR(ParseString(&key));
          if (!Consume(':')) return Fail("expected ':'");
          JsonValue value;
          ALPHASORT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
          out->members.emplace_back(std::move(key), std::move(value));
        } while (Consume(','));
        if (!Consume('}')) return Fail("expected '}'");
        return Status::OK();
      }
      case '[': {
        out->type = JsonValue::Type::kArray;
        ++p_;
        if (Consume(']')) return Status::OK();
        do {
          JsonValue value;
          ALPHASORT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
          out->items.push_back(std::move(value));
        } while (Consume(','));
        if (!Consume(']')) return Fail("expected ']'");
        return Status::OK();
      }
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return ConsumeWord("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return ConsumeWord("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeWord("null");
      default:
        return ParseNumber(out);
    }
  }

  const char* const begin_;
  const char* p_;
  const char* const end_;
};

}  // namespace

Status ParseJson(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  return Parser(text).Parse(out);
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrFormat("\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // %.17g round-trips doubles but litters short values with noise;
  // %.12g is exact for every counter below 2^39 and sub-ppm above.
  std::string s = StrFormat("%.12g", v);
  return s;
}

}  // namespace obs
}  // namespace alphasort
