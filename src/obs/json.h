#ifndef ALPHASORT_OBS_JSON_H_
#define ALPHASORT_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace alphasort {
namespace obs {

// Minimal JSON document model for the observability tooling: report
// schema validation (obs/report.h), trace linting (examples/trace_lint),
// and the BENCH_*.json perf trajectory. Unlike the streaming
// ValidateChromeTraceJson checker, callers here need random access to
// fields after the parse, so this builds a DOM.
//
// Deliberately small, not a general-purpose library: numbers are parsed
// as doubles, \uXXXX escapes are validated but kept verbatim, and the
// nesting depth is capped (reports are three levels deep; a bomb is a
// corrupt file, not a use case).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, in
                                                           // file order

  bool IsNull() const { return type == Type::kNull; }
  bool IsBool() const { return type == Type::kBool; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }

  // Object member lookup; nullptr when absent or when this value is not
  // an object. Duplicate keys resolve to the first occurrence.
  const JsonValue* Find(const std::string& key) const;
};

// Parses `text` as exactly one JSON value (surrounding whitespace
// allowed). On error, returns Corruption with the byte offset.
Status ParseJson(const std::string& text, JsonValue* out);

// Appends `s` to `*out` with JSON string escaping applied (the
// surrounding quotes are the caller's).
void AppendJsonEscaped(const std::string& s, std::string* out);

// Formats a double as a JSON-legal number. JSON has no NaN/Infinity;
// non-finite values serialize as 0 rather than corrupting the document.
std::string JsonNumber(double v);

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_JSON_H_
