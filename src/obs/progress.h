#ifndef ALPHASORT_OBS_PROGRESS_H_
#define ALPHASORT_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace alphasort {
namespace obs {

class Gauge;

// Live per-job progress for the sort pipeline.
//
// The pipeline publishes its byte flow (read, sorted, spilled, merged)
// into a JobProgressTracker as it crosses each IO-buffer quantum; a
// snapshot turns that flow into phase / fraction / rate / ETA. The
// fraction follows the paper's overlap model (§7): QuickSort chores ride
// entirely under the read stream, so sorted bytes are tracked for
// display but contribute no work of their own — the job's work is the
// bytes it must move through storage:
//
//   one pass:  work_total = 2 x input  (read it, write it)
//   two pass:  work_total = 3 x input  (read, spill, merge-write; cascade
//              merge levels re-spill on top, so the fraction is clamped
//              below 1 until the job actually finishes)
//
// ETA extrapolates the observed work rate: remaining work / (work done
// per elapsed second). All updates are relaxed atomics — the pipeline
// touches the tracker once per buffer, never per record.

enum class SortPhase : int {
  kQueued = 0,
  kStartup = 1,
  kRead = 2,     // read + overlapped QuickSort (one-pass) or spill pass
  kLastRun = 3,  // the §7 non-overlapped tail sort
  kMerge = 4,    // merge + gather + write
  kClose = 5,
  kDone = 6,
  kFailed = 7,
};

const char* SortPhaseName(SortPhase phase);

// Point-in-time copy handed to callers (SortJob::Progress(), the
// exposition renderer, the flight recorder).
struct JobProgress {
  uint64_t job_id = 0;
  uint64_t trace_id = 0;  // distributed trace id, 0 = none
  SortPhase phase = SortPhase::kQueued;
  // False for jobs whose input size is not known up front (streamed
  // ingest): bytes_total/work_total are then running lower-bound
  // estimates scaled from bytes_read, and fraction/permille are clamped
  // below done until the real plan lands at end of input.
  bool total_known = true;
  uint64_t bytes_total = 0;  // input size (or the estimate, see above)
  uint64_t bytes_read = 0;
  uint64_t bytes_sorted = 0;
  uint64_t bytes_spilled = 0;
  uint64_t bytes_merged = 0;
  uint64_t work_done = 0;
  uint64_t work_total = 0;
  double fraction = 0;     // [0, 1]; 1 only once the job is done
  double elapsed_s = 0;
  double bytes_per_s = 0;  // observed work rate
  double eta_s = 0;        // remaining work / rate; 0 when unknown/done
};

// One tracker per job, embedded in the JobCore and fed by the pipeline
// through SortContext. Thread-safe: phase and byte counters are
// independent atomics, so concurrent QuickSort chores and the root IO
// loop publish without coordination.
class JobProgressTracker {
 public:
  // Resets and stamps the start time. `publish_gauges` additionally
  // mirrors phase and permille into svc.job.<id>.* registry gauges
  // (services opt in; plain Sorter jobs keep the registry clean).
  // `trace_id` (0 = none) attributes the job to a distributed trace: it
  // rides on snapshots, the exposition's job_info series, the flight
  // recorder, and — when publishing — a svc.job.<id>.trace gauge that
  // outlives the job, so tests and post-mortems can join a finished
  // job back to its trace.
  void Start(uint64_t job_id, bool publish_gauges, uint64_t trace_id = 0);

  // Called once the planner has sized the job (input bytes + pass count).
  void SetPlan(uint64_t bytes_total, int passes);

  // For jobs whose input size is unknown up front (streamed ingest): no
  // byte total, but snapshots still move — the work total is estimated
  // as if the bytes read so far were the whole input, scaled by
  // `passes_hint`'s work factor, so the fraction/permille hold a steady
  // ingest plateau and rise through the later phases. The adaptive
  // pipeline calls SetPlan with the real totals at end of input.
  void SetPlanUnknown(int passes_hint);

  void SetPhase(SortPhase phase);

  void AddRead(uint64_t bytes);
  void AddSorted(uint64_t bytes);
  void AddSpilled(uint64_t bytes);
  void AddMerged(uint64_t bytes);

  JobProgress Snapshot() const;

 private:
  void PublishGauges();

  std::atomic<uint64_t> job_id_{0};
  std::atomic<uint64_t> trace_id_{0};
  std::atomic<int> phase_{static_cast<int>(SortPhase::kQueued)};
  std::atomic<uint64_t> bytes_total_{0};
  std::atomic<uint64_t> work_total_{0};
  // False between SetPlanUnknown and the real SetPlan: totals are then
  // derived from bytes_read at snapshot time using work_factor_.
  std::atomic<bool> total_known_{true};
  std::atomic<uint64_t> work_factor_{2};
  std::atomic<uint64_t> read_{0};
  std::atomic<uint64_t> sorted_{0};
  std::atomic<uint64_t> spilled_{0};
  std::atomic<uint64_t> merged_{0};
  // Steady-clock nanoseconds; 0 = not started. Atomic (like the gauge
  // pointers) because Snapshot() may poll from a connection thread while
  // the service thread is still inside Start() for a just-dequeued job.
  std::atomic<uint64_t> start_ns_{0};

  std::atomic<Gauge*> phase_gauge_{nullptr};
  std::atomic<Gauge*> permille_gauge_{nullptr};
};

// Registry of live trackers, walked by the exposition renderer and the
// flight recorder. ExecuteJob registers its tracker for the duration of
// the run; finished jobs drop out (their final state lives on in the
// SortJob handle and the svc.* counters).
class ProgressRegistry {
 public:
  static ProgressRegistry* Global();

  void Register(const JobProgressTracker* tracker);
  void Unregister(const JobProgressTracker* tracker);

  // Snapshots every live tracker, sorted by job id.
  std::vector<JobProgress> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<const JobProgressTracker*> trackers_;
};

// RAII registration for ExecuteJob's scope.
class ScopedProgressRegistration {
 public:
  explicit ScopedProgressRegistration(const JobProgressTracker* tracker)
      : tracker_(tracker) {
    ProgressRegistry::Global()->Register(tracker_);
  }
  ~ScopedProgressRegistration() {
    ProgressRegistry::Global()->Unregister(tracker_);
  }

  ScopedProgressRegistration(const ScopedProgressRegistration&) = delete;
  ScopedProgressRegistration& operator=(const ScopedProgressRegistration&) =
      delete;

 private:
  const JobProgressTracker* const tracker_;
};

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_PROGRESS_H_
