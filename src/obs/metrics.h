#ifndef ALPHASORT_OBS_METRICS_H_
#define ALPHASORT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace alphasort {
namespace obs {

// Process-wide metrics primitives for the sort pipeline.
//
// The paper's evidence is observational — Figure 7's phase breakdown,
// Table 6's per-disk bandwidth — and tuning an external sort needs the
// same visibility at runtime: how many IOs, how large, how long each
// took, and whether CPU and IO actually overlap. Counters and histograms
// here are lock-free on the update path (one relaxed atomic RMW per
// event) so instrumentation can stay enabled in production builds; the
// hot compare path is never instrumented at all (same philosophy as the
// NullTracer in src/common/tracer.h).

// Monotonically increasing event count. Relaxed ordering: totals are
// read at quiescent points (end of a sort), not used for synchronization.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level that can rise and fall — queue depths, running job
// counts, admitted bytes. Signed so a misordered Add/Sub pair shows up as
// a negative level instead of a 2^64 wraparound. Same relaxed-ordering
// rationale as Counter.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(int64_t delta = 1) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time summary of a Histogram (see below). Plain data: safe to
// copy, compare, and ship across threads.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 64;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }

  // Value at percentile `p` in [0, 100], linearly interpolated inside the
  // containing bucket and clamped to the observed max. Returns 0 for an
  // empty histogram.
  double Percentile(double p) const;

  // "n=12 mean=3.4us p50=2us p95=9us p99=15us max=18us" (unit is a
  // caller-supplied suffix, purely cosmetic).
  std::string Summary(const char* unit) const;

  // Merges another snapshot into this one (bucket-wise sum).
  void Merge(const HistogramSnapshot& other);
};

// Fixed-bucket power-of-two histogram for non-negative integer samples
// (the pipeline records latencies in microseconds and sizes in bytes).
//
// Bucket b holds values in [LowerBound(b), UpperBound(b)):
//   bucket 0 = {0}, bucket 1 = {1}, bucket b = [2^(b-1), 2^b) for b >= 2,
// and the last bucket absorbs everything above 2^62. Recording is one
// relaxed fetch_add per sample plus a bit-scan — no locks, no allocation.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  // Index of the bucket `value` falls into.
  static size_t BucketFor(uint64_t value);

  // Smallest value the bucket can hold (inclusive).
  static uint64_t LowerBound(size_t bucket);

  // One past the largest value the bucket can hold (exclusive); the last
  // bucket reports UINT64_MAX.
  static uint64_t UpperBound(size_t bucket);

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Point-in-time copy of a registry's contents (see
// MetricsRegistry::Snapshot). Plain data; the delta of two snapshots is
// what a per-run report wants — the registry is process-global and
// cumulative, so back-to-back sorts in one process (every bench binary)
// would otherwise attribute the whole process history to the last run.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, int64_t> gauges;

  // Events recorded since `earlier` (counter subtraction, bucket-wise
  // histogram subtraction). Caveat: a histogram's max cannot be
  // un-merged, so the delta keeps the later absolute max — an upper
  // bound for the interval, exact whenever the interval recorded the
  // process-wide maximum. Gauges are levels, not accumulations: the
  // delta carries the later snapshot's level unchanged.
  RegistrySnapshot DeltaSince(const RegistrySnapshot& earlier) const;

  // Same one-metric-per-line format as MetricsRegistry::ToString();
  // metrics with no events are omitted.
  std::string ToString() const;

  // True when every counter is zero and every histogram is empty.
  bool Empty() const;
};

// Named registry of counters and histograms. Registration takes a lock;
// the returned pointers are stable for the life of the registry, so call
// sites look a metric up once (typically via a function-local static) and
// update it lock-free afterwards.
class MetricsRegistry {
 public:
  // Process-wide instance used by the library's instrumentation points
  // (async IO scheduler, stripe layer, chore pool). Never destroyed.
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  // Multi-line dump, one metric per line, sorted by name. Metrics with no
  // recorded events are omitted.
  std::string ToString() const;

  // Copies every metric's current value. Two snapshots bracket a run;
  // their DeltaSince is the run's own traffic.
  RegistrySnapshot Snapshot() const;

  // Zeroes every metric (pointers stay valid). Benches call this between
  // configurations.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_METRICS_H_
