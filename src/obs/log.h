#ifndef ALPHASORT_OBS_LOG_H_
#define ALPHASORT_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace alphasort {
namespace obs {

// Leveled, structured key-value event log for the sort pipeline and the
// service on top of it.
//
// Reports and traces are post-mortem; the log is the live narrative: one
// event per state transition (job submitted, admitted, down-negotiated,
// cancelled, retried IO, phase entered), each carrying a level, a
// wall-clock timestamp, the emitting thread, the ambient job id, and a
// small set of typed key-value fields. Events land in a bounded
// in-memory ring (crash forensics: the last N events survive in memory)
// and are then fanned out to the installed sinks.
//
// Cost discipline mirrors the tracer: a disabled level is one relaxed
// atomic load and a branch at the call site — nothing is formatted, no
// fields are evaluated. Every call site is additionally rate-limited
// (token window per site), so a retry storm cannot flood a sink; the
// count of suppressed events is attached to the next event that passes.
//
// Usage (the macro declares the per-site limiter):
//
//   ALPHASORT_LOG(kInfo, "svc.admit").U64("job", id).U64("bytes", b);
//
// Sinks are process-global like the metrics registry: install a
// JsonlFileLogSink for machine-readable capture, a StderrLogSink for a
// human tail, a MemoryLogSink in tests.

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  // threshold only; events are never emitted at kOff
};

const char* LogLevelName(LogLevel level);

// Microseconds since the Unix epoch (wall clock — log events are
// correlated across processes, unlike trace timestamps which are
// relative to the recorder's steady-clock epoch).
uint64_t LogWallTimeUs();

// One structured event. Plain data with fixed-size storage so the ring
// buffer never allocates on the emit path; field keys and values are
// truncated to their capacity (a truncated value still identifies the
// event — these are operational breadcrumbs, not payload transport).
struct LogEvent {
  static constexpr int kMaxFields = 8;
  static constexpr size_t kKeyCap = 24;
  static constexpr size_t kValueCap = 56;

  struct Field {
    char key[kKeyCap] = {0};
    char value[kValueCap] = {0};
    bool is_string = false;  // JSON rendering: quoted vs raw number
  };

  LogLevel level = LogLevel::kInfo;
  // `event` must be a string literal (or otherwise outlive the logger):
  // the ring stores the pointer, as the trace ring does for span names.
  const char* event = nullptr;
  uint64_t ts_us = 0;   // wall clock, microseconds since epoch
  int tid = 0;          // obs::CurrentThreadId()
  uint64_t job_id = 0;  // ambient obs::CurrentJobId(), 0 = none
  // Ambient obs::CurrentTraceId(), 0 = none. Rendered as "trace" so log
  // events join client and server captures the way merged trace spans do.
  uint64_t trace_id = 0;
  // Events the rate limiter dropped at this call site since the last
  // event that passed; attached so suppression is visible in the stream.
  uint64_t suppressed = 0;
  int num_fields = 0;
  Field fields[kMaxFields];

  // Appends one field; silently ignored past kMaxFields.
  void AddString(const char* key, const char* value);
  void AddNumber(const char* key, const char* formatted);
};

// "ts=... level=info event=svc.admit job=3 k=v ..." one-line rendering.
std::string FormatLogText(const LogEvent& ev);

// One JSON object (no trailing newline): {"ts_us":...,"level":"info",
// "event":"svc.admit","tid":0,"job":3,"fields":{...}}.
std::string FormatLogJson(const LogEvent& ev);

// A sink consumes fully-built events. Write() may be called from any
// thread; implementations serialize internally.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogEvent& ev) = 0;
};

// Human tail on stderr, one FormatLogText line per event.
class StderrLogSink : public LogSink {
 public:
  void Write(const LogEvent& ev) override;

 private:
  std::mutex mu_;
};

// Machine-readable capture: one FormatLogJson object per line (JSONL).
// Flushes per line so a crashed process leaves complete records.
class JsonlFileLogSink : public LogSink {
 public:
  explicit JsonlFileLogSink(const std::string& path);
  ~JsonlFileLogSink() override;

  // False when the file could not be opened; Write() is then a no-op.
  bool ok() const { return file_ != nullptr; }

  void Write(const LogEvent& ev) override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

// Test sink: retains every event.
class MemoryLogSink : public LogSink {
 public:
  void Write(const LogEvent& ev) override;

  std::vector<LogEvent> events() const;
  size_t count() const;

 private:
  mutable std::mutex mu_;
  std::vector<LogEvent> events_;
};

// Process-global logger: level threshold, bounded in-memory ring, and
// the installed sinks.
class Logger {
 public:
  // Never destroyed, like MetricsRegistry::Global().
  static Logger* Global();

  // Threshold check on the fast path: one relaxed load and a compare.
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }
  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  // Sinks are borrowed, not owned, and must outlive their installation.
  void AddSink(LogSink* sink);
  void RemoveSink(LogSink* sink);

  // Appends to the ring (under the ring mutex, never held across sink
  // IO) and fans out to the sinks (under the sink mutex — stderr/file
  // writes serialize anyway). Called by the LogMessage destructor; the
  // level/rate checks have already passed.
  void Dispatch(const LogEvent& ev);

  // The most recent `max` events, oldest first. For tests and crash
  // handlers; shares the ring mutex with writers so a wrapped ring
  // cannot hand back a torn event.
  std::vector<LogEvent> Tail(size_t max) const;

  uint64_t events_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  Logger();

  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<uint64_t> emitted_{0};

  mutable std::mutex ring_mu_;
  std::vector<LogEvent> ring_;  // guarded by ring_mu_
  uint64_t next_ = 0;           // guarded by ring_mu_

  mutable std::mutex sink_mu_;
  std::vector<LogSink*> sinks_;
};

// Per-call-site token window: at most `max_per_window` events per
// `window_us`; excess events are counted and surfaced as
// LogEvent::suppressed on the next event that passes. Lock-free.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(uint32_t max_per_window = 128,
                          uint64_t window_us = 1000000)
      : max_per_window_(max_per_window), window_us_(window_us) {}

  // True when the event may be emitted; fills `*suppressed_out` with the
  // number of events dropped at this site since the last admit.
  bool Admit(uint64_t now_us, uint64_t* suppressed_out);

  uint64_t total_suppressed() const {
    return total_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  const uint32_t max_per_window_;
  const uint64_t window_us_;
  std::atomic<uint64_t> window_start_us_{0};
  std::atomic<uint32_t> in_window_{0};
  std::atomic<uint64_t> pending_suppressed_{0};
  std::atomic<uint64_t> total_suppressed_{0};
};

// Builder for one event; the destructor dispatches. Constructed only
// after the level and rate checks pass (see ALPHASORT_LOG), so field
// formatting is never paid for filtered events.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* event, uint64_t suppressed);
  ~LogMessage();

  LogMessage& Str(const char* key, const char* value);
  LogMessage& Str(const char* key, const std::string& value);
  LogMessage& U64(const char* key, uint64_t value);
  LogMessage& I64(const char* key, int64_t value);
  LogMessage& F64(const char* key, double value);
  LogMessage& Bool(const char* key, bool value);

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogEvent ev_;
};

// The one instrumentation macro. Declares a static per-site rate
// limiter; the whole statement is one relaxed load + branch when the
// level is disabled. Expands to an if/else chain so a dangling-else
// cannot capture surrounding code, and yields a LogMessage to chain
// field setters onto:
//
//   ALPHASORT_LOG(kWarn, "io.retry").U64("attempt", n).Str("op", "read");
#define ALPHASORT_LOG(severity, event_name)                                  \
  if (!::alphasort::obs::Logger::Global()->Enabled(                          \
          ::alphasort::obs::LogLevel::severity)) {                           \
  } else if (::alphasort::obs::internal::LogAdmitToken _alog_tok =           \
                 ::alphasort::obs::internal::AdmitAtSite([]() ->             \
                     ::alphasort::obs::LogRateLimiter& {                     \
                       static ::alphasort::obs::LogRateLimiter limiter;      \
                       return limiter;                                       \
                     }());                                                   \
             !_alog_tok.allowed) {                                           \
  } else                                                                     \
    ::alphasort::obs::LogMessage(::alphasort::obs::LogLevel::severity,       \
                                 (event_name), _alog_tok.suppressed)

namespace internal {

struct LogAdmitToken {
  bool allowed = false;
  uint64_t suppressed = 0;
};

inline LogAdmitToken AdmitAtSite(LogRateLimiter& limiter) {
  LogAdmitToken tok;
  tok.allowed = limiter.Admit(LogWallTimeUs(), &tok.suppressed);
  return tok;
}

}  // namespace internal

// Validates JSONL log capture: every non-empty line must parse as a JSON
// object carrying numeric "ts_us", string "level" (a known level name),
// and string "event". Used by log_lint and the tests.
Status ValidateLogJsonl(const std::string& content);

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_LOG_H_
