#ifndef ALPHASORT_OBS_METRICS_ENV_H_
#define ALPHASORT_OBS_METRICS_ENV_H_

#include <memory>
#include <string>

#include "io/env.h"
#include "obs/metrics.h"

namespace alphasort {
namespace obs {

// Point-in-time IO statistics for one Env::OpenFile mode.
struct IoModeSnapshot {
  uint64_t opens = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  HistogramSnapshot read_latency_us;
  HistogramSnapshot write_latency_us;
};

// Per-mode IO statistics plus cross-mode aggregates.
struct IoSnapshot {
  IoModeSnapshot read_only;         // OpenMode::kReadOnly
  IoModeSnapshot read_write;        // OpenMode::kReadWrite
  IoModeSnapshot create_read_write; // OpenMode::kCreateReadWrite

  // Sum across all three modes.
  IoModeSnapshot Total() const;

  // One line per open mode with op counts, byte totals, and latency
  // percentiles; empty modes are omitted.
  std::string ToString() const;
};

// Wraps another Env and records per-open-mode IO counts, byte totals,
// and latency histograms for every file opened through it. Composes with
// the other Env wrappers (fault-injecting, throttled): MetricsEnv over a
// ThrottledEnv measures the simulated 1993 disks, a ThrottledEnv over a
// MetricsEnv would measure the raw store underneath.
//
// Thread-safe the same way the wrapped Env is: metric updates are
// lock-free, and a MetricsFile adds no synchronization around the
// underlying file's own. Latencies are measured around the base call, so
// queueing in AsyncIO is excluded — this histogram is device time, the
// aio.queue_wait_us histogram (MetricsRegistry) is scheduler time.
//
// Relies on the Env contract that FileExists/GetFileSize observe writes
// made through concurrently open handles (see io/env.h).
class MetricsEnv : public Env {
 public:
  // `base` must outlive this wrapper and the files opened through it.
  explicit MetricsEnv(Env* base);
  ~MetricsEnv() override;

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) override;
  Status CreateDir(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;

  IoSnapshot Snapshot() const;

  // Shorthand for Snapshot().ToString().
  std::string ToString() const;

  // Live counters for one open mode; defined in metrics_env.cc and shared
  // with the file wrappers there.
  struct ModeStats;

 private:
  Env* const base_;
  std::unique_ptr<ModeStats[]> stats_;  // one per OpenMode
};

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_METRICS_ENV_H_
