#include "obs/progress.h"

#include <algorithm>
#include <chrono>

#include "common/table.h"
#include "obs/metrics.h"

namespace alphasort {
namespace obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* SortPhaseName(SortPhase phase) {
  switch (phase) {
    case SortPhase::kQueued:
      return "queued";
    case SortPhase::kStartup:
      return "startup";
    case SortPhase::kRead:
      return "read";
    case SortPhase::kLastRun:
      return "last_run";
    case SortPhase::kMerge:
      return "merge";
    case SortPhase::kClose:
      return "close";
    case SortPhase::kDone:
      return "done";
    case SortPhase::kFailed:
      return "failed";
  }
  return "unknown";
}

void JobProgressTracker::Start(uint64_t job_id, bool publish_gauges,
                               uint64_t trace_id) {
  job_id_.store(job_id, std::memory_order_relaxed);
  trace_id_.store(trace_id, std::memory_order_relaxed);
  phase_.store(static_cast<int>(SortPhase::kStartup),
               std::memory_order_relaxed);
  bytes_total_.store(0, std::memory_order_relaxed);
  work_total_.store(0, std::memory_order_relaxed);
  total_known_.store(true, std::memory_order_relaxed);
  work_factor_.store(2, std::memory_order_relaxed);
  read_.store(0, std::memory_order_relaxed);
  sorted_.store(0, std::memory_order_relaxed);
  spilled_.store(0, std::memory_order_relaxed);
  merged_.store(0, std::memory_order_relaxed);
  if (publish_gauges) {
    auto* registry = MetricsRegistry::Global();
    const std::string base = StrFormat(
        "svc.job.%llu", static_cast<unsigned long long>(job_id));
    phase_gauge_.store(registry->GetGauge(base + ".phase"),
                       std::memory_order_relaxed);
    permille_gauge_.store(registry->GetGauge(base + ".permille"),
                          std::memory_order_relaxed);
    if (trace_id != 0) {
      // Set once, never cleared: the gauge ties the finished job back to
      // its distributed trace in the exposition and the flight recorder
      // after the live tracker has unregistered.
      registry->GetGauge(base + ".trace")
          ->Set(static_cast<int64_t>(trace_id));
    }
  }
  start_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  PublishGauges();
}

void JobProgressTracker::SetPlan(uint64_t bytes_total, int passes) {
  bytes_total_.store(bytes_total, std::memory_order_relaxed);
  // The overlap model's work accounting (see the header): bytes that
  // must move through storage. Sorting rides under the read stream and
  // adds none of its own.
  const uint64_t factor = passes <= 1 ? 2 : 3;
  work_total_.store(factor * bytes_total, std::memory_order_relaxed);
  total_known_.store(true, std::memory_order_relaxed);
}

void JobProgressTracker::SetPlanUnknown(int passes_hint) {
  const uint64_t factor = passes_hint <= 1 ? 2 : 3;
  bytes_total_.store(0, std::memory_order_relaxed);
  work_total_.store(0, std::memory_order_relaxed);
  work_factor_.store(factor, std::memory_order_relaxed);
  total_known_.store(false, std::memory_order_relaxed);
}

void JobProgressTracker::SetPhase(SortPhase phase) {
  phase_.store(static_cast<int>(phase), std::memory_order_relaxed);
  PublishGauges();
}

void JobProgressTracker::AddRead(uint64_t bytes) {
  read_.fetch_add(bytes, std::memory_order_relaxed);
  PublishGauges();
}

void JobProgressTracker::AddSorted(uint64_t bytes) {
  sorted_.fetch_add(bytes, std::memory_order_relaxed);
}

void JobProgressTracker::AddSpilled(uint64_t bytes) {
  spilled_.fetch_add(bytes, std::memory_order_relaxed);
  PublishGauges();
}

void JobProgressTracker::AddMerged(uint64_t bytes) {
  merged_.fetch_add(bytes, std::memory_order_relaxed);
  PublishGauges();
}

JobProgress JobProgressTracker::Snapshot() const {
  JobProgress p;
  p.job_id = job_id_.load(std::memory_order_relaxed);
  p.trace_id = trace_id_.load(std::memory_order_relaxed);
  p.phase = static_cast<SortPhase>(phase_.load(std::memory_order_relaxed));
  p.bytes_total = bytes_total_.load(std::memory_order_relaxed);
  p.bytes_read = read_.load(std::memory_order_relaxed);
  p.bytes_sorted = sorted_.load(std::memory_order_relaxed);
  p.bytes_spilled = spilled_.load(std::memory_order_relaxed);
  p.bytes_merged = merged_.load(std::memory_order_relaxed);
  p.work_done = p.bytes_read + p.bytes_spilled + p.bytes_merged;
  p.work_total = work_total_.load(std::memory_order_relaxed);
  p.total_known = total_known_.load(std::memory_order_relaxed);
  if (!p.total_known && p.bytes_read > 0) {
    // Streamed ingest: treat the bytes seen so far as the whole input, a
    // running lower bound. During ingest work_done/work_total sits at a
    // steady 1/factor plateau, then rises as spill/merge bytes accrue;
    // when the real SetPlan lands at end of input the estimate and the
    // truth coincide, so the fraction is continuous across the switch.
    p.bytes_total = p.bytes_read;
    p.work_total =
        work_factor_.load(std::memory_order_relaxed) * p.bytes_read;
  }

  if (p.phase == SortPhase::kDone) {
    p.fraction = 1.0;
  } else if (p.work_total > 0) {
    // Clamped below 1: a cascade merge re-spills intermediate levels, so
    // work_done can pass the planned total before the job finishes. The
    // clamp keeps the fraction monotonic and honest — only completion
    // reports 1.0.
    p.fraction = std::min(0.999, double(p.work_done) / double(p.work_total));
  }

  const uint64_t start_ns = start_ns_.load(std::memory_order_relaxed);
  if (start_ns != 0) {
    // Clamped to one tick: a snapshot in the same clock quantum as
    // Start() still reports a nonzero (and thus rate-computable) age.
    p.elapsed_s =
        double(std::max<uint64_t>(1, SteadyNowNs() - start_ns)) * 1e-9;
  }
  if (p.elapsed_s > 0 && p.work_done > 0) {
    p.bytes_per_s = double(p.work_done) / p.elapsed_s;
    if (p.phase != SortPhase::kDone && p.phase != SortPhase::kFailed &&
        p.work_total > p.work_done) {
      p.eta_s = double(p.work_total - p.work_done) / p.bytes_per_s;
    }
  }
  return p;
}

void JobProgressTracker::PublishGauges() {
  Gauge* phase_gauge = phase_gauge_.load(std::memory_order_relaxed);
  if (phase_gauge == nullptr) return;
  phase_gauge->Set(phase_.load(std::memory_order_relaxed));
  const uint64_t total = work_total_.load(std::memory_order_relaxed);
  Gauge* permille_gauge = permille_gauge_.load(std::memory_order_relaxed);
  if (permille_gauge != nullptr) {
    const int phase = phase_.load(std::memory_order_relaxed);
    const uint64_t read = read_.load(std::memory_order_relaxed);
    uint64_t effective_total = total;
    if (!total_known_.load(std::memory_order_relaxed)) {
      // Unknown-total (streamed) jobs: estimate from bytes read so far,
      // mirroring Snapshot(). Clamped to 999 until DONE arrives.
      effective_total = work_factor_.load(std::memory_order_relaxed) * read;
    }
    if (phase == static_cast<int>(SortPhase::kDone)) {
      permille_gauge->Set(1000);
    } else if (effective_total > 0) {
      const uint64_t done = read +
                            spilled_.load(std::memory_order_relaxed) +
                            merged_.load(std::memory_order_relaxed);
      permille_gauge->Set(static_cast<int64_t>(
          std::min<uint64_t>(999, done * 1000 / effective_total)));
    }
  }
}

ProgressRegistry* ProgressRegistry::Global() {
  static ProgressRegistry* registry = new ProgressRegistry();
  return registry;
}

void ProgressRegistry::Register(const JobProgressTracker* tracker) {
  std::lock_guard<std::mutex> lock(mu_);
  trackers_.push_back(tracker);
}

void ProgressRegistry::Unregister(const JobProgressTracker* tracker) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = trackers_.begin(); it != trackers_.end(); ++it) {
    if (*it == tracker) {
      trackers_.erase(it);
      return;
    }
  }
}

std::vector<JobProgress> ProgressRegistry::Snapshot() const {
  std::vector<JobProgress> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(trackers_.size());
    for (const JobProgressTracker* t : trackers_) {
      out.push_back(t->Snapshot());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JobProgress& a, const JobProgress& b) {
              return a.job_id < b.job_id;
            });
  return out;
}

}  // namespace obs
}  // namespace alphasort
