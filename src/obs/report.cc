#include "obs/report.h"

#include <cmath>

#include "common/table.h"
#include "obs/json.h"

namespace alphasort {
namespace obs {

namespace {

// ---------------------------------------------------------------------
// JSON building. The document is assembled by append; keys stay in a
// fixed order so diffs of two reports line up.

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  AppendJsonEscaped(s, &out);
  out += "\"";
  return out;
}

std::string U64(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

void AppendIoStats(const char* key, const IoLatencyStats& io,
                   std::string* out) {
  *out += StrFormat(
      "\"%s\":{\"ops\":%s,\"bytes\":%s,\"p50_us\":%s,\"p95_us\":%s,"
      "\"p99_us\":%s,\"max_us\":%s}",
      key, U64(io.ops).c_str(), U64(io.bytes).c_str(),
      JsonNumber(io.p50_us).c_str(), JsonNumber(io.p95_us).c_str(),
      JsonNumber(io.p99_us).c_str(), JsonNumber(io.max_us).c_str());
}

void AppendSortStats(const char* key, const SortStats& s,
                     std::string* out) {
  *out += StrFormat(
      "\"%s\":{\"compares\":%s,\"exchanges\":%s,\"bytes_moved\":%s,"
      "\"tie_breaks\":%s}",
      key, U64(s.compares).c_str(), U64(s.exchanges).c_str(),
      U64(s.bytes_moved).c_str(), U64(s.tie_breaks).c_str());
}

void AppendRegistry(const RegistrySnapshot& reg, std::string* out) {
  *out += "\"registry\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : reg.counters) {
    if (value == 0) continue;
    if (!first) *out += ",";
    first = false;
    *out += Quoted(name) + ":" + U64(value);
  }
  *out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snap] : reg.histograms) {
    if (snap.count == 0) continue;
    if (!first) *out += ",";
    first = false;
    *out += Quoted(name);
    *out += StrFormat(
        ":{\"count\":%s,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,"
        "\"max\":%s}",
        U64(snap.count).c_str(), JsonNumber(snap.Mean()).c_str(),
        JsonNumber(snap.Percentile(50)).c_str(),
        JsonNumber(snap.Percentile(95)).c_str(),
        JsonNumber(snap.Percentile(99)).c_str(), U64(snap.max).c_str());
  }
  *out += "}";
  // Gauges (instantaneous levels, e.g. svc.* service state). The key is
  // always present — schema 1.1 — so consumers can index registry.gauges
  // unconditionally; zero-valued gauges are still elided from the map.
  *out += ",\"gauges\":{";
  first = true;
  for (const auto& [name, value] : reg.gauges) {
    if (value == 0) continue;
    if (!first) *out += ",";
    first = false;
    *out += Quoted(name) +
            StrFormat(":%lld", static_cast<long long>(value));
  }
  *out += "}}";
}

void AppendPerf(const PerfReport& perf, std::string* out) {
  *out += StrFormat("\"hardware_counters\":{\"attempted\":%s,"
                    "\"available\":%s,\"unavailable_reason\":%s,"
                    "\"regions\":{",
                    perf.attempted ? "true" : "false",
                    perf.AnyAvailable() ? "true" : "false",
                    Quoted(perf.UnavailableReason()).c_str());
  bool first = true;
  for (const auto& [name, d] : perf.regions) {
    if (!first) *out += ",";
    first = false;
    *out += Quoted(name);
    *out += StrFormat(
        ":{\"available\":%s,\"samples\":%s,\"cycles\":%s,"
        "\"instructions\":%s,\"cache_references\":%s,"
        "\"cache_misses\":%s,\"branch_misses\":%s,\"ipc\":%s,"
        "\"cache_miss_rate\":%s,\"running_ratio\":%s}",
        d.available ? "true" : "false", U64(d.samples).c_str(),
        JsonNumber(d.cycles).c_str(), JsonNumber(d.instructions).c_str(),
        JsonNumber(d.cache_references).c_str(),
        JsonNumber(d.cache_misses).c_str(),
        JsonNumber(d.branch_misses).c_str(), JsonNumber(d.Ipc()).c_str(),
        JsonNumber(d.CacheMissRate()).c_str(),
        JsonNumber(d.running_ratio).c_str());
  }
  *out += "}}";
}

// ---------------------------------------------------------------------
// Validation helpers.

Status Missing(const char* what) {
  return Status::Corruption(
      StrFormat("report missing or mistyped field: %s", what));
}

const JsonValue* RequireObject(const JsonValue& parent, const char* key,
                               Status* status) {
  const JsonValue* v = parent.Find(key);
  if (v == nullptr || !v->IsObject()) {
    if (status->ok()) *status = Missing(key);
    return nullptr;
  }
  return v;
}

bool RequireNumbers(const JsonValue& obj, const char* context,
                    std::initializer_list<const char*> keys,
                    Status* status) {
  for (const char* key : keys) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr || !v->IsNumber()) {
      if (status->ok()) {
        *status = Missing(StrFormat("%s.%s", context, key).c_str());
      }
      return false;
    }
  }
  return true;
}

Status CheckEnvelope(const JsonValue& root, const char* kind,
                     int version) {
  if (!root.IsObject()) {
    return Status::Corruption("report is not a JSON object");
  }
  const JsonValue* v = root.Find("schema_version");
  if (v == nullptr || !v->IsNumber()) return Missing("schema_version");
  if (static_cast<int>(v->number_value) != version) {
    return Status::Corruption(StrFormat(
        "unsupported schema_version %g (this reader understands %d)",
        v->number_value, version));
  }
  const JsonValue* k = root.Find("kind");
  if (k == nullptr || !k->IsString()) return Missing("kind");
  if (k->string_value != kind) {
    return Status::Corruption(StrFormat("kind \"%s\" is not \"%s\"",
                                        k->string_value.c_str(), kind));
  }
  return Status::OK();
}

}  // namespace

std::string SortReport::ToJson() const {
  const SortMetrics& m = metrics;
  const SortThroughput t = m.Throughput();
  std::string out = "{";
  out += StrFormat("\"schema_version\":%d,\"schema_minor\":%d,"
                   "\"kind\":%s,\"tool\":%s,\"config\":%s,",
                   kSchemaVersion, kSchemaVersionMinor,
                   Quoted(kKind).c_str(), Quoted(tool).c_str(),
                   Quoted(config).c_str());
  out += StrFormat(
      "\"records\":%s,\"bytes_in\":%s,\"bytes_out\":%s,\"passes\":%d,"
      "\"runs\":%s,\"merge_ranges\":%s,",
      U64(m.num_records).c_str(), U64(m.bytes_in).c_str(),
      U64(m.bytes_out).c_str(), m.passes, U64(m.num_runs).c_str(),
      U64(m.merge_ranges).c_str());
  out += StrFormat(
      "\"phases_s\":{\"startup\":%s,\"read_quicksort\":%s,"
      "\"last_run\":%s,\"merge_gather_write\":%s,\"close\":%s,"
      "\"phase_sum\":%s,\"total\":%s},",
      JsonNumber(m.startup_s).c_str(), JsonNumber(m.read_phase_s).c_str(),
      JsonNumber(m.last_run_s).c_str(),
      JsonNumber(m.merge_phase_s).c_str(), JsonNumber(m.close_s).c_str(),
      JsonNumber(m.PhaseSum()).c_str(), JsonNumber(m.total_s).c_str());
  out += StrFormat("\"throughput\":{\"mb_per_s\":%s,\"records_per_s\":%s},",
                   JsonNumber(t.mb_per_s).c_str(),
                   JsonNumber(t.records_per_s).c_str());
  out += "\"io\":{";
  AppendIoStats("reads", m.read_io, &out);
  out += ",";
  AppendIoStats("writes", m.write_io, &out);
  out += "},\"sort_stats\":{";
  AppendSortStats("quicksort", m.quicksort_stats, &out);
  out += ",";
  AppendSortStats("merge", m.merge_stats, &out);
  out += "},";
  out += StrFormat(
      "\"integrity\":{\"output_crc32c\":\"%08x\","
      "\"runs_checksum_verified\":%s,\"scratch_bytes_written\":%s,"
      "\"io_retries\":%s,\"io_retries_recovered\":%s,"
      "\"io_retries_exhausted\":%s},",
      m.output_crc32c, U64(m.runs_checksum_verified).c_str(),
      U64(m.scratch_bytes_written).c_str(), U64(m.io_retries).c_str(),
      U64(m.io_retries_recovered).c_str(),
      U64(m.io_retries_exhausted).c_str());
  AppendRegistry(m.registry_delta, &out);
  out += ",";
  AppendPerf(m.perf, &out);
  out += "}";
  return out;
}

std::string SortReport::ToText() const {
  const SortMetrics& m = metrics;
  std::string out;
  out += StrFormat("=== AlphaSort report: %s ===\n", tool.c_str());
  if (!config.empty()) out += StrFormat("config: %s\n", config.c_str());
  out += StrFormat(
      "records %llu (%.1f MB in, %.1f MB out), %d pass(es), %llu run(s), "
      "%llu merge range(s)\n\n",
      static_cast<unsigned long long>(m.num_records), m.bytes_in / 1e6,
      m.bytes_out / 1e6, m.passes,
      static_cast<unsigned long long>(m.num_runs),
      static_cast<unsigned long long>(m.merge_ranges));

  // Figure 7's table: one row per phase with its share of the total.
  const double total = m.total_s > 0 ? m.total_s : m.PhaseSum();
  TextTable phases({"phase", "seconds", "% of total"});
  const std::pair<const char*, double> rows[] = {
      {"startup", m.startup_s},
      {"read + quicksort (overlap)", m.read_phase_s},
      {"last run", m.last_run_s},
      {"merge + gather + write", m.merge_phase_s},
      {"close", m.close_s},
  };
  for (const auto& [label, seconds] : rows) {
    phases.AddRow({label, StrFormat("%.4f", seconds),
                   total > 0 ? StrFormat("%.1f", 100 * seconds / total)
                             : "-"});
  }
  phases.AddRow({"total", StrFormat("%.4f", m.total_s),
                 StrFormat("(phase sum %.4f)", m.PhaseSum())});
  out += phases.ToString();
  out += "\n";

  const SortThroughput t = m.Throughput();
  if (t.mb_per_s > 0) {
    out += StrFormat("throughput: %.1f MB/s, %.0f records/s\n", t.mb_per_s,
                     t.records_per_s);
  }
  if (m.read_io.Valid()) {
    out += StrFormat("io reads : %llu ops, p50 %.0f us, p99 %.0f us\n",
                     static_cast<unsigned long long>(m.read_io.ops),
                     m.read_io.p50_us, m.read_io.p99_us);
  }
  if (m.write_io.Valid()) {
    out += StrFormat("io writes: %llu ops, p50 %.0f us, p99 %.0f us\n",
                     static_cast<unsigned long long>(m.write_io.ops),
                     m.write_io.p50_us, m.write_io.p99_us);
  }

  if (!m.registry_delta.Empty()) {
    out += "\nregistry delta (this run only):\n";
    out += m.registry_delta.ToString();
  }

  out += "\nhardware counters";
  if (!m.perf.attempted) {
    out += ": not collected\n";
  } else if (!m.perf.AnyAvailable()) {
    const std::string reason = m.perf.UnavailableReason();
    out += StrFormat(": unavailable (%s)\n",
                     reason.empty() ? "unknown" : reason.c_str());
  } else {
    out += " (scaled for PMU multiplexing; regions overlap):\n";
    TextTable hw({"region", "cycles", "instr", "IPC", "cache refs",
                  "cache miss", "miss%", "br miss", "samples"});
    for (const auto& [name, d] : m.perf.regions) {
      if (!d.available) continue;
      hw.AddRow({name, StrFormat("%.3g", d.cycles),
                 StrFormat("%.3g", d.instructions),
                 StrFormat("%.2f", d.Ipc()),
                 StrFormat("%.3g", d.cache_references),
                 StrFormat("%.3g", d.cache_misses),
                 StrFormat("%.1f", 100 * d.CacheMissRate()),
                 StrFormat("%.3g", d.branch_misses),
                 StrFormat("%llu",
                           static_cast<unsigned long long>(d.samples))});
    }
    out += hw.ToString();
  }
  return out;
}

Status ValidateSortReportJson(const std::string& json) {
  JsonValue root;
  ALPHASORT_RETURN_IF_ERROR(ParseJson(json, &root));
  ALPHASORT_RETURN_IF_ERROR(
      CheckEnvelope(root, SortReport::kKind, SortReport::kSchemaVersion));

  Status status = Status::OK();
  const JsonValue* tool = root.Find("tool");
  if (tool == nullptr || !tool->IsString()) return Missing("tool");
  RequireNumbers(root, "report",
                 {"records", "bytes_in", "bytes_out", "passes", "runs"},
                 &status);

  if (const JsonValue* phases = RequireObject(root, "phases_s", &status)) {
    if (RequireNumbers(*phases, "phases_s",
                       {"startup", "read_quicksort", "last_run",
                        "merge_gather_write", "close", "phase_sum",
                        "total"},
                       &status)) {
      // Figure 7 discipline: the laps must account for the elapsed
      // time. Phases are laps of one serial timer, so they sum to the
      // total up to timer noise; the tolerance is loose enough for tiny
      // smoke sorts where a scheduler hiccup is a visible fraction.
      const double total = phases->Find("total")->number_value;
      const double sum = phases->Find("phase_sum")->number_value;
      if (total > 0 && std::abs(total - sum) > 0.10 * total + 0.005) {
        return Status::Corruption(StrFormat(
            "phase breakdown does not account for the total: phase_sum "
            "%.4f vs total %.4f — a phase went untimed",
            sum, total));
      }
    }
  }
  if (const JsonValue* tp = RequireObject(root, "throughput", &status)) {
    RequireNumbers(*tp, "throughput", {"mb_per_s", "records_per_s"},
                   &status);
  }
  if (const JsonValue* io = RequireObject(root, "io", &status)) {
    for (const char* dir : {"reads", "writes"}) {
      if (const JsonValue* mode = RequireObject(*io, dir, &status)) {
        RequireNumbers(*mode, dir,
                       {"ops", "bytes", "p50_us", "p95_us", "p99_us",
                        "max_us"},
                       &status);
      }
    }
  }
  if (const JsonValue* reg = RequireObject(root, "registry", &status)) {
    // Since schema 1.1 the gauges key is always present, even when no
    // gauge was ever set; consumers index it unconditionally.
    RequireObject(*reg, "gauges", &status);
  }
  if (const JsonValue* hw =
          RequireObject(root, "hardware_counters", &status)) {
    const JsonValue* available = hw->Find("available");
    if (available == nullptr || !available->IsBool()) {
      return Missing("hardware_counters.available");
    }
    const JsonValue* regions = RequireObject(*hw, "regions", &status);
    if (regions != nullptr) {
      for (const auto& [name, region] : regions->members) {
        if (!region.IsObject()) {
          return Missing(
              StrFormat("hardware_counters.regions.%s", name.c_str())
                  .c_str());
        }
        const JsonValue* region_available = region.Find("available");
        if (region_available == nullptr || !region_available->IsBool()) {
          return Missing(
              StrFormat("hardware_counters.regions.%s.available",
                        name.c_str())
                  .c_str());
        }
        RequireNumbers(region,
                       StrFormat("hardware_counters.regions.%s",
                                 name.c_str())
                           .c_str(),
                       {"samples", "cycles", "instructions",
                        "cache_references", "cache_misses",
                        "branch_misses"},
                       &status);
      }
      if (available->bool_value) {
        bool any = false;
        for (const auto& [name, region] : regions->members) {
          const JsonValue* a = region.Find("available");
          if (a != nullptr && a->IsBool() && a->bool_value) any = true;
        }
        if (!any) {
          return Status::Corruption(
              "hardware_counters.available is true but no region is");
        }
      }
    }
  }
  return status;
}

std::string BenchReport::ToJson() const {
  std::string out = "{";
  out += StrFormat("\"schema_version\":%d,\"kind\":%s,\"name\":%s,"
                   "\"suites\":[",
                   kSchemaVersion, Quoted(kKind).c_str(),
                   Quoted(name).c_str());
  bool first_entry = true;
  for (const BenchEntry& entry : entries) {
    if (!first_entry) out += ",";
    first_entry = false;
    out += StrFormat("{\"suite\":%s,\"config\":%s,\"metrics\":{",
                     Quoted(entry.suite).c_str(),
                     Quoted(entry.config).c_str());
    bool first_value = true;
    for (const auto& [key, value] : entry.values) {
      if (!first_value) out += ",";
      first_value = false;
      out += Quoted(key) + ":" + JsonNumber(value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string BenchReport::ToText() const {
  std::string out = StrFormat("=== bench report: %s ===\n", name.c_str());
  TextTable table({"suite", "config", "metric", "value"});
  for (const BenchEntry& entry : entries) {
    bool first = true;
    for (const auto& [key, value] : entry.values) {
      table.AddRow({first ? entry.suite : "", first ? entry.config : "",
                    key, StrFormat("%.6g", value)});
      first = false;
    }
  }
  out += table.ToString();
  return out;
}

Status ValidateBenchReportJson(const std::string& json) {
  JsonValue root;
  ALPHASORT_RETURN_IF_ERROR(ParseJson(json, &root));
  ALPHASORT_RETURN_IF_ERROR(CheckEnvelope(root, BenchReport::kKind,
                                          BenchReport::kSchemaVersion));
  const JsonValue* name = root.Find("name");
  if (name == nullptr || !name->IsString()) return Missing("name");
  const JsonValue* suites = root.Find("suites");
  if (suites == nullptr || !suites->IsArray()) return Missing("suites");
  if (suites->items.empty()) {
    return Status::Corruption("bench report has no suites");
  }
  for (size_t i = 0; i < suites->items.size(); ++i) {
    const JsonValue& entry = suites->items[i];
    const char* ctx = "suites[]";
    if (!entry.IsObject()) return Missing(ctx);
    const JsonValue* suite = entry.Find("suite");
    const JsonValue* config = entry.Find("config");
    if (suite == nullptr || !suite->IsString()) return Missing("suite");
    if (config == nullptr || !config->IsString()) return Missing("config");
    const JsonValue* values = entry.Find("metrics");
    if (values == nullptr || !values->IsObject()) return Missing("metrics");
    if (values->members.empty()) {
      return Status::Corruption(StrFormat(
          "suite \"%s\" has no metrics", suite->string_value.c_str()));
    }
    for (const auto& [key, value] : values->members) {
      if (!value.IsNumber()) {
        return Status::Corruption(StrFormat(
            "suite \"%s\" metric \"%s\" is not a number",
            suite->string_value.c_str(), key.c_str()));
      }
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace alphasort
