
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/exposition.cc" "src/obs/CMakeFiles/alphasort_obs.dir/exposition.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/exposition.cc.o.d"
  "/root/repo/src/obs/json.cc" "src/obs/CMakeFiles/alphasort_obs.dir/json.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/json.cc.o.d"
  "/root/repo/src/obs/log.cc" "src/obs/CMakeFiles/alphasort_obs.dir/log.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/log.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/obs/CMakeFiles/alphasort_obs.dir/metrics.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/metrics.cc.o.d"
  "/root/repo/src/obs/metrics_env.cc" "src/obs/CMakeFiles/alphasort_obs.dir/metrics_env.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/metrics_env.cc.o.d"
  "/root/repo/src/obs/perf_counters.cc" "src/obs/CMakeFiles/alphasort_obs.dir/perf_counters.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/perf_counters.cc.o.d"
  "/root/repo/src/obs/progress.cc" "src/obs/CMakeFiles/alphasort_obs.dir/progress.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/progress.cc.o.d"
  "/root/repo/src/obs/report.cc" "src/obs/CMakeFiles/alphasort_obs.dir/report.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/report.cc.o.d"
  "/root/repo/src/obs/sort_metrics.cc" "src/obs/CMakeFiles/alphasort_obs.dir/sort_metrics.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/sort_metrics.cc.o.d"
  "/root/repo/src/obs/timeline.cc" "src/obs/CMakeFiles/alphasort_obs.dir/timeline.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/timeline.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/obs/CMakeFiles/alphasort_obs.dir/trace.cc.o" "gcc" "src/obs/CMakeFiles/alphasort_obs.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
