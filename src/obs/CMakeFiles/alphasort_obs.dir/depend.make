# Empty dependencies file for alphasort_obs.
# This may be replaced when dependencies are built.
