file(REMOVE_RECURSE
  "CMakeFiles/alphasort_obs.dir/exposition.cc.o"
  "CMakeFiles/alphasort_obs.dir/exposition.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/json.cc.o"
  "CMakeFiles/alphasort_obs.dir/json.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/log.cc.o"
  "CMakeFiles/alphasort_obs.dir/log.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/metrics.cc.o"
  "CMakeFiles/alphasort_obs.dir/metrics.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/metrics_env.cc.o"
  "CMakeFiles/alphasort_obs.dir/metrics_env.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/perf_counters.cc.o"
  "CMakeFiles/alphasort_obs.dir/perf_counters.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/progress.cc.o"
  "CMakeFiles/alphasort_obs.dir/progress.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/report.cc.o"
  "CMakeFiles/alphasort_obs.dir/report.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/sort_metrics.cc.o"
  "CMakeFiles/alphasort_obs.dir/sort_metrics.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/timeline.cc.o"
  "CMakeFiles/alphasort_obs.dir/timeline.cc.o.d"
  "CMakeFiles/alphasort_obs.dir/trace.cc.o"
  "CMakeFiles/alphasort_obs.dir/trace.cc.o.d"
  "libalphasort_obs.a"
  "libalphasort_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
