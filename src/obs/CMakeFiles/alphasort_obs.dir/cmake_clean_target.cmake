file(REMOVE_RECURSE
  "libalphasort_obs.a"
)
