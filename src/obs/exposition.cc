#include "obs/exposition.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>

#include "common/table.h"
#include "obs/json.h"

namespace alphasort {
namespace obs {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c));
}

bool IsLabelNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void AppendType(const std::string& name, const char* type,
                std::string* out) {
  *out += "# TYPE " + name + " " + type + "\n";
}

void AppendJobSample(const std::string& name, uint64_t job,
                     const std::string& extra_labels,
                     const std::string& value, std::string* out) {
  *out += name + "{job=\"" +
          StrFormat("%llu", static_cast<unsigned long long>(job)) + "\"" +
          extra_labels + "} " + value + "\n";
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out = "alphasort_";
  for (char c : name) {
    out.push_back(IsNameChar(c) ? c : '_');
  }
  return out;
}

std::string RenderExposition(const RegistrySnapshot& registry,
                             const std::vector<JobProgress>& jobs) {
  std::string out;

  // Counters and gauges: one family per registry entry, zero values
  // included — scrapers treat series presence as meaningful.
  for (const auto& [name, value] : registry.counters) {
    const std::string metric = SanitizeMetricName(name);
    AppendType(metric, "counter", &out);
    out += metric + " " +
           StrFormat("%llu", static_cast<unsigned long long>(value)) + "\n";
  }
  for (const auto& [name, value] : registry.gauges) {
    const std::string metric = SanitizeMetricName(name);
    AppendType(metric, "gauge", &out);
    out += metric + " " +
           StrFormat("%lld", static_cast<long long>(value)) + "\n";
  }

  // Histograms as summaries: precomputed quantiles, not raw buckets —
  // the registry's power-of-two buckets don't map onto Prometheus
  // histogram le= boundaries, and p50/p95/p99 is what the docs already
  // report everywhere else.
  for (const auto& [name, snap] : registry.histograms) {
    const std::string metric = SanitizeMetricName(name);
    AppendType(metric, "summary", &out);
    for (const double q : {0.5, 0.95, 0.99}) {
      out += metric + "{quantile=\"" + JsonNumber(q) + "\"} " +
             JsonNumber(snap.Percentile(q * 100)) + "\n";
    }
    out += metric + "_sum " +
           StrFormat("%llu", static_cast<unsigned long long>(snap.sum)) +
           "\n";
    out += metric + "_count " +
           StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           "\n";
  }

  // Live jobs: one series per job per facet, labelled by job id. The
  // phase is exposed twice — numerically (plot it) and as a label on
  // the info series (read it).
  if (!jobs.empty()) {
    AppendType("alphasort_job_phase", "gauge", &out);
    for (const JobProgress& j : jobs) {
      AppendJobSample("alphasort_job_phase", j.job_id, "",
                      StrFormat("%d", static_cast<int>(j.phase)), &out);
    }
    AppendType("alphasort_job_info", "gauge", &out);
    for (const JobProgress& j : jobs) {
      std::string labels =
          ",phase=\"" + EscapeLabelValue(SortPhaseName(j.phase)) + "\"";
      if (j.trace_id != 0) {
        labels += StrFormat(
            ",trace=\"%llu\"",
            static_cast<unsigned long long>(j.trace_id));
      }
      AppendJobSample("alphasort_job_info", j.job_id, labels, "1", &out);
    }
    AppendType("alphasort_job_fraction", "gauge", &out);
    for (const JobProgress& j : jobs) {
      AppendJobSample("alphasort_job_fraction", j.job_id, "",
                      JsonNumber(j.fraction), &out);
    }
    AppendType("alphasort_job_bytes_per_second", "gauge", &out);
    for (const JobProgress& j : jobs) {
      AppendJobSample("alphasort_job_bytes_per_second", j.job_id, "",
                      JsonNumber(j.bytes_per_s), &out);
    }
    AppendType("alphasort_job_eta_seconds", "gauge", &out);
    for (const JobProgress& j : jobs) {
      AppendJobSample("alphasort_job_eta_seconds", j.job_id, "",
                      JsonNumber(j.eta_s), &out);
    }
  }
  return out;
}

std::string RenderExposition() {
  return RenderExposition(MetricsRegistry::Global()->Snapshot(),
                          ProgressRegistry::Global()->Snapshot());
}

// ---------------------------------------------------------------------
// Format validation: a line-oriented pass over the grammar.

namespace {

class ExpositionChecker {
 public:
  explicit ExpositionChecker(const std::string& text) : text_(text) {}

  Status Check() {
    size_t pos = 0;
    size_t line_no = 0;
    size_t samples = 0;
    while (pos <= text_.size()) {
      const size_t eol = text_.find('\n', pos);
      if (eol == std::string::npos && pos >= text_.size()) break;
      const std::string line =
          text_.substr(pos, eol == std::string::npos ? std::string::npos
                                                     : eol - pos);
      pos = eol == std::string::npos ? text_.size() + 1 : eol + 1;
      ++line_no;
      if (line.empty()) continue;
      Status s = line[0] == '#' ? CheckComment(line) : CheckSample(line);
      if (!s.ok()) {
        return Status::Corruption(StrFormat(
            "exposition line %zu invalid: %s (\"%s\")", line_no,
            s.message().c_str(), line.c_str()));
      }
      if (line[0] != '#') ++samples;
    }
    if (samples == 0) {
      return Status::Corruption("exposition contains no samples");
    }
    return Status::OK();
  }

 private:
  Status CheckComment(const std::string& line) {
    // "# HELP name ..." / "# TYPE name type" / free-form comment.
    if (line.rfind("# TYPE ", 0) != 0) return Status::OK();
    const std::string rest = line.substr(7);
    const size_t sp = rest.find(' ');
    if (sp == std::string::npos) {
      return Status::Corruption("TYPE line missing metric type");
    }
    const std::string name = rest.substr(0, sp);
    const std::string type = rest.substr(sp + 1);
    if (!ValidName(name)) {
      return Status::Corruption("TYPE line has invalid metric name");
    }
    if (type != "counter" && type != "gauge" && type != "summary" &&
        type != "histogram" && type != "untyped") {
      return Status::Corruption(
          StrFormat("unknown metric type \"%s\"", type.c_str()));
    }
    if (declared_.count(name) != 0) {
      return Status::Corruption(
          StrFormat("duplicate TYPE for \"%s\"", name.c_str()));
    }
    declared_[name] = type;
    return Status::OK();
  }

  Status CheckSample(const std::string& line) {
    size_t i = 0;
    const size_t name_start = i;
    if (i >= line.size() || !IsNameStartChar(line[i])) {
      return Status::Corruption("sample does not start with a metric name");
    }
    while (i < line.size() && IsNameChar(line[i])) ++i;
    const std::string name = line.substr(name_start, i - name_start);

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        // label_name="value",
        const size_t lstart = i;
        while (i < line.size() && IsLabelNameChar(line[i])) ++i;
        if (i == lstart) return Status::Corruption("empty label name");
        if (i >= line.size() || line[i] != '=') {
          return Status::Corruption("label missing '='");
        }
        ++i;
        if (i >= line.size() || line[i] != '"') {
          return Status::Corruption("label value missing opening quote");
        }
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') ++i;  // skip the escaped character
          ++i;
        }
        if (i >= line.size()) {
          return Status::Corruption("label value missing closing quote");
        }
        ++i;  // closing quote
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return Status::Corruption("unterminated labels");
      ++i;  // '}'
    }

    if (i >= line.size() || line[i] != ' ') {
      return Status::Corruption("sample missing value separator");
    }
    ++i;
    const std::string value = line.substr(i);
    if (value.empty()) return Status::Corruption("sample missing value");
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::Corruption(
            StrFormat("sample value \"%s\" is not a number", value.c_str()));
      }
    }

    // Family discipline: every sample's family must be declared. Summary
    // and histogram samples may carry _sum/_count (and _bucket)
    // suffixes on the declared family name.
    if (declared_.count(name) != 0) return Status::OK();
    for (const char* suffix : {"_sum", "_count", "_bucket"}) {
      const size_t n = std::string(suffix).size();
      if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
        const std::string family = name.substr(0, name.size() - n);
        auto it = declared_.find(family);
        if (it != declared_.end() &&
            (it->second == "summary" || it->second == "histogram")) {
          return Status::OK();
        }
      }
    }
    return Status::Corruption(
        StrFormat("sample \"%s\" has no preceding TYPE declaration",
                  name.c_str()));
  }

  static bool ValidName(const std::string& name) {
    if (name.empty() || !IsNameStartChar(name[0])) return false;
    for (char c : name) {
      if (!IsNameChar(c)) return false;
    }
    return true;
  }

  const std::string& text_;
  std::map<std::string, std::string> declared_;
};

}  // namespace

Status ValidateExpositionText(const std::string& text) {
  return ExpositionChecker(text).Check();
}

// ---------------------------------------------------------------------
// Flight recorder.

std::string RenderFlightRecord() {
  const uint64_t ts_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const std::vector<JobProgress> jobs =
      ProgressRegistry::Global()->Snapshot();
  const RegistrySnapshot reg = MetricsRegistry::Global()->Snapshot();

  std::string out = StrFormat(
      "{\"ts_ms\":%llu,\"jobs\":[",
      static_cast<unsigned long long>(ts_ms));
  bool first = true;
  for (const JobProgress& j : jobs) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"id\":%llu,\"phase\":\"%s\",\"fraction\":%s,\"eta_s\":%s,"
        "\"bytes_per_s\":%s,\"bytes_read\":%llu,\"bytes_merged\":%llu",
        static_cast<unsigned long long>(j.job_id), SortPhaseName(j.phase),
        JsonNumber(j.fraction).c_str(), JsonNumber(j.eta_s).c_str(),
        JsonNumber(j.bytes_per_s).c_str(),
        static_cast<unsigned long long>(j.bytes_read),
        static_cast<unsigned long long>(j.bytes_merged));
    if (j.trace_id != 0) {
      out += StrFormat(",\"trace\":%llu",
                       static_cast<unsigned long long>(j.trace_id));
    }
    out += "}";
  }
  out += "],\"gauges\":{";
  first = true;
  for (const auto& [name, value] : reg.gauges) {
    if (value == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += StrFormat("\":%lld", static_cast<long long>(value));
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : reg.counters) {
    if (value == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(name, &out);
    out += StrFormat("\":%llu", static_cast<unsigned long long>(value));
  }
  out += "}}";
  return out;
}

Status ValidateFlightRecorderJsonl(const std::string& content) {
  size_t line_no = 0;
  size_t pos = 0;
  size_t parsed = 0;
  while (pos <= content.size()) {
    const size_t eol = content.find('\n', pos);
    const std::string line =
        content.substr(pos, eol == std::string::npos ? std::string::npos
                                                     : eol - pos);
    pos = eol == std::string::npos ? content.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;
    JsonValue root;
    if (Status s = ParseJson(line, &root); !s.ok()) {
      return Status::Corruption(StrFormat(
          "flight record line %zu does not parse: %s", line_no,
          s.message().c_str()));
    }
    if (!root.IsObject()) {
      return Status::Corruption(
          StrFormat("flight record line %zu is not an object", line_no));
    }
    const JsonValue* ts = root.Find("ts_ms");
    if (ts == nullptr || !ts->IsNumber()) {
      return Status::Corruption(StrFormat(
          "flight record line %zu missing numeric \"ts_ms\"", line_no));
    }
    const JsonValue* jobs = root.Find("jobs");
    if (jobs == nullptr || !jobs->IsArray()) {
      return Status::Corruption(StrFormat(
          "flight record line %zu missing \"jobs\" array", line_no));
    }
    ++parsed;
  }
  if (parsed == 0) {
    return Status::Corruption("flight recorder capture is empty");
  }
  return Status::OK();
}

FlightRecorder::FlightRecorder(const Options& options)
    : options_(options) {}

FlightRecorder::~FlightRecorder() { Stop(); }

Status FlightRecorder::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr) {
      file_ = std::fopen(options_.path.c_str(), "w");
      if (file_ == nullptr) {
        return Status::IOError(
            StrFormat("cannot open flight recorder file %s",
                      options_.path.c_str()));
      }
      written_ = 0;
    }
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
  running_ = true;
  return Status::OK();
}

void FlightRecorder::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (running_) {
    thread_.join();
    running_ = false;
    // One terminal record so the file ends with the final job states.
    RecordOnce();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status FlightRecorder::RecordOnce() {
  const std::string line = RenderFlightRecord();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    file_ = std::fopen(options_.path.c_str(), "w");
    if (file_ == nullptr) {
      return Status::IOError(StrFormat(
          "cannot open flight recorder file %s", options_.path.c_str()));
    }
    written_ = 0;
  }
  return AppendLocked(line);
}

Status FlightRecorder::AppendLocked(const std::string& line) {
  if (written_ + line.size() + 1 > options_.max_bytes && written_ > 0) {
    // Rotate: the previous generation replaces any older one, bounding
    // total history at ~2x max_bytes.
    std::fclose(file_);
    file_ = nullptr;
    const std::string rotated = options_.path + ".1";
    std::remove(rotated.c_str());
    std::rename(options_.path.c_str(), rotated.c_str());
    file_ = std::fopen(options_.path.c_str(), "w");
    if (file_ == nullptr) {
      return Status::IOError(StrFormat(
          "cannot reopen flight recorder file %s", options_.path.c_str()));
    }
    written_ = 0;
  }
  std::fprintf(file_, "%s\n", line.c_str());
  std::fflush(file_);
  written_ += line.size() + 1;
  return Status::OK();
}

void FlightRecorder::Loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_s > 0 ? options_.interval_s : 0.25);
  while (!stop_.load(std::memory_order_relaxed)) {
    RecordOnce();
    // Sleep in small slices so Stop() is prompt.
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        interval);
    while (remaining.count() > 0 &&
           !stop_.load(std::memory_order_relaxed)) {
      const auto slice =
          std::min(remaining, std::chrono::milliseconds(20));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

}  // namespace obs
}  // namespace alphasort
