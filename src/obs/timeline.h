#ifndef ALPHASORT_OBS_TIMELINE_H_
#define ALPHASORT_OBS_TIMELINE_H_

#include <cstdint>

namespace alphasort {

struct SortMetrics;  // obs/sort_metrics.h

namespace obs {

// Per-job latency attribution for the networked service.
//
// The paper's argument is an accounting argument (§4, §7): every second
// of elapsed time is attributed to a stage, and the win comes from
// overlapping the stages. A service job's ResultFrame::elapsed_us is the
// opposite — one opaque number. JobTimeline decomposes a job's
// end-to-end time into the stages a network sort actually passes
// through:
//
//   ingest  receiving the upload (net.ingest span). DATA frames feed a
//           StreamRecordSource the pipeline reads concurrently, so the
//           sort's read pass runs *during* this stage — ingest and sort
//           are overlapped wall time, not consecutive.
//   queue   admission + queue wait not covered by pipeline work
//   sort    startup + read/QuickSort + last-run laps of the pipeline
//   merge   merge + close laps of the pipeline
//   stream  streaming the sorted output back (net.stream_back span)
//
// The server measures ingest/wait/stream around its own span boundaries
// and takes sort/merge from the job's SortMetrics phase laps. Because
// the pipeline runs during both the ingest and the measured wait, queue
// time is derived, not measured:
//
//   queue_us = wait_us - min(wait_us, sort_us + merge_us)
//
// and — unlike the old store-and-forward spool — StageSum() can exceed
// e2e_us: ingest_us and the sort's read lap cover the same wall clock.
// The overlap itself is observable as e2e < ingest + queue + sort +
// merge + stream. The non-overlapped stages (queue + merge + stream)
// still fit inside e2e, which net_service_test asserts. The breakdown
// travels back to the client in the v2 ResultFrame, feeds the
// net.job.*_us histograms, and — for jobs over a configurable
// threshold — is emitted whole as a svc.job.slow log event.
struct JobTimeline {
  uint64_t job_id = 0;
  uint64_t trace_id = 0;
  uint64_t ingest_us = 0;
  uint64_t queue_us = 0;
  uint64_t sort_us = 0;
  uint64_t merge_us = 0;
  uint64_t stream_us = 0;
  uint64_t e2e_us = 0;

  // ingest + queue + sort + merge + stream. May exceed e2e_us: ingest
  // overlaps the sort's read pass (see above).
  uint64_t StageSum() const;

  // Fills sort_us and merge_us from the pipeline's phase laps
  // (sort = startup + read + last-run, merge = merge + close).
  void FillFromSortMetrics(const SortMetrics& m);

  // Derives queue_us from the connection thread's measured wall wait
  // around the service handle (see the overlap note above).
  void DeriveQueue(uint64_t wait_us);
};

// Records the breakdown into the global registry's net.job.{ingest,queue,
// sort,merge,stream,e2e}_us histograms (exported by RenderExposition as
// alphasort_net_job_*_us summaries).
void RecordTimelineHistograms(const JobTimeline& t);

// Emits a svc.job.slow warning carrying the full breakdown when
// t.e2e_us >= threshold_us. threshold_us == 0 disables the check. The
// event is stamped with the timeline's job and trace ids regardless of
// the caller's ambient scope.
void MaybeLogSlowJob(const JobTimeline& t, uint64_t threshold_us);

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_TIMELINE_H_
