#include "obs/sort_metrics.h"

#include <cmath>

#include "common/table.h"

namespace alphasort {

namespace {

std::string IoLine(const char* label, const IoLatencyStats& io) {
  return StrFormat(
      "io %s: %llu ops, %.1f MB, p50 %.0f us | p95 %.0f us | p99 %.0f us "
      "| max %.0f us\n",
      label, static_cast<unsigned long long>(io.ops), io.bytes / 1e6,
      io.p50_us, io.p95_us, io.p99_us, io.max_us);
}

}  // namespace

SortThroughput SortMetrics::Throughput() const {
  const double seconds = total_s > 0 ? total_s : PhaseSum();
  SortThroughput t;
  if (seconds > 0) {
    t.mb_per_s = bytes_in / 1e6 / seconds;
    t.records_per_s = double(num_records) / seconds;
  }
  return t;
}

std::string SortMetrics::ToString() const {
  std::string out;
  out += StrFormat("records: %llu (%.1f MB in, %.1f MB out), %d pass(es)\n",
                   static_cast<unsigned long long>(num_records),
                   bytes_in / 1e6, bytes_out / 1e6, passes);
  out += StrFormat("runs: %llu, merge ranges: %llu\n",
                   static_cast<unsigned long long>(num_runs),
                   static_cast<unsigned long long>(merge_ranges));
  out += StrFormat(
      "phases (s): startup %.4f | read+quicksort %.4f | last run %.4f | "
      "merge+gather+write %.4f | close %.4f | total %.4f\n",
      startup_s, read_phase_s, last_run_s, merge_phase_s, close_s, total_s);
  // A total that disagrees with its parts by more than timer noise means
  // some phase went untimed; surface it rather than report it silently.
  if (total_s > 0 &&
      std::abs(total_s - PhaseSum()) > 0.05 * total_s + 1e-4) {
    out += StrFormat("  (warning: phase sum %.4f s != total %.4f s)\n",
                     PhaseSum(), total_s);
  }
  const SortThroughput t = Throughput();
  if (t.mb_per_s > 0) {
    out += StrFormat("throughput: %.1f MB/s, %.0f records/s\n", t.mb_per_s,
                     t.records_per_s);
  }
  if (read_io.Valid()) out += IoLine("reads", read_io);
  if (write_io.Valid()) out += IoLine("writes", write_io);
  out += StrFormat(
      "quicksort: %llu compares, %llu exchanges, %llu tie-breaks\n",
      static_cast<unsigned long long>(quicksort_stats.compares),
      static_cast<unsigned long long>(quicksort_stats.exchanges),
      static_cast<unsigned long long>(quicksort_stats.tie_breaks));
  out += StrFormat("merge: %llu compares, %llu tie-breaks\n",
                   static_cast<unsigned long long>(merge_stats.compares),
                   static_cast<unsigned long long>(merge_stats.tie_breaks));
  if (passes == 2) {
    out += StrFormat("scratch: %.1f MB written, %llu run checksum(s) "
                     "verified\n",
                     scratch_bytes_written / 1e6,
                     static_cast<unsigned long long>(runs_checksum_verified));
  }
  if (io_retries > 0) {
    out += StrFormat(
        "retries: %llu re-attempts, %llu op(s) recovered, %llu exhausted\n",
        static_cast<unsigned long long>(io_retries),
        static_cast<unsigned long long>(io_retries_recovered),
        static_cast<unsigned long long>(io_retries_exhausted));
  }
  if (output_crc32c != 0) {
    out += StrFormat("output crc32c: %08x\n", output_crc32c);
  }
  out += perf.ToString();
  return out;
}

}  // namespace alphasort
