#ifndef ALPHASORT_OBS_EXPOSITION_H_
#define ALPHASORT_OBS_EXPOSITION_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace alphasort {
namespace obs {

// Point-in-time text exposition of the whole observability surface —
// every registry counter, gauge, and histogram plus per-job live
// progress — in the Prometheus text format (version 0.0.4), so a
// scraper, a curl loop, or examples/sort_top can watch a running
// service without bespoke protocols:
//
//   # TYPE alphasort_svc_jobs_running gauge
//   alphasort_svc_jobs_running 3
//   # TYPE alphasort_job_fraction gauge
//   alphasort_job_fraction{job="7"} 0.42
//
// Metric names are sanitized ('.' and any other illegal character
// become '_') and prefixed "alphasort_". Histograms render as summaries
// (p50/p95/p99 quantiles plus _sum and _count).

// Renders the global registry and the live jobs in ProgressRegistry.
std::string RenderExposition();

// Deterministic variant for tests and embedding: renders exactly the
// given snapshot and job list.
std::string RenderExposition(const RegistrySnapshot& registry,
                             const std::vector<JobProgress>& jobs);

// Prometheus-compatible metric name from a registry name:
// "svc.jobs_running" -> "alphasort_svc_jobs_running".
std::string SanitizeMetricName(const std::string& name);

// Checks `text` against the exposition grammar: every line is a
// comment, a "# TYPE <name> <type>" declaration, or a
// "name{labels} value" sample whose family was declared by a preceding
// TYPE line; names and labels match the Prometheus charset; values
// parse as numbers. Requires at least one sample. This is the format
// validator the CI smoke gate round-trips a scrape through.
Status ValidateExpositionText(const std::string& text);

// One flight-recorder record: a compact JSON object with a wall-clock
// timestamp, every live job's progress, and the nonzero counters and
// gauges. Appended as one JSONL line per tick.
std::string RenderFlightRecord();

// Validates a flight-recorder capture: every non-empty line parses as a
// JSON object with numeric "ts_ms" and a "jobs" array. Used by
// expo_lint --flight.
Status ValidateFlightRecorderJsonl(const std::string& content);

// Periodically appends RenderFlightRecord() lines to a bounded JSONL
// file so a crashed or wedged sort leaves a timeline: the last record
// holds every live job's last-known phase and fraction. The file is
// bounded by rotation — when it passes max_bytes it is renamed to
// "<path>.1" (replacing any previous rotation) and restarted, so the
// recorder holds at most ~2x max_bytes of history.
class FlightRecorder {
 public:
  struct Options {
    std::string path;
    double interval_s = 0.25;
    uint64_t max_bytes = 4ull << 20;
  };

  explicit FlightRecorder(const Options& options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Opens the file and starts the background tick thread.
  Status Start();

  // Writes one final record and stops the thread. Idempotent.
  void Stop();

  // Appends one record now (also usable without Start() for
  // deterministic captures in tests).
  Status RecordOnce();

 private:
  void Loop();
  Status AppendLocked(const std::string& line);

  const Options options_;
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  uint64_t written_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  bool running_ = false;
};

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_EXPOSITION_H_
