#include "obs/timeline.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/sort_metrics.h"
#include "obs/trace.h"

namespace alphasort {
namespace obs {

namespace {

uint64_t SecondsToMicros(double s) {
  if (s <= 0) return 0;
  return static_cast<uint64_t>(s * 1e6);
}

}  // namespace

uint64_t JobTimeline::StageSum() const {
  return ingest_us + queue_us + sort_us + merge_us + stream_us;
}

void JobTimeline::FillFromSortMetrics(const SortMetrics& m) {
  sort_us = SecondsToMicros(m.startup_s) + SecondsToMicros(m.read_phase_s) +
            SecondsToMicros(m.last_run_s);
  merge_us = SecondsToMicros(m.merge_phase_s) + SecondsToMicros(m.close_s);
}

void JobTimeline::DeriveQueue(uint64_t wait_us) {
  queue_us = wait_us - std::min(wait_us, sort_us + merge_us);
}

void RecordTimelineHistograms(const JobTimeline& t) {
  // Function-local statics: one registry lookup per process, lock-free
  // recording afterwards (the registry owns the histograms forever).
  static Histogram* ingest =
      MetricsRegistry::Global()->GetHistogram("net.job.ingest_us");
  static Histogram* queue =
      MetricsRegistry::Global()->GetHistogram("net.job.queue_us");
  static Histogram* sort =
      MetricsRegistry::Global()->GetHistogram("net.job.sort_us");
  static Histogram* merge =
      MetricsRegistry::Global()->GetHistogram("net.job.merge_us");
  static Histogram* stream =
      MetricsRegistry::Global()->GetHistogram("net.job.stream_us");
  static Histogram* e2e =
      MetricsRegistry::Global()->GetHistogram("net.job.e2e_us");
  ingest->Record(t.ingest_us);
  queue->Record(t.queue_us);
  sort->Record(t.sort_us);
  merge->Record(t.merge_us);
  stream->Record(t.stream_us);
  e2e->Record(t.e2e_us);
}

void MaybeLogSlowJob(const JobTimeline& t, uint64_t threshold_us) {
  if (threshold_us == 0 || t.e2e_us < threshold_us) return;
  // Re-establish the ids explicitly: the slow check may run after the
  // connection thread's job scope has already unwound.
  ScopedJobId job_scope(t.job_id);
  ScopedTraceId trace_scope(t.trace_id);
  ALPHASORT_LOG(kWarn, "svc.job.slow")
      .U64("e2e_us", t.e2e_us)
      .U64("ingest_us", t.ingest_us)
      .U64("queue_us", t.queue_us)
      .U64("sort_us", t.sort_us)
      .U64("merge_us", t.merge_us)
      .U64("stream_us", t.stream_us)
      .U64("threshold_us", threshold_us);
}

}  // namespace obs
}  // namespace alphasort
