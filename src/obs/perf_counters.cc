#include "obs/perf_counters.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "common/table.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define ALPHASORT_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define ALPHASORT_HAVE_PERF_EVENT 0
#endif

namespace alphasort {
namespace obs {

const char* PerfEventName(PerfEvent e) {
  switch (e) {
    case PerfEvent::kCycles: return "cycles";
    case PerfEvent::kInstructions: return "instructions";
    case PerfEvent::kCacheReferences: return "cache_references";
    case PerfEvent::kCacheMisses: return "cache_misses";
    case PerfEvent::kBranchMisses: return "branch_misses";
  }
  return "unknown";
}

namespace {

// Maps the wrapper's event enum to the kernel's generalized hardware
// event ids. The (type, config) pair is all the open hook sees, so tests
// can fake the syscall without linux headers.
struct EventSpec {
  uint32_t type;
  uint64_t config;
};

#if ALPHASORT_HAVE_PERF_EVENT
EventSpec SpecFor(PerfEvent e) {
  switch (e) {
    case PerfEvent::kCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case PerfEvent::kInstructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case PerfEvent::kCacheReferences:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES};
    case PerfEvent::kCacheMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES};
    case PerfEvent::kBranchMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES};
  }
  return {0, 0};
}

// The real syscall: a per-thread (pid=0), any-cpu (-1), user-space-only
// counter that starts enabled. TOTAL_TIME_ENABLED/RUNNING let readers
// scale counts when the PMU multiplexes.
int RealOpen(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd =
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
              /*group_fd=*/-1, /*flags=*/0UL);
  if (fd < 0) return -errno;
  return static_cast<int>(fd);
}
#else
int RealOpen(uint32_t, uint64_t) { return -ENOSYS; }
#endif

// "EPERM" etc. plus the likely fix, for the report's
// "unavailable_reason" field.
std::string DescribeOpenError(int err) {
  switch (err) {
    case EPERM:
    case EACCES:
      return "perf_event_open denied (EPERM/EACCES): lower "
             "/proc/sys/kernel/perf_event_paranoid or grant "
             "CAP_PERFMON; containers often filter the syscall";
    case ENOSYS:
      return "perf_event_open unsupported by this kernel (ENOSYS)";
    case ENOENT:
      return "hardware event not supported on this CPU/PMU (ENOENT)";
    case ENODEV:
      return "no PMU available, e.g. a VM without PMU virtualization "
             "(ENODEV)";
    default:
      return StrFormat("perf_event_open failed: %s (errno %d)",
                       strerror(err), err);
  }
}

}  // namespace

PerfCounterGroup::PerfCounterGroup(OpenFn open_fn) {
  fds_.fill(-1);
  if (open_fn == nullptr) open_fn = &RealOpen;
  int first_error = 0;
  for (int i = 0; i < kNumPerfEvents; ++i) {
#if ALPHASORT_HAVE_PERF_EVENT
    const EventSpec spec = SpecFor(static_cast<PerfEvent>(i));
#else
    const EventSpec spec = {0, static_cast<uint64_t>(i)};
#endif
    const int fd = open_fn(spec.type, spec.config);
    if (fd >= 0) {
      fds_[i] = fd;
      ++available_count_;
    } else if (first_error == 0) {
      first_error = -fd;
    }
  }
  if (available_count_ == 0) {
    unavailable_reason_ = DescribeOpenError(
        first_error == 0 ? ENOSYS : first_error);
  }
}

PerfCounterGroup::~PerfCounterGroup() {
#if ALPHASORT_HAVE_PERF_EVENT
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

PerfReadingSet PerfCounterGroup::Read() const {
  PerfReadingSet out{};
#if ALPHASORT_HAVE_PERF_EVENT
  for (int i = 0; i < kNumPerfEvents; ++i) {
    if (fds_[i] < 0) continue;
    // With TOTAL_TIME_ENABLED|TOTAL_TIME_RUNNING the kernel returns
    // three u64s: value, time_enabled, time_running.
    uint64_t buf[3] = {0, 0, 0};
    const ssize_t got = read(fds_[i], buf, sizeof(buf));
    if (got == static_cast<ssize_t>(sizeof(buf))) {
      out[i].value = buf[0];
      out[i].time_enabled = buf[1];
      out[i].time_running = buf[2];
    }
  }
#endif
  return out;
}

void PerfDelta::Merge(const PerfDelta& o) {
  samples += o.samples;
  cycles += o.cycles;
  instructions += o.instructions;
  cache_references += o.cache_references;
  cache_misses += o.cache_misses;
  branch_misses += o.branch_misses;
  if (o.available) {
    running_ratio =
        available ? std::min(running_ratio, o.running_ratio)
                  : o.running_ratio;
    available = true;
    unavailable_reason.clear();
  } else if (!available && unavailable_reason.empty()) {
    unavailable_reason = o.unavailable_reason;
  }
}

double PerfDelta::Ipc() const {
  return cycles > 0 ? instructions / cycles : 0;
}

double PerfDelta::CacheMissRate() const {
  return cache_references > 0 ? cache_misses / cache_references : 0;
}

PerfDelta ComputeDelta(const PerfCounterGroup& group,
                       const PerfReadingSet& before,
                       const PerfReadingSet& after) {
  PerfDelta delta;
  delta.samples = 1;
  if (!group.available()) {
    delta.unavailable_reason = group.unavailable_reason();
    return delta;
  }
  delta.available = true;
  for (int i = 0; i < kNumPerfEvents; ++i) {
    if (!group.event_available(static_cast<PerfEvent>(i))) continue;
    const uint64_t dv = after[i].value - before[i].value;
    const uint64_t de = after[i].time_enabled - before[i].time_enabled;
    const uint64_t dr = after[i].time_running - before[i].time_running;
    // Multiplex scaling: the count observed while running, extrapolated
    // to the full enabled window. dr == 0 with de > 0 means the event
    // never got a PMU slot in this region — report 0, ratio 0.
    double scaled = static_cast<double>(dv);
    double ratio = 1.0;
    if (de > 0) {
      ratio = static_cast<double>(dr) / static_cast<double>(de);
      scaled = dr > 0 ? static_cast<double>(dv) *
                            (static_cast<double>(de) /
                             static_cast<double>(dr))
                      : 0.0;
    }
    delta.running_ratio = std::min(delta.running_ratio, ratio);
    switch (static_cast<PerfEvent>(i)) {
      case PerfEvent::kCycles: delta.cycles = scaled; break;
      case PerfEvent::kInstructions: delta.instructions = scaled; break;
      case PerfEvent::kCacheReferences:
        delta.cache_references = scaled;
        break;
      case PerfEvent::kCacheMisses: delta.cache_misses = scaled; break;
      case PerfEvent::kBranchMisses: delta.branch_misses = scaled; break;
    }
  }
  return delta;
}

namespace {

// The one global accumulator slot plus the pin count that keeps the
// installed accumulator alive while ScopedPerfRegions reference it.
// Function-local static so the slot outlives any static accumulator.
struct AccumulatorSlot {
  std::mutex mu;
  std::condition_variable cv;
  PerfAccumulator* acc = nullptr;
  int pins = 0;
};

AccumulatorSlot& Slot() {
  static AccumulatorSlot* slot = new AccumulatorSlot();
  return *slot;
}

}  // namespace

PerfAccumulator::~PerfAccumulator() { Uninstall(); }

bool PerfAccumulator::TryInstall() {
  AccumulatorSlot& slot = Slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.acc != nullptr) return false;
  slot.acc = this;
  return true;
}

void PerfAccumulator::Uninstall() {
  AccumulatorSlot& slot = Slot();
  std::unique_lock<std::mutex> lock(slot.mu);
  if (slot.acc != this) return;
  // Drain regions already pinned to this accumulator before letting the
  // caller destroy it. Regions release their pin at scope exit and never
  // block on the slot while pinned, so this always terminates.
  slot.cv.wait(lock, [&slot] { return slot.pins == 0; });
  slot.acc = nullptr;
}

PerfAccumulator* PerfAccumulator::Current() {
  AccumulatorSlot& slot = Slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.acc;
}

PerfAccumulator* PerfAccumulator::AcquirePin() {
  AccumulatorSlot& slot = Slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.acc == nullptr) return nullptr;
  ++slot.pins;
  return slot.acc;
}

void PerfAccumulator::ReleasePin() {
  AccumulatorSlot& slot = Slot();
  std::lock_guard<std::mutex> lock(slot.mu);
  if (--slot.pins == 0) slot.cv.notify_all();
}

void PerfAccumulator::Add(const char* region, const PerfDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  regions_[region].Merge(delta);
}

std::map<std::string, PerfDelta> PerfAccumulator::Regions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_;
}

PerfCounterGroup* ThreadPerfGroup() {
  static thread_local PerfCounterGroup group;
  return &group;
}

ScopedPerfRegion::ScopedPerfRegion(const char* region)
    : acc_(PerfAccumulator::AcquirePin()), region_(region) {
  if (acc_ != nullptr) before_ = ThreadPerfGroup()->Read();
}

ScopedPerfRegion::~ScopedPerfRegion() {
  if (acc_ == nullptr) return;
  PerfCounterGroup* group = ThreadPerfGroup();
  acc_->Add(region_, ComputeDelta(*group, before_, group->Read()));
  PerfAccumulator::ReleasePin();
}

bool PerfReport::AnyAvailable() const {
  for (const auto& [name, delta] : regions) {
    if (delta.available) return true;
  }
  return false;
}

std::string PerfReport::UnavailableReason() const {
  for (const auto& [name, delta] : regions) {
    if (!delta.unavailable_reason.empty()) return delta.unavailable_reason;
  }
  return "";
}

std::string PerfReport::ToString() const {
  if (!attempted) return "";
  if (regions.empty()) {
    return "hw counters: attempted, no instrumented regions ran\n";
  }
  if (!AnyAvailable()) {
    const std::string reason = UnavailableReason();
    return StrFormat("hw counters: unavailable (%s)\n",
                     reason.empty() ? "unknown" : reason.c_str());
  }
  std::string out;
  for (const auto& [name, d] : regions) {
    if (!d.available) continue;
    out += StrFormat(
        "hw %-12s cycles %.3g  instr %.3g  ipc %.2f  cache-refs %.3g  "
        "cache-miss %.3g (%.1f%%)  branch-miss %.3g  (%llu samples, "
        "%.0f%% counted)\n",
        name.c_str(), d.cycles, d.instructions, d.Ipc(),
        d.cache_references, d.cache_misses, 100 * d.CacheMissRate(),
        d.branch_misses, static_cast<unsigned long long>(d.samples),
        100 * d.running_ratio);
  }
  return out;
}

}  // namespace obs
}  // namespace alphasort
