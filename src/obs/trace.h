#ifndef ALPHASORT_OBS_TRACE_H_
#define ALPHASORT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace alphasort {
namespace obs {

// Span-based trace recorder exporting Chrome trace-event JSON.
//
// The pipeline's whole argument (paper §7) is overlap: striped reads
// proceed while workers QuickSort runs, and the merge's gather proceeds
// while earlier output buffers drain. A wall-clock phase breakdown cannot
// show overlap; a per-thread span timeline can. The recorder collects
// begin/end events into a bounded lock-free ring buffer and serializes
// them in the Chrome trace-event format, so a sort's execution opens
// directly in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is off by default and costs one relaxed atomic load per
// instrumentation point when off. Enable it by installing a recorder:
//
//   obs::TraceRecorder recorder;
//   recorder.Install();
//   ... run the sort ...
//   obs::TraceRecorder::Uninstall();
//   std::string json = recorder.ToChromeJson();

// Small dense id for the calling thread (0, 1, 2, ... in first-use
// order), stable for the thread's lifetime. Used as the Chrome "tid".
int CurrentThreadId();

// The ambient job id of the calling thread (0 = no job). Concurrent
// jobs share one ChorePool and one trace ring, so a thread id alone
// cannot attribute a span; every span, log event, and progress update
// reads this thread-local instead. Executors set it on the job's root
// thread for the whole run, and each chore lambda re-establishes it on
// whichever worker picked the chore up.
uint64_t CurrentJobId();

// RAII job-id scope: sets the calling thread's ambient job id, restores
// the previous value on destruction (nesting restores correctly when an
// executor thread runs another job's chore inline).
class ScopedJobId {
 public:
  explicit ScopedJobId(uint64_t job_id);
  ~ScopedJobId();

  ScopedJobId(const ScopedJobId&) = delete;
  ScopedJobId& operator=(const ScopedJobId&) = delete;

 private:
  const uint64_t previous_;
};

// The ambient distributed trace id of the calling thread (0 = none).
// Where the job id attributes work *within* a process, the trace id
// follows one request *across* processes: a client mints it, carries it
// over the wire in the SUBMIT frame, and the server re-establishes it
// around everything the job touches, so client spans and server spans
// join on one id (examples/trace_merge). Stamped onto trace events and
// log events exactly like the job id.
uint64_t CurrentTraceId();

// RAII trace-id scope, the cross-process sibling of ScopedJobId. Every
// chore lambda that re-establishes the job id re-establishes this too.
class ScopedTraceId {
 public:
  explicit ScopedTraceId(uint64_t trace_id);
  ~ScopedTraceId();

  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  const uint64_t previous_;
};

struct TraceEvent {
  enum class Type : uint8_t {
    kComplete,   // Chrome ph:"X" — a span with a duration
    kInstant,    // Chrome ph:"i" — a point in time
    kCounter,    // Chrome ph:"C" — a sampled value (queue depth)
    kClockSync,  // ph:"i" carrying a local/remote raw-clock pair
  };

  // `name` and `category` must be string literals (or otherwise outlive
  // the recorder): events store the pointer, not a copy, so recording
  // never allocates.
  const char* name = nullptr;
  const char* category = nullptr;
  Type type = Type::kComplete;
  int tid = 0;
  uint64_t ts_us = 0;   // microseconds since the recorder's epoch
  uint64_t dur_us = 0;  // kComplete; kClockSync repurposes as local_raw_us
  int64_t value = 0;    // kCounter; kClockSync repurposes as remote_raw_us
  uint64_t job = 0;     // ambient CurrentJobId() at record time, 0 = none
  uint64_t trace = 0;   // ambient CurrentTraceId() at record time, 0 = none
};

class TraceRecorder {
 public:
  // `capacity` bounds memory: the ring keeps the most recent `capacity`
  // events and counts the rest as dropped.
  explicit TraceRecorder(size_t capacity = size_t{1} << 16);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Makes this recorder the process-global trace sink. At most one
  // recorder is installed at a time; installing replaces the previous
  // one. The recorder must outlive its installation.
  void Install();
  static void Uninstall();

  // The installed recorder, or nullptr when tracing is off. Relaxed
  // single atomic load: cheap enough for per-IO call sites.
  static TraceRecorder* Current() {
    return current_.load(std::memory_order_acquire);
  }

  // Microseconds since this recorder was constructed.
  uint64_t NowUs() const;

  void AddComplete(const char* name, const char* category, int tid,
                   uint64_t ts_us, uint64_t dur_us);
  void AddInstant(const char* name, const char* category);
  void AddCounter(const char* name, int64_t value);

  // Records a clock-sync point: one instant carrying this process's raw
  // steady-clock reading (TraceRawNowUs, taken now, from the same clock
  // sample as the event timestamp) alongside the peer's raw reading as
  // exchanged over the wire. examples/trace_merge uses a pair of these
  // — one per process, each holding the other side's send time — to
  // recover each recorder's epoch and the NTP-style clock skew, mapping
  // two trace files onto one timeline.
  void AddClockSync(const char* name, uint64_t remote_raw_us);

  // Events currently retained (<= capacity) and events overwritten after
  // the ring filled.
  size_t size() const;
  uint64_t dropped() const;

  // Serializes retained events, sorted by timestamp, as a Chrome
  // trace-event JSON object: {"traceEvents":[...]}.
  std::string ToChromeJson() const;

 private:
  void Add(TraceEvent ev);

  static std::atomic<TraceRecorder*> current_;

  const std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> ring_;
  std::atomic<uint64_t> next_{0};  // total events ever added
};

// RAII span: records a kComplete event covering its lifetime, attributed
// to the constructing thread. Nesting works naturally (Chrome renders
// enclosing spans as stacked slices). When no recorder is installed at
// construction, both constructor and destructor are a few instructions.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "sort")
      : recorder_(TraceRecorder::Current()),
        name_(name),
        category_(category),
        start_us_(recorder_ != nullptr ? recorder_->NowUs() : 0) {}

  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->AddComplete(name_, category_, CurrentThreadId(), start_us_,
                             recorder_->NowUs() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* const recorder_;
  const char* const name_;
  const char* const category_;
  const uint64_t start_us_;
};

// Emits a counter sample if tracing is on (e.g. IO queue depth).
inline void TraceCounter(const char* name, int64_t value) {
  if (TraceRecorder* rec = TraceRecorder::Current()) {
    rec->AddCounter(name, value);
  }
}

// Raw steady-clock microseconds, independent of any recorder's epoch.
// This is the value HELLO frames exchange for clock alignment: both
// sides of a connection sample the same kind of clock, and a recorder's
// epoch can be recovered as (clock-sync local_raw_us - clock-sync ts).
uint64_t TraceRawNowUs();

// Records a clock-sync event if tracing is on (see AddClockSync).
inline void TraceClockSync(const char* name, uint64_t remote_raw_us) {
  if (TraceRecorder* rec = TraceRecorder::Current()) {
    rec->AddClockSync(name, remote_raw_us);
  }
}

// Checks that `json` is syntactically valid JSON and structurally a
// Chrome trace: a {"traceEvents": [...]} object (or a bare array) whose
// elements carry the required "name"/"ph"/"ts"/"pid"/"tid" fields. Used
// by the tests and the trace_lint tool; not a general-purpose parser.
Status ValidateChromeTraceJson(const std::string& json);

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_TRACE_H_
