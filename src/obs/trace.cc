#include "obs/trace.h"

#include <algorithm>
#include <cctype>

#include "common/table.h"

namespace alphasort {
namespace obs {

int CurrentThreadId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {
thread_local uint64_t current_job_id = 0;
thread_local uint64_t current_trace_id = 0;
}  // namespace

uint64_t CurrentJobId() { return current_job_id; }

ScopedJobId::ScopedJobId(uint64_t job_id) : previous_(current_job_id) {
  current_job_id = job_id;
}

ScopedJobId::~ScopedJobId() { current_job_id = previous_; }

uint64_t CurrentTraceId() { return current_trace_id; }

ScopedTraceId::ScopedTraceId(uint64_t trace_id)
    : previous_(current_trace_id) {
  current_trace_id = trace_id;
}

ScopedTraceId::~ScopedTraceId() { current_trace_id = previous_; }

uint64_t TraceRawNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<TraceRecorder*> TraceRecorder::current_{nullptr};

TraceRecorder::TraceRecorder(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::Install() {
  current_.store(this, std::memory_order_release);
}

void TraceRecorder::Uninstall() {
  current_.store(nullptr, std::memory_order_release);
}

uint64_t TraceRecorder::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::Add(TraceEvent ev) {
  // Claim a slot with one relaxed RMW; past capacity the ring wraps and
  // the oldest events are overwritten. Two writers can only collide on a
  // slot if one laps the other by a full ring, which would need more
  // concurrent events than threads exist — torn events are acceptable in
  // that pathological case, lost sorts are not.
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  ring_[seq % ring_.size()] = ev;
}

void TraceRecorder::AddComplete(const char* name, const char* category,
                                int tid, uint64_t ts_us, uint64_t dur_us) {
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.type = TraceEvent::Type::kComplete;
  ev.tid = tid;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.job = CurrentJobId();
  ev.trace = CurrentTraceId();
  Add(ev);
}

void TraceRecorder::AddInstant(const char* name, const char* category) {
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.type = TraceEvent::Type::kInstant;
  ev.tid = CurrentThreadId();
  ev.ts_us = NowUs();
  ev.job = CurrentJobId();
  ev.trace = CurrentTraceId();
  Add(ev);
}

void TraceRecorder::AddCounter(const char* name, int64_t value) {
  TraceEvent ev;
  ev.name = name;
  ev.category = "counter";
  ev.type = TraceEvent::Type::kCounter;
  ev.tid = CurrentThreadId();
  ev.ts_us = NowUs();
  ev.value = value;
  ev.job = CurrentJobId();
  ev.trace = CurrentTraceId();
  Add(ev);
}

void TraceRecorder::AddClockSync(const char* name, uint64_t remote_raw_us) {
  // One clock sample feeds both the trace-relative timestamp and the
  // raw reading, so epoch recovery (local_raw_us - ts) is exact rather
  // than off by the gap between two clock reads.
  const auto now = std::chrono::steady_clock::now();
  TraceEvent ev;
  ev.name = name;
  ev.category = "clock";
  ev.type = TraceEvent::Type::kClockSync;
  ev.tid = CurrentThreadId();
  ev.ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - epoch_)
          .count());
  ev.dur_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          now.time_since_epoch())
          .count());
  ev.value = static_cast<int64_t>(remote_raw_us);
  ev.job = CurrentJobId();
  ev.trace = CurrentTraceId();
  Add(ev);
}

size_t TraceRecorder::size() const {
  return static_cast<size_t>(std::min<uint64_t>(
      next_.load(std::memory_order_relaxed), ring_.size()));
}

uint64_t TraceRecorder::dropped() const {
  const uint64_t total = next_.load(std::memory_order_relaxed);
  return total > ring_.size() ? total - ring_.size() : 0;
}

namespace {

void AppendEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrFormat("\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string TraceRecorder::ToChromeJson() const {
  std::vector<TraceEvent> events;
  const size_t n = size();
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (ring_[i].name != nullptr) events.push_back(ring_[i]);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(ev.name, &out);
    out += "\",\"cat\":\"";
    AppendEscaped(ev.category == nullptr ? "" : ev.category, &out);
    out += "\",";
    // Job and trace ids attribute events from concurrent jobs (and, via
    // the wire, from other processes) sharing one ring; 0 (no ambient
    // id) is omitted so single-sort traces stay byte-identical to the
    // previous format. `extra` holds the id members, comma-prefixed for
    // appending after an existing args member.
    std::string extra;
    if (ev.job != 0) {
      extra += StrFormat(",\"job\":%llu",
                         static_cast<unsigned long long>(ev.job));
    }
    if (ev.trace != 0) {
      extra += StrFormat(",\"trace_id\":%llu",
                         static_cast<unsigned long long>(ev.trace));
    }
    // Same members without the leading comma, for args that would
    // otherwise be empty (and omitted entirely).
    const std::string ids_only =
        extra.empty() ? "" : "\"args\":{" + extra.substr(1) + "},";
    switch (ev.type) {
      case TraceEvent::Type::kComplete:
        out += StrFormat(
            "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,",
            static_cast<unsigned long long>(ev.ts_us),
            static_cast<unsigned long long>(ev.dur_us));
        out += ids_only;
        break;
      case TraceEvent::Type::kInstant:
        out += StrFormat("\"ph\":\"i\",\"s\":\"t\",\"ts\":%llu,",
                         static_cast<unsigned long long>(ev.ts_us));
        out += ids_only;
        break;
      case TraceEvent::Type::kCounter:
        out += StrFormat("\"ph\":\"C\",\"ts\":%llu,\"args\":{\"value\":%lld",
                         static_cast<unsigned long long>(ev.ts_us),
                         static_cast<long long>(ev.value));
        out += extra + "},";
        break;
      case TraceEvent::Type::kClockSync:
        out += StrFormat(
            "\"ph\":\"i\",\"s\":\"t\",\"ts\":%llu,"
            "\"args\":{\"local_raw_us\":%llu,\"remote_raw_us\":%llu",
            static_cast<unsigned long long>(ev.ts_us),
            static_cast<unsigned long long>(ev.dur_us),
            static_cast<unsigned long long>(ev.value));
        out += extra + "},";
        break;
    }
    out += StrFormat("\"pid\":1,\"tid\":%d}", ev.tid);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON checker for trace files. Validates the
// grammar and, for trace-event objects, the required fields. It never
// builds a DOM: event objects are checked as their keys stream past.

namespace {

class TraceJsonChecker {
 public:
  explicit TraceJsonChecker(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  Status Check() {
    SkipSpace();
    if (p_ < end_ && *p_ == '[') {
      // Bare event-array form.
      ALPHASORT_RETURN_IF_ERROR(ParseEventArray());
    } else {
      ALPHASORT_RETURN_IF_ERROR(ParseTopObject());
    }
    SkipSpace();
    if (p_ != end_) return Fail("trailing characters after JSON value");
    if (!saw_events_) return Fail("no traceEvents array found");
    return Status::OK();
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::Corruption(StrFormat(
        "trace JSON invalid at byte %zu: %s",
        static_cast<size_t>(p_ - begin_), why.c_str()));
  }

  void SkipSpace() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Fail(StrFormat("expected '%c'", c));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (p_ >= end_ || *p_ != '"') return Fail("expected string");
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return Fail("unterminated escape");
        const char esc = *p_;
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ >= end_ || !isxdigit(static_cast<unsigned char>(*p_))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("bad escape character");
        }
        ++p_;
      } else {
        if (out != nullptr) out->push_back(*p_);
        ++p_;
      }
    }
    if (p_ >= end_) return Fail("unterminated string");
    ++p_;  // closing quote
    return Status::OK();
  }

  Status ParseNumber() {
    SkipSpace();
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      while (p_ < end_ && isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      while (p_ < end_ && isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ == start || (p_ == start + 1 && *start == '-')) {
      return Fail("malformed number");
    }
    return Status::OK();
  }

  Status ParseValue() {
    SkipSpace();
    if (p_ >= end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(nullptr);
      case '[':
        return ParseArray();
      case '"':
        return ParseString(nullptr);
      case 't':
        return ConsumeWord("true");
      case 'f':
        return ConsumeWord("false");
      case 'n':
        return ConsumeWord("null");
      default:
        return ParseNumber();
    }
  }

  Status ConsumeWord(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ >= end_ || *p_ != *w) return Fail("malformed literal");
    }
    return Status::OK();
  }

  // Parses an object; when `keys` is non-null, collects its top-level
  // key names.
  Status ParseObject(std::vector<std::string>* keys) {
    ALPHASORT_RETURN_IF_ERROR(Expect('{'));
    if (Consume('}')) return Status::OK();
    do {
      std::string key;
      ALPHASORT_RETURN_IF_ERROR(ParseString(&key));
      ALPHASORT_RETURN_IF_ERROR(Expect(':'));
      ALPHASORT_RETURN_IF_ERROR(ParseValue());
      if (keys != nullptr) keys->push_back(std::move(key));
    } while (Consume(','));
    return Expect('}');
  }

  Status ParseArray() {
    ALPHASORT_RETURN_IF_ERROR(Expect('['));
    if (Consume(']')) return Status::OK();
    do {
      ALPHASORT_RETURN_IF_ERROR(ParseValue());
    } while (Consume(','));
    return Expect(']');
  }

  // One element of the traceEvents array: an object with the fields the
  // Chrome trace viewer requires.
  Status ParseEvent() {
    std::vector<std::string> keys;
    ALPHASORT_RETURN_IF_ERROR(ParseObject(&keys));
    auto has = [&keys](const char* k) {
      return std::find(keys.begin(), keys.end(), k) != keys.end();
    };
    for (const char* required : {"name", "ph", "ts", "pid", "tid"}) {
      if (!has(required)) {
        return Fail(StrFormat("trace event missing \"%s\"", required));
      }
    }
    return Status::OK();
  }

  Status ParseEventArray() {
    saw_events_ = true;
    ALPHASORT_RETURN_IF_ERROR(Expect('['));
    if (Consume(']')) return Status::OK();
    do {
      ALPHASORT_RETURN_IF_ERROR(ParseEvent());
    } while (Consume(','));
    return Expect(']');
  }

  Status ParseTopObject() {
    ALPHASORT_RETURN_IF_ERROR(Expect('{'));
    if (Consume('}')) return Status::OK();
    do {
      std::string key;
      ALPHASORT_RETURN_IF_ERROR(ParseString(&key));
      ALPHASORT_RETURN_IF_ERROR(Expect(':'));
      if (key == "traceEvents") {
        ALPHASORT_RETURN_IF_ERROR(ParseEventArray());
      } else {
        ALPHASORT_RETURN_IF_ERROR(ParseValue());
      }
    } while (Consume(','));
    return Expect('}');
  }

  const char* p_;
  const char* const end_;
  const char* const begin_ = p_;
  bool saw_events_ = false;
};

}  // namespace

Status ValidateChromeTraceJson(const std::string& json) {
  return TraceJsonChecker(json).Check();
}

}  // namespace obs
}  // namespace alphasort
