#ifndef ALPHASORT_OBS_PERF_COUNTERS_H_
#define ALPHASORT_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace alphasort {
namespace obs {

// Hardware performance counters per scoped region, via perf_event_open.
//
// The paper's Figure 4 argument is stated in hardware-counter terms:
// QuickSort beats replacement-selection *because of D-cache misses per
// compare*, measured with the Alpha's on-chip counters. This wrapper
// gives the pipeline the same instrument: cycles, instructions,
// cache-references/misses, and branch-misses sampled around scoped
// regions (per phase on the root thread, per QuickSort/gather chore on
// the workers) and aggregated by region name.
//
// Counting degrades gracefully everywhere it can be denied: an
// unprivileged container (perf_event_paranoid, seccomp) yields EPERM/
// EACCES, a kernel without the syscall yields ENOSYS, a VM without PMU
// virtualization yields ENOENT per event. In every such case the group
// reports available() == false with a human-readable reason, regions
// still count their samples, and the sort report marks the counters
// "available": false instead of erroring — observability must never be
// the thing that breaks the sort.
//
// Usage mirrors TraceRecorder: install an accumulator, run, read it.
//
//   obs::PerfAccumulator acc;
//   if (acc.TryInstall()) {
//     { obs::ScopedPerfRegion r("quicksort"); ... hot work ... }
//     acc.Uninstall();
//   }
//   std::map<std::string, obs::PerfDelta> regions = acc.Regions();

// The hardware events this wrapper counts, in fixed order.
enum class PerfEvent : int {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
};
inline constexpr int kNumPerfEvents = 5;

// Stable lowercase name ("cycles", "cache_misses", ...) used as the JSON
// key in reports.
const char* PerfEventName(PerfEvent e);

// Raw readout of one event fd: the kernel's running count plus the
// enabled/running times that scale it when the PMU was multiplexed.
struct PerfReading {
  uint64_t value = 0;
  uint64_t time_enabled = 0;
  uint64_t time_running = 0;
};
using PerfReadingSet = std::array<PerfReading, kNumPerfEvents>;

// One thread's set of per-thread counters (pid=0, cpu=-1, user-space
// only). Each event is opened as its own fd so partial availability —
// e.g. a PMU exposing cycles but not cache events — degrades per event
// rather than all-or-nothing.
class PerfCounterGroup {
 public:
  // Open hook: returns an fd >= 0 or -errno. The default (nullptr) is
  // the real perf_event_open syscall; tests inject failures (EPERM,
  // ENOSYS) to pin the fallback path without needing a locked-down
  // kernel.
  using OpenFn = int (*)(uint32_t type, uint64_t config);

  explicit PerfCounterGroup(OpenFn open_fn = nullptr);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // True when at least one event opened.
  bool available() const { return available_count_ > 0; }
  int available_events() const { return available_count_; }
  bool event_available(PerfEvent e) const {
    return fds_[static_cast<int>(e)] >= 0;
  }

  // Why nothing opened (empty when available()). The first error wins;
  // EPERM points at /proc/sys/kernel/perf_event_paranoid.
  const std::string& unavailable_reason() const {
    return unavailable_reason_;
  }

  // Reads every available event; unavailable slots stay zeroed.
  PerfReadingSet Read() const;

 private:
  std::array<int, kNumPerfEvents> fds_;
  int available_count_ = 0;
  std::string unavailable_reason_;
};

// Multiplex-scaled counter deltas over one region (or many merged
// samples of it). Values are scaled by time_enabled/time_running, the
// standard correction when the kernel rotates more events than the PMU
// has slots.
struct PerfDelta {
  bool available = false;
  std::string unavailable_reason;  // set when nothing was available
  uint64_t samples = 0;            // scoped regions folded in

  double cycles = 0;
  double instructions = 0;
  double cache_references = 0;
  double cache_misses = 0;
  double branch_misses = 0;

  // Fraction of enabled time the events were actually counting (min
  // across events); 1.0 = never multiplexed, 0 = never scheduled.
  double running_ratio = 1.0;

  void Merge(const PerfDelta& o);

  // Instructions per cycle; 0 when cycles were not counted.
  double Ipc() const;
  // cache_misses / cache_references — Figure 4's y-axis; 0 when
  // references were not counted.
  double CacheMissRate() const;
};

// Scaled difference of two readings taken on `group`'s thread. When the
// group has no available events the delta carries available=false and
// the group's reason.
PerfDelta ComputeDelta(const PerfCounterGroup& group,
                       const PerfReadingSet& before,
                       const PerfReadingSet& after);

// Aggregates region deltas across threads for one sort. At most one
// accumulator is installed at a time (TryInstall; concurrent sorts: the
// first wins and the rest simply collect nothing), and the destructor
// uninstalls itself so an early error return cannot leave a dangling
// global.
//
// Lifetime under concurrency: a ScopedPerfRegion *pins* the installed
// accumulator for its whole scope, and Uninstall blocks until every pin
// is released. Without that, a concurrent sort could destroy the
// accumulator between a region's constructor (which captured the
// pointer) and its destructor (which adds to it) — regions run on
// shared worker threads, so any job's regions may target any job's
// accumulator.
class PerfAccumulator {
 public:
  PerfAccumulator() = default;
  ~PerfAccumulator();

  PerfAccumulator(const PerfAccumulator&) = delete;
  PerfAccumulator& operator=(const PerfAccumulator&) = delete;

  // Installs this accumulator if none is installed; false when another
  // holds the slot.
  bool TryInstall();

  // Uninstalls if currently installed (no-op otherwise). Waits for
  // in-flight ScopedPerfRegions pinning this accumulator to finish, so
  // the object is safe to destroy on return.
  void Uninstall();

  static PerfAccumulator* Current();

  // Pins the installed accumulator (null when none): the returned
  // pointer stays valid until ReleasePin(). Every AcquirePin that
  // returned non-null must be paired with exactly one ReleasePin.
  static PerfAccumulator* AcquirePin();
  static void ReleasePin();

  void Add(const char* region, const PerfDelta& delta);

  std::map<std::string, PerfDelta> Regions() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, PerfDelta> regions_;
};

// RAII region: samples the calling thread's counters at construction and
// destruction and adds the delta to the installed accumulator under
// `region` (a string literal). The accumulator stays pinned (alive) for
// the region's whole scope; when none is installed the object is one
// uncontended lock round-trip. Regions may overlap and nest freely —
// each is an independent label, so e.g. "merge_phase" on the root
// contains the same cycles the per-batch "merge" regions count.
class ScopedPerfRegion {
 public:
  explicit ScopedPerfRegion(const char* region);
  ~ScopedPerfRegion();

  ScopedPerfRegion(const ScopedPerfRegion&) = delete;
  ScopedPerfRegion& operator=(const ScopedPerfRegion&) = delete;

 private:
  PerfAccumulator* const acc_;
  const char* const region_;
  PerfReadingSet before_;
};

// The calling thread's lazily-opened counter group (one set of fds per
// thread, closed at thread exit). Exposed for tests and ad-hoc probes.
PerfCounterGroup* ThreadPerfGroup();

// Availability/per-region summary carried in SortMetrics and serialized
// by the sort report.
struct PerfReport {
  // True when the run tried to collect (options on AND this sort won the
  // accumulator slot). regions empty + attempted means no instrumented
  // code ran.
  bool attempted = false;
  std::map<std::string, PerfDelta> regions;

  bool AnyAvailable() const;
  // First unavailable reason across regions (empty when none recorded
  // one).
  std::string UnavailableReason() const;

  // Compact human dump: one line per region, or the unavailability
  // reason.
  std::string ToString() const;
};

}  // namespace obs
}  // namespace alphasort

#endif  // ALPHASORT_OBS_PERF_COUNTERS_H_
