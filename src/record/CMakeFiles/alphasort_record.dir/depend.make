# Empty dependencies file for alphasort_record.
# This may be replaced when dependencies are built.
