
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/record/generator.cc" "src/record/CMakeFiles/alphasort_record.dir/generator.cc.o" "gcc" "src/record/CMakeFiles/alphasort_record.dir/generator.cc.o.d"
  "/root/repo/src/record/key_conditioner.cc" "src/record/CMakeFiles/alphasort_record.dir/key_conditioner.cc.o" "gcc" "src/record/CMakeFiles/alphasort_record.dir/key_conditioner.cc.o.d"
  "/root/repo/src/record/validator.cc" "src/record/CMakeFiles/alphasort_record.dir/validator.cc.o" "gcc" "src/record/CMakeFiles/alphasort_record.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
