file(REMOVE_RECURSE
  "CMakeFiles/alphasort_record.dir/generator.cc.o"
  "CMakeFiles/alphasort_record.dir/generator.cc.o.d"
  "CMakeFiles/alphasort_record.dir/key_conditioner.cc.o"
  "CMakeFiles/alphasort_record.dir/key_conditioner.cc.o.d"
  "CMakeFiles/alphasort_record.dir/validator.cc.o"
  "CMakeFiles/alphasort_record.dir/validator.cc.o.d"
  "libalphasort_record.a"
  "libalphasort_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
