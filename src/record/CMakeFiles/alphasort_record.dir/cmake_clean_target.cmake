file(REMOVE_RECURSE
  "libalphasort_record.a"
)
