#include "record/validator.h"

#include <cstring>

#include "common/table.h"

namespace alphasort {

void SortValidator::AddInput(const char* data, uint64_t num_records) {
  for (uint64_t i = 0; i < num_records; ++i) {
    input_fp_.Add(data + i * format_.record_size, format_.record_size);
  }
}

void SortValidator::AddOutput(const char* data, uint64_t num_records) {
  for (uint64_t i = 0; i < num_records; ++i) {
    const char* rec = data + i * format_.record_size;
    const char* key = format_.KeyPtr(rec);
    if (have_prev_ && sorted_ &&
        memcmp(prev_key_.data(), key, format_.key_size) > 0) {
      sorted_ = false;
      first_disorder_index_ = output_fp_.count();
    }
    prev_key_.assign(key, format_.key_size);
    have_prev_ = true;
    output_fp_.Add(rec, format_.record_size);
  }
}

Status SortValidator::Finish() const {
  if (!sorted_) {
    return Status::Corruption(StrFormat(
        "output not key-ascending at record %llu",
        static_cast<unsigned long long>(first_disorder_index_)));
  }
  if (input_fp_.count() != output_fp_.count()) {
    return Status::Corruption(StrFormat(
        "record count mismatch: input=%llu output=%llu",
        static_cast<unsigned long long>(input_fp_.count()),
        static_cast<unsigned long long>(output_fp_.count())));
  }
  if (!(input_fp_ == output_fp_)) {
    return Status::Corruption(
        "output is not a permutation of the input (fingerprint mismatch)");
  }
  return Status::OK();
}

Status ValidateSorted(const RecordFormat& format, const char* input,
                      const char* output, uint64_t num_records) {
  SortValidator v(format);
  v.AddInput(input, num_records);
  v.AddOutput(output, num_records);
  return v.Finish();
}

}  // namespace alphasort
