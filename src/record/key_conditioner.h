#ifndef ALPHASORT_RECORD_KEY_CONDITIONER_H_
#define ALPHASORT_RECORD_KEY_CONDITIONER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "record/record.h"

namespace alphasort {

// Key conditioning (paper §4): "Key conditioning extracts the sort key
// from each record, transforms the result to allow efficient byte
// compares, and stores it with the record as an added field. This is
// often done for keys involving floating point numbers, signed integers,
// or character strings with non-standard collating sequences."
//
// A KeySchema describes one or more typed fields inside a record; the
// conditioner renders them into a byte string whose memcmp order equals
// the typed (field-by-field) order — which is exactly what the key-prefix
// QuickSort and the tournament merge need.

struct CollationTable {
  // Maps each input byte to its collation weight. Must be injective to
  // preserve distinctness (Validate() checks).
  std::array<uint8_t, 256> weight;

  // Identity (plain byte order).
  static CollationTable Identity();
  // ASCII case-insensitive: 'a'..'z' collate with 'A'..'Z'. (Not
  // injective — equal-ignoring-case strings condition equally.)
  static CollationTable CaseInsensitiveAscii();
};

struct KeyField {
  enum class Type {
    kBytes,     // raw bytes, optionally collated
    kUint64,    // little-endian unsigned in the record
    kInt64,     // little-endian two's-complement in the record
    kFloat64,   // IEEE-754 double in the record
  };

  Type type = Type::kBytes;
  size_t offset = 0;  // byte offset inside the record
  size_t size = 0;    // bytes in the record (8 for the numeric types)
  bool descending = false;
  // kBytes only; nullptr = plain byte order.
  const CollationTable* collation = nullptr;

  // Bytes this field contributes to the conditioned key.
  size_t ConditionedSize() const { return size; }
};

class KeySchema {
 public:
  KeySchema() = default;
  explicit KeySchema(std::vector<KeyField> fields)
      : fields_(std::move(fields)) {}

  // Fails on overlapping/overrunning fields or wrong numeric sizes.
  Status Validate(const RecordFormat& format) const;

  size_t ConditionedSize() const;
  const std::vector<KeyField>& fields() const { return fields_; }

  // Renders `record`'s key fields into `out` (ConditionedSize() bytes)
  // such that memcmp order over outputs == field-by-field typed order.
  //
  // Encodings: unsigned -> big-endian; signed -> sign bit flipped, then
  // big-endian; double -> IEEE totalOrder trick (negative values have all
  // bits flipped, positive ones the sign bit), so -0.0 sorts immediately
  // before +0.0 and NaNs sort at the extremes; descending fields are
  // complemented.
  void Condition(const char* record, char* out) const;

  std::string Condition(const char* record) const;

 private:
  std::vector<KeyField> fields_;
};

// Rewrites a block of records into a new format whose leading
// ConditionedSize() bytes are the conditioned key and whose remainder is
// the original record — "stores it with the record as an added field".
// The returned format is {ConditionedSize()+record_size, ConditionedSize()}
// with key at offset 0, ready for the standard AlphaSort kernels.
struct ConditionedBlock {
  RecordFormat format;
  std::vector<char> data;
};

Result<ConditionedBlock> ConditionRecords(const KeySchema& schema,
                                          const RecordFormat& format,
                                          const char* records, size_t n);

}  // namespace alphasort

#endif  // ALPHASORT_RECORD_KEY_CONDITIONER_H_
