#ifndef ALPHASORT_RECORD_VALIDATOR_H_
#define ALPHASORT_RECORD_VALIDATOR_H_

#include <cstdint>
#include <string>

#include "common/checksum.h"
#include "common/status.h"
#include "record/record.h"

namespace alphasort {

// Streaming checker for the benchmark's output rule: "the output file must
// be a permutation of the input file sorted in key-ascending order"
// (paper §2). Feed the input stream to `AddInput` and the output stream in
// order to `AddOutput`; `Finish` reports the verdict.
//
// Sortedness is checked online (each output record against its
// predecessor); the permutation property is checked with an
// order-independent multiset fingerprint over whole records, so neither
// side is ever materialized.
class SortValidator {
 public:
  explicit SortValidator(RecordFormat format) : format_(format) {}

  // Records may arrive in any number of chunks; `data` must hold a whole
  // number of records.
  void AddInput(const char* data, uint64_t num_records);
  void AddOutput(const char* data, uint64_t num_records);

  // OK iff the output seen so far is sorted and is a permutation of the
  // input seen so far.
  Status Finish() const;

  uint64_t input_records() const { return input_fp_.count(); }
  uint64_t output_records() const { return output_fp_.count(); }

 private:
  RecordFormat format_;
  MultisetFingerprint input_fp_;
  MultisetFingerprint output_fp_;
  bool sorted_ = true;
  uint64_t first_disorder_index_ = 0;
  std::string prev_key_;  // last output key, empty until first record
  bool have_prev_ = false;
};

// One-shot helper over in-memory buffers.
Status ValidateSorted(const RecordFormat& format, const char* input,
                      const char* output, uint64_t num_records);

}  // namespace alphasort

#endif  // ALPHASORT_RECORD_VALIDATOR_H_
