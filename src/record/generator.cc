#include "record/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/bytes.h"

namespace alphasort {

namespace {

// Writes `v` as a big-endian integer into key[0..n), so that numeric order
// of v equals lexicographic byte order of the key bytes.
void StoreBigEndian(char* key, size_t n, uint64_t v) {
  for (size_t i = 0; i < n; ++i) {
    const size_t shift = 8 * (n - 1 - i);
    key[i] = shift < 64 ? static_cast<char>((v >> shift) & 0xff) : 0;
  }
}

// SplitMix64 finalizer: spreads a small rank over the full 64-bit key
// space, so equal ranks yield equal keys but the hot keys land anywhere —
// skewed popularity without skewed byte values.
uint64_t MixRank(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Universe of distinct Zipfian keys. P(rank <= r) = ln(r)/ln(N) is the
// s=1 Zipf CDF up to normalization, so rank = floor(N^u) inverts it.
constexpr double kZipfUniverse = 1 << 20;

// kDupHeavy's hot set: 9 of 10 keys come from this many distinct values.
constexpr uint64_t kDupHotKeys = 64;

}  // namespace

void RecordGenerator::FillKey(KeyDistribution dist, uint64_t index,
                              uint64_t count, char* key) {
  const size_t k = format_.key_size;
  switch (dist) {
    case KeyDistribution::kUniform: {
      size_t i = 0;
      for (; i + 8 <= k; i += 8) {
        const uint64_t r = rng_.Next64();
        memcpy(key + i, &r, 8);
      }
      if (i < k) {
        const uint64_t r = rng_.Next64();
        memcpy(key + i, &r, k - i);
      }
      break;
    }
    case KeyDistribution::kSorted:
      StoreBigEndian(key, k, index);
      break;
    case KeyDistribution::kReverse:
      StoreBigEndian(key, k, count - 1 - index);
      break;
    case KeyDistribution::kConstant:
      memset(key, 'k', k);
      break;
    case KeyDistribution::kFewDistinct:
      StoreBigEndian(key, k, rng_.Uniform(16));
      break;
    case KeyDistribution::kSharedPrefix: {
      const size_t shared = std::min(SharedPrefixLen(), k);
      memset(key, 'p', shared);
      for (size_t i = shared; i < k; ++i) {
        key[i] = static_cast<char>(rng_.Next32() & 0xff);
      }
      break;
    }
    case KeyDistribution::kAlmostSorted:
      // Mostly in order; ~1/16 of records get a random displacement.
      if (rng_.OneIn(16)) {
        StoreBigEndian(key, k, rng_.Uniform(count));
      } else {
        StoreBigEndian(key, k, index);
      }
      break;
    case KeyDistribution::kDupHeavy:
      // 90% of records share kDupHotKeys distinct keys (long equal-prefix
      // runs that force the tie-break path and radix skew fallbacks); the
      // other 10% are uniform random so duplicates interleave with
      // singletons rather than forming one constant block.
      if (rng_.OneIn(10)) {
        for (size_t i = 0; i < k; ++i) {
          key[i] = static_cast<char>(rng_.Next32() & 0xff);
        }
      } else {
        StoreBigEndian(key, k, MixRank(rng_.Uniform(kDupHotKeys)));
      }
      break;
    case KeyDistribution::kZipfian: {
      // Inverse-CDF sample of a Zipf(s=1) rank, mixed so popularity skew
      // does not imply byte-value skew: rank 1 appears ~ln-factor more
      // often than rank 2, etc., over a 2^20-key universe.
      const uint64_t rank = static_cast<uint64_t>(
          std::pow(kZipfUniverse, rng_.NextDouble()));
      StoreBigEndian(key, k, MixRank(rank));
      break;
    }
  }
}

void RecordGenerator::FillPayload(uint64_t index, char* record) {
  const size_t payload_off = format_.key_offset + format_.key_size;
  const size_t payload_len = format_.record_size - payload_off;
  if (payload_len == 0) return;
  char* p = record + payload_off;
  // Leading 8 bytes of payload identify the record; the remainder is a
  // deterministic filler pattern (incompressible enough for our purposes,
  // and cheap to regenerate for validation).
  if (payload_len >= 8) {
    EncodeFixed64(p, index);
    for (size_t i = 8; i < payload_len; ++i) {
      p[i] = static_cast<char>('A' + (index + i) % 26);
    }
  } else {
    for (size_t i = 0; i < payload_len; ++i) {
      p[i] = static_cast<char>('A' + (index + i) % 26);
    }
  }
}

void RecordGenerator::Generate(KeyDistribution dist, uint64_t count,
                               char* out) {
  assert(format_.Valid());
  for (uint64_t i = 0; i < count; ++i) {
    char* rec = out + i * format_.record_size;
    if (format_.key_offset > 0) {
      memset(rec, '.', format_.key_offset);
    }
    FillKey(dist, i, count, rec + format_.key_offset);
    FillPayload(i, rec);
  }
}

std::vector<char> RecordGenerator::Generate(KeyDistribution dist,
                                            uint64_t count) {
  std::vector<char> out(count * format_.record_size);
  Generate(dist, count, out.data());
  return out;
}

}  // namespace alphasort
