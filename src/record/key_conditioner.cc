#include "record/key_conditioner.h"

#include <cstring>

#include "common/table.h"

namespace alphasort {

CollationTable CollationTable::Identity() {
  CollationTable t;
  for (int i = 0; i < 256; ++i) t.weight[i] = static_cast<uint8_t>(i);
  return t;
}

CollationTable CollationTable::CaseInsensitiveAscii() {
  CollationTable t = Identity();
  for (int c = 'a'; c <= 'z'; ++c) {
    t.weight[c] = static_cast<uint8_t>(c - 'a' + 'A');
  }
  return t;
}

Status KeySchema::Validate(const RecordFormat& format) const {
  if (fields_.empty()) {
    return Status::InvalidArgument("key schema has no fields");
  }
  for (const KeyField& f : fields_) {
    if (f.size == 0) {
      return Status::InvalidArgument("key field has zero size");
    }
    if (f.offset + f.size > format.record_size) {
      return Status::InvalidArgument(StrFormat(
          "key field [%zu, %zu) overruns the %zu-byte record", f.offset,
          f.offset + f.size, format.record_size));
    }
    switch (f.type) {
      case KeyField::Type::kBytes:
        break;
      case KeyField::Type::kUint64:
      case KeyField::Type::kInt64:
      case KeyField::Type::kFloat64:
        if (f.size != 8) {
          return Status::InvalidArgument(
              "numeric key fields must be 8 bytes");
        }
        break;
    }
  }
  return Status::OK();
}

size_t KeySchema::ConditionedSize() const {
  size_t total = 0;
  for (const KeyField& f : fields_) total += f.ConditionedSize();
  return total;
}

namespace {

void StoreBigEndian64(uint64_t v, char* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((v >> (56 - 8 * i)) & 0xff);
  }
}

// IEEE-754 totalOrder transform: after this, unsigned integer order of
// the bits equals numeric order (negatives reversed into ascending,
// -0 < +0, -NaN first, +NaN last).
uint64_t NormalizeDoubleBits(uint64_t bits) {
  if (bits & (1ULL << 63)) return ~bits;  // negative: flip everything
  return bits | (1ULL << 63);             // positive: set the sign bit
}

}  // namespace

void KeySchema::Condition(const char* record, char* out) const {
  for (const KeyField& f : fields_) {
    const char* src = record + f.offset;
    switch (f.type) {
      case KeyField::Type::kBytes: {
        if (f.collation != nullptr) {
          for (size_t i = 0; i < f.size; ++i) {
            out[i] = static_cast<char>(
                f.collation->weight[static_cast<unsigned char>(src[i])]);
          }
        } else {
          memcpy(out, src, f.size);
        }
        break;
      }
      case KeyField::Type::kUint64: {
        uint64_t v;
        memcpy(&v, src, 8);
        StoreBigEndian64(v, out);
        break;
      }
      case KeyField::Type::kInt64: {
        uint64_t v;
        memcpy(&v, src, 8);
        StoreBigEndian64(v ^ (1ULL << 63), out);  // flip the sign bit
        break;
      }
      case KeyField::Type::kFloat64: {
        uint64_t bits;
        memcpy(&bits, src, 8);
        StoreBigEndian64(NormalizeDoubleBits(bits), out);
        break;
      }
    }
    if (f.descending) {
      for (size_t i = 0; i < f.ConditionedSize(); ++i) {
        out[i] = static_cast<char>(~out[i]);
      }
    }
    out += f.ConditionedSize();
  }
}

std::string KeySchema::Condition(const char* record) const {
  std::string out(ConditionedSize(), '\0');
  Condition(record, out.data());
  return out;
}

Result<ConditionedBlock> ConditionRecords(const KeySchema& schema,
                                          const RecordFormat& format,
                                          const char* records, size_t n) {
  ALPHASORT_RETURN_IF_ERROR(schema.Validate(format));
  ConditionedBlock out;
  const size_t key_size = schema.ConditionedSize();
  out.format = RecordFormat(key_size + format.record_size, key_size, 0);
  out.data.resize(n * out.format.record_size);
  for (size_t i = 0; i < n; ++i) {
    const char* src = records + i * format.record_size;
    char* dst = out.data.data() + i * out.format.record_size;
    schema.Condition(src, dst);
    memcpy(dst + key_size, src, format.record_size);
  }
  return out;
}

}  // namespace alphasort
