#ifndef ALPHASORT_RECORD_GENERATOR_H_
#define ALPHASORT_RECORD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "record/record.h"

namespace alphasort {

// Key distributions used by tests and ablation benches. The Datamation
// benchmark itself is kUniform (random incompressible keys).
enum class KeyDistribution {
  kUniform,         // i.i.d. random bytes (the benchmark's distribution)
  kSorted,          // already ascending (QuickSort-friendly, RS run-law edge)
  kReverse,         // descending
  kConstant,        // all keys identical (prefix never discriminates)
  kFewDistinct,     // keys drawn from a small set (heavy duplicates)
  kSharedPrefix,    // first SharedPrefixLen() bytes equal, rest random —
                    // defeats key-prefix sorting, the paper's §4 risk case
  kAlmostSorted,    // sorted with a sprinkling of out-of-place records
  kDupHeavy,        // 90% of keys drawn from a small hot set, 10% uniform —
                    // long equal-prefix runs with random keys interleaved
  kZipfian,         // key ranks Zipf(s=1)-distributed: a few very hot keys,
                    // a long tail — the classic skewed-workload shape
};

class RecordGenerator {
 public:
  RecordGenerator(RecordFormat format, uint64_t seed)
      : format_(format), rng_(seed) {}

  // Number of leading key bytes that kSharedPrefix keys have in common.
  // Chosen to exceed the 8-byte prefix so prefix compares always tie.
  static constexpr size_t SharedPrefixLen() { return 8; }

  // Fills `out` (must hold count * record_size bytes) with `count` records.
  // Payload bytes carry the record's generation index so a record remains
  // identifiable after sorting.
  void Generate(KeyDistribution dist, uint64_t count, char* out);

  // Convenience: allocate-and-fill.
  std::vector<char> Generate(KeyDistribution dist, uint64_t count);

  const RecordFormat& format() const { return format_; }

 private:
  void FillKey(KeyDistribution dist, uint64_t index, uint64_t count,
               char* key);
  void FillPayload(uint64_t index, char* record);

  RecordFormat format_;
  Random rng_;
};

}  // namespace alphasort

#endif  // ALPHASORT_RECORD_GENERATOR_H_
