#ifndef ALPHASORT_RECORD_RECORD_H_
#define ALPHASORT_RECORD_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "common/slice.h"

namespace alphasort {

// Describes the fixed-width record layout a sort operates on.
//
// The Datamation benchmark (paper §2) fixes 100-byte records whose first
// 10 bytes are an incompressible random key; the rest of the library is
// written against this struct so tests and ablations can vary R and K
// (the paper's analysis in §4 is parameterized on R, K, and pointer size P).
struct RecordFormat {
  size_t record_size = 100;  // R
  size_t key_offset = 0;
  size_t key_size = 10;  // K

  constexpr RecordFormat() = default;
  constexpr RecordFormat(size_t r, size_t k, size_t key_off = 0)
      : record_size(r), key_offset(key_off), key_size(k) {}

  bool Valid() const {
    return record_size > 0 && key_size > 0 &&
           key_offset + key_size <= record_size;
  }

  const char* KeyPtr(const char* record) const { return record + key_offset; }
  Slice Key(const char* record) const {
    return Slice(record + key_offset, key_size);
  }

  // Lexicographic three-way compare of two records' full keys.
  int CompareKeys(const char* a, const char* b) const {
    return memcmp(a + key_offset, b + key_offset, key_size);
  }

  // Normalized big-endian integer prefix of the key (paper §4: most
  // compares resolve on this single integer).
  uint64_t KeyPrefix(const char* record) const {
    if (key_size >= 8) return LoadKeyPrefix8(record + key_offset);
    return LoadKeyPrefix(record + key_offset, key_size);
  }
};

// The standard benchmark layout.
inline constexpr RecordFormat kDatamationFormat(100, 10);

// One million 100-byte records: the Datamation problem size.
inline constexpr uint64_t kDatamationRecordCount = 1000000;

}  // namespace alphasort

#endif  // ALPHASORT_RECORD_RECORD_H_
