#ifndef ALPHASORT_BENCHLIB_DATAMATION_H_
#define ALPHASORT_BENCHLIB_DATAMATION_H_

#include <cstdint>
#include <string>

#include "io/env.h"
#include "record/generator.h"
#include "record/record.h"

namespace alphasort {

// Helpers for running the Datamation benchmark (paper §2) against an Env.

struct InputSpec {
  std::string path;  // ".str" suffix creates a striped input
  RecordFormat format = kDatamationFormat;
  uint64_t num_records = 0;
  KeyDistribution distribution = KeyDistribution::kUniform;
  uint64_t seed = 1;
  // Striped inputs only: member count and per-member stride.
  size_t stripe_width = 8;
  uint64_t stride_bytes = 64 * 1024;
};

// Creates the benchmark input file (plus a stripe definition when the
// path ends in ".str"). Generation is streamed in chunks, so inputs larger
// than memory are fine.
Status CreateInputFile(Env* env, const InputSpec& spec);

// Creates a stripe definition for an output file mirroring `width`
// members, so AlphaSort can create the members on open.
Status CreateOutputDefinition(Env* env, const std::string& path,
                              size_t width, uint64_t stride_bytes);

// Streaming check of the benchmark's output rule: `output` must be a
// sorted permutation of `input` (both may be striped).
Status ValidateSortedFile(Env* env, const std::string& input_path,
                          const std::string& output_path,
                          const RecordFormat& format);

}  // namespace alphasort

#endif  // ALPHASORT_BENCHLIB_DATAMATION_H_
