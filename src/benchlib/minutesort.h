#ifndef ALPHASORT_BENCHLIB_MINUTESORT_H_
#define ALPHASORT_BENCHLIB_MINUTESORT_H_

#include "sim/hardware_configs.h"
#include "sim/pipeline_model.h"

namespace alphasort {

// The paper's proposed benchmarks (§8), evaluated with the calibrated
// pipeline model.

struct MinuteSortResult {
  double gb_sorted = 0;            // Size metric
  double dollars_per_gb = 0;       // price-performance metric
  double minute_price_dollars = 0; // cost of the minute (price / 1e6)
  bool two_pass = false;           // did the solver cross into two passes
};

// "Sort as much as you can in one minute."
MinuteSortResult ComputeMinuteSort(const hw::AxpSystem& system,
                                   double seconds = 60.0);

struct DollarSortResult {
  double budget_seconds = 0;  // computing time one dollar buys
  double gb_sorted = 0;       // Size metric
};

// "Sort as much as you can for less than a dollar."
DollarSortResult ComputeDollarSort(const hw::AxpSystem& system);

}  // namespace alphasort

#endif  // ALPHASORT_BENCHLIB_MINUTESORT_H_
