#ifndef ALPHASORT_BENCHLIB_HISTORICAL_H_
#define ALPHASORT_BENCHLIB_HISTORICAL_H_

#include <string>
#include <vector>

namespace alphasort {

// Table 1 of the paper: published Datamation sort results, 1985-1993, in
// chronological order (asterisked prices are the paper's estimates).
struct HistoricalResult {
  std::string system;
  int year = 0;
  double seconds = 0;
  double dollars_per_sort = 0;
  double cost_million_dollars = 0;
  int cpus = 0;
  int disks = 0;
  std::string reference;
  bool alphasort = false;  // one of this paper's three AXP rows
};

// The full table, chronological (the paper's ordering).
std::vector<HistoricalResult> Table1();

}  // namespace alphasort

#endif  // ALPHASORT_BENCHLIB_HISTORICAL_H_
