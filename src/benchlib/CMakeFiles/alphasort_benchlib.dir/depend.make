# Empty dependencies file for alphasort_benchlib.
# This may be replaced when dependencies are built.
