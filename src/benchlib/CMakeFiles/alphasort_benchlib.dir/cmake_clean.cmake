file(REMOVE_RECURSE
  "CMakeFiles/alphasort_benchlib.dir/datamation.cc.o"
  "CMakeFiles/alphasort_benchlib.dir/datamation.cc.o.d"
  "CMakeFiles/alphasort_benchlib.dir/fault_campaign.cc.o"
  "CMakeFiles/alphasort_benchlib.dir/fault_campaign.cc.o.d"
  "CMakeFiles/alphasort_benchlib.dir/historical.cc.o"
  "CMakeFiles/alphasort_benchlib.dir/historical.cc.o.d"
  "CMakeFiles/alphasort_benchlib.dir/minutesort.cc.o"
  "CMakeFiles/alphasort_benchlib.dir/minutesort.cc.o.d"
  "CMakeFiles/alphasort_benchlib.dir/net_bench.cc.o"
  "CMakeFiles/alphasort_benchlib.dir/net_bench.cc.o.d"
  "CMakeFiles/alphasort_benchlib.dir/service_bench.cc.o"
  "CMakeFiles/alphasort_benchlib.dir/service_bench.cc.o.d"
  "libalphasort_benchlib.a"
  "libalphasort_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
