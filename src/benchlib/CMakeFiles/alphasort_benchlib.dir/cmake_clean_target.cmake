file(REMOVE_RECURSE
  "libalphasort_benchlib.a"
)
