#ifndef ALPHASORT_BENCHLIB_SERVICE_BENCH_H_
#define ALPHASORT_BENCHLIB_SERVICE_BENCH_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace alphasort {

// Harness measuring SortService aggregate throughput as job concurrency
// scales (docs/service.md): N identical Datamation jobs are submitted at
// once against a fresh in-memory filesystem, the service arbitrates
// them under a fixed global budget, and the harness reports wall-clock
// throughput plus the arbitration telemetry (peak admitted bytes,
// down-negotiations). With `inject_faults` the Env is wrapped in a
// transient-fault layer and every job carries a retry policy, so the
// numbers show what arbitration costs under an unreliable disk too.

struct ServiceBenchConfig {
  int num_jobs = 8;
  uint64_t records_per_job = 50000;
  // Concurrency under test: the service's max_running.
  int max_running = 2;
  // Global admission budget lent across running jobs.
  uint64_t service_budget = 64ull << 20;
  // What each job asks for; above service_budget exercises
  // down-negotiation.
  uint64_t job_budget = 16ull << 20;
  int num_workers = 2;
  bool inject_faults = false;
  uint64_t seed = 1;
};

struct ServiceBenchResult {
  int jobs_ok = 0;          // Status OK and output validated sorted
  int jobs_failed = 0;      // any non-OK terminal status
  int jobs_invalid = 0;     // OK status but output failed validation
  int leaked_scratch = 0;   // scratch files left after every job finished
  double wall_s = 0;        // submit of the first job -> last job done
  double aggregate_mb_per_s = 0;  // validated output bytes / wall_s
  uint64_t peak_admitted_bytes = 0;
  uint64_t down_negotiated = 0;
  Status first_error;       // first non-OK job status, if any

  std::string ToString() const;
};

// Runs one configuration start to finish on a fresh MemEnv.
ServiceBenchResult RunServiceBench(const ServiceBenchConfig& config);

}  // namespace alphasort

#endif  // ALPHASORT_BENCHLIB_SERVICE_BENCH_H_
