#include "benchlib/datamation.h"

#include <algorithm>
#include <vector>

#include "io/stripe.h"
#include "record/validator.h"

namespace alphasort {

namespace {

bool IsStripePath(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".str") == 0;
}

std::string StripeBase(const std::string& path) {
  return path.substr(0, path.size() - 4);
}

}  // namespace

Status CreateInputFile(Env* env, const InputSpec& spec) {
  if (!spec.format.Valid()) {
    return Status::InvalidArgument("invalid record format");
  }
  if (IsStripePath(spec.path)) {
    ALPHASORT_RETURN_IF_ERROR(WriteStripeDefinition(
        env, spec.path,
        MakeUniformStripe(StripeBase(spec.path), spec.stripe_width,
                          spec.stride_bytes)));
  }
  Result<std::unique_ptr<StripeFile>> file =
      StripeFile::Open(env, spec.path, OpenMode::kCreateReadWrite);
  ALPHASORT_RETURN_IF_ERROR(file.status());

  RecordGenerator gen(spec.format, spec.seed);
  const uint64_t chunk_records =
      std::max<uint64_t>(1, (4 << 20) / spec.format.record_size);
  std::vector<char> block(chunk_records * spec.format.record_size);
  uint64_t written = 0;
  while (written < spec.num_records) {
    const uint64_t n =
        std::min<uint64_t>(chunk_records, spec.num_records - written);
    gen.Generate(spec.distribution, n, block.data());
    ALPHASORT_RETURN_IF_ERROR(
        file.value()->Write(written * spec.format.record_size, block.data(),
                            n * spec.format.record_size));
    written += n;
  }
  return file.value()->Close();
}

Status CreateOutputDefinition(Env* env, const std::string& path,
                              size_t width, uint64_t stride_bytes) {
  if (!IsStripePath(path)) {
    return Status::InvalidArgument("output definition path must end in .str");
  }
  return WriteStripeDefinition(
      env, path, MakeUniformStripe(StripeBase(path), width, stride_bytes));
}

Status ValidateSortedFile(Env* env, const std::string& input_path,
                          const std::string& output_path,
                          const RecordFormat& format) {
  SortValidator validator(format);
  const uint64_t chunk_records =
      std::max<uint64_t>(1, (4 << 20) / format.record_size);
  std::vector<char> block(chunk_records * format.record_size);

  auto feed = [&](const std::string& path, bool is_input) -> Status {
    Result<std::unique_ptr<StripeFile>> file =
        StripeFile::Open(env, path, OpenMode::kReadOnly);
    ALPHASORT_RETURN_IF_ERROR(file.status());
    Result<uint64_t> size = file.value()->Size();
    ALPHASORT_RETURN_IF_ERROR(size.status());
    if (size.value() % format.record_size != 0) {
      return Status::Corruption(path + ": size not a multiple of records");
    }
    uint64_t offset = 0;
    while (offset < size.value()) {
      const size_t len = static_cast<size_t>(std::min<uint64_t>(
          block.size(), size.value() - offset));
      size_t got = 0;
      ALPHASORT_RETURN_IF_ERROR(
          file.value()->Read(offset, len, block.data(), &got));
      if (got != len) return Status::Corruption(path + ": short read");
      const uint64_t n = len / format.record_size;
      if (is_input) {
        validator.AddInput(block.data(), n);
      } else {
        validator.AddOutput(block.data(), n);
      }
      offset += len;
    }
    return file.value()->Close();
  };

  ALPHASORT_RETURN_IF_ERROR(feed(input_path, /*is_input=*/true));
  ALPHASORT_RETURN_IF_ERROR(feed(output_path, /*is_input=*/false));
  return validator.Finish();
}

}  // namespace alphasort
