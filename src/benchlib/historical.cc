#include "benchlib/historical.h"

namespace alphasort {

std::vector<HistoricalResult> Table1() {
  // Columns: system, year, time(s), $/sort, cost (M$), cpus, disks, ref.
  // Years follow the references: Tandem/Beck '85, Tsukerman '86,
  // Weinberger (Cray) '86, Kitsuregawa '89, Baugsto '90, Graefe+Sequent
  // '90, Baugsto 100-cpu '90, DeWitt Hypercube '92, AXP rows '93.
  return {
      {"Tandem (Datamation baseline)", 1985, 3600, 4.61, 0.2, 2, 2,
       "[1,21]", false},
      {"Beck (Sequoia)", 1985, 980, 1.92, 0.1, 4, 4, "[7]", false},
      {"Tsukerman + Tandem FastSort", 1986, 320, 1.25, 0.2, 3, 6, "[20]",
       false},
      {"Weinberger + Cray Y-MP", 1986, 26, 1.25, 7.5, 1, 1, "[22]", false},
      {"Kitsuregawa hardware sorter", 1989, 320, 0.41, 0.2, 1, 1, "[15]",
       false},
      {"Baugsto (16 cpu POMA)", 1990, 180, 0.23, 0.2, 16, 16, "[4]", false},
      {"Graefe + Sequent", 1990, 83, 0.27, 0.5, 8, 4, "[11]", false},
      {"Baugsto (100 cpu POMA)", 1990, 40, 0.26, 1.0, 100, 100, "[4]",
       false},
      {"DeWitt + Intel iPSC/2 Hypercube", 1992, 58, 0.37, 1.0, 32, 32,
       "[9]", false},
      {"DEC 7000 AXP (3 cpu, AlphaSort)", 1993, 7.0, 0.014, 0.312, 3, 28,
       "this paper", true},
      {"DEC 4000 AXP (2 cpu, AlphaSort)", 1993, 8.2, 0.016, 0.312, 2, 18,
       "this paper", true},
      {"DEC 7000 AXP (1 cpu, AlphaSort)", 1993, 9.1, 0.014, 0.247, 1, 16,
       "this paper", true},
  };
}

}  // namespace alphasort
