#ifndef ALPHASORT_BENCHLIB_FAULT_CAMPAIGN_H_
#define ALPHASORT_BENCHLIB_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/sort_metrics.h"
#include "io/env.h"
#include "io/fault_env.h"

namespace alphasort {

// Seeded fault-campaign harness (docs/fault_tolerance.md): runs many
// small sorts, each against a fresh in-memory filesystem wrapped in a
// FaultInjectionEnv driving a randomized FaultPlan, and classifies every
// trial. The contract under test is all-or-nothing: a sort under fault
// injection must either produce byte-correct output or return a clean
// non-OK Status — wrong output, leaked scratch files, crashes, and hangs
// are the only failures.

// How one trial ended.
enum class TrialOutcome {
  kCorrect,     // sort returned OK and the output validated
  kCleanError,  // sort returned a non-OK Status (acceptable under faults)
  kIncorrect,   // OK status but wrong output, or leaked scratch files
};

struct TrialResult {
  uint64_t seed = 0;
  TrialOutcome outcome = TrialOutcome::kIncorrect;
  Status sort_status;   // what AlphaSort::Run returned
  std::string detail;   // why the trial was classified as it was
  SortMetrics metrics;  // per-trial sort metrics (retries, checksums...)
  uint64_t faults_injected = 0;
  uint64_t plan_overrides = 0;

  std::string ToString() const;
};

struct CampaignConfig {
  uint64_t base_seed = 1;
  int trials = 200;
  // Records per trial; kept small so hundreds of sorts stay fast. Trials
  // randomize geometry (striping, passes, fan-in) around this size.
  uint64_t max_records = 4000;
  bool verbose = false;  // keep per-trial results for non-failures too
};

struct CampaignReport {
  int correct = 0;
  int clean_errors = 0;
  int incorrect = 0;
  uint64_t total_faults_injected = 0;
  uint64_t total_retries = 0;
  uint64_t total_retries_recovered = 0;
  uint64_t total_runs_checksum_verified = 0;
  // Every kIncorrect trial, always; every trial when config.verbose.
  std::vector<TrialResult> trials;

  int total() const { return correct + clean_errors + incorrect; }
  std::string ToString() const;
};

// Derives a reproducible randomized FaultPlan from `seed`. `scratch_hint`
// is a path substring identifying scratch-run files, the only place the
// plan ever injects *silent* write corruption: corrupting them exercises
// the run-checksum defence, while silently corrupting the final output
// would be an undetectable wrong answer by construction.
FaultPlan MakeCampaignPlan(uint64_t seed, const std::string& scratch_hint);

// Runs one seeded trial against a fresh MemEnv and classifies it.
TrialResult RunFaultTrial(uint64_t seed, uint64_t max_records);

// Runs config.trials seeded trials (seeds base_seed, base_seed+1, ...).
CampaignReport RunFaultCampaign(const CampaignConfig& config);

}  // namespace alphasort

#endif  // ALPHASORT_BENCHLIB_FAULT_CAMPAIGN_H_
