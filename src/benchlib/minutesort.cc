#include "benchlib/minutesort.h"

#include "sim/cost_model.h"

namespace alphasort {

MinuteSortResult ComputeMinuteSort(const hw::AxpSystem& system,
                                   double seconds) {
  MinuteSortResult out;
  const double bytes = sim::MaxBytesInSeconds(system, seconds);
  out.gb_sorted = bytes / 1e9;
  out.minute_price_dollars =
      cost::MinuteSortDollars(system.total_price_dollars);
  out.dollars_per_gb = cost::MinuteSortDollarsPerGb(
      system.total_price_dollars, out.gb_sorted);
  out.two_pass = bytes * 1.2 > system.memory_mb * 1e6;
  return out;
}

DollarSortResult ComputeDollarSort(const hw::AxpSystem& system) {
  DollarSortResult out;
  out.budget_seconds = cost::DollarSortSeconds(system.total_price_dollars);
  out.gb_sorted =
      sim::MaxBytesInSeconds(system, out.budget_seconds) / 1e9;
  return out;
}

}  // namespace alphasort
