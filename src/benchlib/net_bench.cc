#include "benchlib/net_bench.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/table.h"
#include "io/env.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "record/generator.h"

namespace alphasort {

namespace {

uint64_t NowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

Status VerifySorted(const RecordFormat& format, const std::vector<char>& in,
                    const std::string& out) {
  if (out.size() != in.size()) {
    return Status::Corruption(StrFormat(
        "output is %zu bytes, input was %zu", out.size(), in.size()));
  }
  const size_t r = format.record_size;
  MultisetFingerprint in_fp, out_fp;
  for (size_t off = 0; off < in.size(); off += r) {
    in_fp.Add(in.data() + off, r);
  }
  for (size_t off = 0; off < out.size(); off += r) {
    out_fp.Add(out.data() + off, r);
    if (off > 0 &&
        format.CompareKeys(out.data() + off - r, out.data() + off) > 0) {
      return Status::Corruption(
          StrFormat("keys out of order at record %zu", off / r));
    }
  }
  if (!(in_fp == out_fp)) {
    return Status::Corruption("output is not a permutation of the input");
  }
  return Status::OK();
}

}  // namespace

std::string NetBenchResult::ToString() const {
  return StrFormat(
      "ok=%d failed=%d wall=%.3fs %.1f MB/s p50=%.0fus p95=%.0fus "
      "p99=%.0fus%s%s",
      jobs_ok, jobs_failed, wall_s, aggregate_mb_per_s, p50_us, p95_us,
      p99_us, first_error.ok() ? "" : " first_error=",
      first_error.ok() ? "" : first_error.ToString().c_str());
}

NetBenchResult RunNetBench(const NetBenchConfig& config) {
  NetBenchResult result;
  std::unique_ptr<Env> env = NewMemEnv();

  net::NetServerOptions nopts;
  nopts.port = 0;
  nopts.max_conns = config.num_clients + 8;
  nopts.service.memory_budget = config.service_budget;
  nopts.service.max_running = config.max_running;
  nopts.service.max_queued = config.max_queued;
  nopts.service.num_workers = config.num_workers;
  nopts.quota.capacity_bytes = config.quota_capacity;
  nopts.quota.refill_bytes_per_s = config.quota_capacity;
  nopts.job_defaults.io_chunk_bytes = 64 * 1024;
  nopts.job_defaults.run_size_records = 10000;
  nopts.job_defaults.memory_budget = 16ull << 20;

  net::NetServer server(env.get(), nopts);
  if (Status s = server.Start(); !s.ok()) {
    result.first_error = s;
    result.jobs_failed = config.num_clients;
    return result;
  }
  const int port = server.port();

  const RecordFormat format = kDatamationFormat;
  std::atomic<int> ok{0}, failed{0};
  std::mutex err_mu;
  Status first_error;
  // One latency histogram shared across client threads; a local
  // instance so back-to-back configurations don't pollute each other
  // through the global registry.
  obs::Histogram latency;

  const uint64_t t0 = NowUs();
  std::vector<std::thread> clients;
  clients.reserve(size_t(config.num_clients));
  for (int i = 0; i < config.num_clients; ++i) {
    clients.emplace_back([&, i] {
      RecordGenerator gen(format, config.seed * 1000 + uint64_t(i));
      const std::vector<char> data = gen.Generate(
          KeyDistribution::kUniform, config.records_per_client);
      net::SortClient client;
      Status s = client.Connect("127.0.0.1", port,
                                StrFormat("bench-%d", i), 10.0);
      net::NetSortOutcome outcome;
      std::string sorted;
      uint64_t elapsed = 0;
      if (s.ok()) {
        net::SubmitSpec spec;
        spec.format = format;
        const uint64_t start = NowUs();
        s = client.SubmitSort(spec, data.data(), data.size(), &sorted,
                              &outcome);
        elapsed = NowUs() - start;
      }
      if (s.ok()) s = outcome.status;
      if (s.ok()) s = VerifySorted(format, data, sorted);
      if (s.ok()) {
        latency.Record(elapsed);
        ok.fetch_add(1);
      } else {
        failed.fetch_add(1);
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error.ok()) first_error = s;
      }
    });
  }
  for (auto& c : clients) c.join();
  result.wall_s = double(NowUs() - t0) / 1e6;

  server.Stop();
  result.jobs_ok = ok.load();
  result.jobs_failed = failed.load();
  result.first_error = first_error;
  const double sorted_bytes = double(result.jobs_ok) *
                              double(config.records_per_client) *
                              double(format.record_size);
  result.aggregate_mb_per_s =
      result.wall_s > 0 ? sorted_bytes / 1e6 / result.wall_s : 0;
  const obs::HistogramSnapshot snap = latency.Snapshot();
  result.p50_us = snap.Percentile(50);
  result.p95_us = snap.Percentile(95);
  result.p99_us = snap.Percentile(99);
  return result;
}

}  // namespace alphasort
