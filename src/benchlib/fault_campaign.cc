#include "benchlib/fault_campaign.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "benchlib/datamation.h"
#include "common/random.h"
#include "common/table.h"
#include "core/alphasort.h"
#include "core/sorter.h"
#include "io/env_stack.h"

namespace alphasort {

namespace {

const char* OutcomeName(TrialOutcome o) {
  switch (o) {
    case TrialOutcome::kCorrect: return "correct";
    case TrialOutcome::kCleanError: return "clean-error";
    case TrialOutcome::kIncorrect: return "INCORRECT";
  }
  return "?";
}

// One fault probability: zero a third of the time, else a small rate in
// [0.2%, 1.6%]. Small rates matter — every operation rolls every dice, a
// sort issues thousands of operations, and the retry budget is finite, so
// larger rates would turn nearly every trial into a clean error and prove
// nothing about recovery.
double DrawProb(Random* rng) {
  if (rng->OneIn(3)) return 0;
  return 0.002 * static_cast<double>(uint64_t{1} << rng->Uniform(4));
}

}  // namespace

FaultPlan MakeCampaignPlan(uint64_t seed, const std::string& scratch_hint) {
  Random rng(seed ^ 0xfa017ca3bad5eed5ULL);
  FaultPlan plan;
  plan.seed = seed;

  plan.defaults.mode = FaultMode::kTransient;
  plan.defaults.read_fail_prob = DrawProb(&rng);
  plan.defaults.write_fail_prob = DrawProb(&rng);
  plan.defaults.short_read_prob = DrawProb(&rng);
  plan.defaults.partial_write_prob = DrawProb(&rng);
  // Silent write corruption stays zero in the defaults: flipping a byte
  // of the *final output* with OK status is an undetectable wrong answer
  // by construction (nothing downstream reads it back). Scratch runs are
  // read back through the checksum check, so they get corruption below.
  plan.defaults.corrupt_write_prob = 0;

  if (rng.OneIn(3)) {
    FaultSpec scratch = plan.defaults;
    scratch.corrupt_write_prob =
        0.01 * static_cast<double>(1 + rng.Uniform(3));
    plan.overrides.emplace_back(scratch_hint + ".l", scratch);
  }
  if (rng.OneIn(4)) {
    // One stripe member dies for good partway through: every sort over a
    // striped file must fail cleanly, never emit partial output as OK.
    FaultSpec dead;
    dead.mode = FaultMode::kPermanent;
    dead.read_fail_prob = 0.05;
    dead.write_fail_prob = 0.05;
    plan.overrides.emplace_back(
        StrFormat(".s%02llu",
                  static_cast<unsigned long long>(rng.Uniform(2))),
        dead);
  }
  return plan;
}

TrialResult RunFaultTrial(uint64_t seed, uint64_t max_records) {
  TrialResult result;
  result.seed = seed;
  Random rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234567);

  std::unique_ptr<Env> mem = NewMemEnv();
  // Canonical layer order (io/env_stack.h): the fault layer sits
  // directly above the base store; the sort adds its own metrics/retry
  // layers above it per run.
  EnvStack stack(mem.get());
  stack.PushFaults();
  FaultInjectionEnv& fenv = *stack.faults();

  // Randomized geometry: plain/striped endpoints, one or two passes,
  // several stripe widths, fan-ins narrow enough to force merge cascades.
  const uint64_t min_records = 200;
  const uint64_t records =
      min_records + rng.Uniform(std::max<uint64_t>(1, max_records -
                                                          min_records));
  const bool striped_in = rng.OneIn(2);
  const bool striped_out = rng.OneIn(2);
  const size_t width = 2 + rng.Uniform(3);

  InputSpec spec;
  spec.path = striped_in ? "in.str" : "in.dat";
  spec.num_records = records;
  // Rotate key distributions so skew-sensitive paths (radix bucket
  // recursion, tie-break-heavy compares, presorted scans) see fault
  // traffic, not just the uniform Datamation shape.
  const KeyDistribution kDistributions[] = {
      KeyDistribution::kUniform,      KeyDistribution::kUniform,
      KeyDistribution::kSorted,       KeyDistribution::kReverse,
      KeyDistribution::kFewDistinct,  KeyDistribution::kSharedPrefix,
      KeyDistribution::kAlmostSorted, KeyDistribution::kDupHeavy,
      KeyDistribution::kZipfian};
  spec.distribution = kDistributions[rng.Uniform(9)];
  spec.seed = seed + 17;
  spec.stripe_width = width;
  spec.stride_bytes = 4 * 1024;
  Status setup = CreateInputFile(&fenv, spec);
  if (setup.ok() && striped_out) {
    setup = CreateOutputDefinition(&fenv, "out.str", width, 4 * 1024);
  }
  if (!setup.ok()) {
    result.outcome = TrialOutcome::kIncorrect;
    result.detail = "setup failed: " + setup.ToString();
    return result;
  }

  SortOptions opts;
  opts.input_path = spec.path;
  opts.output_path = striped_out ? "out.str" : "out.dat";
  opts.scratch_path = "scratch";
  opts.force_passes = rng.OneIn(3) ? 1 : 2;
  // Two-pass trials spill a handful of runs (run size follows the memory
  // budget), so merges, cascades, and the checksum path all get traffic.
  opts.memory_budget = std::max<uint64_t>(
      64 * 1024,
      records * spec.format.record_size / (2 + rng.Uniform(6)));
  opts.run_size_records = 100 + rng.Uniform(400);
  opts.io_chunk_bytes = size_t{4096} << rng.Uniform(3);
  opts.io_threads = 1 + static_cast<int>(rng.Uniform(3));
  opts.io_depth = 2 + static_cast<int>(rng.Uniform(3));
  opts.num_workers = static_cast<int>(rng.Uniform(3));
  opts.max_merge_fanin = 2 + rng.Uniform(6);
  // Exercise the key-range-partitioned merge (docs/perf.md) under fault
  // injection too: auto, forced-sequential, and explicit range counts.
  const int kMergeParallelism[] = {-1, 1, 2, 4};
  opts.merge_parallelism = kMergeParallelism[rng.Uniform(4)];
  const size_t kPrefetchDistance[] = {0, 8, 32};
  opts.prefetch_distance = kPrefetchDistance[rng.Uniform(3)];
  opts.merge_prefetch = rng.OneIn(2);
  // All three kernels must survive every fault schedule — their output is
  // byte-identical, so any divergence the validator catches is a bug.
  const SortKernel kKernels[] = {SortKernel::kAuto, SortKernel::kQuickSort,
                                 SortKernel::kRadixHybrid};
  opts.sort_kernel = kKernels[rng.Uniform(3)];
  opts.scratch_stripe_width = rng.OneIn(3) ? 2 : 0;
  opts.retry_policy.max_attempts = 2 + static_cast<int>(rng.Uniform(4));
  opts.retry_policy.backoff_initial_us = 1;
  opts.retry_policy.backoff_cap_us = 16;

  FaultPlan plan = MakeCampaignPlan(seed, opts.scratch_path);
  result.plan_overrides = plan.overrides.size();
  fenv.SetPlan(plan);
  result.sort_status = [&] {
    Sorter::Resources resources;
    resources.num_workers = opts.num_workers;
    resources.io_threads = opts.io_threads;
    Sorter sorter(stack.top(), resources);
    const SortResult& r = sorter.Start(opts).Wait();
    result.metrics = r.metrics;
    return r.status;
  }();
  fenv.SetPlan(FaultPlan{});  // quiesce before validation
  result.faults_injected = fenv.faults_injected();

  if (result.sort_status.ok()) {
    Status v = ValidateSortedFile(mem.get(), opts.input_path,
                                  opts.output_path, opts.format);
    if (v.ok()) {
      result.outcome = TrialOutcome::kCorrect;
    } else {
      result.outcome = TrialOutcome::kIncorrect;
      result.detail = "sort reported OK but output is wrong: " +
                      v.ToString();
      return result;
    }
  } else {
    result.outcome = TrialOutcome::kCleanError;
    result.detail = result.sort_status.ToString();
  }

  // Either way the scratch namespace must be empty: a failed sort that
  // leaks stripe fragments fills the disk across a campaign.
  std::vector<std::string> stray;
  Status ls = mem->ListFiles(opts.scratch_path, &stray);
  if (!ls.ok()) {
    result.outcome = TrialOutcome::kIncorrect;
    result.detail = "scratch listing failed: " + ls.ToString();
  } else if (!stray.empty()) {
    result.outcome = TrialOutcome::kIncorrect;
    result.detail = StrFormat("leaked %zu scratch file(s), first: %s",
                              stray.size(), stray[0].c_str());
  }
  return result;
}

CampaignReport RunFaultCampaign(const CampaignConfig& config) {
  CampaignReport report;
  for (int i = 0; i < config.trials; ++i) {
    const uint64_t seed = config.base_seed + static_cast<uint64_t>(i);
    TrialResult trial = RunFaultTrial(seed, config.max_records);
    switch (trial.outcome) {
      case TrialOutcome::kCorrect: ++report.correct; break;
      case TrialOutcome::kCleanError: ++report.clean_errors; break;
      case TrialOutcome::kIncorrect: ++report.incorrect; break;
    }
    report.total_faults_injected += trial.faults_injected;
    report.total_retries += trial.metrics.io_retries;
    report.total_retries_recovered += trial.metrics.io_retries_recovered;
    report.total_runs_checksum_verified +=
        trial.metrics.runs_checksum_verified;
    if (trial.outcome == TrialOutcome::kIncorrect || config.verbose) {
      report.trials.push_back(std::move(trial));
    }
  }
  return report;
}

std::string TrialResult::ToString() const {
  std::string out = StrFormat(
      "seed %llu: %s", static_cast<unsigned long long>(seed),
      OutcomeName(outcome));
  if (!detail.empty()) out += " — " + detail;
  out += StrFormat(
      " (%llu fault(s) injected, %llu retries, %llu recovered)",
      static_cast<unsigned long long>(faults_injected),
      static_cast<unsigned long long>(metrics.io_retries),
      static_cast<unsigned long long>(metrics.io_retries_recovered));
  return out;
}

std::string CampaignReport::ToString() const {
  std::string out = StrFormat(
      "fault campaign: %d trial(s) — %d correct, %d clean error(s), "
      "%d incorrect\n",
      total(), correct, clean_errors, incorrect);
  out += StrFormat(
      "faults injected: %llu | retries: %llu (%llu recovered) | run "
      "checksums verified: %llu\n",
      static_cast<unsigned long long>(total_faults_injected),
      static_cast<unsigned long long>(total_retries),
      static_cast<unsigned long long>(total_retries_recovered),
      static_cast<unsigned long long>(total_runs_checksum_verified));
  for (const auto& t : trials) out += "  " + t.ToString() + "\n";
  return out;
}

}  // namespace alphasort
