#include "benchlib/service_bench.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "benchlib/datamation.h"
#include "common/table.h"
#include "io/env_stack.h"
#include "svc/sort_service.h"

namespace alphasort {

std::string ServiceBenchResult::ToString() const {
  std::string out = StrFormat(
      "%d ok, %d failed, %d invalid, %d leaked scratch; "
      "%.2fs wall, %.1f MB/s aggregate, peak admitted %.1f MB, "
      "%llu down-negotiated",
      jobs_ok, jobs_failed, jobs_invalid, leaked_scratch, wall_s,
      aggregate_mb_per_s, peak_admitted_bytes / 1e6,
      static_cast<unsigned long long>(down_negotiated));
  if (!first_error.ok()) {
    out += StrFormat("; first error: %s", first_error.ToString().c_str());
  }
  return out;
}

ServiceBenchResult RunServiceBench(const ServiceBenchConfig& config) {
  ServiceBenchResult result;
  std::unique_ptr<Env> mem = NewMemEnv();

  // Canonical layer order (io/env_stack.h): faults directly above the
  // base store; each job's own metrics/retry layers stack above this
  // inside the pipeline.
  EnvStack stack(mem.get());
  if (config.inject_faults) {
    stack.PushFaults();
    FaultPlan plan;
    plan.seed = config.seed;
    plan.defaults.read_fail_prob = 0.002;
    plan.defaults.write_fail_prob = 0.002;
    plan.defaults.mode = FaultMode::kTransient;
    stack.faults()->SetPlan(plan);
  }
  Env* env = stack.top();

  const RecordFormat format = kDatamationFormat;
  std::vector<std::string> inputs(config.num_jobs);
  std::vector<std::string> outputs(config.num_jobs);
  for (int j = 0; j < config.num_jobs; ++j) {
    inputs[j] = StrFormat("svc_in_%02d.dat", j);
    outputs[j] = StrFormat("svc_out_%02d.dat", j);
    InputSpec spec;
    spec.path = inputs[j];
    spec.format = format;
    spec.num_records = config.records_per_job;
    spec.seed = config.seed + static_cast<uint64_t>(j);
    if (Status s = CreateInputFile(mem.get(), spec); !s.ok()) {
      result.first_error = s;
      return result;
    }
  }

  svc::SortServiceOptions sopts;
  sopts.memory_budget = config.service_budget;
  sopts.max_running = config.max_running;
  sopts.max_queued = config.num_jobs;  // the bench never wants rejections
  sopts.num_workers = config.num_workers;
  svc::SortService service(env, sopts);

  const auto start = std::chrono::steady_clock::now();
  std::vector<SortJob> jobs;
  std::vector<int> job_index;  // jobs[k] sorts inputs[job_index[k]]
  jobs.reserve(config.num_jobs);
  for (int j = 0; j < config.num_jobs; ++j) {
    SortOptions opts;
    opts.input_path = inputs[j];
    opts.output_path = outputs[j];
    opts.format = format;
    opts.memory_budget = config.job_budget;
    opts.io_chunk_bytes = static_cast<size_t>(std::min<uint64_t>(
        64 * 1024, config.job_budget / SortOptions::kMinMemoryBudgetChunks));
    opts.run_size_records = 10000;
    opts.scratch_path = "svc_scratch";
    if (config.inject_faults) {
      opts.retry_policy.max_attempts = 8;
      opts.retry_policy.backoff_initial_us = 1;
      opts.retry_policy.backoff_cap_us = 16;
    }
    Result<SortJob> job = service.Submit(opts);
    if (!job.ok()) {
      ++result.jobs_failed;
      if (result.first_error.ok()) result.first_error = job.status();
      continue;
    }
    jobs.push_back(std::move(job).value());
    job_index.push_back(j);
  }

  uint64_t validated_bytes = 0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    const SortResult& r = jobs[j].Wait();
    if (!r.status.ok()) {
      ++result.jobs_failed;
      if (result.first_error.ok()) result.first_error = r.status;
      continue;
    }
    if (Status v = ValidateSortedFile(mem.get(), inputs[job_index[j]],
                                      outputs[job_index[j]], format);
        !v.ok()) {
      ++result.jobs_invalid;
      if (result.first_error.ok()) result.first_error = v;
      continue;
    }
    ++result.jobs_ok;
    validated_bytes += r.metrics.bytes_out;
  }
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  if (result.wall_s > 0) {
    result.aggregate_mb_per_s = validated_bytes / 1e6 / result.wall_s;
  }

  const svc::SortServiceStats stats = service.stats();
  result.peak_admitted_bytes = stats.peak_admitted_bytes;
  result.down_negotiated = stats.down_negotiated;

  // Every job is done: any file left under the scratch namespace is a
  // leak (per-job sweepers plus per-job directories should have removed
  // everything).
  std::vector<std::string> stray;
  if (mem->ListFiles("svc_scratch", &stray).ok()) {
    result.leaked_scratch = static_cast<int>(stray.size());
  }
  return result;
}

}  // namespace alphasort
