#ifndef ALPHASORT_BENCHLIB_NET_BENCH_H_
#define ALPHASORT_BENCHLIB_NET_BENCH_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace alphasort {

// Harness measuring the networked sort service end to end (docs/net.md):
// a NetServer over a fresh in-memory filesystem on a loopback ephemeral
// port, N concurrent clients each streaming records up, waiting, and
// verifying the sorted stream that comes back. The numbers capture the
// full wire path — framing, streamed ingest, admission, sort, stream-back —
// which is what a tenant of the service actually observes, as opposed to
// the in-process service bench that skips the socket entirely.

struct NetBenchConfig {
  int num_clients = 16;
  uint64_t records_per_client = 2000;
  // Service arbitration under the server.
  int max_running = 4;
  int max_queued = 256;
  uint64_t service_budget = 64ull << 20;
  int num_workers = 2;
  // Per-tenant quota capacity (every client is its own tenant); sized so
  // the configured jobs always fit — quota rejection is the loadgen
  // smoke's subject, not this harness's.
  uint64_t quota_capacity = 256ull << 20;
  uint64_t seed = 1;
};

struct NetBenchResult {
  int jobs_ok = 0;      // OK result and client-side verification passed
  int jobs_failed = 0;  // any non-OK outcome or verification failure
  double wall_s = 0;    // first submit -> last result verified
  double aggregate_mb_per_s = 0;  // verified sorted bytes / wall_s
  // Client-observed end-to-end latency per job (connect excluded).
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  Status first_error;

  std::string ToString() const;
};

// Runs one configuration start to finish; the server lives only for the
// call.
NetBenchResult RunNetBench(const NetBenchConfig& config);

}  // namespace alphasort

#endif  // ALPHASORT_BENCHLIB_NET_BENCH_H_
