# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("record")
subdirs("sort")
subdirs("io")
subdirs("sim")
subdirs("core")
subdirs("svc")
subdirs("net")
subdirs("benchlib")
