#include "sim/pipeline_event_sim.h"

#include <algorithm>
#include <vector>

namespace alphasort {
namespace sim {

namespace {

// Earliest-free assignment onto `free_at`; returns the chore's end time.
double RunOnFreestCpu(std::vector<double>* free_at, double ready,
                      double duration) {
  auto it = std::min_element(free_at->begin(), free_at->end());
  const double start = std::max(ready, *it);
  *it = start + duration;
  return *it;
}

}  // namespace

PipelineEventResult SimulatePipelineEvents(const hw::AxpSystem& system,
                                           double bytes,
                                           const CpuCostModel& cost,
                                           uint64_t run_records,
                                           uint64_t stride_bytes) {
  PipelineEventResult out;
  const double clock_scale = system.clock_ns / 5.0;
  const uint64_t record_size = 100;
  const uint64_t n = static_cast<uint64_t>(bytes / record_size);
  const int cpus = std::max(1, system.cpus);
  if (n == 0) return out;

  // --- read phase: strided reads, depth-3 per disk, round-robin. A run
  // is ready when the stride containing its last record completes.
  EventDiskSim disks(system.array);
  const int num_disks = std::max(1, disks.num_disks());
  const uint64_t total_bytes = n * record_size;
  const uint64_t num_chunks =
      (total_bytes + stride_bytes - 1) / stride_bytes;

  std::vector<std::vector<double>> done_per_disk(num_disks);
  std::vector<double> chunk_done(num_chunks, 0);
  double last_read = 0;
  {
    uint64_t remaining = total_bytes;
    for (uint64_t i = 0; i < num_chunks; ++i) {
      const int d = static_cast<int>(i % num_disks);
      const uint64_t len = std::min<uint64_t>(stride_bytes, remaining);
      remaining -= len;
      auto& history = done_per_disk[d];
      const double issue = history.size() >= 3
                               ? history[history.size() - 3]
                               : 0.0;
      chunk_done[i] = disks.ScheduleRead(d, len, issue);
      history.push_back(chunk_done[i]);
      last_read = std::max(last_read, chunk_done[i]);
    }
  }
  out.read_phase_s = last_read;

  // QuickSort chores on the CPUs, each ready at its last chunk's arrival.
  const double qs_per_record =
      cost.extract_quicksort_s * clock_scale / 1e6;
  std::vector<double> cpu_free(cpus, 0.0);
  double last_sort = 0;
  for (uint64_t start = 0; start < n; start += run_records) {
    const uint64_t len = std::min<uint64_t>(run_records, n - start);
    const uint64_t last_byte = (start + len) * record_size - 1;
    const double ready = chunk_done[last_byte / stride_bytes];
    const double dur = len * qs_per_record;
    last_sort = std::max(last_sort,
                         RunOnFreestCpu(&cpu_free, ready, dur));
    out.cpu_busy_s += dur;
  }
  out.last_run_s = std::max(0.0, last_sort - last_read);

  // --- merge phase: the root merges one output buffer at a time (serial
  // token), workers gather it, and the buffer — a full stripe cycle —
  // is written to every disk at once, double buffered: the root may only
  // start filling buffer i once buffer i-2 has drained.
  EventDiskSim write_disks(system.array);
  const double merge_per_record = cost.merge_root_s * clock_scale / 1e6;
  const double gather_per_record =
      cost.gather_s * clock_scale / 1e6 / cpus;
  const uint64_t batch_records = std::max<uint64_t>(
      1, static_cast<uint64_t>(num_disks) * stride_bytes / record_size);
  double merge_token = 0;  // when the root can start the next buffer
  std::vector<double> batch_done;
  double last_write = 0;
  uint64_t emitted = 0;
  while (emitted < n) {
    const uint64_t len = std::min<uint64_t>(batch_records, n - emitted);
    const double buffer_free =
        batch_done.size() >= 2 ? batch_done[batch_done.size() - 2] : 0.0;
    // Root merge (serial) then gather, gated by buffer reuse. With one
    // CPU the root does both back to back; with workers the gather
    // overlaps the root's next merge (§5's division of labour).
    double merged;
    double gathered;
    if (cpus == 1) {
      merged = std::max(merge_token, buffer_free) +
               len * (merge_per_record + gather_per_record);
      merge_token = merged;
      gathered = merged;
    } else {
      merged = std::max(merge_token, buffer_free) + len * merge_per_record;
      merge_token = merged;
      gathered = merged + len * gather_per_record;
    }
    // The buffer spans the stripe: one chunk per disk, all concurrent.
    uint64_t remaining = len * record_size;
    double done = gathered;
    for (int d = 0; d < num_disks && remaining > 0; ++d) {
      const uint64_t chunk = std::min<uint64_t>(stride_bytes, remaining);
      remaining -= chunk;
      done = std::max(done, write_disks.ScheduleWrite(d, chunk, gathered));
    }
    batch_done.push_back(done);
    last_write = std::max(last_write, done);
    emitted += len;
  }
  out.merge_phase_s = last_write;

  const double os_half = cost.os_overlappable_s * clock_scale / 2.0;
  out.total_s = cost.startup_s * clock_scale +
                std::max(out.read_phase_s, os_half) + out.last_run_s +
                std::max(out.merge_phase_s, os_half) +
                cost.shutdown_s * clock_scale +
                cost.mp_overhead_s * (cpus - 1);
  return out;
}

}  // namespace sim
}  // namespace alphasort
