file(REMOVE_RECURSE
  "libalphasort_sim.a"
)
