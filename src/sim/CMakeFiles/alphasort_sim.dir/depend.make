# Empty dependencies file for alphasort_sim.
# This may be replaced when dependencies are built.
