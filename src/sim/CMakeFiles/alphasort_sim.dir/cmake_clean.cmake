file(REMOVE_RECURSE
  "CMakeFiles/alphasort_sim.dir/cache_sim.cc.o"
  "CMakeFiles/alphasort_sim.dir/cache_sim.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/cost_model.cc.o"
  "CMakeFiles/alphasort_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/disk_sim.cc.o"
  "CMakeFiles/alphasort_sim.dir/disk_sim.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/event_sim.cc.o"
  "CMakeFiles/alphasort_sim.dir/event_sim.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/hardware_configs.cc.o"
  "CMakeFiles/alphasort_sim.dir/hardware_configs.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/memory_hierarchy.cc.o"
  "CMakeFiles/alphasort_sim.dir/memory_hierarchy.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/pipeline_event_sim.cc.o"
  "CMakeFiles/alphasort_sim.dir/pipeline_event_sim.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/pipeline_model.cc.o"
  "CMakeFiles/alphasort_sim.dir/pipeline_model.cc.o.d"
  "CMakeFiles/alphasort_sim.dir/stall_model.cc.o"
  "CMakeFiles/alphasort_sim.dir/stall_model.cc.o.d"
  "libalphasort_sim.a"
  "libalphasort_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
