
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_sim.cc" "src/sim/CMakeFiles/alphasort_sim.dir/cache_sim.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/cache_sim.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/alphasort_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/disk_sim.cc" "src/sim/CMakeFiles/alphasort_sim.dir/disk_sim.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/disk_sim.cc.o.d"
  "/root/repo/src/sim/event_sim.cc" "src/sim/CMakeFiles/alphasort_sim.dir/event_sim.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/event_sim.cc.o.d"
  "/root/repo/src/sim/hardware_configs.cc" "src/sim/CMakeFiles/alphasort_sim.dir/hardware_configs.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/hardware_configs.cc.o.d"
  "/root/repo/src/sim/memory_hierarchy.cc" "src/sim/CMakeFiles/alphasort_sim.dir/memory_hierarchy.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/memory_hierarchy.cc.o.d"
  "/root/repo/src/sim/pipeline_event_sim.cc" "src/sim/CMakeFiles/alphasort_sim.dir/pipeline_event_sim.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/pipeline_event_sim.cc.o.d"
  "/root/repo/src/sim/pipeline_model.cc" "src/sim/CMakeFiles/alphasort_sim.dir/pipeline_model.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/pipeline_model.cc.o.d"
  "/root/repo/src/sim/stall_model.cc" "src/sim/CMakeFiles/alphasort_sim.dir/stall_model.cc.o" "gcc" "src/sim/CMakeFiles/alphasort_sim.dir/stall_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  "/root/repo/src/sort/CMakeFiles/alphasort_sort.dir/DependInfo.cmake"
  "/root/repo/src/record/CMakeFiles/alphasort_record.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
