#include "sim/memory_hierarchy.h"

#include "common/table.h"

namespace alphasort {

MemoryHierarchy MemoryHierarchy::Axp7000() {
  MemoryHierarchy h;
  h.clock_ns = 5.0;
  // Latencies in 5 ns clock ticks, following Figure 3's log scale:
  // registers ~1 tick, on-chip cache ~2, on-board cache ~10, main memory
  // ~100, disk ~2 years of human time (1e7 ticks), tape/optical ~2000
  // years (1e10).
  h.levels = {
      {"registers", 1, "my head (1 min)"},
      {"on-chip cache", 2, "this room (2 min)"},
      {"on-board cache", 10, "this campus (10 min)"},
      {"main memory", 100, "Sacramento (1.5 hr)"},
      {"disk", 1.0e7, "Pluto (2 years)"},
      {"tape / optical robot", 1.0e10, "Andromeda (2,000 years)"},
  };
  return h;
}

std::string MemoryHierarchy::HumanTime(double clock_ticks) {
  // One tick == one minute of body time.
  const double minutes = clock_ticks;
  if (minutes < 60) return StrFormat("%.0f min", minutes);
  const double hours = minutes / 60;
  if (hours < 24) return StrFormat("%.1f hr", hours);
  const double days = hours / 24;
  if (days < 365) return StrFormat("%.0f days", days);
  const double years = days / 365.25;
  if (years < 10) return StrFormat("%.1f years", years);
  return StrFormat("%.0f years", years);
}

}  // namespace alphasort
