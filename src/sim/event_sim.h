#ifndef ALPHASORT_SIM_EVENT_SIM_H_
#define ALPHASORT_SIM_EVENT_SIM_H_

#include <cstdint>
#include <vector>

#include "sim/disk_sim.h"

namespace alphasort {
namespace sim {

// Event-driven counterpart to the DiskArray bandwidth arithmetic: individual
// transfer requests are scheduled against per-disk and per-controller
// resources in virtual time, so issue order, queue depth, and stride
// patterns all matter. Used to cross-validate Figure 5's near-linear
// scaling from *actual* striped request streams (and to show what happens
// when triple buffering is turned off).
//
// Resource model per request on disk d behind controller c:
//   seek/settle: the disk is busy `seek_ms` before transferring;
//   disk time  : bytes / disk_rate;
//   controller : bytes / controller_rate of channel occupancy, serialized
//                with the other disks on c (this is what saturates).
// A request begins when both its disk and its controller are free at or
// after the issue time; it completes when both finish.
class EventDiskSim {
 public:
  explicit EventDiskSim(const DiskArray& array, double seek_ms = 0.0);

  int num_disks() const { return static_cast<int>(disk_of_.size()); }

  // Schedules a transfer of `bytes` on `disk` issued at `issue_s`;
  // returns the completion time (seconds of virtual time).
  double ScheduleRead(int disk, uint64_t bytes, double issue_s);
  double ScheduleWrite(int disk, uint64_t bytes, double issue_s);

  // Virtual time when every scheduled request has completed.
  double CompletionTime() const { return completion_; }

  void Reset();

  // Simulates a striped sequential read/write of `total_bytes` issued
  // round-robin in `stride_bytes` chunks with `queue_depth` outstanding
  // requests per disk (the paper's triple buffering = 3). Returns the
  // elapsed virtual seconds.
  double StreamStriped(uint64_t total_bytes, uint64_t stride_bytes,
                       int queue_depth, bool is_read);

 private:
  double Schedule(int disk, uint64_t bytes, double issue_s, bool is_read);

  std::vector<DiskModel> disk_of_;  // disk index -> model (copied; the
                                    // source array need not outlive us)
  std::vector<int> controller_of_;  // disk index -> controller
  std::vector<ControllerModel> controllers_;
  std::vector<double> disk_free_;        // per-disk next-free time
  std::vector<double> controller_free_;  // per-controller next-free time
  double seek_s_;
  double completion_ = 0;
};

}  // namespace sim
}  // namespace alphasort

#endif  // ALPHASORT_SIM_EVENT_SIM_H_
