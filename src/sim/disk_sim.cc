#include "sim/disk_sim.h"

#include <algorithm>

namespace alphasort {

double ControllerGroup::ReadMbps() const {
  return std::min(controller.max_mbps, num_disks * disk.read_mbps);
}

double ControllerGroup::WriteMbps() const {
  return std::min(controller.max_mbps, num_disks * disk.write_mbps);
}

double ControllerGroup::PriceDollars() const {
  return controller.price_dollars + num_disks * disk.price_dollars;
}

double ControllerGroup::CapacityGb() const {
  return num_disks * disk.capacity_gb;
}

int DiskArray::TotalDisks() const {
  int n = 0;
  for (const auto& g : groups) n += g.num_disks;
  return n;
}

double DiskArray::ReadMbps() const {
  double total = 0;
  for (const auto& g : groups) total += g.ReadMbps();
  return total;
}

double DiskArray::WriteMbps() const {
  double total = 0;
  for (const auto& g : groups) total += g.WriteMbps();
  return total;
}

double DiskArray::PriceDollars() const {
  double total = 0;
  for (const auto& g : groups) total += g.PriceDollars();
  return total;
}

double DiskArray::CapacityGb() const {
  double total = 0;
  for (const auto& g : groups) total += g.CapacityGb();
  return total;
}

double DiskArray::ReadSeconds(double bytes) const {
  const double rate = ReadMbps();
  if (rate <= 0) return 0;
  return startup_seconds + bytes / (rate * 1e6);
}

double DiskArray::WriteSeconds(double bytes) const {
  const double rate = WriteMbps();
  if (rate <= 0) return 0;
  return startup_seconds + bytes / (rate * 1e6);
}

DiskModel WithWriteCacheEnabled(DiskModel disk, double write_boost) {
  disk.name += "+WCE";
  disk.write_mbps *= write_boost;
  return disk;
}

DiskArray DiskArray::Uniform(const std::string& name, DiskModel disk,
                             ControllerModel controller, int disks,
                             int controllers) {
  DiskArray array;
  array.name = name;
  if (controllers <= 0 || disks <= 0) return array;
  const int base = disks / controllers;
  int extra = disks % controllers;
  for (int c = 0; c < controllers; ++c) {
    ControllerGroup group;
    group.controller = controller;
    group.disk = disk;
    group.num_disks = base + (extra-- > 0 ? 1 : 0);
    if (group.num_disks > 0) array.groups.push_back(group);
  }
  return array;
}

}  // namespace alphasort
