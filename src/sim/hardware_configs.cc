#include "sim/hardware_configs.h"

namespace alphasort {
namespace hw {

// Per-disk spiral rates are derived from the paper's measured stripe
// rates:
//   many-slow: 36 RZ26 read 64 MB/s, write 49 MB/s  -> 1.78 / 1.36 MB/s
//   few-fast : 12 RZ28 + 6 Velocitor read 52, write 39
//   §7 run   : 16 RZ74 read ~25.8 MB/s (100 MB in 3.87 s), write ~20.4
// Prices: "a disk and its controller costs about 2400$" (§6); the RZ26
// itself is "about 2000$" with ~400$ of controller share; Table 6 lists
// 85 k$ and 122 k$ for the complete arrays (cabinets included — folded
// into the controller price here).

DiskModel Rz26() { return DiskModel{"RZ26", 1.78, 1.36, 2000, 1.05}; }
DiskModel Rz28() { return DiskModel{"RZ28", 2.50, 1.90, 3800, 2.1}; }
DiskModel Rz74() { return DiskModel{"RZ74", 1.62, 1.28, 2400, 3.6}; }
DiskModel VelocitorIpi() {
  return DiskModel{"Velocitor", 3.67, 2.70, 7600, 2.0};
}

ControllerModel ScsiKzmsa() { return ControllerModel{"SCSI (kzmsa)", 8.0, 1400}; }
ControllerModel FastScsi() { return ControllerModel{"fast-SCSI", 10.0, 1600}; }
ControllerModel GenrocoIpi() {
  return ControllerModel{"Genroco IPI", 15.0, 8000};
}

DiskArray ManySlowArray() {
  DiskArray a = DiskArray::Uniform("many-slow", Rz26(), ScsiKzmsa(), 36, 9);
  return a;
}

DiskArray FewFastArray() {
  DiskArray a;
  a.name = "few-fast";
  DiskArray scsi_part =
      DiskArray::Uniform("scsi", Rz28(), ScsiKzmsa(), 12, 4);
  DiskArray ipi_part =
      DiskArray::Uniform("ipi", VelocitorIpi(), GenrocoIpi(), 6, 3);
  a.groups = scsi_part.groups;
  a.groups.insert(a.groups.end(), ipi_part.groups.begin(),
                  ipi_part.groups.end());
  return a;
}

std::vector<AxpSystem> Table8Systems() {
  std::vector<AxpSystem> systems;

  {
    AxpSystem s;
    s.name = "DEC 7000 AXP (3 cpu)";
    s.cpus = 3;
    s.clock_ns = 5.0;
    s.memory_mb = 256;
    s.array = DiskArray::Uniform("28xRZ26", Rz26(), FastScsi(), 28, 7);
    s.total_price_dollars = 312000;
    s.disk_ctlr_price_dollars = 123000;
    s.paper_seconds = 7.0;
    s.paper_dollars_per_sort = 0.014;
    systems.push_back(s);
  }
  {
    AxpSystem s;
    s.name = "DEC 4000 AXP (2 cpu)";
    s.cpus = 2;
    s.clock_ns = 6.25;
    s.memory_mb = 256;
    DiskArray scsi = DiskArray::Uniform("scsi", Rz28(), ScsiKzmsa(), 12, 4);
    DiskArray ipi =
        DiskArray::Uniform("ipi", VelocitorIpi(), GenrocoIpi(), 6, 3);
    s.array.name = "12scsi+6ipi";
    s.array.groups = scsi.groups;
    s.array.groups.insert(s.array.groups.end(), ipi.groups.begin(),
                          ipi.groups.end());
    s.total_price_dollars = 312000;
    s.disk_ctlr_price_dollars = 95000;
    s.paper_seconds = 8.2;
    s.paper_dollars_per_sort = 0.016;
    systems.push_back(s);
  }
  {
    AxpSystem s;
    s.name = "DEC 7000 AXP (1 cpu)";
    s.cpus = 1;
    s.clock_ns = 5.0;
    s.memory_mb = 256;
    s.array = DiskArray::Uniform("16xRZ74", Rz74(), FastScsi(), 16, 6);
    s.total_price_dollars = 247000;
    s.disk_ctlr_price_dollars = 65000;
    s.paper_seconds = 9.1;
    s.paper_dollars_per_sort = 0.014;
    systems.push_back(s);
  }
  {
    AxpSystem s;
    s.name = "DEC 4000 AXP (1 cpu)";
    s.cpus = 1;
    s.clock_ns = 6.25;
    s.memory_mb = 384;
    s.array = DiskArray::Uniform("12xRZ26", Rz26(), FastScsi(), 12, 4);
    s.total_price_dollars = 166000;
    s.disk_ctlr_price_dollars = 48000;
    s.paper_seconds = 11.3;
    s.paper_dollars_per_sort = 0.014;
    systems.push_back(s);
  }
  {
    AxpSystem s;
    s.name = "DEC 3000 AXP (1 cpu)";
    s.cpus = 1;
    s.clock_ns = 6.6;
    s.memory_mb = 256;
    s.array = DiskArray::Uniform("10xRZ26", Rz26(), ScsiKzmsa(), 10, 5);
    s.total_price_dollars = 97000;
    s.disk_ctlr_price_dollars = 48000;
    s.paper_seconds = 13.7;
    s.paper_dollars_per_sort = 0.009;
    systems.push_back(s);
  }
  return systems;
}

AxpSystem MinuteSortSystem() {
  AxpSystem s;
  s.name = "DEC 7000 AXP (3 cpu, MinuteSort)";
  s.cpus = 3;
  s.clock_ns = 5.0;
  s.memory_mb = 1250;
  s.array = ManySlowArray();
  s.total_price_dollars = 512000;
  s.disk_ctlr_price_dollars = 85000;
  s.paper_seconds = 60.0;
  s.paper_dollars_per_sort = 0.51;
  return s;
}

}  // namespace hw
}  // namespace alphasort
