#ifndef ALPHASORT_SIM_COST_MODEL_H_
#define ALPHASORT_SIM_COST_MODEL_H_

namespace alphasort {

// The paper's price arithmetic (1993 dollars).
namespace cost {

// "Using 1993 prices for Alpha AXP, a disk and its controller costs about
// 2400$" (§6); memory "at 100$/MB" (§6).
inline constexpr double kDiskPlusControllerDollars = 2400.0;
inline constexpr double kMemoryDollarsPerMb = 100.0;

// Datamation's metric: 5-year cost of the system prorated over the
// elapsed time of the sort (§2).
double DatamationDollarsPerSort(double system_price_dollars,
                                double elapsed_seconds);

// MinuteSort (§8): price/1e6 approximates one minute of a 3-year
// depreciation (1.58 M minutes in 3 years, the ~30% excess covering
// software and maintenance).
double MinuteSortDollars(double system_price_dollars);

// MinuteSort price-performance: $/sorted GB.
double MinuteSortDollarsPerGb(double system_price_dollars,
                              double gb_sorted_per_minute);

// DollarSort (§8): seconds of use of this system that one dollar buys.
double DollarSortSeconds(double system_price_dollars);

// One-pass vs two-pass economics (§6). A one-pass sort of `bytes` needs
// that much extra memory; a two-pass sort instead needs enough scratch
// disks to carry the intermediate runs at the sort's bandwidth (the paper
// dedicates bandwidth-matched scratch disks for the duration: 16 extra
// drives for the 100 MB sort on their array).
struct PassCost {
  double one_pass_memory_dollars = 0;
  double two_pass_disk_dollars = 0;
  bool one_pass_cheaper = false;
};

// `target_bandwidth_mbps` is the stripe bandwidth the scratch runs must
// sustain; `disk_write_mbps` a scratch disk's rate.
PassCost OnePassVsTwoPass(double sort_bytes, double target_bandwidth_mbps,
                          double disk_write_mbps,
                          double memory_dollars_per_mb = kMemoryDollarsPerMb,
                          double disk_dollars = kDiskPlusControllerDollars);

}  // namespace cost
}  // namespace alphasort

#endif  // ALPHASORT_SIM_COST_MODEL_H_
