#include "sim/pipeline_model.h"

#include <algorithm>
#include <cmath>

namespace alphasort {
namespace sim {

namespace {

// Memory a one-pass sort needs: the records plus the (prefix, pointer)
// entry array and working buffers (~1.2x, paper extends the address space
// by 110 MB for the 100 MB sort).
constexpr double kMemoryExpansion = 1.2;

PipelinePrediction Predict(const hw::AxpSystem& system, double bytes,
                           const CpuCostModel& cost, bool two_pass) {
  PipelinePrediction p;
  const double millions_of_records = bytes / 100e6 * 1.0;  // 100-B records
  const double clock_scale = system.clock_ns / 5.0;
  const double per_m = millions_of_records * clock_scale;

  const double io_factor = two_pass ? 2.0 : 1.0;
  p.read_io_s = io_factor * system.array.ReadSeconds(bytes);
  p.write_io_s = io_factor * system.array.WriteSeconds(bytes);

  const int cpus = std::max(1, system.cpus);
  const double qs = cost.extract_quicksort_s * per_m * (two_pass ? 1.0 : 1.0);
  const double merge_root = cost.merge_root_s * per_m;
  const double gather = cost.gather_s * per_m;
  const double os_half = cost.os_overlappable_s * clock_scale / 2.0;

  p.read_cpu_s = qs / cpus + os_half;
  p.write_cpu_s = merge_root + gather / cpus + os_half;

  p.startup_s = cost.startup_s * clock_scale;
  p.shutdown_s = cost.shutdown_s * clock_scale;
  p.mp_overhead_s = cost.mp_overhead_s * (cpus - 1);
  p.last_run_s = cost.last_run_fraction * qs / cpus;

  p.read_phase_s = std::max(p.read_io_s, p.read_cpu_s);
  p.write_phase_s = std::max(p.write_io_s, p.write_cpu_s);
  p.read_io_limited = p.read_io_s >= p.read_cpu_s;
  p.write_io_limited = p.write_io_s >= p.write_cpu_s;

  p.total_s = p.startup_s + p.read_phase_s + p.last_run_s + p.write_phase_s +
              p.shutdown_s + p.mp_overhead_s;
  return p;
}

}  // namespace

PipelinePrediction PredictOnePass(const hw::AxpSystem& system, double bytes,
                                  const CpuCostModel& cost) {
  return Predict(system, bytes, cost, /*two_pass=*/false);
}

PipelinePrediction PredictTwoPass(const hw::AxpSystem& system, double bytes,
                                  const CpuCostModel& cost) {
  return Predict(system, bytes, cost, /*two_pass=*/true);
}

double MaxBytesInSeconds(const hw::AxpSystem& system, double seconds,
                         const CpuCostModel& cost) {
  const double memory_bytes = system.memory_mb * 1e6;
  auto elapsed = [&](double bytes) {
    const bool fits = bytes * kMemoryExpansion <= memory_bytes;
    return fits ? PredictOnePass(system, bytes, cost).total_s
                : PredictTwoPass(system, bytes, cost).total_s;
  };
  // Elapsed time is monotone in bytes (with one upward jump at the
  // one-pass/two-pass boundary); binary search the inverse.
  double lo = 0;
  double hi = 1e12;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2;
    if (elapsed(mid) <= seconds) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace sim
}  // namespace alphasort
