#include "sim/event_sim.h"

#include <algorithm>
#include <cassert>

namespace alphasort {
namespace sim {

EventDiskSim::EventDiskSim(const DiskArray& array, double seek_ms)
    : seek_s_(seek_ms / 1e3) {
  for (const ControllerGroup& group : array.groups) {
    controllers_.push_back(group.controller);
    const int c = static_cast<int>(controllers_.size()) - 1;
    for (int d = 0; d < group.num_disks; ++d) {
      disk_of_.push_back(group.disk);
      controller_of_.push_back(c);
    }
  }
  Reset();
}

void EventDiskSim::Reset() {
  disk_free_.assign(disk_of_.size(), 0.0);
  controller_free_.assign(controllers_.size(), 0.0);
  completion_ = 0;
}

double EventDiskSim::Schedule(int disk, uint64_t bytes, double issue_s,
                              bool is_read) {
  assert(disk >= 0 && disk < num_disks());
  const int ctlr = controller_of_[disk];
  const double rate =
      (is_read ? disk_of_[disk].read_mbps : disk_of_[disk].write_mbps) *
      1e6;
  const double ctlr_rate = controllers_[ctlr].max_mbps * 1e6;

  // The request starts when disk and controller are both available.
  const double start =
      std::max({issue_s, disk_free_[disk], controller_free_[ctlr]});
  const double disk_time = seek_s_ + bytes / rate;
  const double ctlr_time = bytes / ctlr_rate;
  // Disk and controller stream concurrently for this request; the slower
  // resource bounds it. Each resource is then busy for its own share.
  const double end = start + std::max(disk_time, ctlr_time);
  disk_free_[disk] = start + disk_time;
  controller_free_[ctlr] = start + ctlr_time;
  completion_ = std::max(completion_, end);
  return end;
}

double EventDiskSim::ScheduleRead(int disk, uint64_t bytes, double issue_s) {
  return Schedule(disk, bytes, issue_s, /*is_read=*/true);
}

double EventDiskSim::ScheduleWrite(int disk, uint64_t bytes,
                                   double issue_s) {
  return Schedule(disk, bytes, issue_s, /*is_read=*/false);
}

double EventDiskSim::StreamStriped(uint64_t total_bytes,
                                   uint64_t stride_bytes, int queue_depth,
                                   bool is_read) {
  Reset();
  if (total_bytes == 0 || stride_bytes == 0 || num_disks() == 0) return 0;
  const int disks = num_disks();
  const uint64_t chunks = (total_bytes + stride_bytes - 1) / stride_bytes;

  // Issue chunks round-robin across disks. A new chunk for disk d is
  // issued when that disk has fewer than `queue_depth` outstanding
  // requests — modeled by issuing chunk i at the completion time of
  // chunk i - queue_depth on the same disk (0 for the initial window).
  std::vector<std::vector<double>> done_per_disk(disks);
  double last = 0;
  uint64_t remaining = total_bytes;
  for (uint64_t i = 0; i < chunks; ++i) {
    const int d = static_cast<int>(i % disks);
    const uint64_t bytes =
        std::min<uint64_t>(stride_bytes, remaining);
    remaining -= bytes;
    auto& history = done_per_disk[d];
    const double issue =
        history.size() >= static_cast<size_t>(queue_depth)
            ? history[history.size() - queue_depth]
            : 0.0;
    const double end = Schedule(d, bytes, issue, is_read);
    history.push_back(end);
    last = std::max(last, end);
  }
  return last;
}

}  // namespace sim
}  // namespace alphasort
