#ifndef ALPHASORT_SIM_PIPELINE_MODEL_H_
#define ALPHASORT_SIM_PIPELINE_MODEL_H_

#include <cstdint>

#include "sim/hardware_configs.h"

namespace alphasort {
namespace sim {

// Analytic model of the AlphaSort pipeline (paper §7 walkthrough),
// calibrated on the DEC 7000 AXP uni-processor 9.1-second run and used to
// regenerate Tables 1 and 8, Figure 5's elapsed times, and the MinuteSort
// result.
//
// The model mirrors the paper's phase structure:
//   startup        load the image, open input stripes, create output
//   read phase     striped read overlapped with prefix-extract+QuickSort
//                  (whichever is slower governs; the paper's run is
//                  disk-bound here)
//   last run       the final QuickSort that cannot overlap any input
//   merge+write    striped write overlapped with the root's merge and the
//                  workers' gather (again max of IO and CPU)
//   shutdown       close files, return to shell
//
// CPU-side costs are expressed in seconds per million records at a 5 ns
// clock and scaled by the target's clock; OS chores that the paper shows
// hiding inside IO waits (address-space zeroing, file allocation) are
// modeled as overlappable root CPU work split across the two phases.
// Multiprocessor runs carry a per-extra-CPU coordination charge
// (process creation, shared-section attach) calibrated on Table 8.
struct CpuCostModel {
  // Seconds per 1e6 records at 5 ns clock.
  double extract_quicksort_s = 2.0;  // paper: ~2 s of the 6 s mm-sort
  double merge_root_s = 1.0;         // tournament on the root
  double gather_s = 3.0;             // "more time is spent gathering..."
  double os_overlappable_s = 1.6;    // zeroing, allocation (of 1.9 s OS)
  double startup_s = 0.30;           // load + stripe opens + create
  double shutdown_s = 0.05;          // closes + return
  double mp_overhead_s = 0.90;       // per additional processor
  double last_run_fraction = 0.10;   // one of ~10 runs sorts after EOF
};

struct PipelinePrediction {
  double read_io_s = 0;
  double write_io_s = 0;
  double read_cpu_s = 0;   // overlappable CPU work in the read phase
  double write_cpu_s = 0;  // overlappable CPU work in the merge phase
  double startup_s = 0;
  double read_phase_s = 0;
  double last_run_s = 0;
  double write_phase_s = 0;
  double shutdown_s = 0;
  double mp_overhead_s = 0;
  double total_s = 0;
  bool read_io_limited = false;
  bool write_io_limited = false;
};

// One-pass Datamation-style sort of `bytes` (100-byte records).
PipelinePrediction PredictOnePass(const hw::AxpSystem& system, double bytes,
                                  const CpuCostModel& cost = CpuCostModel());

// Two-pass external sort: runs are written to (and re-read from) the same
// array, so the stripe carries the data twice in each direction.
PipelinePrediction PredictTwoPass(const hw::AxpSystem& system, double bytes,
                                  const CpuCostModel& cost = CpuCostModel());

// Largest input (bytes) the system sorts within `seconds` — the
// MinuteSort metric when seconds = 60. One-pass while the input fits in
// memory (with entry overhead), two-pass beyond.
double MaxBytesInSeconds(const hw::AxpSystem& system, double seconds,
                         const CpuCostModel& cost = CpuCostModel());

}  // namespace sim
}  // namespace alphasort

#endif  // ALPHASORT_SIM_PIPELINE_MODEL_H_
