#ifndef ALPHASORT_SIM_STALL_MODEL_H_
#define ALPHASORT_SIM_STALL_MODEL_H_

#include <string>

#include "sim/cache_sim.h"
#include "sort/quicksort.h"

namespace alphasort {
namespace sim {

// Clock-cycle account for a sort kernel, in the style of the paper's
// Figure 7 pie ("29% of the clocks execute instructions, 4% branch
// mis-predictions, 11% I-stream misses, 56% D-stream misses").
//
// Issue cycles are estimated from the kernel's operation counts
// (SortStats) with per-operation instruction budgets; data stalls come
// from the cache simulator's hit/miss counts times the Figure 3 latency
// ladder; branch and I-stream charges use the paper's measured Alpha
// ratios as fixed overheads on the issue stream.
struct StallBreakdown {
  double issue_cycles = 0;
  double branch_stall_cycles = 0;
  double istream_stall_cycles = 0;
  double dstream_b_cycles = 0;    // D-cache miss serviced by the B-cache
  double dstream_mem_cycles = 0;  // B-cache miss serviced by memory

  double TotalCycles() const {
    return issue_cycles + branch_stall_cycles + istream_stall_cycles +
           dstream_b_cycles + dstream_mem_cycles;
  }
  double IssueFraction() const { return issue_cycles / TotalCycles(); }
  double DstreamFraction() const {
    return (dstream_b_cycles + dstream_mem_cycles) / TotalCycles();
  }

  std::string ToString() const;
};

struct StallModelParams {
  // Per-operation instruction budgets (integer + load/store + branch),
  // derived from the §7 instruction mix of a compare-dominated kernel.
  double instructions_per_compare = 12;
  double instructions_per_exchange = 8;
  double instructions_per_byte_moved = 0.25;  // unrolled copy loops
  double cpi_issue = 0.8;   // >40% dual issue (§7) => CPI < 1

  // The paper's measured overhead ratios on the Alpha 21064.
  double branch_stall_ratio = 0.14;   // 4% of clocks vs 29% issuing
  double istream_stall_ratio = 0.38;  // 11% of clocks vs 29% issuing

  // Figure 3 latencies (5 ns clocks).
  double bcache_latency = 10;
  double memory_latency = 100;
};

// Combines a kernel's operation counts and its simulated cache behaviour
// into a clock breakdown.
StallBreakdown EstimateStalls(const SortStats& ops,
                              const CacheSim::Stats& cache,
                              const StallModelParams& params = {});

}  // namespace sim
}  // namespace alphasort

#endif  // ALPHASORT_SIM_STALL_MODEL_H_
