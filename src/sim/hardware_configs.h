#ifndef ALPHASORT_SIM_HARDWARE_CONFIGS_H_
#define ALPHASORT_SIM_HARDWARE_CONFIGS_H_

#include <string>
#include <vector>

#include "sim/disk_sim.h"

namespace alphasort {

// Catalog of the 1993 hardware the paper measures, calibrated to the
// rates and prices it reports (Table 6, Table 8, §6, §7). Per-disk spiral
// rates are back-derived from the paper's measured stripe rates; the
// derivations are documented in EXPERIMENTS.md.
namespace hw {

// --- disks ------------------------------------------------------------
DiskModel Rz26();        // commodity 3.5" SCSI; 36 of them read 64 MB/s
DiskModel Rz28();        // faster SCSI drive of the few-fast array
DiskModel Rz74();        // drives of the 9.1-second uni-processor run
DiskModel VelocitorIpi();  // fast IPI drive behind a Genroco controller

// --- controllers --------------------------------------------------------
ControllerModel ScsiKzmsa();   // plain SCSI
ControllerModel FastScsi();    // fast-SCSI
ControllerModel GenrocoIpi();  // "two fast IPI drives offer 15 MB/s"

// --- Table 6 arrays -----------------------------------------------------
DiskArray ManySlowArray();  // 36 RZ26 on 9 SCSI controllers, 85 k$
DiskArray FewFastArray();   // 12 RZ28 on 4 SCSI + 6 Velocitor on 3 IPI

// --- Table 8 systems ------------------------------------------------------
struct AxpSystem {
  std::string name;
  int cpus = 1;
  double clock_ns = 5.0;
  int memory_mb = 256;
  DiskArray array;
  double total_price_dollars = 0;      // system list price
  double disk_ctlr_price_dollars = 0;  // of which disks + controllers
  // Paper-reported results, for side-by-side comparison.
  double paper_seconds = 0;
  double paper_dollars_per_sort = 0;
};

std::vector<AxpSystem> Table8Systems();

// The MinuteSort machine of §8: 3-CPU DEC 7000, 1.25 GB memory, 36 disks,
// 512 k$ list.
AxpSystem MinuteSortSystem();

}  // namespace hw
}  // namespace alphasort

#endif  // ALPHASORT_SIM_HARDWARE_CONFIGS_H_
