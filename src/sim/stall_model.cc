#include "sim/stall_model.h"

#include "common/table.h"

namespace alphasort {
namespace sim {

std::string StallBreakdown::ToString() const {
  const double total = TotalCycles();
  if (total <= 0) return "(no work)";
  auto pct = [total](double v) { return 100.0 * v / total; };
  return StrFormat(
      "issue %.0f%% | branch %.0f%% | I-stream %.0f%% | D-to-B %.0f%% | "
      "B-to-memory %.0f%%",
      pct(issue_cycles), pct(branch_stall_cycles),
      pct(istream_stall_cycles), pct(dstream_b_cycles),
      pct(dstream_mem_cycles));
}

StallBreakdown EstimateStalls(const SortStats& ops,
                              const CacheSim::Stats& cache,
                              const StallModelParams& params) {
  StallBreakdown out;
  const double instructions =
      ops.compares * params.instructions_per_compare +
      ops.exchanges * params.instructions_per_exchange +
      ops.bytes_moved * params.instructions_per_byte_moved;
  out.issue_cycles = instructions * params.cpi_issue;
  out.branch_stall_cycles = out.issue_cycles * params.branch_stall_ratio;
  out.istream_stall_cycles = out.issue_cycles * params.istream_stall_ratio;
  out.dstream_b_cycles = cache.bcache_hits * params.bcache_latency;
  out.dstream_mem_cycles = cache.memory_accesses * params.memory_latency;
  return out;
}

}  // namespace sim
}  // namespace alphasort
