#ifndef ALPHASORT_SIM_CACHE_SIM_H_
#define ALPHASORT_SIM_CACHE_SIM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alphasort {

// One level of a set-associative cache with LRU replacement. Addresses are
// byte addresses; an access touches every line the byte range covers.
struct CacheConfig {
  size_t size_bytes = 0;
  size_t line_bytes = 32;
  size_t associativity = 1;  // 1 = direct mapped

  size_t NumSets() const {
    return size_bytes / (line_bytes * associativity);
  }
};

class CacheLevel {
 public:
  explicit CacheLevel(CacheConfig config);

  // Returns true on hit; on miss the line is installed (allocate-on-miss
  // for both reads and writes, like the AXP B-cache).
  bool Access(uint64_t line_addr);

  void Reset();

  const CacheConfig& config() const { return config_; }

 private:
  CacheConfig config_;
  size_t num_sets_;
  // tags_[set * associativity + way]; lru_[..] smaller = older.
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> lru_;
  std::vector<char> valid_;
  uint64_t tick_ = 0;
};

// Data-translation-buffer (TLB) model: a small fully-associative LRU map
// of page numbers. The paper's §7 instruction mix charges 9% of CPU time
// to PALcode "mostly handling address translation buffer (DTB) misses",
// and §4 blames the gather step's "terrible cache AND TLB behavior" — the
// 21064's 32-entry DTB covers only 256 KB of 8 KB pages, far less than
// 100 MB of randomly-gathered records.
class TlbSim {
 public:
  // 21064 defaults: 32 data-TLB entries, 8 KB pages.
  explicit TlbSim(size_t entries = 32, size_t page_bytes = 8192);

  // Returns true on hit; installs on miss (LRU).
  bool Access(uint64_t page);

  void Reset();

  size_t page_bytes() const { return page_bytes_; }

 private:
  size_t capacity_;
  size_t page_bytes_;
  std::vector<uint64_t> pages_;
  std::vector<uint64_t> lru_;
  uint64_t tick_ = 0;
};

// Two-level data-cache simulator matching the Alpha AXP hierarchy the
// paper optimizes for (§3): an 8 KB on-chip D-cache and a 4 MB on-board
// B-cache, 32-byte lines, direct mapped, plus the 32-entry data TLB. It
// implements the Tracer policy (Read/Write), so any sort kernel templated
// on a tracer can run under it; that is how Figure 4's
// QuickSort-vs-tournament cache comparison is reproduced.
class CacheSim {
 public:
  struct Stats {
    uint64_t accesses = 0;       // line-granular accesses
    uint64_t dcache_hits = 0;
    uint64_t bcache_hits = 0;    // missed D, hit B
    uint64_t memory_accesses = 0;  // missed both
    uint64_t tlb_accesses = 0;   // page-granular accesses
    uint64_t tlb_misses = 0;

    double DcacheMissRate() const {
      return accesses == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(dcache_hits) / accesses;
    }
    double MemoryRate() const {
      return accesses == 0
                 ? 0.0
                 : static_cast<double>(memory_accesses) / accesses;
    }
    double TlbMissRate() const {
      return tlb_accesses == 0
                 ? 0.0
                 : static_cast<double>(tlb_misses) / tlb_accesses;
    }

    // Stall-cycle estimate with the Figure 3 latency ladder: D-hit free
    // (pipelined), B-hit and memory pay their latencies, and each DTB
    // miss costs a PALcode fill (~50 cycles on the 21064).
    uint64_t StallCycles(uint64_t bcache_latency = 10,
                         uint64_t memory_latency = 100,
                         uint64_t tlb_fill = 50) const {
      return bcache_hits * bcache_latency +
             memory_accesses * memory_latency + tlb_misses * tlb_fill;
    }
  };

  // Defaults: DEC 7000 AXP (21064): 8 KB direct-mapped D-cache, 4 MB
  // direct-mapped B-cache, 32-byte lines, 32-entry DTB over 8 KB pages.
  CacheSim()
      : CacheSim(CacheConfig{8 * 1024, 32, 1},
                 CacheConfig{4 * 1024 * 1024, 32, 1}) {}

  CacheSim(CacheConfig dcache, CacheConfig bcache, size_t tlb_entries = 32,
           size_t page_bytes = 8192)
      : dcache_(dcache),
        bcache_(bcache),
        tlb_(tlb_entries, page_bytes),
        line_bytes_(dcache.line_bytes) {}

  // Tracer interface: every line covered by [p, p+n) goes through the
  // hierarchy. Writes behave like reads for occupancy purposes
  // (write-allocate).
  void Read(const void* p, size_t n) { Touch(p, n); }
  void Write(const void* p, size_t n) { Touch(p, n); }

  void Reset() {
    dcache_.Reset();
    bcache_.Reset();
    tlb_.Reset();
    stats_ = Stats();
  }

  const Stats& stats() const { return stats_; }

 private:
  void Touch(const void* p, size_t n) {
    const uint64_t addr = reinterpret_cast<uint64_t>(p);
    const uint64_t first = addr / line_bytes_;
    const uint64_t last = (addr + (n == 0 ? 0 : n - 1)) / line_bytes_;
    for (uint64_t line = first; line <= last; ++line) {
      ++stats_.accesses;
      if (dcache_.Access(line)) {
        ++stats_.dcache_hits;
      } else if (bcache_.Access(line)) {
        ++stats_.bcache_hits;
      } else {
        ++stats_.memory_accesses;
      }
    }
    const uint64_t first_page = addr / tlb_.page_bytes();
    const uint64_t last_page =
        (addr + (n == 0 ? 0 : n - 1)) / tlb_.page_bytes();
    for (uint64_t page = first_page; page <= last_page; ++page) {
      ++stats_.tlb_accesses;
      if (!tlb_.Access(page)) ++stats_.tlb_misses;
    }
  }

  CacheLevel dcache_;
  CacheLevel bcache_;
  TlbSim tlb_;
  size_t line_bytes_;
  Stats stats_;
};

}  // namespace alphasort

#endif  // ALPHASORT_SIM_CACHE_SIM_H_
