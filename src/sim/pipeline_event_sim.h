#ifndef ALPHASORT_SIM_PIPELINE_EVENT_SIM_H_
#define ALPHASORT_SIM_PIPELINE_EVENT_SIM_H_

#include "sim/event_sim.h"
#include "sim/pipeline_model.h"

namespace alphasort {
namespace sim {

// Discrete-event cross-check of the analytic pipeline model: instead of
// phase maxima, it plays out the actual event interleaving —
//   read phase : strided chunk reads round-robin across the disks with
//                the paper's triple buffering; a QuickSort chore becomes
//                ready when the stride carrying its run's last record
//                completes, and runs on the earliest-free CPU;
//   last run   : whatever QuickSort work remains after the final stride;
//   merge phase: the root merges batch after batch (serial), workers
//                gather each batch, and the double-buffered striped write
//                overlaps the next batch's merge+gather.
// Agreement between this simulation and the analytic maxima is what
// justifies using the simple model for Tables 1/8 (see
// tests/pipeline_event_test.cc and bench/table8_axp_systems).
struct PipelineEventResult {
  double read_phase_s = 0;   // until the last stride lands
  double last_run_s = 0;     // QuickSort tail after the last stride
  double merge_phase_s = 0;  // merge+gather+write, event-interleaved
  double total_s = 0;        // with the model's startup/shutdown charges
  double cpu_busy_s = 0;     // summed QuickSort chore time (all CPUs)
};

PipelineEventResult SimulatePipelineEvents(
    const hw::AxpSystem& system, double bytes,
    const CpuCostModel& cost = CpuCostModel(),
    uint64_t run_records = 100000, uint64_t stride_bytes = 64 * 1024);

}  // namespace sim
}  // namespace alphasort

#endif  // ALPHASORT_SIM_PIPELINE_EVENT_SIM_H_
