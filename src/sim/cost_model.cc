#include "sim/cost_model.h"

#include <cmath>

namespace alphasort {
namespace cost {

namespace {
constexpr double kSecondsPer5Years = 5 * 365.25 * 24 * 3600;
}  // namespace

double DatamationDollarsPerSort(double system_price_dollars,
                                double elapsed_seconds) {
  return system_price_dollars * elapsed_seconds / kSecondsPer5Years;
}

double MinuteSortDollars(double system_price_dollars) {
  return system_price_dollars / 1e6;
}

double MinuteSortDollarsPerGb(double system_price_dollars,
                              double gb_sorted_per_minute) {
  if (gb_sorted_per_minute <= 0) return 0;
  return MinuteSortDollars(system_price_dollars) / gb_sorted_per_minute;
}

double DollarSortSeconds(double system_price_dollars) {
  // One minute costs price/1e6 dollars, so a dollar buys 1e6/price
  // minutes.
  if (system_price_dollars <= 0) return 0;
  return 60.0 * 1e6 / system_price_dollars;
}

PassCost OnePassVsTwoPass(double sort_bytes, double target_bandwidth_mbps,
                          double disk_write_mbps,
                          double memory_dollars_per_mb,
                          double disk_dollars) {
  PassCost out;
  out.one_pass_memory_dollars = sort_bytes / 1e6 * memory_dollars_per_mb;
  // Scratch stripes must absorb the runs at full sort bandwidth while they
  // are written AND read back — the paper's "twice the disk bandwidth" —
  // and those drives are dedicated for the entire sort.
  const double scratch_disks =
      std::ceil(2.0 * target_bandwidth_mbps / disk_write_mbps);
  out.two_pass_disk_dollars = scratch_disks * disk_dollars;
  out.one_pass_cheaper =
      out.one_pass_memory_dollars < out.two_pass_disk_dollars;
  return out;
}

}  // namespace cost
}  // namespace alphasort
