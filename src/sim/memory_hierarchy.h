#ifndef ALPHASORT_SIM_MEMORY_HIERARCHY_H_
#define ALPHASORT_SIM_MEMORY_HIERARCHY_H_

#include <string>
#include <vector>

namespace alphasort {

// The paper's Figure 3 ladder: "How far away is the data?" Each level's
// distance is measured in processor clock ticks (5 ns on the DEC 7000),
// and translated to a human scale where one tick is one minute of body
// time.
struct MemoryLevel {
  std::string name;
  double clock_ticks;     // access latency in CPU clocks
  std::string analogy;    // the paper's San Francisco analogy
};

struct MemoryHierarchy {
  double clock_ns = 5.0;  // 200 MHz Alpha
  std::vector<MemoryLevel> levels;

  // The hierarchy as drawn in Figure 3.
  static MemoryHierarchy Axp7000();

  // Latency of `level` in nanoseconds.
  double LatencyNanos(const MemoryLevel& level) const {
    return level.clock_ticks * clock_ns;
  }

  // Human-scale time if one clock tick took one minute.
  // Returns a readable string ("2 min", "1.5 hr", "2 years", ...).
  static std::string HumanTime(double clock_ticks);
};

}  // namespace alphasort

#endif  // ALPHASORT_SIM_MEMORY_HIERARCHY_H_
