#include "sim/cache_sim.h"

#include <cassert>

namespace alphasort {

CacheLevel::CacheLevel(CacheConfig config)
    : config_(config), num_sets_(config.NumSets()) {
  assert(config_.size_bytes % (config_.line_bytes * config_.associativity) ==
         0);
  assert(num_sets_ > 0);
  const size_t slots = num_sets_ * config_.associativity;
  tags_.assign(slots, 0);
  lru_.assign(slots, 0);
  valid_.assign(slots, 0);
}

bool CacheLevel::Access(uint64_t line_addr) {
  const size_t set = static_cast<size_t>(line_addr % num_sets_);
  const uint64_t tag = line_addr / num_sets_;
  const size_t base = set * config_.associativity;
  ++tick_;

  size_t victim = base;
  uint64_t oldest = ~uint64_t{0};
  for (size_t way = 0; way < config_.associativity; ++way) {
    const size_t slot = base + way;
    if (valid_[slot] && tags_[slot] == tag) {
      lru_[slot] = tick_;
      return true;
    }
    const uint64_t age = valid_[slot] ? lru_[slot] : 0;
    if (age < oldest) {
      oldest = age;
      victim = slot;
    }
  }
  tags_[victim] = tag;
  valid_[victim] = 1;
  lru_[victim] = tick_;
  return false;
}

void CacheLevel::Reset() {
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  tick_ = 0;
}

TlbSim::TlbSim(size_t entries, size_t page_bytes)
    : capacity_(entries), page_bytes_(page_bytes) {
  assert(capacity_ > 0 && page_bytes_ > 0);
  pages_.assign(capacity_, ~uint64_t{0});
  lru_.assign(capacity_, 0);
}

bool TlbSim::Access(uint64_t page) {
  ++tick_;
  size_t victim = 0;
  uint64_t oldest = ~uint64_t{0};
  for (size_t i = 0; i < capacity_; ++i) {
    if (pages_[i] == page) {
      lru_[i] = tick_;
      return true;
    }
    if (lru_[i] < oldest) {
      oldest = lru_[i];
      victim = i;
    }
  }
  pages_[victim] = page;
  lru_[victim] = tick_;
  return false;
}

void TlbSim::Reset() {
  std::fill(pages_.begin(), pages_.end(), ~uint64_t{0});
  std::fill(lru_.begin(), lru_.end(), 0);
  tick_ = 0;
}

}  // namespace alphasort
