#ifndef ALPHASORT_SIM_DISK_SIM_H_
#define ALPHASORT_SIM_DISK_SIM_H_

#include <string>
#include <vector>

namespace alphasort {

// Bandwidth model of 1993 disks and controllers (paper §6, Table 6).
//
// Striped sequential IO is bandwidth arithmetic: each disk streams at its
// spiral rate, each controller caps the sum of its disks, and the array
// delivers the sum over controllers ("the file striping code bandwidth is
// near-linear as the array grows... bottlenecks appear when a controller
// saturates"). Triple buffering is assumed, so per-request latency hides
// behind streaming; a fixed per-transfer startup represents the first
// stride's arrival.

struct DiskModel {
  std::string name;
  double read_mbps = 0;   // sustained spiral read rate, MB/s
  double write_mbps = 0;  // sustained spiral write rate, MB/s
  double price_dollars = 0;     // drive alone
  double capacity_gb = 0;
};

struct ControllerModel {
  std::string name;
  double max_mbps = 0;  // saturation throughput
  double price_dollars = 0;
};

// A controller with `num_disks` identical disks attached.
struct ControllerGroup {
  ControllerModel controller;
  DiskModel disk;
  int num_disks = 0;

  double ReadMbps() const;
  double WriteMbps() const;
  double PriceDollars() const;
  double CapacityGb() const;
};

// A striped disk array: several controller groups driven in parallel.
struct DiskArray {
  std::string name;
  std::vector<ControllerGroup> groups;
  // First-stride fill time before the pipeline streams (seconds).
  double startup_seconds = 0.05;

  int TotalDisks() const;
  double ReadMbps() const;
  double WriteMbps() const;
  double PriceDollars() const;
  double CapacityGb() const;

  // Time to stream `bytes` sequentially through the stripe.
  double ReadSeconds(double bytes) const;
  double WriteSeconds(double bytes) const;

  // Uniform array: `disks` drives spread over `controllers` controllers
  // as evenly as possible.
  static DiskArray Uniform(const std::string& name, DiskModel disk,
                           ControllerModel controller, int disks,
                           int controllers);
};

// Write-cache-enabled variant of a disk (paper §6 footnote 2): "SCSI-II
// discs support write cache enabled (WCE) that allows the controller to
// acknowledge a write before the data is on disc... If WCE were used, 20%
// fewer discs would be needed" — i.e. effective write bandwidth rises by
// ~25%. The paper declines it ("commercial systems demand disk
// integrity"); the model lets you quantify the trade.
DiskModel WithWriteCacheEnabled(DiskModel disk, double write_boost = 1.25);

}  // namespace alphasort

#endif  // ALPHASORT_SIM_DISK_SIM_H_
