#include "io/retry_env.h"

#include <chrono>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alphasort {

namespace {

// Process-wide retry metrics (function-local statics: registered once,
// updated lock-free afterwards — same idiom as the AsyncIO scheduler).
struct RetryMetrics {
  obs::Counter* retries;
  obs::Counter* recovered;
  obs::Counter* exhausted;
  obs::Histogram* backoff_us;

  static RetryMetrics* Get() {
    static RetryMetrics* m = [] {
      auto* registry = obs::MetricsRegistry::Global();
      auto* metrics = new RetryMetrics();
      metrics->retries = registry->GetCounter("io.retry.attempts");
      metrics->recovered = registry->GetCounter("io.retry.recovered");
      metrics->exhausted = registry->GetCounter("io.retry.exhausted");
      metrics->backoff_us = registry->GetHistogram("io.retry.backoff_us");
      return metrics;
    }();
    return m;
  }
};

class RetryFile : public File {
 public:
  RetryFile(RetryEnv* env, std::unique_ptr<File> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override {
    const RetryPolicy& policy = env_->policy();
    int attempt = 1;
    uint32_t backoff_us = policy.backoff_initial_us;
    size_t total = 0;
    while (true) {
      size_t got = 0;
      const Status s =
          base_->Read(offset + total, n - total, scratch + total, &got);
      if (s.ok()) {
        if (attempt > 1) env_->CountRecovered();
        total += got;
        if (got == 0 || total == n) {
          // A zero-byte read is proof of end of file; a full buffer is
          // done. Either way `total` is the honest transfer count.
          *bytes_read = total;
          return Status::OK();
        }
        // Short read: either end of file or a short device transfer.
        // Re-issue the remainder — if the next read returns zero bytes it
        // was EOF and the short count stands. Progress is guaranteed
        // (got > 0), so this loop terminates without an attempt budget.
        env_->CountShortReadResume();
        attempt = 1;  // a fresh op from the device's point of view
        backoff_us = policy.backoff_initial_us;
        continue;
      }
      if (!s.IsIOError() || attempt >= policy.max_attempts) {
        if (s.IsIOError() && policy.enabled()) env_->CountExhausted();
        return s;
      }
      ++attempt;
      env_->BackoffAndCount(&backoff_us);
    }
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    const RetryPolicy& policy = env_->policy();
    int attempt = 1;
    uint32_t backoff_us = policy.backoff_initial_us;
    while (true) {
      // Positional writes are idempotent: a retry rewrites the whole
      // range, healing any prefix a torn attempt left behind.
      const Status s = base_->Write(offset, data, n);
      if (s.ok()) {
        if (attempt > 1) env_->CountRecovered();
        return s;
      }
      if (!s.IsIOError() || attempt >= policy.max_attempts) {
        if (s.IsIOError() && policy.enabled()) env_->CountExhausted();
        return s;
      }
      ++attempt;
      env_->BackoffAndCount(&backoff_us);
    }
  }

  Result<uint64_t> Size() override { return base_->Size(); }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  RetryEnv* env_;
  std::unique_ptr<File> base_;
};

}  // namespace

RetryEnv::RetryEnv(Env* base, RetryPolicy policy)
    : base_(base), policy_(policy) {}

Result<std::unique_ptr<File>> RetryEnv::OpenFile(const std::string& path,
                                                 OpenMode mode) {
  Result<std::unique_ptr<File>> base = base_->OpenFile(path, mode);
  ALPHASORT_RETURN_IF_ERROR(base.status());
  if (!policy_.enabled()) return base;
  return {std::unique_ptr<File>(
      new RetryFile(this, std::move(base).value()))};
}

void RetryEnv::BackoffAndCount(uint32_t* backoff_us) {
  retries_.fetch_add(1, std::memory_order_relaxed);
  RetryMetrics::Get()->retries->Add();
  RetryMetrics::Get()->backoff_us->Record(*backoff_us);
  // Rate-limited per call site: a flapping device cannot flood the log.
  ALPHASORT_LOG(kWarn, "io.retry").U64("backoff_us", *backoff_us);
  {
    obs::TraceSpan span("io.retry_backoff", "io");
    std::this_thread::sleep_for(std::chrono::microseconds(*backoff_us));
  }
  *backoff_us = std::min<uint64_t>(uint64_t{*backoff_us} * 2,
                                   policy_.backoff_cap_us);
}

void RetryEnv::CountRecovered() {
  ops_recovered_.fetch_add(1, std::memory_order_relaxed);
  RetryMetrics::Get()->recovered->Add();
}

void RetryEnv::CountExhausted() {
  ops_exhausted_.fetch_add(1, std::memory_order_relaxed);
  RetryMetrics::Get()->exhausted->Add();
  ALPHASORT_LOG(kError, "io.retry_exhausted")
      .I64("max_attempts", policy_.max_attempts);
}

RetryStats RetryEnv::stats() const {
  RetryStats s;
  s.retries = retries_.load(std::memory_order_relaxed);
  s.ops_recovered = ops_recovered_.load(std::memory_order_relaxed);
  s.ops_exhausted = ops_exhausted_.load(std::memory_order_relaxed);
  s.short_read_resumes =
      short_read_resumes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace alphasort
