#ifndef ALPHASORT_IO_FAULT_ENV_H_
#define ALPHASORT_IO_FAULT_ENV_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "io/env.h"

namespace alphasort {

// How an injected fault behaves over time (docs/fault_tolerance.md).
enum class FaultMode {
  // The attempt fails, but the device recovers: a retry of the same
  // operation rolls the dice again and usually succeeds. Models bus
  // resets, SCSI timeouts, transient controller errors.
  kTransient,
  // The first triggered fault kills the file for good: every later
  // operation on that path (including re-opens) fails. Models a dead
  // stripe member.
  kPermanent,
};

// Probabilistic fault behaviour applied to every operation on matching
// files. All probabilities are independent per operation and drawn from
// the owning FaultInjectionEnv's seeded stream.
struct FaultSpec {
  double read_fail_prob = 0;      // read returns IOError, no data
  double write_fail_prob = 0;     // write returns IOError, nothing written
  double short_read_prob = 0;     // read delivers a prefix with OK status
  double partial_write_prob = 0;  // a prefix is persisted, then IOError
  double corrupt_write_prob = 0;  // one byte flipped silently, status OK
  FaultMode mode = FaultMode::kTransient;

  bool Empty() const {
    return read_fail_prob == 0 && write_fail_prob == 0 &&
           short_read_prob == 0 && partial_write_prob == 0 &&
           corrupt_write_prob == 0;
  }
};

// A scripted, seeded fault campaign: a default spec for every file plus
// per-member overrides keyed by path substring (first match wins). Tests
// and the fault_campaign driver derive plans from a seed so every run is
// reproducible and hundreds of distinct storm shapes are one loop away.
struct FaultPlan {
  uint64_t seed = 1;
  FaultSpec defaults;
  // (path substring, spec): lets a plan single out one stripe member
  // ("in.str.s01") or one class of files (".l" = scratch runs).
  std::vector<std::pair<std::string, FaultSpec>> overrides;

  // The spec governing `path`: the first matching override, else the
  // default spec.
  const FaultSpec& SpecFor(const std::string& path) const;

  bool Empty() const;
};

// Wraps another Env and injects IO faults — either a deterministic
// countdown (FailAfter, the original single-shot mode the pipeline tests
// use) or a scripted probabilistic campaign (SetPlan). Used to verify
// that the sort pipeline surfaces disk errors instead of producing
// silently wrong output, and that the retry layer absorbs transient ones.
//
// Thread-safe: IO threads consult the plan concurrently. Fault decisions
// are drawn from a seeded counter-based stream, so a plan's fault mix is
// reproducible for a fixed serial op order and statistically stable under
// concurrency.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // After this call, the next `countdown`-th read/write (1 = the very
  // next) and every one after it fails with IOError.
  void FailAfter(int64_t countdown) {
    remaining_ops_.store(countdown, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }

  void Disarm() { armed_.store(false, std::memory_order_relaxed); }

  // Installs a fault campaign. Replaces any previous plan; files opened
  // earlier keep the spec they resolved at open time. Pass a
  // default-constructed plan to clear.
  void SetPlan(FaultPlan plan);

  // Total read/write operations observed (for choosing fault points).
  uint64_t ops_seen() const {
    return ops_seen_.load(std::memory_order_relaxed);
  }

  // Campaign telemetry, for tests asserting a plan actually fired.
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }
  uint64_t short_reads_injected() const {
    return short_reads_injected_.load(std::memory_order_relaxed);
  }
  uint64_t partial_writes_injected() const {
    return partial_writes_injected_.load(std::memory_order_relaxed);
  }
  uint64_t corrupt_writes_injected() const {
    return corrupt_writes_injected_.load(std::memory_order_relaxed);
  }

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override;
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) override {
    return base_->ListFiles(prefix, out);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status RemoveDir(const std::string& path) override {
    return base_->RemoveDir(path);
  }

  // --- internals shared with the file wrappers ---

  // What the wrapper should do to one operation.
  enum class Action { kNone, kFail, kShortRead, kPartialWrite, kCorrupt };

  // Called by the wrapped files before each read/write; applies the
  // legacy countdown. Returns non-OK when the operation should fail.
  Status BeforeIO();

  // Campaign decision for one read/write on `path` under `spec`.
  Action DecideRead(const std::string& path, const FaultSpec& spec);
  Action DecideWrite(const std::string& path, const FaultSpec& spec);

  // Uniform [0,1) draw from the plan's seeded stream (used by the file
  // wrappers to pick corruption offsets and short-read lengths).
  double NextUniform();

  bool PathDead(const std::string& path) const;

 private:
  void MarkDead(const std::string& path);

  Env* base_;

  // Legacy countdown mode.
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> remaining_ops_{0};
  std::atomic<uint64_t> ops_seen_{0};

  // Campaign mode.
  mutable std::mutex plan_mu_;
  FaultPlan plan_;
  bool has_plan_ = false;
  std::set<std::string> dead_paths_;
  std::atomic<uint64_t> draw_counter_{0};

  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> short_reads_injected_{0};
  std::atomic<uint64_t> partial_writes_injected_{0};
  std::atomic<uint64_t> corrupt_writes_injected_{0};
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_FAULT_ENV_H_
