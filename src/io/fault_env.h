#ifndef ALPHASORT_IO_FAULT_ENV_H_
#define ALPHASORT_IO_FAULT_ENV_H_

#include <atomic>
#include <memory>

#include "io/env.h"

namespace alphasort {

// Wraps another Env and fails IO operations on demand — used by the tests
// to verify that the sort pipeline surfaces disk errors instead of
// producing silently wrong output.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // After this call, the next `countdown`-th read/write (1 = the very
  // next) and every one after it fails with IOError.
  void FailAfter(int64_t countdown) {
    remaining_ops_.store(countdown, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }

  void Disarm() { armed_.store(false, std::memory_order_relaxed); }

  // Total read/write operations observed (for choosing fault points).
  uint64_t ops_seen() const {
    return ops_seen_.load(std::memory_order_relaxed);
  }

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override;
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }

  // Called by the wrapped files before each read/write; returns non-OK
  // when the operation should fail. Public for the file wrappers.
  Status BeforeIO();

 private:
  Env* base_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> remaining_ops_{0};
  std::atomic<uint64_t> ops_seen_{0};
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_FAULT_ENV_H_
