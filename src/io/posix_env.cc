#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "io/env.h"

namespace alphasort {

namespace {

Status PosixError(const std::string& context, int err) {
  const std::string msg = context + ": " + strerror(err);
  if (err == ENOENT) return Status::NotFound(msg);
  if (err == ENOSPC || err == EDQUOT) return Status::ResourceExhausted(msg);
  return Status::IOError(msg);
}

class PosixFile : public File {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override {
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, scratch + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("pread " + path_, errno);
      }
      if (r == 0) break;  // end of file
      done += static_cast<size_t>(r);
    }
    *bytes_read = done;
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pwrite(fd_, data + done, n - done,
                                 static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("pwrite " + path_, errno);
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return PosixError("fstat " + path_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return PosixError("ftruncate " + path_, errno);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return PosixError("fdatasync " + path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close " + path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::kReadOnly:
        flags = O_RDONLY;
        break;
      case OpenMode::kReadWrite:
        flags = O_RDWR;
        break;
      case OpenMode::kCreateReadWrite:
        flags = O_RDWR | O_CREAT | O_TRUNC;
        break;
    }
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return PosixError("open " + path, errno);
    return {std::unique_ptr<File>(new PosixFile(path, fd))};
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return PosixError("unlink " + path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return PosixError("stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Status::IOError("mkdir " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& path) override {
    std::error_code ec;
    if (!std::filesystem::remove(path, ec) || ec) {
      return Status::IOError("rmdir " + path + ": " +
                             (ec ? ec.message() : "not found"));
    }
    return Status::OK();
  }

  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) override {
    // Split into the containing directory and a leaf-name prefix; match
    // directory entries against the leaf and return them joined back the
    // way the caller spelled the prefix. (<dirent.h> is off-limits here:
    // glibc declares the scandir comparator `int alphasort(...)`, which
    // collides with this project's namespace.)
    const size_t slash = prefix.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : prefix.substr(0, slash + 1);
    const std::string leaf =
        slash == std::string::npos ? prefix : prefix.substr(slash + 1);
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      if (ec == std::errc::no_such_file_or_directory) {
        return Status::OK();  // nothing to list
      }
      return Status::IOError("list " + dir + ": " + ec.message());
    }
    for (const auto& entry : it) {
      const std::string name = entry.path().filename().string();
      if (name.compare(0, leaf.size(), leaf) != 0) continue;
      out->push_back(slash == std::string::npos ? name : dir + name);
    }
    return Status::OK();
  }
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv();  // never destroyed (static-safe)
  return env;
}

}  // namespace alphasort
