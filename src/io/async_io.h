#ifndef ALPHASORT_IO_ASYNC_IO_H_
#define ALPHASORT_IO_ASYNC_IO_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "io/env.h"

namespace alphasort {

// Asynchronous ("NoWait", in OpenVMS terms — paper §6) positional IO.
//
// A pool of IO threads services read/write requests against File handles;
// submission returns immediately with a handle, and completion is
// collected with Wait(). AlphaSort uses this for triple-buffered strided
// reads and writes that keep every disk of a stripe transferring at spiral
// rate, and for opening/creating the N files of a stripe in parallel.
class AsyncIO {
 public:
  using Handle = uint64_t;

  // `num_threads` concurrent IO operations. The paper drives one request
  // per disk plus queued successors; a thread per stripe member is the
  // moral equivalent under POSIX blocking IO.
  explicit AsyncIO(int num_threads);

  // Drains outstanding work and joins the pool.
  ~AsyncIO();

  AsyncIO(const AsyncIO&) = delete;
  AsyncIO& operator=(const AsyncIO&) = delete;

  // Enqueues a positional read of `n` bytes at `offset` into `buf`. The
  // caller owns `buf` and `file`, which must outlive completion.
  Handle SubmitRead(File* file, uint64_t offset, size_t n, char* buf);

  // Enqueues a positional write. `data` must stay valid until completion.
  Handle SubmitWrite(File* file, uint64_t offset, const char* data,
                     size_t n);

  // Enqueues an arbitrary fallible action (e.g. open/create one stripe
  // member); used to parallelize the N-way stripe open of §6.
  Handle SubmitAction(std::function<Status()> action);

  // Blocks until the request completes; returns its status and, for
  // reads, the byte count via `*bytes`. Each handle may be waited at most
  // once.
  Status Wait(Handle h, size_t* bytes = nullptr);

  // Waits for a batch; returns the first non-OK status (all are waited).
  Status WaitAll(const std::vector<Handle>& handles);

 private:
  enum class Op { kRead, kWrite, kAction };

  struct Request {
    Handle handle = 0;  // assigned by Enqueue
    Op op;
    File* file = nullptr;
    uint64_t offset = 0;
    size_t n = 0;
    char* read_buf = nullptr;
    const char* write_data = nullptr;
    std::function<Status()> action;
    // When the request entered the queue; queue wait = dequeue - enqueue
    // feeds the aio.queue_wait_us histogram (obs::MetricsRegistry).
    std::chrono::steady_clock::time_point enqueued_at;
  };

  struct Completion {
    Status status;
    size_t bytes = 0;
  };

  Handle Enqueue(Request req);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Request> queue_;
  std::unordered_map<Handle, Completion> completions_;
  Handle next_handle_ = 1;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_ASYNC_IO_H_
