#include "io/throttled_env.h"

#include <chrono>
#include <thread>

namespace alphasort {

namespace {

using Clock = std::chrono::steady_clock;

// One simulated spindle: transfers serialize and take bytes/rate.
class Spindle {
 public:
  Spindle(double read_mbps, double write_mbps, double seek_ms)
      : read_rate_(read_mbps * 1e6),
        write_rate_(write_mbps * 1e6),
        seek_(std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(seek_ms))) {}

  // Blocks until this request's transfer window has elapsed.
  void Transfer(size_t bytes, bool is_read) {
    const double rate = is_read ? read_rate_ : write_rate_;
    const auto duration =
        seek_ + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(bytes / rate));
    Clock::time_point done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const Clock::time_point start = std::max(Clock::now(), busy_until_);
      busy_until_ = start + duration;
      done = busy_until_;
    }
    std::this_thread::sleep_until(done);
  }

 private:
  double read_rate_;
  double write_rate_;
  Clock::duration seek_;
  std::mutex mu_;
  Clock::time_point busy_until_ = Clock::now();
};

class ThrottledFile : public File {
 public:
  ThrottledFile(std::unique_ptr<File> base, double read_mbps,
                double write_mbps, double seek_ms)
      : base_(std::move(base)),
        spindle_(read_mbps, write_mbps, seek_ms) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override {
    Status s = base_->Read(offset, n, scratch, bytes_read);
    if (s.ok()) spindle_.Transfer(*bytes_read, /*is_read=*/true);
    return s;
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    Status s = base_->Write(offset, data, n);
    if (s.ok()) spindle_.Transfer(n, /*is_read=*/false);
    return s;
  }

  Result<uint64_t> Size() override { return base_->Size(); }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<File> base_;
  Spindle spindle_;
};

}  // namespace

ThrottledEnv::ThrottledEnv(Env* base, double read_mbps, double write_mbps,
                           double seek_ms)
    : base_(base),
      read_mbps_(read_mbps),
      write_mbps_(write_mbps),
      seek_ms_(seek_ms) {}

Result<std::unique_ptr<File>> ThrottledEnv::OpenFile(const std::string& path,
                                                     OpenMode mode) {
  Result<std::unique_ptr<File>> base = base_->OpenFile(path, mode);
  ALPHASORT_RETURN_IF_ERROR(base.status());
  return {std::unique_ptr<File>(new ThrottledFile(
      std::move(base).value(), read_mbps_, write_mbps_, seek_ms_))};
}

}  // namespace alphasort
