#ifndef ALPHASORT_IO_THROTTLED_ENV_H_
#define ALPHASORT_IO_THROTTLED_ENV_H_

#include <memory>
#include <mutex>

#include "io/env.h"

namespace alphasort {

// Wraps another Env and rate-limits every opened file to a fixed
// sequential bandwidth, serializing transfers per file — each file
// behaves like one 1993 disk spindle. Striping a logical file across N
// members of a ThrottledEnv therefore reproduces, with the *real*
// pipeline and real wall-clock time, the §6 experiments: the one-disk
// one-minute barrier and the near-linear speedup of N-wide striping.
//
// Transfers on one file queue behind each other (a request starts when
// the "disk" is free and takes bytes/rate seconds); transfers on
// different files proceed in parallel, which is exactly what the async
// scheduler's per-member requests exploit.
class ThrottledEnv : public Env {
 public:
  // Rates in MB/s. `seek_ms` is charged per request (0 = pure streaming).
  ThrottledEnv(Env* base, double read_mbps, double write_mbps,
               double seek_ms = 0.0);

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override;
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) override {
    return base_->ListFiles(prefix, out);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status RemoveDir(const std::string& path) override {
    return base_->RemoveDir(path);
  }

 private:
  Env* base_;
  double read_mbps_;
  double write_mbps_;
  double seek_ms_;
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_THROTTLED_ENV_H_
