#include "io/env_stack.h"

namespace alphasort {

EnvStack::~EnvStack() {
  while (!layers_.empty()) layers_.pop_back();  // top-down
}

EnvStack& EnvStack::PushThrottle(double read_mbps, double write_mbps,
                                 double seek_ms) {
  auto layer =
      std::make_unique<ThrottledEnv>(top_, read_mbps, write_mbps, seek_ms);
  throttle_ = layer.get();
  top_ = layer.get();
  layers_.push_back(std::move(layer));
  return *this;
}

EnvStack& EnvStack::PushFaults() {
  auto layer = std::make_unique<FaultInjectionEnv>(top_);
  faults_ = layer.get();
  top_ = layer.get();
  layers_.push_back(std::move(layer));
  return *this;
}

EnvStack& EnvStack::PushMetrics() {
  auto layer = std::make_unique<obs::MetricsEnv>(top_);
  metrics_ = layer.get();
  top_ = layer.get();
  layers_.push_back(std::move(layer));
  return *this;
}

EnvStack& EnvStack::PushRetry(RetryPolicy policy) {
  auto layer = std::make_unique<RetryEnv>(top_, policy);
  retry_ = layer.get();
  top_ = layer.get();
  layers_.push_back(std::move(layer));
  return *this;
}

}  // namespace alphasort
