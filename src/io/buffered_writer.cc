#include "io/buffered_writer.h"

#include <algorithm>
#include <cstring>

namespace alphasort {

BufferedWriter::BufferedWriter(File* file, AsyncIO* aio, size_t buffer_bytes)
    : file_(file), aio_(aio), buffer_bytes_(std::max<size_t>(1, buffer_bytes)) {
  buffers_[0].resize(buffer_bytes_);
  buffers_[1].resize(buffer_bytes_);
}

BufferedWriter::~BufferedWriter() {
  for (size_t b = 0; b < 2; ++b) {
    if (in_flight_[b]) aio_->Wait(pending_[b]);
  }
}

Status BufferedWriter::FlushCurrent() {
  if (fill_ == 0) return Status::OK();
  pending_[which_] = aio_->SubmitWrite(file_, offset_,
                                       buffers_[which_].data(), fill_);
  in_flight_[which_] = true;
  offset_ += fill_;
  fill_ = 0;
  which_ ^= 1;
  // The buffer we are about to fill may still be draining from two
  // flushes ago.
  if (in_flight_[which_]) {
    in_flight_[which_] = false;
    ALPHASORT_RETURN_IF_ERROR(aio_->Wait(pending_[which_]));
  }
  return Status::OK();
}

Status BufferedWriter::Append(const char* data, size_t n) {
  while (n > 0) {
    const size_t take = std::min(n, buffer_bytes_ - fill_);
    memcpy(buffers_[which_].data() + fill_, data, take);
    fill_ += take;
    data += take;
    n -= take;
    if (fill_ == buffer_bytes_) {
      ALPHASORT_RETURN_IF_ERROR(FlushCurrent());
    }
  }
  return Status::OK();
}

Status BufferedWriter::Finish() {
  if (finished_) return Status::OK();
  Status first_error = FlushCurrent();
  for (size_t b = 0; b < 2; ++b) {
    if (in_flight_[b]) {
      in_flight_[b] = false;
      Status s = aio_->Wait(pending_[b]);
      if (!s.ok() && first_error.ok()) first_error = s;
    }
  }
  finished_ = true;
  return first_error;
}

}  // namespace alphasort
