#include "io/env.h"

namespace alphasort {

Status Env::ListFiles(const std::string& prefix,
                      std::vector<std::string>* out) {
  (void)out;
  return Status::NotSupported("ListFiles not implemented for prefix " +
                              prefix);
}

Status Env::CreateDir(const std::string& path) {
  (void)path;  // flat namespace: nothing to create
  return Status::OK();
}

Status Env::RemoveDir(const std::string& path) {
  (void)path;  // flat namespace: nothing to remove
  return Status::OK();
}

Status Env::WriteStringToFile(const std::string& path,
                              const std::string& data) {
  Result<std::unique_ptr<File>> file =
      OpenFile(path, OpenMode::kCreateReadWrite);
  ALPHASORT_RETURN_IF_ERROR(file.status());
  ALPHASORT_RETURN_IF_ERROR(file.value()->Write(0, data.data(), data.size()));
  ALPHASORT_RETURN_IF_ERROR(file.value()->Truncate(data.size()));
  return file.value()->Close();
}

Result<std::string> Env::ReadFileToString(const std::string& path) {
  Result<std::unique_ptr<File>> file = OpenFile(path, OpenMode::kReadOnly);
  ALPHASORT_RETURN_IF_ERROR(file.status());
  Result<uint64_t> size = file.value()->Size();
  ALPHASORT_RETURN_IF_ERROR(size.status());
  std::string data(size.value(), '\0');
  size_t got = 0;
  ALPHASORT_RETURN_IF_ERROR(
      file.value()->Read(0, data.size(), data.data(), &got));
  if (got != data.size()) {
    return Status::IOError("short read of " + path);
  }
  ALPHASORT_RETURN_IF_ERROR(file.value()->Close());
  return data;
}

}  // namespace alphasort
