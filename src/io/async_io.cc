#include "io/async_io.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace alphasort {

namespace {

// Scheduler metrics, registered once per process. aio.queue_wait_us is
// the time a request sat queued before an IO thread picked it up — the
// direct signal that io_threads or io_depth is the bottleneck, which the
// per-device latency histograms (obs::MetricsEnv) cannot show.
struct AioMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Histogram* queue_wait_us;

  static AioMetrics* Get() {
    static AioMetrics* m = [] {
      auto* registry = obs::MetricsRegistry::Global();
      auto* metrics = new AioMetrics();
      metrics->submitted = registry->GetCounter("aio.submitted");
      metrics->completed = registry->GetCounter("aio.completed");
      metrics->queue_wait_us = registry->GetHistogram("aio.queue_wait_us");
      return metrics;
    }();
    return m;
  }
};

}  // namespace

AsyncIO::AsyncIO(int num_threads) {
  assert(num_threads > 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

AsyncIO::~AsyncIO() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

AsyncIO::Handle AsyncIO::Enqueue(Request req) {
  Handle h;
  size_t depth;
  req.enqueued_at = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    h = next_handle_++;
    req.handle = h;
    queue_.push_back(std::move(req));
    depth = queue_.size();
  }
  AioMetrics::Get()->submitted->Add();
  obs::TraceCounter("aio.queue_depth", static_cast<int64_t>(depth));
  work_cv_.notify_one();
  return h;
}

AsyncIO::Handle AsyncIO::SubmitRead(File* file, uint64_t offset, size_t n,
                                    char* buf) {
  Request req;
  req.op = Op::kRead;
  req.file = file;
  req.offset = offset;
  req.n = n;
  req.read_buf = buf;
  return Enqueue(std::move(req));
}

AsyncIO::Handle AsyncIO::SubmitWrite(File* file, uint64_t offset,
                                     const char* data, size_t n) {
  Request req;
  req.op = Op::kWrite;
  req.file = file;
  req.offset = offset;
  req.n = n;
  req.write_data = data;
  return Enqueue(std::move(req));
}

AsyncIO::Handle AsyncIO::SubmitAction(std::function<Status()> action) {
  Request req;
  req.op = Op::kAction;
  req.action = std::move(action);
  return Enqueue(std::move(req));
}

Status AsyncIO::Wait(Handle h, size_t* bytes) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, h] { return completions_.count(h) > 0; });
  auto node = completions_.extract(h);
  if (bytes != nullptr) *bytes = node.mapped().bytes;
  return node.mapped().status;
}

Status AsyncIO::WaitAll(const std::vector<Handle>& handles) {
  Status first_error;
  for (Handle h : handles) {
    Status s = Wait(h);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

void AsyncIO::WorkerLoop() {
  while (true) {
    Request req;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      req = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    AioMetrics::Get()->queue_wait_us->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - req.enqueued_at)
            .count()));
    obs::TraceCounter("aio.queue_depth", static_cast<int64_t>(depth));
    Completion done;
    switch (req.op) {
      case Op::kRead: {
        obs::TraceSpan span("aio.read", "io");
        done.status = req.file->Read(req.offset, req.n, req.read_buf,
                                     &done.bytes);
        break;
      }
      case Op::kWrite: {
        obs::TraceSpan span("aio.write", "io");
        done.status = req.file->Write(req.offset, req.write_data, req.n);
        done.bytes = req.n;
        break;
      }
      case Op::kAction: {
        obs::TraceSpan span("aio.action", "io");
        done.status = req.action();
        break;
      }
    }
    AioMetrics::Get()->completed->Add();
    {
      std::lock_guard<std::mutex> lock(mu_);
      completions_.emplace(req.handle, std::move(done));
    }
    done_cv_.notify_all();
  }
}

}  // namespace alphasort
