#include "io/stripe.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/table.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alphasort {

namespace {

bool HasStrSuffix(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".str") == 0;
}

// Members a logical request touched. A healthy striped sort fans most
// requests across every member (the paper's Figure 5 premise); a fanout
// histogram stuck at 1 means chunks are smaller than one stride and the
// stripe is running serially.
obs::Histogram* FanoutHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Global()->GetHistogram("stripe.fanout");
  return h;
}

}  // namespace

uint64_t StripeDefinition::CycleBytes() const {
  uint64_t total = 0;
  for (const auto& m : members) total += m.stride_bytes;
  return total;
}

Result<StripeDefinition> StripeDefinition::Parse(const std::string& text) {
  StripeDefinition def;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    StripeMember member;
    if (!(fields >> member.path)) continue;  // blank line
    if (!(fields >> member.stride_bytes)) {
      return Status::Corruption(
          StrFormat("stripe definition line %d: missing stride", line_no));
    }
    if (member.stride_bytes == 0) {
      return Status::Corruption(
          StrFormat("stripe definition line %d: zero stride", line_no));
    }
    std::string extra;
    if (fields >> extra) {
      return Status::Corruption(
          StrFormat("stripe definition line %d: trailing junk", line_no));
    }
    def.members.push_back(std::move(member));
  }
  if (def.members.empty()) {
    return Status::Corruption("stripe definition has no members");
  }
  return def;
}

std::string StripeDefinition::Serialize() const {
  std::string out = "# alphasort stripe definition\n";
  for (const auto& m : members) {
    out += StrFormat("%s %llu\n", m.path.c_str(),
                     static_cast<unsigned long long>(m.stride_bytes));
  }
  return out;
}

Status WriteStripeDefinition(Env* env, const std::string& path,
                             const StripeDefinition& def) {
  if (def.members.empty()) {
    return Status::InvalidArgument("stripe definition has no members");
  }
  return env->WriteStringToFile(path, def.Serialize());
}

StripeDefinition MakeUniformStripe(const std::string& base, size_t width,
                                   uint64_t stride_bytes) {
  StripeDefinition def;
  def.members.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    def.members.push_back(
        StripeMember{StrFormat("%s.s%02zu", base.c_str(), i), stride_bytes});
  }
  return def;
}

StripeFile::StripeFile(StripeDefinition def,
                       std::vector<std::unique_ptr<File>> files)
    : def_(std::move(def)),
      members_(std::move(files)),
      cycle_bytes_(def_.CycleBytes()) {
  stride_prefix_.reserve(def_.members.size() + 1);
  stride_prefix_.push_back(0);
  for (const auto& m : def_.members) {
    stride_prefix_.push_back(stride_prefix_.back() + m.stride_bytes);
  }
}

Result<std::unique_ptr<StripeFile>> StripeFile::Open(Env* env,
                                                     const std::string& path,
                                                     OpenMode mode,
                                                     AsyncIO* aio) {
  StripeDefinition def;
  if (HasStrSuffix(path)) {
    Result<std::string> text = env->ReadFileToString(path);
    ALPHASORT_RETURN_IF_ERROR(text.status());
    Result<StripeDefinition> parsed = StripeDefinition::Parse(text.value());
    ALPHASORT_RETURN_IF_ERROR(parsed.status());
    def = std::move(parsed).value();
  } else {
    // Any plain file is a one-member stripe; the stride is immaterial.
    def.members.push_back(StripeMember{path, 1 << 20});
  }

  const size_t width = def.members.size();
  std::vector<std::unique_ptr<File>> files(width);
  if (aio != nullptr) {
    // Open/create every member in parallel ("asynchronous operations
    // allow the N steps to proceed in parallel", §6).
    std::vector<AsyncIO::Handle> handles;
    handles.reserve(width);
    for (size_t i = 0; i < width; ++i) {
      handles.push_back(aio->SubmitAction([env, &def, &files, i, mode] {
        obs::TraceSpan span("stripe.open_member", "io");
        Result<std::unique_ptr<File>> f = env->OpenFile(def.members[i].path,
                                                        mode);
        ALPHASORT_RETURN_IF_ERROR(f.status());
        files[i] = std::move(f).value();
        return Status::OK();
      }));
    }
    ALPHASORT_RETURN_IF_ERROR(aio->WaitAll(handles));
  } else {
    for (size_t i = 0; i < width; ++i) {
      Result<std::unique_ptr<File>> f =
          env->OpenFile(def.members[i].path, mode);
      ALPHASORT_RETURN_IF_ERROR(f.status());
      files[i] = std::move(f).value();
    }
  }
  return {std::unique_ptr<StripeFile>(
      new StripeFile(std::move(def), std::move(files)))};
}

Status StripeFile::Remove(Env* env, const std::string& path) {
  if (!HasStrSuffix(path)) return env->DeleteFile(path);
  Result<std::string> text = env->ReadFileToString(path);
  ALPHASORT_RETURN_IF_ERROR(text.status());
  Result<StripeDefinition> parsed = StripeDefinition::Parse(text.value());
  ALPHASORT_RETURN_IF_ERROR(parsed.status());
  Status first_error;
  for (const auto& m : parsed.value().members) {
    Status s = env->DeleteFile(m.path);
    if (!s.ok() && !s.IsNotFound() && first_error.ok()) first_error = s;
  }
  Status s = env->DeleteFile(path);
  if (!s.ok() && first_error.ok()) first_error = s;
  return first_error;
}

std::vector<StripeFile::Segment> StripeFile::MapRange(uint64_t offset,
                                                      size_t n) const {
  std::vector<Segment> segments;
  uint64_t logical = offset;
  size_t remaining = n;
  while (remaining > 0) {
    const uint64_t cycle = logical / cycle_bytes_;
    const uint64_t in_cycle = logical % cycle_bytes_;
    // Member whose stride window contains in_cycle.
    const size_t member =
        static_cast<size_t>(
            std::upper_bound(stride_prefix_.begin(), stride_prefix_.end(),
                             in_cycle) -
            stride_prefix_.begin()) -
        1;
    const uint64_t within = in_cycle - stride_prefix_[member];
    const uint64_t stride = def_.members[member].stride_bytes;
    const size_t len = static_cast<size_t>(
        std::min<uint64_t>(remaining, stride - within));
    segments.push_back(Segment{member, members_[member].get(),
                               cycle * stride + within, logical, len});
    logical += len;
    remaining -= len;
  }
  return segments;
}

Status StripeFile::Read(uint64_t offset, size_t n, char* scratch,
                        size_t* bytes_read) {
  *bytes_read = 0;
  const std::vector<Segment> segments = MapRange(offset, n);
  FanoutHistogram()->Record(segments.size());
  for (const Segment& seg : segments) {
    size_t got = 0;
    ALPHASORT_RETURN_IF_ERROR(seg.file->Read(
        seg.member_offset, seg.length,
        scratch + (seg.logical_offset - offset), &got));
    *bytes_read += got;
    if (got < seg.length) break;  // logical end of a densely written file
  }
  return Status::OK();
}

Status StripeFile::Write(uint64_t offset, const char* data, size_t n) {
  const std::vector<Segment> segments = MapRange(offset, n);
  FanoutHistogram()->Record(segments.size());
  for (const Segment& seg : segments) {
    ALPHASORT_RETURN_IF_ERROR(seg.file->Write(
        seg.member_offset, data + (seg.logical_offset - offset),
        seg.length));
  }
  return Status::OK();
}

Result<uint64_t> StripeFile::Size() {
  // Correct for densely written striped files (every logical byte up to
  // the size has been written), which is the only way this library writes
  // them.
  uint64_t total = 0;
  for (auto& m : members_) {
    Result<uint64_t> s = m->Size();
    ALPHASORT_RETURN_IF_ERROR(s.status());
    total += s.value();
  }
  return total;
}

Status StripeFile::Truncate(uint64_t size) {
  const uint64_t full_cycles = size / cycle_bytes_;
  const uint64_t remainder = size % cycle_bytes_;
  for (size_t i = 0; i < members_.size(); ++i) {
    const uint64_t stride = def_.members[i].stride_bytes;
    const uint64_t in_last = std::min<uint64_t>(
        stride,
        remainder > stride_prefix_[i] ? remainder - stride_prefix_[i] : 0);
    ALPHASORT_RETURN_IF_ERROR(
        members_[i]->Truncate(full_cycles * stride + in_last));
  }
  return Status::OK();
}

Status StripeFile::Sync() {
  for (auto& m : members_) ALPHASORT_RETURN_IF_ERROR(m->Sync());
  return Status::OK();
}

Status StripeFile::Close() {
  Status first_error;
  for (auto& m : members_) {
    Status s = m->Close();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

}  // namespace alphasort
