#include "io/fault_env.h"

namespace alphasort {

namespace {

class FaultFile : public File {
 public:
  FaultFile(FaultInjectionEnv* env, std::unique_ptr<File> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override {
    ALPHASORT_RETURN_IF_ERROR(env_->BeforeIO());
    return base_->Read(offset, n, scratch, bytes_read);
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    ALPHASORT_RETURN_IF_ERROR(env_->BeforeIO());
    return base_->Write(offset, data, n);
  }

  Result<uint64_t> Size() override { return base_->Size(); }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<File> base_;
};

}  // namespace

Status FaultInjectionEnv::BeforeIO() {
  ops_seen_.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  // Decrement the countdown; once it reaches zero, this and every later
  // operation fails (signed so post-exhaustion decrements cannot wrap).
  const int64_t before =
      remaining_ops_.fetch_sub(1, std::memory_order_relaxed);
  if (before <= 1) {
    return Status::IOError("injected fault");
  }
  return Status::OK();
}

Result<std::unique_ptr<File>> FaultInjectionEnv::OpenFile(
    const std::string& path, OpenMode mode) {
  Result<std::unique_ptr<File>> base = base_->OpenFile(path, mode);
  ALPHASORT_RETURN_IF_ERROR(base.status());
  return {std::unique_ptr<File>(
      new FaultFile(this, std::move(base).value()))};
}

}  // namespace alphasort
