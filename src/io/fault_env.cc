#include "io/fault_env.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/random.h"

namespace alphasort {

namespace {

class FaultFile : public File {
 public:
  FaultFile(FaultInjectionEnv* env, std::string path, FaultSpec spec,
            std::unique_ptr<File> base)
      : env_(env),
        path_(std::move(path)),
        spec_(spec),
        base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override {
    ALPHASORT_RETURN_IF_ERROR(env_->BeforeIO());
    switch (env_->DecideRead(path_, spec_)) {
      case FaultInjectionEnv::Action::kFail:
        return Status::IOError("injected read fault on " + path_);
      case FaultInjectionEnv::Action::kShortRead: {
        ALPHASORT_RETURN_IF_ERROR(
            base_->Read(offset, n, scratch, bytes_read));
        // Deliver a strict prefix (at least one byte when any arrived) —
        // indistinguishable from a device that transferred less than
        // asked, which is exactly what the retry layer must absorb.
        if (*bytes_read > 1) {
          *bytes_read =
              1 + static_cast<size_t>(env_->NextUniform() *
                                      static_cast<double>(*bytes_read - 1));
        }
        return Status::OK();
      }
      default:
        return base_->Read(offset, n, scratch, bytes_read);
    }
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    ALPHASORT_RETURN_IF_ERROR(env_->BeforeIO());
    switch (env_->DecideWrite(path_, spec_)) {
      case FaultInjectionEnv::Action::kFail:
        return Status::IOError("injected write fault on " + path_);
      case FaultInjectionEnv::Action::kPartialWrite: {
        // Persist a prefix, then report failure: the bytes are torn on
        // disk and only a full positional rewrite makes them whole.
        const size_t prefix =
            static_cast<size_t>(env_->NextUniform() * static_cast<double>(n));
        if (prefix > 0) {
          ALPHASORT_RETURN_IF_ERROR(base_->Write(offset, data, prefix));
        }
        return Status::IOError("injected partial write on " + path_);
      }
      case FaultInjectionEnv::Action::kCorrupt: {
        // Silent corruption: flip one byte, report success. Only a
        // checksum downstream can catch this.
        if (n == 0) return base_->Write(offset, data, n);
        std::vector<char> copy(data, data + n);
        const size_t at =
            static_cast<size_t>(env_->NextUniform() * static_cast<double>(n));
        copy[std::min(at, n - 1)] ^= 0x40;
        return base_->Write(offset, copy.data(), n);
      }
      default:
        return base_->Write(offset, data, n);
    }
  }

  Result<uint64_t> Size() override { return base_->Size(); }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  const std::string path_;
  const FaultSpec spec_;
  std::unique_ptr<File> base_;
};

}  // namespace

const FaultSpec& FaultPlan::SpecFor(const std::string& path) const {
  for (const auto& [needle, spec] : overrides) {
    if (path.find(needle) != std::string::npos) return spec;
  }
  return defaults;
}

bool FaultPlan::Empty() const {
  if (!defaults.Empty()) return false;
  for (const auto& [needle, spec] : overrides) {
    (void)needle;
    if (!spec.Empty()) return false;
  }
  return true;
}

void FaultInjectionEnv::SetPlan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  plan_ = std::move(plan);
  has_plan_ = !plan_.Empty();
  dead_paths_.clear();
  draw_counter_.store(0, std::memory_order_relaxed);
}

Status FaultInjectionEnv::BeforeIO() {
  ops_seen_.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  // Decrement the countdown; once it reaches zero, this and every later
  // operation fails (signed so post-exhaustion decrements cannot wrap).
  const int64_t before =
      remaining_ops_.fetch_sub(1, std::memory_order_relaxed);
  if (before <= 1) {
    return Status::IOError("injected fault");
  }
  return Status::OK();
}

double FaultInjectionEnv::NextUniform() {
  // A counter-based draw: each decision hashes (seed, ticket) through the
  // generator's SplitMix seeding, so concurrent IO threads never contend
  // on shared RNG state and a fixed serial op order replays exactly.
  const uint64_t ticket =
      draw_counter_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    seed = plan_.seed;
  }
  Random rng(seed ^ (ticket * 0x9e3779b97f4a7c15ULL));
  return rng.NextDouble();
}

bool FaultInjectionEnv::PathDead(const std::string& path) const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  return dead_paths_.count(path) > 0;
}

void FaultInjectionEnv::MarkDead(const std::string& path) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  dead_paths_.insert(path);
}

FaultInjectionEnv::Action FaultInjectionEnv::DecideRead(
    const std::string& path, const FaultSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    if (!has_plan_) return Action::kNone;
    if (dead_paths_.count(path) > 0) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      return Action::kFail;
    }
  }
  if (spec.Empty()) return Action::kNone;
  if (spec.read_fail_prob > 0 && NextUniform() < spec.read_fail_prob) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    if (spec.mode == FaultMode::kPermanent) MarkDead(path);
    return Action::kFail;
  }
  if (spec.short_read_prob > 0 && NextUniform() < spec.short_read_prob) {
    short_reads_injected_.fetch_add(1, std::memory_order_relaxed);
    return Action::kShortRead;
  }
  return Action::kNone;
}

FaultInjectionEnv::Action FaultInjectionEnv::DecideWrite(
    const std::string& path, const FaultSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    if (!has_plan_) return Action::kNone;
    if (dead_paths_.count(path) > 0) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      return Action::kFail;
    }
  }
  if (spec.Empty()) return Action::kNone;
  if (spec.write_fail_prob > 0 && NextUniform() < spec.write_fail_prob) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    if (spec.mode == FaultMode::kPermanent) MarkDead(path);
    return Action::kFail;
  }
  if (spec.partial_write_prob > 0 &&
      NextUniform() < spec.partial_write_prob) {
    partial_writes_injected_.fetch_add(1, std::memory_order_relaxed);
    return Action::kPartialWrite;
  }
  if (spec.corrupt_write_prob > 0 &&
      NextUniform() < spec.corrupt_write_prob) {
    corrupt_writes_injected_.fetch_add(1, std::memory_order_relaxed);
    return Action::kCorrupt;
  }
  return Action::kNone;
}

Result<std::unique_ptr<File>> FaultInjectionEnv::OpenFile(
    const std::string& path, OpenMode mode) {
  FaultSpec spec;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    if (has_plan_) {
      if (dead_paths_.count(path) > 0) {
        faults_injected_.fetch_add(1, std::memory_order_relaxed);
        return Status::IOError("injected permanent fault: " + path +
                               " is dead");
      }
      spec = plan_.SpecFor(path);
    }
  }
  Result<std::unique_ptr<File>> base = base_->OpenFile(path, mode);
  ALPHASORT_RETURN_IF_ERROR(base.status());
  return {std::unique_ptr<File>(
      new FaultFile(this, path, spec, std::move(base).value()))};
}

}  // namespace alphasort
