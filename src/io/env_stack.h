#ifndef ALPHASORT_IO_ENV_STACK_H_
#define ALPHASORT_IO_ENV_STACK_H_

#include <memory>
#include <vector>

#include "io/env.h"
#include "io/fault_env.h"
#include "io/retry_env.h"
#include "io/throttled_env.h"
#include "obs/metrics_env.h"

namespace alphasort {

// Builder that owns a chain of Env wrappers over a caller-provided base.
//
// The wrappers compose, but their order is semantics, not taste. The
// canonical stack, bottom to top:
//
//   base            the real store (Posix, Mem)
//   ThrottledEnv    device model: each file behaves like one 1993 disk
//   FaultInjectionEnv
//                   device faults: injected errors look like the device
//                   failing, so everything above reacts as it would to
//                   real hardware
//   MetricsEnv      per-attempt observation: latency histograms time
//                   each physical attempt, including ones a layer above
//                   will retry
//   RetryEnv        recovery policy: re-issues failed attempts; sits on
//                   top so every retry passes back through metrics and
//                   faults individually
//
// Push order is bottom-up: the first Push wraps the base, each later
// Push wraps the previous top. Skipping layers is fine (the pipeline
// usually runs metrics+retry only); reordering them changes what is
// measured and what is retried, so deviate deliberately — e.g. pushing
// metrics below a ThrottledEnv measures the raw store instead of the
// simulated disks.
//
// The stack owns every wrapper and destroys them top-down; the base env
// and any files opened through top() must outlive the stack.
class EnvStack {
 public:
  explicit EnvStack(Env* base) : base_(base), top_(base) {}

  EnvStack(const EnvStack&) = delete;
  EnvStack& operator=(const EnvStack&) = delete;
  ~EnvStack();

  // Device model: rate-limit every opened file (MB/s per direction,
  // optional per-request seek charge).
  EnvStack& PushThrottle(double read_mbps, double write_mbps,
                         double seek_ms = 0.0);

  // Device faults: an initially quiet FaultInjectionEnv; arm it through
  // faults() (FailAfter or SetPlan).
  EnvStack& PushFaults();

  // Per-attempt IO observation (opens, bytes, latency histograms).
  EnvStack& PushMetrics();

  // Recovery policy: retry transient IOErrors per `policy`.
  EnvStack& PushRetry(RetryPolicy policy = RetryPolicy());

  // The outermost env — what the pipeline should open files through.
  // Equals the base when nothing was pushed.
  Env* top() const { return top_; }
  Env* base() const { return base_; }

  // Typed access to pushed layers; null when that layer was never
  // pushed. With duplicates (unusual), the most recently pushed wins.
  ThrottledEnv* throttle() const { return throttle_; }
  FaultInjectionEnv* faults() const { return faults_; }
  obs::MetricsEnv* metrics() const { return metrics_; }
  RetryEnv* retry() const { return retry_; }

 private:
  Env* base_;
  Env* top_;
  // Owned wrappers in push order; destroyed in reverse so each wrapper
  // outlives the layers stacked on top of it.
  std::vector<std::unique_ptr<Env>> layers_;
  ThrottledEnv* throttle_ = nullptr;
  FaultInjectionEnv* faults_ = nullptr;
  obs::MetricsEnv* metrics_ = nullptr;
  RetryEnv* retry_ = nullptr;
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_ENV_STACK_H_
