#ifndef ALPHASORT_IO_RETRY_ENV_H_
#define ALPHASORT_IO_RETRY_ENV_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"

namespace alphasort {

// Retry discipline for transient IO faults (docs/fault_tolerance.md).
//
// Only Status::kIOError is treated as possibly-transient and retried:
// Corruption, NotFound, InvalidArgument, and the rest describe the data
// or the request, not the device, so retrying them cannot help and only
// hides bugs. Backoff is exponential (doubling) from `backoff_initial_us`
// up to `backoff_cap_us` per attempt.
struct RetryPolicy {
  // Total attempts per operation, first try included. 1 disables retry.
  int max_attempts = 3;
  uint32_t backoff_initial_us = 100;
  uint32_t backoff_cap_us = 20000;

  bool enabled() const { return max_attempts > 1; }
};

// Counters a RetryEnv accumulates across all files opened through it.
// Mirrored into the global metrics registry ("io.retry.*") and folded
// into SortMetrics by the pipeline.
struct RetryStats {
  uint64_t retries = 0;            // re-attempts after an IOError
  uint64_t ops_recovered = 0;      // ops that succeeded on a re-attempt
  uint64_t ops_exhausted = 0;      // ops that failed every attempt
  uint64_t short_read_resumes = 0; // reads continued after a short count
};

// Wraps another Env and retries transient per-operation failures on the
// files opened through it, so one flaky stripe member degrades throughput
// instead of killing the sort. Reads additionally resume short counts
// (re-issuing the remainder until a zero-byte read proves end of file),
// which turns an injected or device-level short transfer back into the
// full transfer the caller asked for.
//
// Positional reads and writes are idempotent, which is what makes blind
// re-issue safe: a torn write is simply rewritten in place. Retried
// attempts pass through any inner MetricsEnv individually, so latency
// histograms count physical attempts; each backoff wait is visible as an
// "io.retry_backoff" trace span.
//
// Thread-safe the same way the wrapped Env is; stats are lock-free.
class RetryEnv : public Env {
 public:
  // `base` must outlive this wrapper and the files opened through it.
  explicit RetryEnv(Env* base, RetryPolicy policy = RetryPolicy());

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override;
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) override {
    return base_->ListFiles(prefix, out);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Status RemoveDir(const std::string& path) override {
    return base_->RemoveDir(path);
  }

  const RetryPolicy& policy() const { return policy_; }
  RetryStats stats() const;

  // Internal: one backoff-and-count step shared by the file wrappers.
  // Sleeps `*backoff_us`, doubles it up to the cap, and bumps counters.
  void BackoffAndCount(uint32_t* backoff_us);
  void CountRecovered();
  void CountExhausted();
  void CountShortReadResume() {
    short_read_resumes_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  Env* base_;
  RetryPolicy policy_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> ops_recovered_{0};
  std::atomic<uint64_t> ops_exhausted_{0};
  std::atomic<uint64_t> short_read_resumes_{0};
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_RETRY_ENV_H_
