#ifndef ALPHASORT_IO_BUFFERED_WRITER_H_
#define ALPHASORT_IO_BUFFERED_WRITER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "io/async_io.h"
#include "io/env.h"

namespace alphasort {

// Append-style writer with two buffers: while one buffer is being written
// through the async scheduler, the other fills — the output half of the
// paper's triple-buffering discipline, reusable by anything that streams
// bytes out (run spilling, the VMS-sort baseline).
class BufferedWriter {
 public:
  // Buffers of `buffer_bytes` each. `file` must outlive the writer.
  BufferedWriter(File* file, AsyncIO* aio, size_t buffer_bytes);

  // Waits out any in-flight write (Finish() reports errors; the
  // destructor only guarantees no dangling IO).
  ~BufferedWriter();

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  // Appends `n` bytes; may trigger an asynchronous flush.
  Status Append(const char* data, size_t n);

  // Flushes the tail and waits for all writes. Idempotent.
  Status Finish();

  uint64_t bytes_written() const { return offset_ + fill_; }

 private:
  Status FlushCurrent();

  File* file_;
  AsyncIO* aio_;
  size_t buffer_bytes_;
  std::vector<char> buffers_[2];
  bool in_flight_[2] = {false, false};
  AsyncIO::Handle pending_[2] = {0, 0};
  size_t which_ = 0;
  size_t fill_ = 0;       // bytes in the current buffer
  uint64_t offset_ = 0;   // file offset of the current buffer's start
  bool finished_ = false;
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_BUFFERED_WRITER_H_
