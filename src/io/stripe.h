#ifndef ALPHASORT_IO_STRIPE_H_
#define ALPHASORT_IO_STRIPE_H_

#include <memory>
#include <string>
#include <vector>

#include "io/async_io.h"
#include "io/env.h"

namespace alphasort {

// Host-based file striping (paper §6).
//
// A striped file is described by a stripe-definition file — "a normal file
// whose name has the suffix .str" — with one line per member:
//
//     # comment
//     disk0/part0.dat 65536
//     disk1/part1.dat 65536
//
// where the number is the member's stride in bytes. Logical bytes are laid
// out cycle by cycle: each cycle places stride_i consecutive bytes on
// member i, so a cycle-sized read touches every member once — the paper's
// Figure 5, "each disk contributes a track of information to the stride".
//
// StripeFile presents the logical file through the ordinary File
// interface, and additionally exposes the logical→member mapping
// (MapRange) so the sort pipeline can submit one asynchronous request per
// member and drive all disks in parallel.

struct StripeMember {
  std::string path;
  uint64_t stride_bytes = 0;
};

struct StripeDefinition {
  std::vector<StripeMember> members;

  // Total bytes per cycle (sum of member strides).
  uint64_t CycleBytes() const;

  // Parses the .str text format. Rejects empty definitions, zero strides,
  // and malformed lines.
  static Result<StripeDefinition> Parse(const std::string& text);

  std::string Serialize() const;
};

// Writes `def` as a stripe-definition file at `path` (should end in .str).
Status WriteStripeDefinition(Env* env, const std::string& path,
                             const StripeDefinition& def);

// Convenience: a definition with `width` members "<base>.sNN" and a
// uniform stride, rooted next to the definition file's location.
StripeDefinition MakeUniformStripe(const std::string& base, size_t width,
                                   uint64_t stride_bytes);

class StripeFile : public File {
 public:
  // A contiguous logical range living on one member.
  struct Segment {
    size_t member = 0;          // index into members()
    File* file = nullptr;       // that member's handle
    uint64_t member_offset = 0;
    uint64_t logical_offset = 0;
    size_t length = 0;
  };

  // Opens `path`. If it ends in ".str" the definition is read and every
  // member is opened (or created) — in parallel when `aio` is provided,
  // the paper's trick for keeping the N-wide open out of the critical
  // path. Any other path opens as a trivial 1-member stripe.
  static Result<std::unique_ptr<StripeFile>> Open(Env* env,
                                                  const std::string& path,
                                                  OpenMode mode,
                                                  AsyncIO* aio = nullptr);

  // Deletes the members and (if `path` is a definition file) the
  // definition itself.
  static Status Remove(Env* env, const std::string& path);

  // File interface over the logical byte stream. Reads clamp at the
  // logical size; a member that comes up short inside the logical size is
  // reported as corruption.
  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override;
  Status Write(uint64_t offset, const char* data, size_t n) override;
  Result<uint64_t> Size() override;
  Status Truncate(uint64_t size) override;
  Status Sync() override;
  Status Close() override;

  // Splits [offset, offset+n) into per-member segments, in logical order.
  std::vector<Segment> MapRange(uint64_t offset, size_t n) const;

  size_t width() const { return members_.size(); }
  const StripeDefinition& definition() const { return def_; }
  uint64_t cycle_bytes() const { return cycle_bytes_; }

 private:
  StripeFile(StripeDefinition def, std::vector<std::unique_ptr<File>> files);

  StripeDefinition def_;
  std::vector<std::unique_ptr<File>> members_;
  std::vector<uint64_t> stride_prefix_;  // prefix sums of strides
  uint64_t cycle_bytes_;
};

}  // namespace alphasort

#endif  // ALPHASORT_IO_STRIPE_H_
