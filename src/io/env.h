#ifndef ALPHASORT_IO_ENV_H_
#define ALPHASORT_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace alphasort {

// An open file handle with positional (pread/pwrite-style) IO. Positional
// access is what the striping layer and the asynchronous scheduler need:
// many outstanding transfers against one handle, no shared cursor.
class File {
 public:
  virtual ~File() = default;

  // Reads up to `n` bytes at `offset` into `scratch`. Short reads at end
  // of file are reported through `*bytes_read` with an OK status.
  virtual Status Read(uint64_t offset, size_t n, char* scratch,
                      size_t* bytes_read) = 0;

  // Writes `n` bytes at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;

  virtual Result<uint64_t> Size() = 0;

  virtual Status Truncate(uint64_t size) = 0;

  // Durability barrier (no-op for the in-memory env).
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

// Mode for Env::OpenFile.
enum class OpenMode {
  kReadOnly,
  kReadWrite,        // must exist
  kCreateReadWrite,  // create or truncate
};

// Filesystem abstraction (RocksDB's Env idiom). Every file access in the
// library goes through an Env so the same sort pipeline runs against real
// disks, in-memory files (tests), and fault-injecting wrappers.
class Env {
 public:
  virtual ~Env() = default;

  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                                 OpenMode mode) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;

  // Appends to `out` every existing path that starts with `prefix`
  // (including any directory part), in unspecified order. Used by the
  // crash-safe scratch-run sweeper to find stripe fragments that a failed
  // sort left behind. Default: NotSupported; Posix, Mem, and the wrapper
  // envs implement/forward it.
  virtual Status ListFiles(const std::string& prefix,
                           std::vector<std::string>* out);

  // Ensures `path` exists as a directory, creating missing parents
  // (mkdir -p). Envs with a flat namespace (MemEnv — paths are plain
  // map keys) inherit the default no-op; PosixEnv creates real
  // directories; the wrapper envs forward to their base so the
  // bottom-most env decides. Used by the SortService for per-job
  // scratch namespaces ("<scratch>/job-<id>/").
  virtual Status CreateDir(const std::string& path);

  // Removes `path` if it is an empty directory; NotFound/IOError
  // otherwise. Default no-op for flat namespaces, like CreateDir.
  virtual Status RemoveDir(const std::string& path);

  // Convenience helpers implemented on top of the virtual interface.
  Status WriteStringToFile(const std::string& path, const std::string& data);
  Result<std::string> ReadFileToString(const std::string& path);
};

// Host filesystem. Thread-safe; one instance serves the whole process.
Env* GetPosixEnv();

// Heap-backed filesystem for tests and examples. Thread-safe. Each
// instance is an isolated namespace.
//
// Semantics with concurrently open handles (relied upon by the metrics
// and pipeline layers, POSIX-like, verified by env_test.cc):
//   - All handles to one path share the same bytes: a Write through one
//     handle is immediately visible to reads, Size(), and the env-level
//     GetFileSize()/FileExists().
//   - DeleteFile unlinks the name — FileExists()/GetFileSize() say gone —
//     but handles already open keep reading and writing the (now
//     anonymous) bytes, like an unlinked POSIX inode.
//   - Re-opening a path with kCreateReadWrite truncates the shared
//     bytes; existing handles observe the truncation.
//   - After Close(), every operation on that handle fails with IOError;
//     other handles to the same path are unaffected.
std::unique_ptr<Env> NewMemEnv();

}  // namespace alphasort

#endif  // ALPHASORT_IO_ENV_H_
