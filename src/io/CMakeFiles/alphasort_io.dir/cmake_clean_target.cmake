file(REMOVE_RECURSE
  "libalphasort_io.a"
)
