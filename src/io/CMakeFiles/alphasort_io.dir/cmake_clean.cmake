file(REMOVE_RECURSE
  "CMakeFiles/alphasort_io.dir/async_io.cc.o"
  "CMakeFiles/alphasort_io.dir/async_io.cc.o.d"
  "CMakeFiles/alphasort_io.dir/buffered_writer.cc.o"
  "CMakeFiles/alphasort_io.dir/buffered_writer.cc.o.d"
  "CMakeFiles/alphasort_io.dir/env.cc.o"
  "CMakeFiles/alphasort_io.dir/env.cc.o.d"
  "CMakeFiles/alphasort_io.dir/env_stack.cc.o"
  "CMakeFiles/alphasort_io.dir/env_stack.cc.o.d"
  "CMakeFiles/alphasort_io.dir/fault_env.cc.o"
  "CMakeFiles/alphasort_io.dir/fault_env.cc.o.d"
  "CMakeFiles/alphasort_io.dir/mem_env.cc.o"
  "CMakeFiles/alphasort_io.dir/mem_env.cc.o.d"
  "CMakeFiles/alphasort_io.dir/posix_env.cc.o"
  "CMakeFiles/alphasort_io.dir/posix_env.cc.o.d"
  "CMakeFiles/alphasort_io.dir/retry_env.cc.o"
  "CMakeFiles/alphasort_io.dir/retry_env.cc.o.d"
  "CMakeFiles/alphasort_io.dir/stripe.cc.o"
  "CMakeFiles/alphasort_io.dir/stripe.cc.o.d"
  "CMakeFiles/alphasort_io.dir/throttled_env.cc.o"
  "CMakeFiles/alphasort_io.dir/throttled_env.cc.o.d"
  "libalphasort_io.a"
  "libalphasort_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphasort_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
