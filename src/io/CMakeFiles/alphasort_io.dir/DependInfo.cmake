
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/async_io.cc" "src/io/CMakeFiles/alphasort_io.dir/async_io.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/async_io.cc.o.d"
  "/root/repo/src/io/buffered_writer.cc" "src/io/CMakeFiles/alphasort_io.dir/buffered_writer.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/buffered_writer.cc.o.d"
  "/root/repo/src/io/env.cc" "src/io/CMakeFiles/alphasort_io.dir/env.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/env.cc.o.d"
  "/root/repo/src/io/env_stack.cc" "src/io/CMakeFiles/alphasort_io.dir/env_stack.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/env_stack.cc.o.d"
  "/root/repo/src/io/fault_env.cc" "src/io/CMakeFiles/alphasort_io.dir/fault_env.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/fault_env.cc.o.d"
  "/root/repo/src/io/mem_env.cc" "src/io/CMakeFiles/alphasort_io.dir/mem_env.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/mem_env.cc.o.d"
  "/root/repo/src/io/posix_env.cc" "src/io/CMakeFiles/alphasort_io.dir/posix_env.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/posix_env.cc.o.d"
  "/root/repo/src/io/retry_env.cc" "src/io/CMakeFiles/alphasort_io.dir/retry_env.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/retry_env.cc.o.d"
  "/root/repo/src/io/stripe.cc" "src/io/CMakeFiles/alphasort_io.dir/stripe.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/stripe.cc.o.d"
  "/root/repo/src/io/throttled_env.cc" "src/io/CMakeFiles/alphasort_io.dir/throttled_env.cc.o" "gcc" "src/io/CMakeFiles/alphasort_io.dir/throttled_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/alphasort_common.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/alphasort_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
