# Empty dependencies file for alphasort_io.
# This may be replaced when dependencies are built.
