#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>

#include "io/env.h"

namespace alphasort {

namespace {

// Shared byte storage for one in-memory file. A mutex per file keeps
// concurrent positional reads/writes (the async IO scheduler issues them
// from several threads) well-defined. Every handle opened on one path
// shares this object (and DeleteFile only drops the env's reference), so
// cross-handle visibility and unlinked-but-open behavior fall out of the
// shared_ptr — see the NewMemEnv contract in io/env.h.
struct MemFileData {
  std::mutex mu;
  std::vector<char> bytes;
};

class MemFile : public File {
 public:
  explicit MemFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, char* scratch,
              size_t* bytes_read) override {
    if (closed_) return Status::IOError("read on closed file");
    std::lock_guard<std::mutex> lock(data_->mu);
    if (offset >= data_->bytes.size()) {
      *bytes_read = 0;
      return Status::OK();
    }
    const size_t avail = data_->bytes.size() - offset;
    const size_t take = std::min(n, avail);
    if (take > 0) {
      memcpy(scratch, data_->bytes.data() + offset, take);
    }
    *bytes_read = take;
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    if (closed_) return Status::IOError("write on closed file");
    std::lock_guard<std::mutex> lock(data_->mu);
    if (offset + n > data_->bytes.size()) {
      data_->bytes.resize(offset + n);
    }
    if (n > 0) {
      memcpy(data_->bytes.data() + offset, data, n);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    if (closed_) return Status::IOError("size on closed file");
    std::lock_guard<std::mutex> lock(data_->mu);
    return static_cast<uint64_t>(data_->bytes.size());
  }

  Status Truncate(uint64_t size) override {
    if (closed_) return Status::IOError("truncate on closed file");
    std::lock_guard<std::mutex> lock(data_->mu);
    data_->bytes.resize(size);
    return Status::OK();
  }

  Status Sync() override {
    if (closed_) return Status::IOError("sync on closed file");
    return Status::OK();
  }

  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFileData> data_;
  // Close can race in-flight reads on other threads (the async scheduler
  // drains before the root closes, but nothing in the File contract
  // forces that); atomic keeps the check well-defined.
  std::atomic<bool> closed_{false};
};

class MemEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    switch (mode) {
      case OpenMode::kReadOnly:
      case OpenMode::kReadWrite:
        if (it == files_.end()) {
          return Status::NotFound("no such file: " + path);
        }
        break;
      case OpenMode::kCreateReadWrite:
        if (it == files_.end()) {
          it = files_.emplace(path, std::make_shared<MemFileData>()).first;
        } else {
          std::lock_guard<std::mutex> file_lock(it->second->mu);
          it->second->bytes.clear();
        }
        break;
    }
    return {std::unique_ptr<File>(new MemFile(it->second))};
  }

  Status DeleteFile(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(path) == 0) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(path) > 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    std::lock_guard<std::mutex> file_lock(it->second->mu);
    return static_cast<uint64_t>(it->second->bytes.size());
  }

  Status ListFiles(const std::string& prefix,
                   std::vector<std::string>* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    // files_ is ordered, so the prefix range is contiguous.
    for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      out->push_back(it->first);
    }
    return Status::OK();
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<MemFileData>> files_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace alphasort
