#include "core/vms_sort.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/table.h"
#include "core/chores.h"
#include "core/pipeline_internal.h"
#include "core/sorter.h"
#include "io/buffered_writer.h"
#include "io/stripe.h"
#include "sort/replacement_selection.h"

namespace alphasort {

namespace {

using core_internal::ScratchRun;
using core_internal::ScratchRunPath;

// Streams the input through a replacement-selection tournament. When the
// tournament holds the whole input (the paper's memory-rich single-disk
// configuration) the single run streams directly to the output —
// `*direct_to_output` reports that, and no scratch is written. Otherwise
// each run spills to its own scratch file for the merge pass. Sources
// with unknown totals always spill (direct output needs the record count
// up front) and fill ctx->input_bytes/num_records at end of input.
Status GenerateRuns(core_internal::SortContext* ctx,
                    std::vector<ScratchRun>* runs,
                    bool* direct_to_output) {
  const SortOptions& opts = *ctx->options;
  const RecordFormat& fmt = opts.format;
  const size_t r = fmt.record_size;

  // Tournament of W records plus one spare slot the incoming record lands
  // in; emitting a winner frees its slot, which becomes the next spare.
  uint64_t cap = std::max<uint64_t>(16, opts.memory_budget / (2 * r));
  if (ctx->size_known) {
    cap = std::max<uint64_t>(
        16, std::min<uint64_t>(
                cap, ctx->num_records == 0 ? 16 : ctx->num_records));
  }
  const size_t capacity = static_cast<size_t>(cap);
  *direct_to_output = ctx->size_known && capacity >= ctx->num_records;
  std::vector<char> workspace((capacity + 1) * r);

  // Sink state: a buffered writer per run.
  Status sink_error;
  std::unique_ptr<File> run_file;
  std::unique_ptr<BufferedWriter> writer;
  size_t current_run = static_cast<size_t>(-1);
  size_t spare_slot = capacity;  // last workspace slot starts free

  const bool direct = *direct_to_output;
  auto close_current = [&]() -> Status {
    if (writer == nullptr) return Status::OK();
    Status s = writer->Finish();
    const uint64_t bytes = writer->bytes_written();
    writer.reset();
    ALPHASORT_RETURN_IF_ERROR(s);
    if (!direct) {
      Status close_status = run_file->Close();
      run_file.reset();
      ALPHASORT_RETURN_IF_ERROR(close_status);
      runs->back().bytes = bytes;
      ctx->metrics->scratch_bytes_written += bytes;
      core_internal::ProgressSpilled(ctx, bytes);
    }
    return Status::OK();
  };

  auto sink = [&](size_t run, const char* record) {
    if (!sink_error.ok()) return;
    if (run != current_run) {
      Status s = close_current();
      if (!s.ok()) {
        sink_error = s;
        return;
      }
      current_run = run;
      if (direct) {
        // The whole input fits the tournament: exactly one run, written
        // straight to the output (the paper's memory-rich OpenVMS sort).
        writer = std::make_unique<BufferedWriter>(ctx->output, ctx->aio,
                                                  opts.io_chunk_bytes);
      } else {
        const std::string path = ScratchRunPath(opts, 0, run);
        Result<std::unique_ptr<File>> f = core_internal::OpenScratchRun(
            ctx, path, OpenMode::kCreateReadWrite);
        if (!f.ok()) {
          sink_error = f.status();
          return;
        }
        run_file = std::move(f).value();
        runs->push_back(ScratchRun{path, 0});
        writer = std::make_unique<BufferedWriter>(run_file.get(), ctx->aio,
                                                  opts.io_chunk_bytes);
      }
    }
    Status s = writer->Append(record, fmt.record_size);
    if (!s.ok()) {
      sink_error = s;
      return;
    }
    // The emitted record's slot is free for the next arrival. Safe
    // because the tournament's "below last output?" check dereferences
    // the emitted record only within the same Add() call that frees it —
    // the slot is overwritten no earlier than the next Add().
    spare_slot =
        static_cast<size_t>(record - workspace.data()) / fmt.record_size;
  };

  ReplacementSelection<NullTracer> rs(fmt, capacity, sink,
                                      TreeLayout::kFlat, nullptr,
                                      &ctx->metrics->quicksort_stats);

  // Chunked streaming read of the input: pull until the source ends.
  std::vector<char> read_buf(
      std::max<size_t>(r, opts.io_chunk_bytes / r * r));
  uint64_t total = 0;
  uint64_t filled = 0;  // slots used during the initial fill
  for (;;) {
    // Cancellation/deadline poll, once per read chunk.
    ALPHASORT_RETURN_IF_ERROR(core_internal::CheckControl(ctx));
    size_t got = 0;
    ALPHASORT_RETURN_IF_ERROR(
        ctx->source->Read(read_buf.data(), read_buf.size(), &got));
    if (got == 0) break;
    if (got % r != 0) {
      return Status::Corruption(StrFormat(
          "stream ended mid-record: %llu trailing bytes (record size %zu)",
          static_cast<unsigned long long>(got % r), r));
    }
    core_internal::ProgressRead(ctx, got);
    for (size_t pos = 0; pos < got; pos += r) {
      char* slot;
      if (filled < capacity) {
        slot = workspace.data() + filled * r;
        ++filled;
      } else {
        slot = workspace.data() + spare_slot * r;
      }
      memcpy(slot, read_buf.data() + pos, r);
      rs.Add(slot);
      ALPHASORT_RETURN_IF_ERROR(sink_error);
    }
    total += got;
    if (got < read_buf.size()) break;  // end of input
  }
  if (!ctx->size_known) {
    ctx->input_bytes = total;
    ctx->num_records = total / r;
  } else if (total != ctx->input_bytes) {
    return Status::Corruption("short read of input");
  }
  rs.Finish();
  ALPHASORT_RETURN_IF_ERROR(sink_error);
  return close_current();
}

// The replacement-selection pass structure, run inside the shared
// RunSortPipeline harness (which owns validation, env wrapping, file
// opens, metrics, and observability).
Status VmsBody(core_internal::SortContext* ctx) {
  PhaseTimer phase;
  core_internal::ScratchSweeper sweeper(ctx);
  ctx->metrics->passes = 2;

  core_internal::ProgressPhase(ctx, obs::SortPhase::kRead);
  std::vector<ScratchRun> runs;
  bool direct_to_output = false;
  Status s = GenerateRuns(ctx, &runs, &direct_to_output);
  ctx->metrics->read_phase_s = phase.Lap();
  ctx->metrics->num_runs =
      direct_to_output ? (ctx->num_records > 0 ? 1 : 0) : runs.size();
  if (!s.ok()) {
    for (const auto& run : runs) {
      core_internal::RemoveScratchRun(ctx, run.path);
    }
    return s;
  }

  if (direct_to_output) {
    // The single run already streamed to the output: one pass, no merge.
    ctx->metrics->passes = 1;
    s = ctx->output->Truncate(ctx->input_bytes);
  } else {
    if (ctx->progress != nullptr) {
      // Totals are final now (a streamed input has fully arrived);
      // replace the harness's estimate with the real two-pass plan.
      ctx->progress->SetPlan(ctx->input_bytes, 2);
    }
    core_internal::ProgressPhase(ctx, obs::SortPhase::kMerge);
    s = core_internal::MergeScratchRuns(ctx, std::move(runs));
  }
  ctx->metrics->merge_phase_s = phase.Lap();
  return s;
}

}  // namespace

Status VmsSort::Run(Env* env, const SortOptions& options,
                    SortMetrics* metrics) {
  // Thin shim: the replacement-selection body inside the one shared
  // pipeline harness, via a transient Sorter sized from the options.
  Sorter::Resources resources;
  resources.num_workers = options.num_workers;
  resources.io_threads = options.io_threads;
  resources.use_affinity = options.use_affinity;
  Sorter sorter(env, resources);
  SortJob job = sorter.Start(options, VmsBody);
  const SortResult& result = job.Wait();
  if (metrics != nullptr) *metrics = result.metrics;
  return result.status;
}

}  // namespace alphasort
