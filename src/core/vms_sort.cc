#include "core/vms_sort.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/table.h"
#include "core/chores.h"
#include "core/pipeline_internal.h"
#include "io/buffered_writer.h"
#include "io/stripe.h"
#include "sort/replacement_selection.h"

namespace alphasort {

namespace {

using core_internal::ScratchRun;
using core_internal::ScratchRunPath;

// Streams the input through a replacement-selection tournament. When the
// tournament holds the whole input (the paper's memory-rich single-disk
// configuration) the single run streams directly to the output —
// `*direct_to_output` reports that, and no scratch is written. Otherwise
// each run spills to its own scratch file for the merge pass.
Status GenerateRuns(core_internal::SortContext* ctx,
                    std::vector<ScratchRun>* runs,
                    bool* direct_to_output) {
  const SortOptions& opts = *ctx->options;
  const RecordFormat& fmt = opts.format;
  const size_t r = fmt.record_size;

  // Tournament of W records plus one spare slot the incoming record lands
  // in; emitting a winner frees its slot, which becomes the next spare.
  const size_t capacity = std::max<size_t>(
      16, std::min<uint64_t>(opts.memory_budget / (2 * r),
                             ctx->num_records == 0 ? 16 : ctx->num_records));
  *direct_to_output = capacity >= ctx->num_records;
  std::vector<char> workspace((capacity + 1) * r);

  // Sink state: a buffered writer per run.
  Status sink_error;
  std::unique_ptr<File> run_file;
  std::unique_ptr<BufferedWriter> writer;
  size_t current_run = static_cast<size_t>(-1);
  size_t spare_slot = capacity;  // last workspace slot starts free

  const bool direct = *direct_to_output;
  auto close_current = [&]() -> Status {
    if (writer == nullptr) return Status::OK();
    Status s = writer->Finish();
    const uint64_t bytes = writer->bytes_written();
    writer.reset();
    ALPHASORT_RETURN_IF_ERROR(s);
    if (!direct) {
      Status close_status = run_file->Close();
      run_file.reset();
      ALPHASORT_RETURN_IF_ERROR(close_status);
      runs->back().bytes = bytes;
      ctx->metrics->scratch_bytes_written += bytes;
    }
    return Status::OK();
  };

  auto sink = [&](size_t run, const char* record) {
    if (!sink_error.ok()) return;
    if (run != current_run) {
      Status s = close_current();
      if (!s.ok()) {
        sink_error = s;
        return;
      }
      current_run = run;
      if (direct) {
        // The whole input fits the tournament: exactly one run, written
        // straight to the output (the paper's memory-rich OpenVMS sort).
        writer = std::make_unique<BufferedWriter>(ctx->output, ctx->aio,
                                                  opts.io_chunk_bytes);
      } else {
        const std::string path = ScratchRunPath(opts, 0, run);
        Result<std::unique_ptr<File>> f = core_internal::OpenScratchRun(
            ctx, path, OpenMode::kCreateReadWrite);
        if (!f.ok()) {
          sink_error = f.status();
          return;
        }
        run_file = std::move(f).value();
        runs->push_back(ScratchRun{path, 0});
        writer = std::make_unique<BufferedWriter>(run_file.get(), ctx->aio,
                                                  opts.io_chunk_bytes);
      }
    }
    Status s = writer->Append(record, fmt.record_size);
    if (!s.ok()) {
      sink_error = s;
      return;
    }
    // The emitted record's slot is free for the next arrival. Safe
    // because the tournament's "below last output?" check dereferences
    // the emitted record only within the same Add() call that frees it —
    // the slot is overwritten no earlier than the next Add().
    spare_slot =
        static_cast<size_t>(record - workspace.data()) / fmt.record_size;
  };

  ReplacementSelection<NullTracer> rs(fmt, capacity, sink,
                                      TreeLayout::kFlat, nullptr,
                                      &ctx->metrics->quicksort_stats);

  // Chunked streaming read of the input.
  std::vector<char> read_buf(
      std::max<size_t>(r, opts.io_chunk_bytes / r * r));
  uint64_t offset = 0;
  uint64_t filled = 0;  // slots used during the initial fill
  while (offset < ctx->input_bytes) {
    const size_t len = static_cast<size_t>(
        std::min<uint64_t>(read_buf.size(), ctx->input_bytes - offset));
    size_t got = 0;
    ALPHASORT_RETURN_IF_ERROR(
        ctx->input->Read(offset, len, read_buf.data(), &got));
    if (got != len) return Status::Corruption("short read of input");
    for (size_t pos = 0; pos < len; pos += r) {
      char* slot;
      if (filled < capacity) {
        slot = workspace.data() + filled * r;
        ++filled;
      } else {
        slot = workspace.data() + spare_slot * r;
      }
      memcpy(slot, read_buf.data() + pos, r);
      rs.Add(slot);
      ALPHASORT_RETURN_IF_ERROR(sink_error);
    }
    offset += len;
  }
  rs.Finish();
  ALPHASORT_RETURN_IF_ERROR(sink_error);
  return close_current();
}

}  // namespace

Status VmsSort::Run(Env* env, const SortOptions& options,
                    SortMetrics* metrics) {
  ALPHASORT_RETURN_IF_ERROR(options.Validate());
  SortMetrics local_metrics;
  if (metrics == nullptr) metrics = &local_metrics;
  *metrics = SortMetrics();

  PhaseTimer total_timer;
  PhaseTimer phase;
  AsyncIO aio(options.io_threads);
  ChorePool pool(options.num_workers);

  Result<std::unique_ptr<StripeFile>> input =
      StripeFile::Open(env, options.input_path, OpenMode::kReadOnly, &aio);
  ALPHASORT_RETURN_IF_ERROR(input.status());
  Result<std::unique_ptr<StripeFile>> output = StripeFile::Open(
      env, options.output_path, OpenMode::kCreateReadWrite, &aio);
  ALPHASORT_RETURN_IF_ERROR(output.status());
  Result<uint64_t> size = input.value()->Size();
  ALPHASORT_RETURN_IF_ERROR(size.status());
  if (size.value() % options.format.record_size != 0) {
    return Status::InvalidArgument(
        "input size is not a multiple of the record size");
  }

  core_internal::SortContext ctx;
  ctx.env = env;
  ctx.options = &options;
  ctx.metrics = metrics;
  ctx.aio = &aio;
  ctx.pool = &pool;
  ctx.input = input.value().get();
  ctx.output = output.value().get();
  ctx.input_bytes = size.value();
  ctx.num_records = size.value() / options.format.record_size;
  metrics->bytes_in = ctx.input_bytes;
  metrics->num_records = ctx.num_records;
  metrics->passes = 2;
  metrics->startup_s = phase.Lap();

  std::vector<ScratchRun> runs;
  bool direct_to_output = false;
  Status s = GenerateRuns(&ctx, &runs, &direct_to_output);
  metrics->read_phase_s = phase.Lap();
  metrics->num_runs =
      direct_to_output ? (ctx.num_records > 0 ? 1 : 0) : runs.size();
  if (!s.ok()) {
    for (const auto& run : runs) {
      core_internal::RemoveScratchRun(&ctx, run.path);
    }
    input.value()->Close();
    output.value()->Close();
    return s;
  }

  if (direct_to_output) {
    // The single run already streamed to the output: one pass, no merge.
    metrics->passes = 1;
    s = output.value()->Truncate(ctx.input_bytes);
  } else {
    s = core_internal::MergeScratchRuns(&ctx, std::move(runs));
  }
  metrics->merge_phase_s = phase.Lap();
  if (!s.ok()) {
    input.value()->Close();
    output.value()->Close();
    return s;
  }
  ALPHASORT_RETURN_IF_ERROR(input.value()->Close());
  ALPHASORT_RETURN_IF_ERROR(output.value()->Close());
  metrics->close_s = phase.Lap();
  metrics->bytes_out = ctx.input_bytes;
  metrics->total_s = total_timer.Lap();
  return Status::OK();
}

}  // namespace alphasort
