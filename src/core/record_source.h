#ifndef ALPHASORT_CORE_RECORD_SOURCE_H_
#define ALPHASORT_CORE_RECORD_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/async_io.h"
#include "io/env.h"
#include "record/generator.h"

namespace alphasort {

class StripeFile;  // io/stripe.h

// The pipeline's front end: a pull stream of record bytes.
//
// The paper overlaps every phase of the sort with IO, but a file path in
// SortOptions hard-codes "the input is a finished file on disk" — the
// read phase cannot start until the last byte has landed. A RecordSource
// decouples the pipeline from where records come from: a (striped) file,
// an mmap of already-resident data, an in-memory buffer, a generator, or
// a live network upload still in flight. The pipeline consumes every
// source strictly sequentially, so implementations only have to answer
// three questions:
//
//   Read()            give me the next n bytes (block until you have them)
//   TotalBytes()      do you know how big you are? (planning: one pass
//                     vs spill; unknown totals plan adaptively at EOF)
//   ContiguousBytes() are you already resident in one buffer? (zero-copy
//                     one-pass: entries point straight into the source)
//
// Contract:
//   - Open() is called exactly once, before the first Read(), with the
//     effective Env (metrics/retry wrapping applied) and the shared
//     AsyncIO scheduler. Close() is called exactly once after the last
//     Read(), success or failure.
//   - Read() blocks until exactly `n` bytes are delivered or the stream
//     ends: `*got < n` happens only at end of input, and a later call
//     returns *got == 0. Errors (IO failure, a producer's Fail()) return
//     a non-OK status; the stream is then dead.
//   - TotalBytes() must answer consistently for the source's lifetime;
//     sources fed incrementally answer false even after their producer
//     closes, because the planner asks exactly once, up front.
//   - ContiguousBytes() returning non-null promises the buffer holds the
//     entire input and stays valid and immutable until Close(). Callers
//     that use it skip Read() entirely.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  virtual Status Open(Env* env, AsyncIO* aio) {
    (void)env;
    (void)aio;
    return Status::OK();
  }

  virtual Status Read(char* dst, size_t n, size_t* got) = 0;

  virtual Status Close() { return Status::OK(); }

  // True with `*bytes` filled when the total input size is known up
  // front; false for streams still being produced.
  virtual bool TotalBytes(uint64_t* bytes) const = 0;

  // Zero-copy escape hatch; see the contract above. Valid only between
  // Open() and Close().
  virtual const char* ContiguousBytes(uint64_t* len) {
    (void)len;
    return nullptr;
  }

  // Short label for logs and bench configs ("file", "mmap", "stream"...).
  virtual const char* name() const = 0;
};

// How SortOptions carries a source: a factory invoked once per run, after
// option validation, so retried or copied option structs never share a
// half-consumed stream. Returning nullptr fails the run with
// InvalidArgument. Producers that must keep feeding the source (the
// network server) capture their own shared_ptr in the lambda.
using RecordSourceFactory = std::function<std::shared_ptr<RecordSource>()>;

// Plain or striped file (".str" suffix), read through the shared AsyncIO
// scheduler with `depth` chunk reads in flight — the read/sort overlap of
// the classic path, now inside the source. This is what `input_path`
// sugar builds; output is byte-identical to the pre-RecordSource
// pipeline.
class FileRecordSource : public RecordSource {
 public:
  explicit FileRecordSource(std::string path, size_t chunk_bytes = 1 << 20,
                            int depth = 3);
  ~FileRecordSource() override;

  Status Open(Env* env, AsyncIO* aio) override;
  Status Read(char* dst, size_t n, size_t* got) override;
  Status Close() override;
  bool TotalBytes(uint64_t* bytes) const override;
  const char* name() const override { return "file"; }

 private:
  struct Buffer {
    std::vector<char> data;
    uint64_t offset = 0;
    size_t len = 0;        // bytes requested
    size_t avail = 0;      // bytes delivered by the completed read
    size_t consumed = 0;   // bytes handed to Read() so far
    AsyncIO::Handle pending = 0;
    bool in_flight = false;
  };

  void SubmitNext(Buffer* buf);
  void DrainInFlight();

  const std::string path_;
  const size_t chunk_bytes_;
  const int depth_;
  AsyncIO* aio_ = nullptr;
  std::unique_ptr<StripeFile> file_;
  uint64_t size_ = 0;
  uint64_t submit_offset_ = 0;  // next byte offset to submit
  std::vector<Buffer> ring_;
  size_t head_ = 0;  // ring slot the next Read() consumes from
};

// An input already resident in memory. Borrows (data, len) — the caller
// keeps the buffer alive and immutable for the source's lifetime — or
// owns a moved-in string. Contiguous, so one-pass sorts build entries
// straight over it without a read phase.
class MemoryRecordSource : public RecordSource {
 public:
  MemoryRecordSource(const char* data, uint64_t len)
      : data_(data), len_(len) {}
  explicit MemoryRecordSource(std::string data)
      : owned_(std::move(data)),
        data_(owned_.data()),
        len_(owned_.size()) {}

  Status Read(char* dst, size_t n, size_t* got) override;
  bool TotalBytes(uint64_t* bytes) const override {
    *bytes = len_;
    return true;
  }
  const char* ContiguousBytes(uint64_t* len) override {
    *len = len_;
    return len_ > 0 ? data_ : nullptr;
  }
  const char* name() const override { return "memory"; }

 private:
  std::string owned_;
  const char* data_;
  uint64_t len_;
  uint64_t pos_ = 0;
};

// mmap(2) of a plain file on a real filesystem: the zero-copy source for
// input that is already page-cache resident. The mapping is read-only
// and advised MADV_SEQUENTIAL/WILLNEED; ContiguousBytes() exposes it so
// a fitting sort builds entries over the mapped pages and never copies a
// record until the gather. Striped inputs and in-memory Envs are not
// supported — this source goes straight to the kernel.
class MmapRecordSource : public RecordSource {
 public:
  explicit MmapRecordSource(std::string path) : path_(std::move(path)) {}
  ~MmapRecordSource() override;

  Status Open(Env* env, AsyncIO* aio) override;
  Status Read(char* dst, size_t n, size_t* got) override;
  Status Close() override;
  bool TotalBytes(uint64_t* bytes) const override;
  const char* ContiguousBytes(uint64_t* len) override;
  const char* name() const override { return "mmap"; }

 private:
  const std::string path_;
  int fd_ = -1;
  char* map_ = nullptr;
  uint64_t size_ = 0;
  uint64_t pos_ = 0;
  bool open_ = false;
};

// Datamation-style generated records (record/generator.h): `count`
// records of `format` in distribution `dist`, materialized once at
// Open(). Benches and tests sort synthetic inputs without writing an
// input file first; contiguous, so it also exercises the zero-copy path.
class GeneratedRecordSource : public RecordSource {
 public:
  GeneratedRecordSource(RecordFormat format, uint64_t count,
                        KeyDistribution dist = KeyDistribution::kUniform,
                        uint64_t seed = 1);

  Status Open(Env* env, AsyncIO* aio) override;
  Status Read(char* dst, size_t n, size_t* got) override;
  Status Close() override;
  bool TotalBytes(uint64_t* bytes) const override {
    *bytes = total_;
    return true;
  }
  const char* ContiguousBytes(uint64_t* len) override;
  const char* name() const override { return "generated"; }

 private:
  RecordFormat format_;
  uint64_t count_;
  KeyDistribution dist_;
  uint64_t seed_;
  uint64_t total_;
  std::vector<char> data_;
  uint64_t pos_ = 0;
};

// A source fed incrementally by a producer on another thread — the heart
// of the spool-free network path. The consumer (the pipeline) pulls with
// Read(); the producer pushes with Append()/TryAppend() against a
// bounded byte buffer (backpressure: a slow sort throttles the upload
// instead of buffering it all), then Close() for a clean end of input or
// Fail() to poison the stream. Total size is never known — the planner
// runs the adaptive path: one pass if everything arrives within the
// memory budget, spill as usual otherwise.
class StreamRecordSource : public RecordSource {
 public:
  static constexpr size_t kDefaultCapacityBytes = 8u << 20;

  explicit StreamRecordSource(size_t capacity_bytes = kDefaultCapacityBytes)
      : capacity_(capacity_bytes == 0 ? 1 : capacity_bytes) {}

  // --- consumer side (the pipeline).
  Status Read(char* dst, size_t n, size_t* got) override;
  bool TotalBytes(uint64_t* bytes) const override {
    (void)bytes;
    return false;
  }
  const char* name() const override { return "stream"; }

  // --- producer side.
  // Blocks until the chunk fits (or the buffer is empty — one oversized
  // chunk is always accepted rather than deadlocking). Returns false if
  // the stream was closed, failed, or abandoned by its consumer.
  bool Append(const char* data, size_t n);

  // Non-blocking-ish Append: waits at most `timeout_ms` for space.
  // On return, `*accepted` says whether the chunk was taken; a non-OK
  // status means the stream is dead (failed or already closed) and no
  // further appends can succeed.
  Status TryAppend(const char* data, size_t n, int timeout_ms,
                   bool* accepted);

  // End of input: readers drain what is buffered, then see EOF.
  void CloseWrite();

  // Consumer-side close (the pipeline, via the harness). A stream still
  // being fed is abandoned: poisoned so the producer's next append fails
  // instead of blocking on a reader that will never come back.
  Status Close() override;

  // Poisons the stream: readers get `status` once the call lands (no
  // drain), producers get false/non-OK. Used for mid-stream errors —
  // a dropped connection, a CRC mismatch discovered at DONE.
  void Fail(Status status);

  // Bytes currently buffered (diagnostics/tests).
  size_t buffered() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable can_append_;
  std::condition_variable can_read_;
  std::deque<std::string> chunks_;
  size_t buffered_ = 0;
  size_t head_consumed_ = 0;  // bytes of chunks_.front() already read
  bool closed_ = false;
  Status error_;
};

}  // namespace alphasort

#endif  // ALPHASORT_CORE_RECORD_SOURCE_H_
