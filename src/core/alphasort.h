#ifndef ALPHASORT_CORE_ALPHASORT_H_
#define ALPHASORT_CORE_ALPHASORT_H_

#include "core/options.h"
#include "core/sort_metrics.h"
#include "io/env.h"

// Deprecation attribute for the legacy one-shot entry points, opt-in so
// existing builds stay warning-clean: define ALPHASORT_STRICT_DEPRECATION
// (scripts/ci.sh --stage=api does, with warnings as errors) to surface
// every remaining call site as [[deprecated]].
#if defined(ALPHASORT_STRICT_DEPRECATION)
#define ALPHASORT_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define ALPHASORT_DEPRECATED(msg)
#endif

namespace alphasort {

// AlphaSort: a cache-conscious external sort (Nyberg, Barclay, Cvetanovic,
// Gray, Lomet — SIGMOD 1994).
//
// The pipeline (paper §7):
//   1. Open the (striped) input and create the (striped) output, with
//      asynchronous per-member opens.
//   2. Stream the input with triple-buffered asynchronous reads; as each
//      run's worth of records lands in memory, a worker extracts
//      (key-prefix, pointer) pairs and QuickSorts them, overlapping CPU
//      with IO.
//   3. Merge the QuickSorted runs with a cache-resident tournament,
//      producing an in-order stream of record pointers; workers gather
//      (copy) the records into output buffers — the only record copy —
//      while the root streams the buffers to the output stripe.
//
// When the input does not fit in `memory_budget`, the sort runs in two
// passes (§6): pass one writes QuickSorted record runs to scratch files,
// pass two streams and merges them.
//
// Typical use:
//   SortOptions opts;
//   opts.input_path = "in.str";
//   opts.output_path = "out.str";   // definition must already exist
//   opts.num_workers = 3;
//   SortMetrics metrics;
//   Status s = AlphaSort::Run(GetPosixEnv(), opts, &metrics);
//
// AlphaSort::Run is the historical one-shot entry point, kept as a thin
// wrapper over the instance-based job API (core/sorter.h): it builds a
// transient Sorter, Start()s the one job, and Wait()s. Code that runs
// more than one sort — or wants cancellation handles, deadlines, or
// shared IO/worker pools — should use Sorter::Start directly, and code
// that needs admission control across concurrent sorts should submit to
// a SortService (src/svc/sort_service.h, docs/service.md).
class AlphaSort {
 public:
  // Sorts input to output; fills `metrics` (optional) with the phase
  // breakdown. Returns the first error encountered; on error the output
  // file contents are unspecified. Equivalent to
  // Sorter(env).Start(options).Wait() with pools sized from `options`.
  ALPHASORT_DEPRECATED(
      "use Sorter::Start (core/sorter.h) or svc::SortService; see "
      "docs/api.md")
  static Status Run(Env* env, const SortOptions& options,
                    SortMetrics* metrics = nullptr);
};

}  // namespace alphasort

#endif  // ALPHASORT_CORE_ALPHASORT_H_
