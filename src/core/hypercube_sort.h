#ifndef ALPHASORT_CORE_HYPERCUBE_SORT_H_
#define ALPHASORT_CORE_HYPERCUBE_SORT_H_

#include "core/options.h"
#include "core/sort_metrics.h"
#include "io/env.h"

namespace alphasort {

// A shared-nothing partitioned sort in the style of the 32-node Intel
// iPSC/2 Hypercube record holder AlphaSort displaced (DeWitt, Naughton &
// Schneider, "Parallel Sorting on a Shared-Nothing Architecture Using
// Probabilistic Splitting" — the paper's reference [9] and Table 1's
// 58-second row):
//
//   "They read the disks in parallel, performing a preliminary sort of
//    the data at each source, and partition it into equal-sized parts.
//    Each reader-sorter sends the partitions to their respective target
//    partitions. Each target partition processor merges the many input
//    streams into a sorted run that is stored on the local disk." (§2)
//
// Here the "nodes" are threads over a shared address space (the exchange
// is a pointer hand-off instead of a network transfer), which preserves
// the algorithm's structure — probabilistic splitting, local sort,
// all-to-all exchange, per-node merge — for comparison against the
// shared-memory AlphaSort decomposition.
struct HypercubeOptions {
  int nodes = 4;
  // Splitter samples drawn per node; more samples = better balance
  // (probabilistic splitting's knob).
  size_t samples_per_node = 64;
};

// Per-phase timing and balance statistics of one run.
struct HypercubeMetrics {
  double read_s = 0;
  double local_sort_s = 0;      // parallel per-node QuickSorts
  double split_exchange_s = 0;  // splitter selection + partition hand-off
  double merge_write_s = 0;     // per-node P-way merge + gather + write
  double total_s = 0;
  uint64_t num_records = 0;
  // Partition balance: largest node partition over the ideal n/P.
  double max_skew = 0;
};

class HypercubeSort {
 public:
  static Status Run(Env* env, const SortOptions& options,
                    const HypercubeOptions& hyper,
                    HypercubeMetrics* metrics = nullptr);
};

}  // namespace alphasort

#endif  // ALPHASORT_CORE_HYPERCUBE_SORT_H_
